//! Round-trip property tests for schema diffing: `apply(A, diff(A, B))`
//! must reproduce `B` up to the structural equivalence `diff` itself
//! defines (type identity by label set / key set, ids and instance
//! counts ignored), and `diff(A, A)` must always be empty.
//!
//! Schemas come from `pg-synth`'s `random_schema`, both as independent
//! pairs (worst case: the diff is mostly removals + additions) and as
//! seeded small evolutions of one schema (the realistic case: property
//! spec changes, cardinality changes, dropped and added types).

use pg_hive::{apply, diff};
use pg_model::{sym, Cardinality, DataType, Presence, PropertySpec, SchemaGraph};
use pg_synth::{random_schema, SchemaParams};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn params_strategy() -> impl Strategy<Value = SchemaParams> {
    (1usize..6, 0usize..5, 0usize..4, 0.0f64..0.6, 0.0f64..0.8).prop_map(
        |(node_types, edge_types, max_extra_props, multi_label_overlap, optional_rate)| {
            SchemaParams {
                node_types,
                edge_types,
                max_extra_props,
                multi_label_overlap,
                optional_rate,
            }
        },
    )
}

/// A small seeded evolution of `base`: drop a node type, mutate property
/// specs, change or clear a cardinality, and graft in a fresh type.
fn evolve(base: &SchemaGraph, seed: u64) -> SchemaGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = base.clone();

    if out.node_types.len() > 1 && rng.gen_bool(0.5) {
        let victim = rng.gen_range(0..out.node_types.len());
        let gone = out.node_types.remove(victim);
        // Types referencing the dropped one as an endpoint go with it.
        out.edge_types
            .retain(|et| et.src_labels != gone.labels && et.tgt_labels != gone.labels);
    }

    if let Some(t) = out.node_types.first_mut() {
        // Widen one datatype and flip one presence.
        if let Some((_, spec)) = t.properties.iter_mut().next() {
            spec.datatype = Some(DataType::Str);
        }
        t.properties.insert(
            sym("evolved_flag"),
            PropertySpec {
                datatype: Some(DataType::Bool),
                presence: Some(Presence::Optional),
            },
        );
    }

    if let Some(et) = out.edge_types.first_mut() {
        et.cardinality = if rng.gen_bool(0.5) {
            None
        } else {
            Some(Cardinality {
                max_out: rng.gen_range(1..10),
                max_in: rng.gen_range(1..10),
            })
        };
    }

    // Graft in one node type from a disjoint generation so the diff also
    // carries an addition (labels are index-suffixed, so a high-index
    // generation cannot collide with `base`).
    let donor = random_schema(
        &SchemaParams {
            node_types: 8,
            edge_types: 0,
            ..SchemaParams::default()
        },
        seed ^ 0xd1ff,
    );
    if let Some(extra) = donor.node_types.last() {
        if !out.node_types.iter().any(|t| t.labels == extra.labels) {
            out.node_types.push(extra.clone());
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A schema never differs from itself.
    #[test]
    fn diff_self_is_empty(params in params_strategy(), seed in 0u64..1_000_000) {
        let a = random_schema(&params, seed);
        let d = diff(&a, &a);
        prop_assert!(d.is_empty(), "self-diff not empty:\n{}", d);
        // And replaying the empty diff changes nothing.
        prop_assert!(diff(&apply(&a, &d), &a).is_empty());
    }

    /// Worst-case round trip: two unrelated schemas.
    #[test]
    fn apply_reproduces_unrelated_schema(
        pa in params_strategy(),
        pb in params_strategy(),
        seed_a in 0u64..1_000_000,
        seed_b in 0u64..1_000_000,
    ) {
        let a = random_schema(&pa, seed_a);
        let b = random_schema(&pb, seed_b);
        let d = diff(&a, &b);
        let replayed = apply(&a, &d);
        let residue = diff(&replayed, &b);
        prop_assert!(
            residue.is_empty(),
            "replayed schema still differs from target:\n{}",
            residue
        );
    }

    /// Realistic round trip: `B` is a small evolution of `A`, so the diff
    /// mixes property changes, cardinality changes, removals, additions.
    #[test]
    fn apply_reproduces_evolved_schema(
        params in params_strategy(),
        seed in 0u64..1_000_000,
        evolution_seed in 0u64..1_000_000,
    ) {
        let a = random_schema(&params, seed);
        let b = evolve(&a, evolution_seed);
        let d = diff(&a, &b);
        let replayed = apply(&a, &d);
        let residue = diff(&replayed, &b);
        prop_assert!(
            residue.is_empty(),
            "replayed evolution still differs from target:\n{}",
            residue
        );
        // Replay is idempotent: applying the same diff twice is a no-op.
        prop_assert!(diff(&apply(&replayed, &d), &b).is_empty());
    }
}
