//! Fault-injection suite for durable checkpoints (ISSUE 2 tentpole).
//!
//! Three contracts:
//!
//! 1. **Kill-and-resume bit-identity** — checkpoint after every batch,
//!    drop the session after batch `i` (the "kill"), `resume()` from
//!    disk, process the remaining batches, and the final schema — and
//!    every instance assignment — is bit-identical to the uninterrupted
//!    run. Holds at `threads = 1` and `threads = N`, with and without
//!    memoization, because batch numbering (and therefore per-batch
//!    seeds) continues across the restore.
//!
//! 2. **Corruption is always detected** — an envelope truncated at any
//!    byte offset, or with any single bit flipped anywhere, never
//!    decodes into a checkpoint. (CRC-32 detects all single-bit errors;
//!    the `len` field detects truncation and trailing garbage; the
//!    strict header parse catches damage to the header itself.)
//!
//! 3. **Fallback resume through the store** — when the newest on-disk
//!    checkpoint is damaged, `resume()` reports it and falls back to
//!    the newest valid one, and the session resumed from the fallback
//!    still converges to the uninterrupted schema.

use pg_hive::checkpoint::{decode, encode};
use pg_hive::{CheckpointStore, HiveSession, LshMethod, SessionCheckpoint};
use proptest::prelude::*;
use std::sync::OnceLock;

mod common;
use common::{case_graph, quick_config, sorted_edge_assignment, sorted_node_assignment};

/// Same salt the CLI uses: resume re-derives the identical batch split.
const BATCH_SPLIT_SALT: u64 = 0xba7c4;

/// A unique temp directory per test invocation; removed on drop.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "pg-hive-crash-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tempdir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A small but non-trivial checkpoint for byte-level corruption cases,
/// encoded once (proptest runs many cases against the same bytes).
fn reference_envelope() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let graph = case_graph("POLE", 3, 0.0, 1.0);
        let batches = pg_store::split_batches(&graph, 2, 3 ^ BATCH_SPLIT_SALT);
        let mut session = HiveSession::new(quick_config(LshMethod::Elsh, 3, 1));
        session.process_graph_batch(&batches[0]);
        encode(&session.checkpoint()).expect("encode reference checkpoint")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Contract 1: kill after batch `i`, resume from disk, finish — the
    /// result is `==` to never having crashed at all.
    #[test]
    fn kill_and_resume_is_bit_identical(
        dataset in prop::sample::select(vec!["POLE", "MB6", "ICIJ"]),
        seed in 0u64..1000,
        k in 3usize..6,
        kill_after in 1usize..3,
        threads in prop::sample::select(vec![1usize, 4]),
        memoize in prop::bool::ANY,
    ) {
        let kill_after = kill_after.min(k - 1); // always leave work to resume
        let graph = case_graph(dataset, seed, 0.0, 1.0);
        let batches = pg_store::split_batches(&graph, k, seed ^ BATCH_SPLIT_SALT);
        let mut cfg = quick_config(LshMethod::Elsh, seed, threads);
        cfg.memoize = memoize;

        // The uninterrupted reference run.
        let mut full = HiveSession::new(cfg.clone());
        for b in &batches {
            full.process_graph_batch(b);
        }
        let full = full.finish();

        // The crashing run: checkpoint each batch, then drop the
        // session (simulated kill — memory state is gone, only the
        // durable checkpoints survive).
        let tmp = TempDir::new("resume");
        let store = CheckpointStore::open(&tmp.0).unwrap();
        {
            let mut session = HiveSession::new(cfg.clone());
            for b in &batches[..kill_after] {
                session.process_graph_batch(b);
                store.save(&session.checkpoint()).unwrap();
            }
        } // <- kill

        let outcome = store.resume().unwrap();
        prop_assert!(outcome.skipped.is_empty());
        let ckpt = outcome.checkpoint.expect("a checkpoint was saved");
        prop_assert_eq!(ckpt.batches_processed, kill_after);
        let mut resumed = HiveSession::restore(cfg, ckpt).unwrap();
        for b in &batches[kill_after..] {
            resumed.process_graph_batch(b);
        }
        let resumed = resumed.finish();

        prop_assert_eq!(&resumed.schema, &full.schema);
        prop_assert_eq!(sorted_node_assignment(&resumed), sorted_node_assignment(&full));
        prop_assert_eq!(sorted_edge_assignment(&resumed), sorted_edge_assignment(&full));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Contract 2a: truncation at any offset strictly inside the
    /// envelope is detected.
    #[test]
    fn truncation_at_any_offset_is_detected(cut in 0.0f64..1.0) {
        let bytes = reference_envelope();
        // Clamp: f64 rounding near 1.0 could otherwise yield `len`
        // (a no-op truncation).
        let cut = (((bytes.len() as f64) * cut) as usize).min(bytes.len() - 1);
        prop_assert!(decode(&bytes[..cut]).is_err(), "decoded a {cut}-byte prefix");
    }

    /// Contract 2b: a single bit flipped at any offset is detected.
    #[test]
    fn bit_flip_at_any_offset_is_detected(pos in 0.0f64..1.0, bit in 0u8..8) {
        let mut bytes = reference_envelope().to_vec();
        let pos = (((bytes.len() as f64) * pos) as usize).min(bytes.len() - 1);
        bytes[pos] ^= 1 << bit;
        prop_assert!(
            decode(&bytes).is_err(),
            "decoded with bit {bit} of byte {pos} flipped"
        );
    }
}

/// The unmodified reference envelope decodes — so the corruption
/// proptests above fail for the right reason, not because the
/// reference itself is broken.
#[test]
fn reference_envelope_is_valid() {
    let ckpt: SessionCheckpoint = decode(reference_envelope()).unwrap();
    assert_eq!(ckpt.batches_processed, 1);
}

/// Contract 3: damage the newest on-disk checkpoint; `resume()` reports
/// it, falls back to the previous one, and the resumed session still
/// finishes bit-identical to the uninterrupted run (it just redoes one
/// batch).
#[test]
fn fallback_resume_converges_after_newest_checkpoint_is_damaged() {
    let graph = case_graph("POLE", 17, 0.0, 1.0);
    let batches = pg_store::split_batches(&graph, 4, 17 ^ BATCH_SPLIT_SALT);
    let cfg = quick_config(LshMethod::Elsh, 17, 1);

    let mut full = HiveSession::new(cfg.clone());
    for b in &batches {
        full.process_graph_batch(b);
    }
    let full = full.finish();

    let tmp = TempDir::new("fallback");
    let store = CheckpointStore::open(&tmp.0).unwrap().with_retention(4);
    {
        let mut session = HiveSession::new(cfg.clone());
        for b in &batches[..3] {
            session.process_graph_batch(b);
            store.save(&session.checkpoint()).unwrap();
        }
    } // <- kill

    // Torn write on the newest checkpoint: truncate it to half.
    let (_, newest) = store.list().unwrap().into_iter().next_back().unwrap();
    let damaged = std::fs::read(&newest).unwrap();
    std::fs::write(&newest, &damaged[..damaged.len() / 2]).unwrap();

    let outcome = store.resume().unwrap();
    assert_eq!(outcome.skipped.len(), 1, "the damaged file is reported");
    assert_eq!(outcome.skipped[0].0, newest);
    let ckpt = outcome.checkpoint.expect("fallback checkpoint");
    assert_eq!(ckpt.batches_processed, 2, "fell back one batch");

    let mut resumed = HiveSession::restore(cfg, ckpt).unwrap();
    for b in &batches[2..] {
        resumed.process_graph_batch(b);
    }
    let resumed = resumed.finish();

    assert_eq!(resumed.schema, full.schema);
    assert_eq!(
        sorted_node_assignment(&resumed),
        sorted_node_assignment(&full)
    );
}
