//! The distributed-discovery equivalence suite.
//!
//! `pg_hive::merge` claims that shard-parallel discovery is *the same
//! function* as single-node discovery — not approximately, but up to
//! bit-identical canonical form whenever type alignment is unambiguous.
//! This suite pins that claim down property-based, against the same
//! pg-synth ground-truth generator the correctness oracle uses:
//!
//! * **Sharded ≡ single-node** — for any generated schema, any shard
//!   count in {1, 2, 4, 8}, any partition, and any shard ordering, the
//!   merged schema's `content_hash` equals single-node discovery's.
//!   Exercised on clean graphs and on the two noise flavors where
//!   alignment is provably unambiguous: unlabeled-node noise with pure
//!   mandatory key sets (Jaccard-1 absorption), and property-missing
//!   noise with labels intact (exact-label alignment).
//! * **Merge algebra** — `merge_schemas` is commutative (bit-identical),
//!   associative (bit-identical across nestings, hash-equal to the flat
//!   merge), idempotent modulo instance counts (`merge(a,a)` doubles
//!   counts, changes nothing else), and has the empty schema as identity.
//! * **Monotone containment under harsh noise** — when label noise and
//!   unlabeled nodes make alignment genuinely ambiguous, exact equality
//!   is out of reach; what must still hold is the merge-lattice
//!   contract: every shard schema is generalized by the merged schema,
//!   and the merged schema covers every element of the full graph.
//! * **Negative paths** — colliding type names with incompatible
//!   structure (disjoint key sets, incompatible edge endpoints), a >128
//!   distinct-key universe (the `KeyBits` sorted-list fallback), and
//!   empty/zero-shard inputs, which are typed errors, never panics.
//!
//! Failures persist their generator seed under `target/merge-failures/`
//! for CI artifact upload, mirroring the oracle suite.

use pg_hive::{
    canonical_form, content_hash, content_hash_hex, discover_sharded, merge_schemas, merge_states,
    DiscoveryState, HiveConfig, LshMethod, MergeError, PgHive, SHARD_SPLIT_SALT,
};
use pg_model::{DataType, Edge, LabelSet, Node, Presence, PropertyGraph, SchemaGraph};
use pg_store::split_batches;
use pg_synth::{random_schema, synthesize, NoiseProfile, SchemaParams, SynthSpec};
use proptest::prelude::*;

/// The thread counts the suite exercises. Honors the CI matrix's
/// RAYON_NUM_THREADS when set (so `threads ∈ {1, 4}` runs as two jobs);
/// locally, both settings run in one pass.
fn thread_settings() -> Vec<usize> {
    match std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n > 0 => vec![n],
        _ => vec![1, 4],
    }
}

/// Persist a failing case's seed + repro line for CI artifact upload.
fn dump_failure(seed: u64, params: &SchemaParams, what: &str) {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"))
        .parent()
        .map(|t| t.join("merge-failures"))
        .unwrap_or_else(|| "target/merge-failures".into());
    let _ = std::fs::create_dir_all(&dir);
    let _ = std::fs::write(
        dir.join(format!("seed-{seed}.txt")),
        format!(
            "merge-equivalence failure: {what}\nseed: {seed}\nparams: {params:?}\n\
             repro: pg-hive synth --out-dir /tmp/merge-{seed} --types {} --seed {seed}\n",
            params.node_types
        ),
    );
}

fn params_strategy() -> impl Strategy<Value = SchemaParams> {
    (2usize..6, 0usize..5, 0usize..4, 0.0f64..0.6, 0.0f64..0.8).prop_map(
        |(node_types, edge_types, max_extra_props, multi_label_overlap, optional_rate)| {
            SchemaParams {
                node_types,
                edge_types,
                max_extra_props,
                multi_label_overlap,
                optional_rate,
            }
        },
    )
}

/// The oracle's evaluation config, with post-processing switched back on
/// so the content hash covers constraints, data types (full scan — the
/// mode that carries the bit-equality guarantee), and cardinalities.
fn merge_config(seed: u64, threads: usize) -> HiveConfig {
    let mut cfg = pg_eval::runner::eval_hive_config(LshMethod::Elsh, seed).with_threads(threads);
    cfg.post_processing = true;
    cfg
}

/// Discover every shard of a fixed partition independently and return
/// the per-shard states (the manual counterpart of `discover_sharded`,
/// for tests that need to reorder or inspect the shard results).
fn shard_states(
    graph: &PropertyGraph,
    n_shards: usize,
    part_seed: u64,
    cfg: &HiveConfig,
) -> Vec<DiscoveryState> {
    let hive = PgHive::new(cfg.clone());
    split_batches(graph, n_shards, part_seed)
        .iter()
        .map(|b| hive.discover(&b.nodes, &b.edges).state)
        .collect()
}

/// Assert `discover_sharded` is content-hash-equal to single-node
/// discovery at every shard count in `shard_counts`.
fn assert_sharded_matches_single(
    graph: &PropertyGraph,
    seed: u64,
    params: &SchemaParams,
    shard_counts: &[usize],
    what: &str,
) -> Result<(), TestCaseError> {
    for threads in thread_settings() {
        let cfg = merge_config(seed, threads);
        let single = PgHive::new(cfg.clone()).discover_graph(graph);
        let expect = content_hash_hex(&single.schema);
        for &shards in shard_counts {
            let sharded = discover_sharded(graph, shards, &cfg).unwrap();
            let got = content_hash_hex(&sharded.schema);
            if got != expect {
                dump_failure(seed, params, what);
            }
            prop_assert_eq!(
                got,
                expect.clone(),
                "{}: {} shards at {} threads\nsingle:\n{}\nsharded:\n{}",
                what,
                shards,
                threads,
                canonical_form(&single.schema),
                canonical_form(&sharded.schema)
            );
        }
    }
    Ok(())
}

/// Strip instance counts (the only non-idempotent component of the merge
/// algebra — a counting monoid rides along with the schema lattice).
fn zeroed_counts(schema: &SchemaGraph) -> SchemaGraph {
    let mut s = schema.clone();
    for t in &mut s.node_types {
        t.instance_count = 0;
    }
    for t in &mut s.edge_types {
        t.instance_count = 0;
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Headline equivalence: on noise-free graphs, sharded discovery at
    /// 1, 2, 4, and 8 shards is content-hash-equal to single-node
    /// discovery, at every thread setting.
    #[test]
    fn sharded_equals_single_node_on_clean_graphs(
        params in params_strategy(),
        seed in 0u64..1_000_000,
    ) {
        let out = synthesize(&SynthSpec::new(random_schema(&params, seed)), seed);
        assert_sharded_matches_single(
            &out.graph, seed, &params, &[1, 2, 4, 8], "clean sharded != single",
        )?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Unlabeled-node noise with pure-mandatory key sets: every stripped
    /// node still carries its type's exact key set, so abstract clusters
    /// absorb into their labeled type at Jaccard 1 on both the sharded
    /// and the single-node path — the hash equality survives.
    #[test]
    fn sharded_equals_single_node_with_unlabeled_noise(
        params in params_strategy(),
        seed in 0u64..1_000_000,
        unlabeled in 0.05f64..0.4,
    ) {
        let mut params = params;
        // Pure mandatory key sets: key-set identity survives label stripping.
        params.optional_rate = 0.0;
        let spec = SynthSpec::new(random_schema(&params, seed)).with_noise(NoiseProfile {
            unlabeled_fraction: unlabeled,
            ..NoiseProfile::clean()
        });
        let out = synthesize(&spec, seed);
        assert_sharded_matches_single(
            &out.graph, seed, &params, &[2, 4, 8], "unlabeled-noise sharded != single",
        )?;
    }

    /// Property-missing noise with labels intact: alignment is by exact
    /// label set on both paths, and presence counts are additive, so
    /// dropped mandatory/optional properties perturb the discovered
    /// constraints identically on the sharded and single-node runs.
    #[test]
    fn sharded_equals_single_node_with_property_noise(
        params in params_strategy(),
        seed in 0u64..1_000_000,
        miss_opt in 0.0f64..0.5,
        miss_man in 0.0f64..0.4,
    ) {
        let spec = SynthSpec::new(random_schema(&params, seed)).with_noise(NoiseProfile {
            missing_optional_rate: miss_opt,
            missing_mandatory_rate: miss_man,
            ..NoiseProfile::clean()
        });
        let out = synthesize(&spec, seed);
        assert_sharded_matches_single(
            &out.graph, seed, &params, &[2, 4, 8], "property-noise sharded != single",
        )?;
    }

    /// Any partition, any shard ordering: merging the same shard states
    /// forward and reversed is bit-identical (type ids included), and an
    /// arbitrary partition seed still reproduces the single-node hash.
    #[test]
    fn merge_is_invariant_under_shard_order_and_partition(
        params in params_strategy(),
        seed in 0u64..1_000_000,
        part_seed in 0u64..1_000_000,
    ) {
        let out = synthesize(&SynthSpec::new(random_schema(&params, seed)), seed);
        let cfg = merge_config(seed, 1);
        let single = content_hash_hex(&PgHive::new(cfg.clone()).discover_graph(&out.graph).schema);

        let states = shard_states(&out.graph, 4, part_seed, &cfg);
        let fwd = merge_states(&states, &cfg).unwrap();
        let mut rev = states;
        rev.reverse();
        let bwd = merge_states(&rev, &cfg).unwrap();
        prop_assert_eq!(
            &fwd.schema, &bwd.schema,
            "shard order changed the merged schema (bit-level)"
        );
        let got = content_hash_hex(&fwd.schema);
        if got != single {
            dump_failure(seed, &params, "arbitrary partition diverged from single-node");
        }
        prop_assert_eq!(got, single, "partition seed {}", part_seed);
    }

    /// The merge algebra on discovered schemas: commutative and
    /// associative bit-identically, idempotent modulo instance counts,
    /// with the empty schema as identity — at every thread setting.
    #[test]
    fn merge_algebra_laws(
        params in params_strategy(),
        seed_a in 0u64..1_000_000,
        seed_b in 0u64..1_000_000,
        seed_c in 0u64..1_000_000,
    ) {
        for threads in thread_settings() {
            let cfg = merge_config(seed_a, threads);
            let hive = PgHive::new(cfg.clone());
            let discover = |seed: u64| {
                let out = synthesize(&SynthSpec::new(random_schema(&params, seed)), seed);
                hive.discover_graph(&out.graph).schema
            };
            let (a, b, c) = (discover(seed_a), discover(seed_b), discover(seed_c));

            // Commutativity, bit-identical (canonical renumbering included).
            let ab = merge_schemas(&[a.clone(), b.clone()]).unwrap();
            let ba = merge_schemas(&[b.clone(), a.clone()]).unwrap();
            prop_assert_eq!(&ab, &ba, "merge not commutative at {} threads", threads);

            // Associativity: both nestings agree bit-identically, and
            // both hash-equal the flat three-way merge.
            let bc = merge_schemas(&[b.clone(), c.clone()]).unwrap();
            let left = merge_schemas(&[ab, c.clone()]).unwrap();
            let right = merge_schemas(&[a.clone(), bc]).unwrap();
            prop_assert_eq!(&left, &right, "merge not associative at {} threads", threads);
            let flat = merge_schemas(&[a.clone(), b.clone(), c.clone()]).unwrap();
            prop_assert_eq!(
                content_hash(&left),
                content_hash(&flat),
                "nested merge hash != flat merge hash at {} threads",
                threads
            );

            // Idempotence modulo the counting monoid: merge(a, a)
            // doubles every instance count and changes nothing else.
            let once = merge_schemas(std::slice::from_ref(&a)).unwrap();
            let twice = merge_schemas(&[a.clone(), a.clone()]).unwrap();
            prop_assert_eq!(
                canonical_form(&zeroed_counts(&twice)),
                canonical_form(&zeroed_counts(&once)),
                "merge(a, a) changed more than instance counts"
            );
            prop_assert_eq!(twice.node_types.len(), once.node_types.len());
            prop_assert_eq!(twice.edge_types.len(), once.edge_types.len());
            for (t2, t1) in twice.node_types.iter().zip(&once.node_types) {
                prop_assert_eq!(t2.instance_count, 2 * t1.instance_count, "node counts double");
            }
            for (t2, t1) in twice.edge_types.iter().zip(&once.edge_types) {
                prop_assert_eq!(t2.instance_count, 2 * t1.instance_count, "edge counts double");
            }

            // Identity: the empty schema is neutral, bit-identically.
            let with_empty = merge_schemas(&[a.clone(), SchemaGraph::new()]).unwrap();
            prop_assert_eq!(&with_empty, &once, "empty schema is not a merge identity");
        }
    }

    /// Harsh mixed noise (unlabeled nodes + label noise + property
    /// drops) can make type alignment genuinely ambiguous, so exact
    /// equality is not claimed there. The monotone-merge contract still
    /// is: every shard schema is generalized by the merged schema, and
    /// the merged schema covers every element of the full graph.
    #[test]
    fn merged_schema_generalizes_shards_and_covers_graph_under_harsh_noise(
        params in params_strategy(),
        seed in 0u64..1_000_000,
        unlabeled in 0.0f64..0.5,
        miss_opt in 0.0f64..0.5,
        miss_man in 0.0f64..0.4,
        label_noise in 0.0f64..0.3,
    ) {
        let spec = SynthSpec::new(random_schema(&params, seed)).with_noise(NoiseProfile {
            unlabeled_fraction: unlabeled,
            missing_optional_rate: miss_opt,
            missing_mandatory_rate: miss_man,
            label_noise_rate: label_noise,
        });
        let out = synthesize(&spec, seed);
        let cfg = merge_config(seed, 1);
        let states = shard_states(&out.graph, 4, cfg.seed ^ SHARD_SPLIT_SALT, &cfg);
        let merged = merge_states(&states, &cfg).unwrap();

        for (i, s) in states.iter().enumerate() {
            if !s.schema.is_generalized_by(&merged.schema) {
                dump_failure(seed, &params, "shard schema not generalized by merge");
            }
            prop_assert!(
                s.schema.is_generalized_by(&merged.schema),
                "shard {} schema not generalized by the merged schema:\nshard:\n{}\nmerged:\n{}",
                i,
                canonical_form(&s.schema),
                canonical_form(&merged.schema)
            );
        }
        let (bad_nodes, bad_edges) = merged.schema.uncovered_elements(&out.graph);
        if !bad_nodes.is_empty() || !bad_edges.is_empty() {
            dump_failure(seed, &params, "merged schema does not cover the graph");
        }
        prop_assert!(bad_nodes.is_empty(), "uncovered nodes: {:?}", bad_nodes);
        prop_assert!(bad_edges.is_empty(), "uncovered edges: {:?}", bad_edges);
    }
}

// ---------------------------------------------------------------------
// Negative paths and structural edge cases (deterministic).
// ---------------------------------------------------------------------

/// Empty inputs and zero shards are typed errors, never panics — and the
/// errors render something a CLI user can act on.
#[test]
fn degenerate_inputs_are_typed_errors() {
    assert_eq!(merge_schemas(&[]).unwrap_err(), MergeError::EmptyInput);
    assert_eq!(
        merge_states(&[], &HiveConfig::default())
            .map(|_| ())
            .unwrap_err(),
        MergeError::EmptyInput
    );
    assert_eq!(
        discover_sharded(&PropertyGraph::new(), 0, &HiveConfig::default())
            .map(|_| ())
            .unwrap_err(),
        MergeError::ZeroShards
    );
}

fn schema_with_person(count: u64, keys: &[&str]) -> SchemaGraph {
    let mut s = SchemaGraph::new();
    let mut t = pg_model::NodeType::new(
        pg_model::TypeId(0),
        LabelSet::single("Person"),
        keys.iter().map(|k| pg_model::sym(k)),
    );
    t.instance_count = count;
    for k in keys {
        t.properties.insert(
            pg_model::sym(k),
            pg_model::PropertySpec {
                datatype: Some(DataType::Str),
                presence: Some(Presence::Mandatory),
            },
        );
    }
    s.push_node_type(t);
    s
}

/// Colliding node-type names whose key fingerprints share nothing: the
/// merge must not panic and must fall back to the pessimistic union —
/// one type per label set, every one-sided key demoted to OPTIONAL.
#[test]
fn colliding_labels_with_disjoint_keys_union_pessimistically() {
    let a = schema_with_person(3, &["ssn", "name"]);
    let b = schema_with_person(5, &["email", "handle"]);
    let merged = merge_schemas(&[a, b]).unwrap();
    assert_eq!(merged.node_types.len(), 1, "{merged}");
    let t = &merged.node_types[0];
    assert_eq!(t.instance_count, 8);
    for key in ["ssn", "name", "email", "handle"] {
        assert_eq!(
            t.properties[&pg_model::sym(key)].presence,
            Some(Presence::Optional),
            "{key} is absent from one side's instances, so it cannot stay mandatory"
        );
    }
}

/// Colliding edge-type names with incompatible endpoint fingerprints
/// stay distinct under endpoint-aware alignment (the default): a KNOWS
/// between Persons is not a KNOWS between Orgs.
#[test]
fn colliding_edge_labels_with_incompatible_endpoints_stay_distinct() {
    let mk = |node_label: &str| {
        let mut s = SchemaGraph::new();
        let t = pg_model::NodeType::new(pg_model::TypeId(0), LabelSet::single(node_label), []);
        let labels = t.labels.clone();
        let mut t = t;
        t.instance_count = 2;
        s.push_node_type(t);
        let mut e = pg_model::EdgeType::new(
            pg_model::TypeId(0),
            LabelSet::single("KNOWS"),
            [],
            labels.clone(),
            labels,
        );
        e.instance_count = 1;
        s.push_edge_type(e);
        s
    };
    let merged = merge_schemas(&[mk("Person"), mk("Org")]).unwrap();
    assert_eq!(merged.node_types.len(), 2, "{merged}");
    assert_eq!(
        merged.edge_types.len(),
        2,
        "incompatible endpoints must not unify: {merged}"
    );
}

/// A key universe past the 128-bit fast path: one node type carrying 130
/// distinct keys forces the `KeyBits` sorted-list fallback through
/// dedup, clustering, and merge — and the sharded hash still matches
/// single-node.
#[test]
fn overflow_key_universe_matches_single_node() {
    let mut g = PropertyGraph::new();
    for i in 0..40u64 {
        let mut n = Node::new(i, LabelSet::single("Wide"));
        for k in 0..129 {
            n = n.with_prop(&format!("k{k:03}"), k as i64);
        }
        if i % 2 == 0 {
            // One optional key keeps constraint inference non-trivial.
            n = n.with_prop("k129", true);
        }
        g.add_node(n).unwrap();
    }
    for i in 0..20u64 {
        g.add_node(
            Node::new(100 + i, LabelSet::single("Narrow"))
                .with_prop("nid", i as i64)
                .with_prop("note", "n"),
        )
        .unwrap();
    }
    for i in 0..40u64 {
        g.add_edge(
            Edge::new(
                i,
                pg_model::NodeId(i),
                pg_model::NodeId(100 + i % 20),
                LabelSet::single("LINKS"),
            )
            .with_prop("since", 2020i64),
        )
        .unwrap();
    }

    let cfg = merge_config(7, 1);
    let single = PgHive::new(cfg.clone()).discover_graph(&g);
    let wide = single
        .schema
        .node_types
        .iter()
        .find(|t| t.labels.contains("Wide"))
        .expect("Wide type discovered");
    assert_eq!(wide.properties.len(), 130, "all 130 keys survive");
    assert_eq!(
        wide.properties[&pg_model::sym("k129")].presence,
        Some(Presence::Optional)
    );

    for shards in [2, 4] {
        let sharded = discover_sharded(&g, shards, &cfg).unwrap();
        assert_eq!(
            content_hash_hex(&sharded.schema),
            content_hash_hex(&single.schema),
            "{shards} shards over a >128-key universe:\nsingle:\n{}\nsharded:\n{}",
            canonical_form(&single.schema),
            canonical_form(&sharded.schema)
        );
    }
}
