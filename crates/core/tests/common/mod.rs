//! Helpers shared by the cross-crate integration suites
//! (`equivalence.rs`, `crash_resume.rs`): quick configurations, dataset
//! twins, and canonical views of schemas and assignments.

#![allow(dead_code)] // each test target compiles its own copy

use pg_datasets::{generate, inject_noise, spec_by_name, NoiseConfig};
use pg_hive::{EmbeddingKind, HiveConfig, LshMethod};
use pg_model::{PropertyGraph, SchemaGraph};

/// A quick configuration (small embedding, few epochs) so each proptest
/// case stays cheap; post-processing stays on so constraints, data
/// types, and cardinalities are part of the bit-identity check.
pub fn quick_config(method: LshMethod, seed: u64, threads: usize) -> HiveConfig {
    let mut c = HiveConfig::default().with_seed(seed).with_threads(threads);
    c.method = method;
    if let EmbeddingKind::Word2Vec(ref mut w) = c.embedding {
        w.dim = 5;
        w.epochs = 2;
    }
    c
}

/// A small dataset twin, optionally noised, for equivalence cases.
pub fn case_graph(dataset: &str, seed: u64, noise: f64, label_availability: f64) -> PropertyGraph {
    let spec = spec_by_name(dataset).expect("known dataset").scaled(0.03);
    let (mut graph, _) = generate(&spec, seed);
    if noise > 0.0 || label_availability < 1.0 {
        inject_noise(
            &mut graph,
            NoiseConfig {
                property_removal: noise,
                label_availability,
                seed: seed ^ 0x5eed,
            },
        );
    }
    graph
}

/// Sorted (element id, type id) pairs — a canonical, order-insensitive
/// view of an assignment map.
pub fn sorted_node_assignment(r: &pg_hive::DiscoveryResult) -> Vec<(u64, u32)> {
    let mut v: Vec<(u64, u32)> = r
        .node_assignment()
        .into_iter()
        .map(|(n, t)| (n.0, t.0))
        .collect();
    v.sort_unstable();
    v
}

pub fn sorted_edge_assignment(r: &pg_hive::DiscoveryResult) -> Vec<(u64, u32)> {
    let mut v: Vec<(u64, u32)> = r
        .edge_assignment()
        .into_iter()
        .map(|(e, t)| (e.0, t.0))
        .collect();
    v.sort_unstable();
    v
}

/// Sorted node-type label-set strings — the schema-equivalence view
/// used by the §4.6 batched-vs-one-shot contract.
pub fn sorted_labels(s: &SchemaGraph) -> Vec<String> {
    let mut v: Vec<String> = s.node_types.iter().map(|t| t.labels.to_string()).collect();
    v.sort();
    v
}
