//! Cross-crate equivalence suite for the parallel discovery hot path.
//!
//! Two contracts are exercised over proptest-generated graphs (drawn
//! from the `pg-datasets` synthetic twins):
//!
//! 1. **Thread-count invariance** — `threads = 1` (exact sequential)
//!    and `threads = N` produce *bit-identical* `SchemaGraph`s and
//!    identical instance assignments. This is the determinism
//!    guarantee documented in DESIGN.md §"Parallel execution": every
//!    parallel stage shards by input position into a fixed number of
//!    chunks and reduces in chunk order, so the thread count can never
//!    leak into the output.
//!
//! 2. **Batched vs one-shot** (§4.6 monotone-merge) — feeding the same
//!    records through a `HiveSession` in k random batches yields a
//!    schema *equivalent* to the one-shot `discover_graph`: the same
//!    node-type label sets, the same number of edge types, full
//!    assignment coverage, and a monotone generalization chain across
//!    the intermediate schemas. (Batching is not expected to be
//!    bit-identical — cluster ids depend on arrival order — so this
//!    asserts the paper's equivalence relation, not `==`.)

use pg_hive::{HiveSession, LshMethod, PgHive};
use proptest::prelude::*;

mod common;
use common::{
    case_graph, quick_config, sorted_edge_assignment, sorted_labels, sorted_node_assignment,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Contract 1: the schema is bit-for-bit independent of the thread
    /// count, across datasets, seeds, LSH methods, and noise levels.
    #[test]
    fn schema_is_thread_count_invariant(
        dataset in prop::sample::select(vec!["POLE", "MB6", "ICIJ"]),
        seed in 0u64..1000,
        threads in 2usize..8,
        minhash in prop::bool::ANY,
        noisy in prop::bool::ANY,
    ) {
        let (noise, avail) = if noisy { (0.3, 0.7) } else { (0.0, 1.0) };
        let graph = case_graph(dataset, seed, noise, avail);
        let method = if minhash { LshMethod::MinHash } else { LshMethod::Elsh };

        let seq = PgHive::new(quick_config(method, seed, 1)).discover_graph(&graph);
        let par = PgHive::new(quick_config(method, seed, threads)).discover_graph(&graph);

        prop_assert_eq!(&seq.schema, &par.schema);
        prop_assert_eq!(sorted_node_assignment(&seq), sorted_node_assignment(&par));
        prop_assert_eq!(sorted_edge_assignment(&seq), sorted_edge_assignment(&par));
    }

    /// Contract 3: the structural-fingerprint dedup fast path is
    /// bit-identical to the naive per-record path — same `SchemaGraph`,
    /// same canonical content hash (what `pg-hive hash` prints), same
    /// assignments — across datasets, seeds, methods, noise, and thread
    /// counts. Dedup is purely a performance optimization.
    #[test]
    fn dedup_fast_path_is_bit_identical_to_naive(
        dataset in prop::sample::select(vec!["POLE", "MB6", "ICIJ"]),
        seed in 0u64..1000,
        threads in prop::sample::select(vec![1usize, 4]),
        minhash in prop::bool::ANY,
        noisy in prop::bool::ANY,
    ) {
        let (noise, avail) = if noisy { (0.3, 0.7) } else { (0.0, 1.0) };
        let graph = case_graph(dataset, seed, noise, avail);
        let method = if minhash { LshMethod::MinHash } else { LshMethod::Elsh };

        let cfg = quick_config(method, seed, threads);
        let fast = PgHive::new(cfg.clone()).discover_graph(&graph);
        let naive = PgHive::new(cfg.with_dedup(false)).discover_graph(&graph);

        prop_assert_eq!(&fast.schema, &naive.schema);
        prop_assert_eq!(
            pg_hive::content_hash(&fast.schema),
            pg_hive::content_hash(&naive.schema)
        );
        prop_assert_eq!(sorted_node_assignment(&fast), sorted_node_assignment(&naive));
        prop_assert_eq!(sorted_edge_assignment(&fast), sorted_edge_assignment(&naive));
        // Dedup actually engaged: structures repeat in these datasets.
        let t = &fast.timings[0];
        prop_assert!(t.node_dedup.distinct < t.node_dedup.records);
    }

    /// Contract 2: one-shot discovery and a session fed the same
    /// records in k random batches produce equivalent schemas, and the
    /// per-batch schema chain is monotone (§4.6).
    #[test]
    fn batched_session_is_equivalent_to_one_shot(
        dataset in prop::sample::select(vec!["POLE", "MB6", "ICIJ"]),
        seed in 0u64..1000,
        k in 2usize..6,
        threads in prop::sample::select(vec![1usize, 4]),
    ) {
        let graph = case_graph(dataset, seed, 0.0, 1.0);
        let cfg = quick_config(LshMethod::Elsh, seed, threads);

        let single = PgHive::new(cfg.clone()).discover_graph(&graph);

        let batches = pg_store::split_batches(&graph, k, seed ^ 0xba7c4);
        let mut session = HiveSession::new(cfg);
        let mut prev = session.schema().clone();
        for b in &batches {
            session.process_graph_batch(b);
            let cur = session.schema().clone();
            prop_assert!(
                prev.is_generalized_by(&cur),
                "batch broke the monotone chain"
            );
            prev = cur;
        }
        let inc = session.finish();

        prop_assert_eq!(sorted_labels(&inc.schema), sorted_labels(&single.schema));
        prop_assert_eq!(inc.schema.edge_types.len(), single.schema.edge_types.len());
        // Every record still gets a type, no matter how it arrived.
        prop_assert_eq!(inc.node_assignment().len(), graph.node_count());
        prop_assert_eq!(inc.edge_assignment().len(), graph.edge_count());
    }
}

/// Deterministic (non-proptest) sweep on the Figure 1 running example:
/// one sequential run pins the expectation, every other thread count
/// must reproduce it exactly — including the serialized JSON text.
#[test]
fn figure1_identical_across_thread_counts() {
    let graph = pg_hive::fixtures::figure1();
    let reference = PgHive::new(quick_config(LshMethod::Elsh, 42, 1)).discover_graph(&graph);
    let reference_json = pg_hive::serialize::to_json(&reference.schema);
    for threads in [0usize, 2, 4, 8] {
        let run = PgHive::new(quick_config(LshMethod::Elsh, 42, threads)).discover_graph(&graph);
        assert_eq!(reference.schema, run.schema, "threads={threads}");
        assert_eq!(
            sorted_node_assignment(&reference),
            sorted_node_assignment(&run),
            "threads={threads}"
        );
        assert_eq!(
            sorted_edge_assignment(&reference),
            sorted_edge_assignment(&run),
            "threads={threads}"
        );
        assert_eq!(
            reference_json,
            pg_hive::serialize::to_json(&run.schema),
            "threads={threads}"
        );
    }
}

/// Incremental sessions are also thread-count invariant batch by batch:
/// the same batch sequence at threads=1 and threads=4 yields identical
/// intermediate and final schemas.
#[test]
fn incremental_schemas_are_thread_count_invariant() {
    let graph = case_graph("POLE", 7, 0.2, 0.8);
    let batches = pg_store::split_batches(&graph, 4, 11);

    let mut seq = HiveSession::new(quick_config(LshMethod::Elsh, 7, 1));
    let mut par = HiveSession::new(quick_config(LshMethod::Elsh, 7, 4));
    for (i, b) in batches.iter().enumerate() {
        seq.process_graph_batch(b);
        par.process_graph_batch(b);
        assert_eq!(seq.schema(), par.schema(), "diverged at batch {i}");
    }
    let (seq, par) = (seq.finish(), par.finish());
    assert_eq!(seq.schema, par.schema);
    assert_eq!(sorted_node_assignment(&seq), sorted_node_assignment(&par));
}
