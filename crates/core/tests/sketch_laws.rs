//! Merge-law and stream-equivalence suite for the bounded-memory
//! sketch engine (`pg_hive::sketch`).
//!
//! The streaming mode's whole correctness argument rests on four
//! algebraic facts, each pinned property-based here:
//!
//! * **Union-truncate laws** — [`DistinctSketch`] and [`ValueSample`]
//!   merges are commutative, associative, and idempotent: the kept
//!   bottom-`k` set is a pure function of the union of the inserted
//!   item sets, so shard order, batch boundaries, and replays cannot
//!   change an estimate.
//! * **Estimator contract** — exact below saturation; within the
//!   documented `O(1/√k)` relative error above it.
//! * **Eviction safety** — a [`FingerprintStore`] never evicts a pinned
//!   entry at or above the frequency floor, no matter the churn, and
//!   eviction is a deterministic function of the entry set.
//! * **Stream-mode equivalence** — sketched shard states fold through
//!   `pg_hive::merge_states` to the same canonical schema as a
//!   single-node sketched run, at any thread count; checkpoints stay
//!   bounded while exact-mode checkpoints grow; and a checkpoint can
//!   never be resumed across accumulator modes.

use pg_hive::{
    content_hash_hex, merge_states, AccumMode, DistinctSketch, FingerprintStore, HiveConfig,
    HiveSession, ModeMismatch, SessionCheckpoint, StreamConfig, ValueSample,
};
use pg_model::{DataType, LabelSet, Node, PropertyValue};
use pg_store::split_batches;
use pg_synth::{random_schema, synthesize, SchemaParams, SynthSpec};
use proptest::prelude::*;

fn distinct_from(k: usize, seed: u64, items: &[u64]) -> DistinctSketch {
    let mut s = DistinctSketch::new(k, seed);
    for &x in items {
        s.insert(x);
    }
    s
}

fn sample_from(k: usize, seed: u64, values: &[(u64, bool)]) -> ValueSample {
    let mut s = ValueSample::new(k, seed);
    for &(x, stringy) in values {
        let value = if stringy {
            PropertyValue::from(format!("v{x}"))
        } else {
            PropertyValue::from(x as i64)
        };
        s.observe(&"p".into(), &value);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// merge(A, B) == merge(B, A), bit for bit.
    #[test]
    fn distinct_merge_is_commutative(
        a in prop::collection::vec(any::<u64>(), 0..200),
        b in prop::collection::vec(any::<u64>(), 0..200),
        k in prop_oneof![Just(16usize), Just(32), Just(64)],
        seed in any::<u64>(),
    ) {
        let (sa, sb) = (distinct_from(k, seed, &a), distinct_from(k, seed, &b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }

    /// merge(merge(A, B), C) == merge(A, merge(B, C)), and both equal
    /// the sketch of the concatenated stream.
    #[test]
    fn distinct_merge_is_associative_and_stream_equal(
        a in prop::collection::vec(any::<u64>(), 0..150),
        b in prop::collection::vec(any::<u64>(), 0..150),
        c in prop::collection::vec(any::<u64>(), 0..150),
        k in prop_oneof![Just(16usize), Just(64)],
        seed in any::<u64>(),
    ) {
        let (sa, sb, sc) = (
            distinct_from(k, seed, &a),
            distinct_from(k, seed, &b),
            distinct_from(k, seed, &c),
        );
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut right_inner = sb.clone();
        right_inner.merge(&sc);
        let mut right = sa.clone();
        right.merge(&right_inner);
        prop_assert_eq!(&left, &right);

        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&left, &distinct_from(k, seed, &all));
    }

    /// merge(A, A) == A: replaying a shard is a no-op.
    #[test]
    fn distinct_merge_is_idempotent(
        a in prop::collection::vec(any::<u64>(), 0..300),
        seed in any::<u64>(),
    ) {
        let s = distinct_from(32, seed, &a);
        let mut doubled = s.clone();
        doubled.merge(&s);
        prop_assert_eq!(doubled, s);
    }

    /// Below k distinct items the count is exact; above, within the
    /// documented relative error (3σ margin so the test never flakes).
    #[test]
    fn distinct_estimate_is_exact_then_bounded(
        n in 1usize..4000,
        seed in any::<u64>(),
    ) {
        let items: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E37_79B9).wrapping_add(seed)).collect();
        let exact = items.iter().collect::<std::collections::HashSet<_>>().len() as f64;
        let k = 256;
        let s = distinct_from(k, seed, &items);
        let est = s.estimate() as f64;
        if !s.is_saturated() {
            prop_assert_eq!(est, exact, "sub-saturation estimates are exact");
        } else {
            let rel = (est - exact).abs() / exact;
            prop_assert!(
                rel <= 3.0 / (k as f64).sqrt(),
                "relative error {rel:.4} beyond 3/√k for n={n}"
            );
        }
    }

    /// ValueSample shares the union-truncate laws, and its lattice join
    /// is therefore order-insensitive too.
    #[test]
    fn value_sample_merge_laws(
        a in prop::collection::vec((any::<u64>(), any::<bool>()), 0..150),
        b in prop::collection::vec((any::<u64>(), any::<bool>()), 0..150),
        seed in any::<u64>(),
    ) {
        let (sa, sb) = (sample_from(16, seed, &a), sample_from(16, seed, &b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);

        let mut doubled = ab.clone();
        doubled.merge(&ab);
        prop_assert_eq!(&doubled, &ab);

        let all: Vec<(u64, bool)> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(&ab, &sample_from(16, seed, &all));
        prop_assert_eq!(ab.join(), sample_from(16, seed, &all).join());
    }

    /// A pinned fingerprint at or above the frequency floor survives
    /// arbitrary churn past capacity.
    #[test]
    fn eviction_never_drops_pinned_above_floor(
        churn in prop::collection::vec(any::<u32>(), 1..400),
        floor in 1u64..8,
    ) {
        let capacity = 32;
        let mut store: FingerprintStore<u64, u32> = FingerprintStore::new(capacity, floor);
        // The protected entry: pinned, observed `floor` times.
        let protected = u64::MAX; // worst key-order tie-break position
        for _ in 0..floor {
            store.record(protected, 7, true);
        }
        for (i, v) in churn.iter().enumerate() {
            store.record(i as u64, *v, false);
            prop_assert!(
                store.get(&protected).is_some(),
                "pinned-above-floor entry evicted after {} inserts",
                i + 1
            );
        }
        prop_assert!(store.len() <= capacity, "capacity bound violated");
        prop_assert!(store.is_pinned(&protected));
        prop_assert!(store.freq(&protected) >= floor);
    }

    /// Store merge: commutative and idempotent (max-freq / or-pinned),
    /// with deterministic eviction.
    #[test]
    fn fingerprint_store_merge_laws(
        a in prop::collection::vec((0u64..64, any::<bool>()), 0..60),
        b in prop::collection::vec((0u64..64, any::<bool>()), 0..60),
    ) {
        let build = |items: &[(u64, bool)]| {
            let mut s: FingerprintStore<u64, u64> = FingerprintStore::new(48, 4);
            for &(k, pinned) in items {
                s.record(k, k, pinned);
            }
            s
        };
        let (sa, sb) = (build(&a), build(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        let snapshot = |s: &FingerprintStore<u64, u64>| -> Vec<(u64, u64, u64, bool)> {
            s.iter().map(|(k, e)| (*k, e.value, e.freq, e.pinned)).collect()
        };
        prop_assert_eq!(snapshot(&ab), snapshot(&ba));

        let mut doubled = ab.clone();
        doubled.merge(&ab);
        prop_assert_eq!(snapshot(&doubled), snapshot(&ab));
    }
}

/// A small clean synthetic workload for the end-to-end stream checks.
fn workload_graph(seed: u64) -> pg_model::PropertyGraph {
    let params = SchemaParams {
        node_types: 4,
        edge_types: 3,
        ..Default::default()
    };
    let spec = SynthSpec::new(random_schema(&params, seed)).sized_for(4_000);
    synthesize(&spec, seed).graph
}

fn workload(seed: u64) -> (Vec<pg_store::NodeRecord>, Vec<pg_store::EdgeRecord>) {
    pg_store::load(&workload_graph(seed))
}

fn stream_config(seed: u64, threads: usize) -> HiveConfig {
    HiveConfig {
        threads,
        stream: Some(StreamConfig::default()),
        ..HiveConfig::default()
    }
    .with_seed(seed)
}

/// Sketched discovery is deterministic across thread counts: the
/// sketches only ever see hashes, never clustering order.
#[test]
fn stream_discovery_is_thread_count_invariant() {
    for seed in [1u64, 8] {
        let (nodes, edges) = workload(seed);
        let hash_at = |threads: usize| {
            let mut session = HiveSession::new(stream_config(seed, threads));
            session.process_batch(&nodes, &edges);
            content_hash_hex(&session.finish().schema)
        };
        assert_eq!(hash_at(1), hash_at(4), "seed {seed}");
    }
}

/// Sketched shard states fold through `pg_hive::merge_states` to the
/// same canonical schema as a single sketched pass, in any shard order
/// — the distributed form of the union-truncate laws.
#[test]
fn sketched_shard_states_merge_like_a_single_pass() {
    for seed in [3u64, 12] {
        let graph = workload_graph(seed);
        let (nodes, edges) = pg_store::load(&graph);
        let config = stream_config(seed, 1);

        let mut single = HiveSession::new(config.clone());
        single.process_batch(&nodes, &edges);
        let single_hash = content_hash_hex(&single.finish().schema);

        for shards in [2usize, 4] {
            let mut states: Vec<_> = split_batches(&graph, shards, seed)
                .iter()
                .map(|b| {
                    let mut s = HiveSession::new(config.clone());
                    s.process_batch(&b.nodes, &b.edges);
                    s.finish().state
                })
                .collect();
            // Shard order must not matter.
            states.reverse();
            let merged = merge_states(&states, &config).expect("sketched states merge");
            assert_eq!(
                content_hash_hex(&merged.schema),
                single_hash,
                "seed {seed}, {shards} shards"
            );
        }
    }
}

/// The streaming claim in miniature: a sketched checkpoint stops
/// growing once its sketches saturate, while the exact checkpoint keeps
/// absorbing every new member id and value.
#[test]
fn sketched_checkpoints_stay_bounded_while_exact_ones_grow() {
    let ckpt_bytes = |stream: Option<StreamConfig>, batches: u64| -> usize {
        let config = HiveConfig {
            stream,
            ..HiveConfig::default()
        }
        .with_seed(9);
        let mut session = HiveSession::new(config);
        for b in 0..batches {
            // Every batch brings entirely fresh ids and fresh values.
            let nodes: Vec<Node> = (0..500u64)
                .map(|i| {
                    let id = b * 10_000 + i;
                    Node::new(id, LabelSet::single("T"))
                        .with_prop("x", id as i64)
                        .with_prop("name", format!("n{id}"))
                })
                .collect();
            session.process_batch(&nodes, &[]);
        }
        serde_json::to_string(&session.checkpoint())
            .expect("checkpoint serializes")
            .len()
    };

    let sketch_small = ckpt_bytes(Some(StreamConfig::default()), 4);
    let sketch_large = ckpt_bytes(Some(StreamConfig::default()), 40);
    let exact_small = ckpt_bytes(None, 4);
    let exact_large = ckpt_bytes(None, 40);

    assert!(
        (sketch_large as f64) < (sketch_small as f64) * 1.10,
        "sketched checkpoint grew with stream length: {sketch_small} -> {sketch_large} bytes"
    );
    assert!(
        (exact_large as f64) > (exact_small as f64) * 2.0,
        "exact checkpoint unexpectedly bounded: {exact_small} -> {exact_large} bytes \
         (the contrast baseline for this test is gone)"
    );
}

/// Cross-mode resume is a typed error in both directions, and the mode
/// marker survives a JSON round-trip of the checkpoint envelope.
#[test]
fn cross_mode_resume_is_rejected() {
    let (nodes, edges) = workload(5);
    let exact_config = HiveConfig::default().with_seed(5);
    let sketch_config = stream_config(5, 1);

    let mut exact = HiveSession::new(exact_config.clone());
    exact.process_batch(&nodes, &edges);
    let exact_ckpt = exact.checkpoint();
    assert_eq!(exact_ckpt.accum_mode(), AccumMode::Exact);

    let mut sketched = HiveSession::new(sketch_config.clone());
    sketched.process_batch(&nodes, &edges);
    let sketch_ckpt = sketched.checkpoint();
    assert_eq!(sketch_ckpt.accum_mode(), AccumMode::Sketch);

    // Round-trip through JSON: the mode marker must survive.
    let json = serde_json::to_string(&sketch_ckpt).unwrap();
    let revived: SessionCheckpoint = serde_json::from_str(&json).unwrap();
    assert_eq!(revived.accum_mode(), AccumMode::Sketch);

    // Exact checkpoint into a sketched session: refused.
    let err = match HiveSession::restore(sketch_config.clone(), exact_ckpt) {
        Err(e) => e,
        Ok(_) => panic!("cross-mode restore (exact -> sketch) must fail"),
    };
    assert_eq!(
        err,
        ModeMismatch {
            checkpoint: AccumMode::Exact,
            session: AccumMode::Sketch,
        }
    );

    // Sketched checkpoint into an exact session: refused.
    let err = match HiveSession::restore(exact_config, revived) {
        Err(e) => e,
        Ok(_) => panic!("cross-mode restore (sketch -> exact) must fail"),
    };
    assert_eq!(err.checkpoint, AccumMode::Sketch);
    assert_eq!(err.session, AccumMode::Exact);

    // Same mode: restored and able to continue.
    let restored = HiveSession::restore(sketch_config, sketch_ckpt);
    assert!(restored.is_ok(), "same-mode restore must succeed");
    let mut restored = restored.unwrap();
    restored.process_batch(&nodes, &edges);
}

/// Datatype inference through the reservoir agrees with exact
/// inference on homogeneous data, and the joined type is stable under
/// re-observation (saturated reservoirs are fixed points).
#[test]
fn reservoir_datatype_inference_matches_exact_on_clean_data() {
    let mut sample = ValueSample::new(16, 77);
    for i in 0..10_000u64 {
        sample.observe(&"x".into(), &PropertyValue::from(i as i64));
    }
    assert_eq!(sample.join(), Some(DataType::Int));
    let before = sample.clone();
    for i in 0..10_000u64 {
        sample.observe(&"x".into(), &PropertyValue::from(i as i64));
    }
    assert_eq!(sample, before, "re-observation is a no-op");
}
