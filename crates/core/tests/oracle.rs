//! The correctness oracle (metamorphic/differential test layer).
//!
//! `pg-synth` generates property graphs *from* declared ground-truth
//! schemas, so discovery and validation can be checked against exact
//! answers instead of statistical expectations:
//!
//! * **Round trip** — a noise-free generated graph must score node and
//!   edge F1\* = 1.0 (pg-eval's majority F1\* against the generating
//!   assignment) and STRICT-validate against the declared schema with
//!   zero violations, at every thread-count setting.
//! * **Metamorphic invariance** — permuting element ids (and insertion
//!   order) or injectively renaming labels must leave the discovered
//!   schema unchanged (modulo the renaming).
//! * **Bounded degradation** — turning the noise knobs up degrades F1\*
//!   roughly monotonically, and never below a sanity floor.
//!
//! Failures persist their generator seed under `target/oracle-failures/`
//! so CI can upload them as artifacts; each file holds a one-line CLI
//! repro (`pg-hive synth … --seed N` is bit-deterministic).

use pg_eval::oracle::{noise_curve, run_oracle};
use pg_hive::diff;
use pg_hive::{LshMethod, PgHive};
use pg_synth::{
    permute_ids, random_schema, rename_graph_labels, rename_schema_labels, synthesize,
    NoiseProfile, SchemaParams, SynthSpec,
};
use proptest::prelude::*;

/// The thread counts the oracle exercises. Honors the CI matrix's
/// RAYON_NUM_THREADS when set (so `threads ∈ {1, 4}` runs as two jobs);
/// locally, both settings run in one pass.
fn thread_settings() -> Vec<usize> {
    match std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n > 0 => vec![n],
        _ => vec![1, 4],
    }
}

/// Persist a failing case's seed + repro line for CI artifact upload.
fn dump_failure(seed: u64, params: &SchemaParams, what: &str) {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"))
        .parent()
        .map(|t| t.join("oracle-failures"))
        .unwrap_or_else(|| "target/oracle-failures".into());
    let _ = std::fs::create_dir_all(&dir);
    let _ = std::fs::write(
        dir.join(format!("seed-{seed}.txt")),
        format!(
            "oracle failure: {what}\nseed: {seed}\nparams: {params:?}\n\
             repro: pg-hive synth --out-dir /tmp/oracle-{seed} --types {} --seed {seed}\n",
            params.node_types
        ),
    );
}

fn params_strategy() -> impl Strategy<Value = SchemaParams> {
    (2usize..6, 0usize..5, 0usize..4, 0.0f64..0.6, 0.0f64..0.8).prop_map(
        |(node_types, edge_types, max_extra_props, multi_label_overlap, optional_rate)| {
            SchemaParams {
                node_types,
                edge_types,
                max_extra_props,
                multi_label_overlap,
                optional_rate,
            }
        },
    )
}

/// The evaluation discovery configuration the oracle runs everywhere.
fn discover(graph: &pg_model::PropertyGraph, seed: u64, threads: usize) -> pg_model::SchemaGraph {
    let cfg = pg_eval::runner::eval_hive_config(LshMethod::Elsh, seed).with_threads(threads);
    PgHive::new(cfg).discover_graph(graph).schema
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Noise-free round trip: F1* = 1.0 and zero violations, for ≥ 20
    /// generated schemas, at every thread setting.
    #[test]
    fn clean_round_trip_is_perfect(params in params_strategy(), seed in 0u64..1_000_000) {
        let spec = SynthSpec::new(random_schema(&params, seed));
        for threads in thread_settings() {
            let r = run_oracle(&spec, seed, threads);
            if r.node_f1.macro_f1 != 1.0
                || r.edge_f1.is_some_and(|f| f.macro_f1 != 1.0)
                || r.strict_violations != 0
            {
                dump_failure(seed, &params, "clean round trip not perfect");
            }
            prop_assert_eq!(r.node_f1.macro_f1, 1.0, "node F1 at {} threads", threads);
            if let Some(ef1) = r.edge_f1 {
                prop_assert_eq!(ef1.macro_f1, 1.0, "edge F1 at {} threads", threads);
            }
            prop_assert_eq!(r.strict_violations, 0, "STRICT violations at {} threads", threads);
            prop_assert_eq!(r.loose_violations, 0, "LOOSE violations at {} threads", threads);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Permuting ids and insertion order changes nothing the schema can
    /// see: discovery output is structurally identical, and scoring the
    /// permuted clustering against the remapped truth stays perfect.
    #[test]
    fn discovery_is_invariant_under_id_permutation(
        params in params_strategy(),
        seed in 0u64..1_000_000,
        perm_seed in 0u64..1_000_000,
    ) {
        let out = synthesize(&SynthSpec::new(random_schema(&params, seed)), seed);
        let (permuted, node_map, edge_map) = permute_ids(&out.graph, perm_seed);
        let truth = out.truth.remapped(&node_map, &edge_map);

        let original = discover(&out.graph, seed, 1);
        let shuffled = discover(&permuted, seed, 1);
        let d = diff(&original, &shuffled);
        if !d.is_empty() {
            dump_failure(seed, &params, "id permutation changed the schema");
        }
        prop_assert!(d.is_empty(), "id permutation changed the schema:\n{}", d);

        let cfg = pg_eval::runner::eval_hive_config(LshMethod::Elsh, seed);
        let result = PgHive::new(cfg).discover_graph(&permuted);
        let clusters: Vec<Vec<pg_model::NodeId>> = result.node_members().into_values().collect();
        let f1 = pg_eval::majority_f1(&clusters, &truth.node_type);
        prop_assert_eq!(f1.macro_f1, 1.0, "remapped truth no longer matches");
    }

    /// Discovery commutes with injective label renaming: discovering a
    /// renamed graph equals renaming the discovered schema.
    #[test]
    fn discovery_commutes_with_label_renaming(
        params in params_strategy(),
        seed in 0u64..1_000_000,
    ) {
        let out = synthesize(&SynthSpec::new(random_schema(&params, seed)), seed);
        let rename = |l: &str| format!("NS_{l}");

        let direct = discover(&rename_graph_labels(&out.graph, &rename), seed, 1);
        let expected = rename_schema_labels(&discover(&out.graph, seed, 1), &rename);
        let d = diff(&expected, &direct);
        if !d.is_empty() {
            dump_failure(seed, &params, "label renaming did not commute");
        }
        prop_assert!(d.is_empty(), "renaming did not commute:\n{}", d);
    }
}

/// Monotone-ish degradation: as the shared noise level x rises, node
/// F1* never *recovers* past small jitter, starts at exactly 1.0, and
/// stays above a sanity floor (types remain identifiable from their
/// property keys even with many labels stripped).
#[test]
fn noise_degrades_f1_boundedly() {
    let levels = [0.0, 0.15, 0.3, 0.45];
    let schema = random_schema(&SchemaParams::default(), 42);
    let curve = noise_curve(&schema, &levels, 42, 1);

    assert_eq!(curve[0].node_f1, 1.0, "clean baseline must be perfect");
    assert_eq!(curve[0].strict_violations, 0);
    for w in curve.windows(2) {
        assert!(
            w[1].node_f1 <= w[0].node_f1 + 0.05,
            "F1 recovered as noise rose: {} -> {} (noise {} -> {})",
            w[0].node_f1,
            w[1].node_f1,
            w[0].noise,
            w[1].noise
        );
    }
    let last = curve.last().unwrap();
    assert!(
        last.node_f1 >= 0.25,
        "F1 collapsed below the sanity floor at noise {}: {}",
        last.noise,
        last.node_f1
    );
}

/// The generator is bit-deterministic: identical spec + seed produce an
/// identical serialized graph, and discovery on that graph is identical
/// at 1 and 4 threads (the schema can never depend on the thread count).
#[test]
fn generator_and_discovery_are_deterministic_across_threads() {
    let params = SchemaParams::default();
    let spec = SynthSpec::new(random_schema(&params, 7)).with_noise(NoiseProfile {
        unlabeled_fraction: 0.2,
        missing_optional_rate: 0.1,
        label_noise_rate: 0.05,
        missing_mandatory_rate: 0.1,
    });
    let a = synthesize(&spec, 7);
    let b = synthesize(&spec, 7);
    assert_eq!(
        pg_store::jsonl::to_jsonl(&a.graph),
        pg_store::jsonl::to_jsonl(&b.graph),
        "two identical synthesize calls diverged"
    );

    let seq = discover(&a.graph, 7, 1);
    let par = discover(&a.graph, 7, 4);
    assert_eq!(seq, par, "thread count leaked into the discovered schema");
}
