//! Property-based conformance tests for `validate` driven by `pg-synth`.
//!
//! The generator emits graphs that conform to their declared schema *by
//! construction*, which turns validation testing into an exact science:
//! a clean generated graph must produce **zero** violations in both
//! modes, and a graph with exactly one conformance-breaking mutation
//! must produce **exactly** the violation that mutation implies — the
//! right variant, on the right element, and nothing else.

use pg_hive::{validate, SchemaMode, Violation};
use pg_model::{LabelSet, NodeId, Presence, PropertyValue};
use pg_synth::{edge_instance, edge_type_name, random_schema, synthesize, SchemaParams, SynthSpec};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::{HashMap, HashSet};

fn params_strategy() -> impl Strategy<Value = SchemaParams> {
    (2usize..6, 0usize..5, 0usize..4, 0.0f64..0.6, 0.0f64..0.8).prop_map(
        |(node_types, edge_types, max_extra_props, multi_label_overlap, optional_rate)| {
            SchemaParams {
                node_types,
                edge_types,
                max_extra_props,
                multi_label_overlap,
                optional_rate,
            }
        },
    )
}

/// The unique mandatory key every generated node type declares.
fn mandatory_key(t: &pg_model::NodeType) -> pg_model::Symbol {
    t.properties
        .iter()
        .find(|(_, spec)| spec.presence == Some(Presence::Mandatory))
        .map(|(k, _)| k.clone())
        .expect("every generated node type has a mandatory id property")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Untouched generated graphs are conformant in both modes.
    #[test]
    fn conforming_graph_has_zero_violations(params in params_strategy(), seed in 0u64..1_000_000) {
        let spec = SynthSpec::new(random_schema(&params, seed));
        let out = synthesize(&spec, seed);
        for mode in [SchemaMode::Loose, SchemaMode::Strict] {
            let report = validate(&out.graph, &spec.schema, mode);
            prop_assert!(
                report.is_valid(),
                "clean graph not conformant under {:?}: {:?}",
                mode,
                report.violations
            );
        }
    }

    /// Dropping one mandatory property from one node yields exactly one
    /// `MissingMandatory` on that node with that key — STRICT only.
    #[test]
    fn dropping_mandatory_property_is_the_only_violation(
        params in params_strategy(),
        seed in 0u64..1_000_000,
        pick in 0usize..1_000,
    ) {
        let spec = SynthSpec::new(random_schema(&params, seed));
        let mut out = synthesize(&spec, seed);

        let t = &spec.schema.node_types[pick % spec.schema.node_types.len()];
        let key = mandatory_key(t);
        let victim = out.graph.nodes().find(|n| n.props.contains_key(&key)).unwrap().id;
        for node in out.graph.nodes_mut() {
            if node.id == victim {
                node.props.remove(&key);
            }
        }

        let strict = validate(&out.graph, &spec.schema, SchemaMode::Strict);
        prop_assert_eq!(
            strict.violations,
            vec![Violation::MissingMandatory { node: victim, type_id: t.id, key }],
            "expected exactly one MissingMandatory"
        );
        // LOOSE ignores presence constraints entirely.
        prop_assert!(validate(&out.graph, &spec.schema, SchemaMode::Loose).is_valid());
    }

    /// Retyping one value (the Int id becomes a Str) yields exactly one
    /// `DatatypeMismatch` with the declared/observed pair.
    #[test]
    fn retyping_a_value_is_the_only_violation(
        params in params_strategy(),
        seed in 0u64..1_000_000,
        pick in 0usize..1_000,
    ) {
        let spec = SynthSpec::new(random_schema(&params, seed));
        let mut out = synthesize(&spec, seed);

        let t = &spec.schema.node_types[pick % spec.schema.node_types.len()];
        // The id property: mandatory AND Int-declared, so a Str value is
        // not admitted (retyping a Str-declared property would be legal —
        // Str is the lattice top).
        let key = t
            .properties
            .iter()
            .find(|(_, spec)| {
                spec.presence == Some(Presence::Mandatory)
                    && spec.datatype == Some(pg_model::DataType::Int)
            })
            .map(|(k, _)| k.clone())
            .expect("every generated node type has a mandatory Int id");
        let victim = out.graph.nodes().find(|n| n.props.contains_key(&key)).unwrap().id;
        for node in out.graph.nodes_mut() {
            if node.id == victim {
                node.props.insert(key.clone(), PropertyValue::Str("oops".into()));
            }
        }

        let strict = validate(&out.graph, &spec.schema, SchemaMode::Strict);
        prop_assert_eq!(
            strict.violations,
            vec![Violation::DatatypeMismatch {
                element: victim.0,
                key,
                declared: pg_model::DataType::Int,
                observed: pg_model::DataType::Str,
            }],
            "expected exactly one DatatypeMismatch"
        );
    }

    /// Adding conforming edges from one source until its distinct
    /// out-neighbor count exceeds the declared bound yields exactly one
    /// `CardinalityExceeded` on the out side for that source.
    #[test]
    fn exceeding_out_cardinality_is_the_only_violation(
        params in (2usize..6, 1usize..5, 0usize..4).prop_map(|(n, e, p)| SchemaParams {
            node_types: n,
            edge_types: e,
            max_extra_props: p,
            ..SchemaParams::default()
        }),
        seed in 0u64..1_000_000,
        pick in 0usize..1_000,
    ) {
        let mut spec = SynthSpec::new(random_schema(&params, seed));
        // A sparse wiring leaves plenty of spare in-capacity for the
        // extra edges the mutation adds.
        spec.nodes_per_type = 40;
        spec.edges_per_type = 8;
        let mut out = synthesize(&spec, seed);

        let bounded: Vec<_> = spec
            .schema
            .edge_types
            .iter()
            .filter(|et| et.cardinality.is_some())
            .collect();
        prop_assume!(!bounded.is_empty());
        let et = bounded[pick % bounded.len()];
        let card = et.cardinality.unwrap();
        let name = edge_type_name(et);

        // Current distinct out-neighbors and in-sources among this
        // type's edges (clean graphs match edges to their generator).
        let mut out_nb: HashMap<NodeId, HashSet<NodeId>> = HashMap::new();
        let mut in_src: HashMap<NodeId, HashSet<NodeId>> = HashMap::new();
        for e in out.graph.edges() {
            if out.truth.edge_type.get(&e.id).map(String::as_str) == Some(name.as_str()) {
                out_nb.entry(e.src).or_default().insert(e.tgt);
                in_src.entry(e.tgt).or_default().insert(e.src);
            }
        }

        let src_type = spec.schema.node_types.iter().find(|t| t.labels == et.src_labels).unwrap();
        let tgt_type = spec.schema.node_types.iter().find(|t| t.labels == et.tgt_labels).unwrap();
        let sources = out.truth.nodes_of(&pg_synth::node_type_name(src_type));
        let targets = out.truth.nodes_of(&pg_synth::node_type_name(tgt_type));

        let s = sources[pick % sources.len()];
        let have = out_nb.get(&s).map_or(0, HashSet::len) as u64;
        let need = (card.max_out + 1 - have) as usize;
        let candidates: Vec<NodeId> = targets
            .iter()
            .copied()
            .filter(|t| {
                *t != s
                    && !out_nb.get(&s).is_some_and(|nb| nb.contains(t))
                    && (in_src.get(t).map_or(0, HashSet::len) as u64) < card.max_in
            })
            .take(need)
            .collect();
        prop_assume!(candidates.len() == need);

        let first_free = out.graph.edges().map(|e| e.id.0).max().map_or(0, |m| m + 1);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5ca1e);
        for (next_id, t) in (first_free..).zip(candidates) {
            let edge = edge_instance(next_id, et, s, t, &spec.values, &mut rng);
            out.graph.add_edge(edge).unwrap();
        }

        let strict = validate(&out.graph, &spec.schema, SchemaMode::Strict);
        prop_assert_eq!(
            strict.violations,
            vec![Violation::CardinalityExceeded {
                type_id: et.id,
                node: s,
                out_side: true,
                observed: card.max_out + 1,
                bound: card.max_out,
            }],
            "expected exactly one out-side CardinalityExceeded"
        );
        // Cardinality is a STRICT-only constraint.
        prop_assert!(validate(&out.graph, &spec.schema, SchemaMode::Loose).is_valid());
    }

    /// Relabeling one isolated node to a label no type declares yields
    /// exactly one `NodeHasNoType` — in both modes, since typing is the
    /// one constraint LOOSE also enforces.
    #[test]
    fn foreign_label_is_the_only_violation(
        params in (2usize..6, 0usize..4).prop_map(|(n, p)| SchemaParams {
            node_types: n,
            edge_types: 0, // isolated nodes: no endpoint checks in play
            max_extra_props: p,
            ..SchemaParams::default()
        }),
        seed in 0u64..1_000_000,
        pick in 0usize..1_000,
    ) {
        let spec = SynthSpec::new(random_schema(&params, seed));
        let mut out = synthesize(&spec, seed);

        let ids: Vec<NodeId> = out.graph.nodes().map(|n| n.id).collect();
        let victim = ids[pick % ids.len()];
        for node in out.graph.nodes_mut() {
            if node.id == victim {
                node.labels = LabelSet::single("ZZ_Undeclared");
            }
        }

        for mode in [SchemaMode::Loose, SchemaMode::Strict] {
            let report = validate(&out.graph, &spec.schema, mode);
            prop_assert_eq!(
                report.violations.clone(),
                vec![Violation::NodeHasNoType { node: victim }],
                "expected exactly one NodeHasNoType under {:?}",
                mode
            );
        }
    }

    /// Merely *stripping* labels is not a violation: node/type matching
    /// uses subset semantics (∅ ⊆ anything), and the generated types
    /// stay identifiable through their unique mandatory property keys.
    #[test]
    fn stripping_labels_alone_stays_conformant(
        params in params_strategy(),
        seed in 0u64..1_000_000,
        pick in 0usize..1_000,
    ) {
        let spec = SynthSpec::new(random_schema(&params, seed));
        let mut out = synthesize(&spec, seed);

        let ids: Vec<NodeId> = out.graph.nodes().map(|n| n.id).collect();
        let victim = ids[pick % ids.len()];
        for node in out.graph.nodes_mut() {
            if node.id == victim {
                node.labels = LabelSet::empty();
            }
        }

        let report = validate(&out.graph, &spec.schema, SchemaMode::Strict);
        prop_assert!(
            report.is_valid(),
            "label stripping should not violate subset-semantics typing: {:?}",
            report.violations
        );
    }
}
