//! Golden-snapshot test for the Figure 1 running example.
//!
//! Discovers the schema of `pg_hive::fixtures::figure1()` with a
//! pinned configuration and compares the serialized JSON byte-for-byte
//! against a checked-in fixture. Any change to featurization, LSH,
//! type extraction, post-processing, or serialization that alters the
//! output — intentionally or not — shows up as a readable JSON diff.
//!
//! To update the snapshot after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p pg-hive --test figure1_golden
//! ```
//!
//! then review the fixture diff like any other code change.

use pg_hive::{serialize, EmbeddingKind, HiveConfig, PgHive};
use pg_model::SchemaGraph;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/figure1_schema.json"
);

/// The pinned configuration: quick Word2Vec (dim 5, epochs 2), seed 42,
/// post-processing on so constraints/datatypes/cardinalities are part
/// of the snapshot. Changing any of these invalidates the fixture.
fn pinned_config() -> HiveConfig {
    let mut c = HiveConfig::default().with_seed(42);
    if let EmbeddingKind::Word2Vec(ref mut w) = c.embedding {
        w.dim = 5;
        w.epochs = 2;
    }
    c
}

#[test]
fn figure1_schema_matches_golden_snapshot() {
    let result = PgHive::new(pinned_config()).discover_graph(&pg_hive::fixtures::figure1());
    let json = serialize::to_json(&result.schema);

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &json).expect("writing golden fixture");
        return;
    }

    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("missing fixture; regenerate with UPDATE_GOLDEN=1");
    assert_eq!(
        json.trim_end(),
        golden.trim_end(),
        "discovered schema diverged from tests/fixtures/figure1_schema.json; \
         if the change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_snapshot_round_trips_through_serde() {
    let result = PgHive::new(pinned_config()).discover_graph(&pg_hive::fixtures::figure1());
    let json = serialize::to_json(&result.schema);
    let parsed: SchemaGraph = serde_json::from_str(&json).expect("fixture JSON deserializes");
    assert_eq!(parsed, result.schema, "serialize → deserialize → eq");

    // The checked-in fixture itself must also parse back to the same
    // schema (guards against hand-edits that break the format).
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("missing fixture; regenerate with UPDATE_GOLDEN=1");
    let golden_schema: SchemaGraph =
        serde_json::from_str(&golden).expect("checked-in fixture deserializes");
    assert_eq!(golden_schema, result.schema);
}
