//! Property-based tests for schema serialization: arbitrary schemas must
//! survive JSON round-trips, and every serializer must be total.

use pg_hive::{serialize, SchemaMode};
use pg_model::{
    Cardinality, DataType, EdgeType, LabelSet, NodeType, Presence, PropertySpec, SchemaGraph,
    TypeId,
};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = PropertySpec> {
    (
        prop::option::of(prop::sample::select(vec![
            DataType::Int,
            DataType::Float,
            DataType::Bool,
            DataType::Date,
            DataType::DateTime,
            DataType::Str,
        ])),
        prop::option::of(prop::bool::ANY.prop_map(|m| {
            if m {
                Presence::Mandatory
            } else {
                Presence::Optional
            }
        })),
    )
        .prop_map(|(datatype, presence)| PropertySpec { datatype, presence })
}

fn arb_schema() -> impl Strategy<Value = SchemaGraph> {
    let node_type = (
        prop::collection::vec("[A-Z][a-z]{0,6}", 0..3),
        prop::collection::btree_map("[a-z_]{1,8}", arb_spec(), 0..5),
    );
    let edge_type = (
        prop::collection::vec("[A-Z_]{1,8}", 0..2),
        prop::collection::btree_map("[a-z_]{1,8}", arb_spec(), 0..3),
        prop::collection::vec("[A-Z][a-z]{0,6}", 0..2),
        prop::collection::vec("[A-Z][a-z]{0,6}", 0..2),
        prop::option::of((1u64..10, 1u64..10)),
    );
    (
        prop::collection::vec(node_type, 0..5),
        prop::collection::vec(edge_type, 0..5),
    )
        .prop_map(|(nodes, edges)| {
            let mut s = SchemaGraph::new();
            for (labels, props) in nodes {
                let labels = LabelSet::from_iter(labels);
                let mut t = NodeType::new(TypeId(0), labels.clone(), std::iter::empty());
                t.is_abstract = labels.is_empty();
                for (k, spec) in props {
                    t.properties.insert(pg_model::sym(&k), spec);
                }
                s.push_node_type(t);
            }
            for (labels, props, src, tgt, card) in edges {
                let mut t = EdgeType::new(
                    TypeId(0),
                    LabelSet::from_iter(labels),
                    std::iter::empty(),
                    LabelSet::from_iter(src),
                    LabelSet::from_iter(tgt),
                );
                for (k, spec) in props {
                    t.properties.insert(pg_model::sym(&k), spec);
                }
                t.cardinality = card.map(|(max_out, max_in)| Cardinality { max_out, max_in });
                s.push_edge_type(t);
            }
            s
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn json_round_trips_any_schema(schema in arb_schema()) {
        let json = serialize::to_json(&schema);
        let back: SchemaGraph = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(schema, back);
    }

    #[test]
    fn pg_schema_serializers_are_total_and_cover_types(schema in arb_schema()) {
        for mode in [SchemaMode::Strict, SchemaMode::Loose] {
            let text = serialize::to_pg_schema(&schema, mode);
            prop_assert!(text.starts_with("CREATE GRAPH TYPE"));
            for t in &schema.node_types {
                for l in t.labels.iter() {
                    prop_assert!(text.contains(l.as_ref()), "{mode:?} missing {l}");
                }
            }
        }
    }

    #[test]
    fn xsd_is_total_and_balanced(schema in arb_schema()) {
        let xsd = serialize::to_xsd(&schema);
        prop_assert!(xsd.starts_with("<?xml"));
        prop_assert!(xsd.ends_with("</xs:schema>\n"));
        // Every complexType is closed.
        prop_assert_eq!(
            xsd.matches("<xs:complexType>").count(),
            xsd.matches("</xs:complexType>").count()
        );
        prop_assert_eq!(
            xsd.matches("<xs:sequence>").count(),
            xsd.matches("</xs:sequence>").count()
        );
    }
}
