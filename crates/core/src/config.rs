//! Pipeline configuration.

use pg_embed::Word2VecConfig;

/// Which LSH family clusters the feature representation (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LshMethod {
    /// Euclidean (p-stable, bucketed random projections) LSH over the
    /// hybrid numeric vectors. The default.
    Elsh,
    /// MinHash LSH over set representations (label tokens + property
    /// keys).
    MinHash,
}

/// LSH parameter selection strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LshParams {
    /// The paper's adaptive strategy: sample the data, derive
    /// `b = 1.2·μ·α` and `T` from the distance scale, size, and label
    /// count.
    Adaptive,
    /// Explicit user-supplied parameters (`bucket_length` is ignored by
    /// MinHash, which only takes `tables`).
    Manual {
        /// ELSH bucket length `b`.
        bucket_length: f64,
        /// Number of hash tables `T`.
        tables: usize,
    },
}

/// Which label embedder backs the feature vectors (§4.1).
#[derive(Debug, Clone)]
pub enum EmbeddingKind {
    /// Word2Vec skip-gram trained on the batch's label corpus — the
    /// paper's choice.
    Word2Vec(Word2VecConfig),
    /// Deterministic hashed unit vectors (training-free ablation).
    Hashed {
        /// Embedding dimensionality.
        dim: usize,
    },
}

/// How unlabeled clusters are compared against candidate types during
/// merging (Algorithm 2's similarity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergeSimilarity {
    /// The paper's set Jaccard over property *keys* (§4.3).
    #[default]
    BinaryJaccard,
    /// Frequency-weighted Jaccard: keys are weighted by the fraction of
    /// instances carrying them, `Σ min(f₁,f₂) / Σ max(f₁,f₂)`. More
    /// robust when data is extremely sparse — heavy property removal
    /// shrinks binary key sets erratically, while presence *rates*
    /// degrade smoothly. Addresses the paper's future-work item (a)
    /// ("no label information … and data is extremely sparse", §6).
    WeightedJaccard,
}

/// Sampled data-type inference (§4.4): look at a fraction of the values
/// of each property ("e.g., 10 % of the properties, and at least 1000"),
/// falling back to the string default when values disagree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatatypeSampling {
    /// Fraction of values to sample.
    pub fraction: f64,
    /// Minimum sample size (caps at the number of observed values).
    pub min_values: usize,
}

impl Default for DatatypeSampling {
    fn default() -> Self {
        DatatypeSampling {
            fraction: 0.1,
            min_values: 1000,
        }
    }
}

/// Streaming-mode knobs: sketch sizes and fingerprint-store bounds for
/// the bounded-memory session (see [`crate::sketch`] and DESIGN.md
/// §3i). All sketches are seeded from the pipeline seed, so two
/// sessions with the same config and input produce bit-identical
/// sketch state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// KMV sketch size `k` for distinct counts (members, endpoint
    /// pairs, sources, targets). Relative estimation error ≈ `1/√k`
    /// once a sketch saturates; memory is `8k` bytes per counter.
    pub distinct_k: usize,
    /// Bottom-`k` value-sample size per property for sampled data-type
    /// inference.
    pub sample_k: usize,
    /// Fingerprint-store capacity bounding the memoization caches:
    /// at most this many node patterns and this many edge patterns are
    /// retained, with lowest-frequency eviction beyond it.
    pub fingerprint_capacity: usize,
    /// Pinned (type-defining) fingerprints seen at least this often are
    /// never evicted.
    pub frequency_floor: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            distinct_k: 1024,
            sample_k: 256,
            fingerprint_capacity: 4096,
            frequency_floor: 16,
        }
    }
}

/// Full PG-HIVE configuration (Algorithm 1's inputs plus engineering
/// knobs). `Default` reproduces the paper's settings: adaptive ELSH,
/// Word2Vec embeddings, θ = 0.9, post-processing on, full-scan data
/// types.
#[derive(Debug, Clone)]
pub struct HiveConfig {
    /// Clustering family.
    pub method: LshMethod,
    /// Parameters for node clustering.
    pub node_params: LshParams,
    /// Parameters for edge clustering.
    pub edge_params: LshParams,
    /// Label embedder.
    pub embedding: EmbeddingKind,
    /// Jaccard similarity threshold θ for merging unlabeled clusters
    /// (Algorithm 2). The paper sets 0.9: high to avoid over-merging.
    pub theta: f64,
    /// Which similarity the unlabeled-cluster merge uses.
    pub merge_similarity: MergeSimilarity,
    /// Run post-processing (constraints, data types, cardinalities) —
    /// the `postProcessing` flag of Algorithm 1.
    pub post_processing: bool,
    /// Sample-based data-type inference; `None` scans all values.
    pub datatype_sampling: Option<DatatypeSampling>,
    /// Merge labeled edge clusters on the full `(L, R)` key of
    /// Definition 3.6 (labels + endpoint label sets) instead of labels
    /// alone. Keeps same-label edge types with different endpoints
    /// distinct (e.g. the two `ConnectsTo` types of the connectome
    /// datasets). Disable for the label-only ablation.
    pub edge_endpoint_aware: bool,
    /// DiscoPG-style pattern memoization for the incremental session:
    /// elements whose exact pattern (labels + property keys, plus
    /// endpoint labels for edges) was already assigned to a type in a
    /// previous batch bypass featurization, LSH, and merging entirely —
    /// "memorization to avoid unnecessary search for types that have
    /// already been found" (§2). Off by default to match the paper's
    /// PG-HIVE; the `fig7_incremental` bench measures the speedup.
    pub memoize: bool,
    /// Structural-fingerprint dedup fast path: canonicalize each record
    /// to a fingerprint (label tokens + sorted property-key ids),
    /// featurize and LSH-hash only the distinct fingerprints, then
    /// broadcast cluster ids back to the full record set. Feature
    /// vectors are value-independent, so the schema is bit-for-bit
    /// identical either way — this is purely a performance knob (on by
    /// default), kept as an escape hatch and for the A/B check in
    /// `bench_discovery`. See DESIGN.md §3e "Performance model".
    pub dedup: bool,
    /// Worker threads for the parallel hot path (featurization, LSH
    /// signatures, cluster assembly). `0` means "use the available
    /// parallelism" (rayon's default, overridable via
    /// `RAYON_NUM_THREADS`); `1` runs the exact sequential path. The
    /// schema output is bit-for-bit identical for every value — see
    /// DESIGN.md's "Parallel execution" section and the
    /// `equivalence` test suite.
    pub threads: usize,
    /// Master seed: the pipeline is deterministic given config + input.
    pub seed: u64,
    /// Bounded-memory streaming mode: `Some` swaps the per-type
    /// accumulators onto mergeable sketches (KMV distinct counts for
    /// cardinalities, bottom-k value samples for data types) and bounds
    /// the memoization caches with a frequency-aware fingerprint store,
    /// making session memory and checkpoint size independent of stream
    /// length. `None` (the default) keeps the exact accumulators.
    pub stream: Option<StreamConfig>,
}

impl Default for HiveConfig {
    fn default() -> Self {
        HiveConfig {
            method: LshMethod::Elsh,
            node_params: LshParams::Adaptive,
            edge_params: LshParams::Adaptive,
            embedding: EmbeddingKind::Word2Vec(Word2VecConfig::default()),
            theta: 0.9,
            merge_similarity: MergeSimilarity::BinaryJaccard,
            post_processing: true,
            datatype_sampling: None,
            edge_endpoint_aware: true,
            dedup: true,
            memoize: false,
            threads: 0,
            seed: 42,
            stream: None,
        }
    }
}

impl HiveConfig {
    /// The paper's MinHash variant with otherwise default settings.
    pub fn minhash() -> Self {
        HiveConfig {
            method: LshMethod::MinHash,
            ..Default::default()
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style worker-thread override: `0` = available
    /// parallelism, `1` = sequential. Any value yields the same schema;
    /// only wall-clock time changes.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder-style dedup override: `false` forces the naive path that
    /// featurizes and hashes every record individually (the dedup fast
    /// path produces a bit-identical schema, so this is only useful for
    /// benchmarking and as an escape hatch).
    pub fn with_dedup(mut self, dedup: bool) -> Self {
        self.dedup = dedup;
        self
    }

    /// Builder-style θ override.
    ///
    /// # Panics
    /// Panics if θ is outside `[0, 1]`.
    pub fn with_theta(mut self, theta: f64) -> Self {
        assert!((0.0..=1.0).contains(&theta), "theta must be in [0, 1]");
        self.theta = theta;
        self
    }

    /// Builder-style streaming-mode override (sketch-based bounded
    /// memory; see [`StreamConfig`]).
    pub fn with_stream(mut self, stream: StreamConfig) -> Self {
        self.stream = Some(stream);
        self
    }

    /// Builder-style manual node/edge LSH parameters (used by the
    /// Figure 6 sweep).
    pub fn with_manual_params(mut self, bucket_length: f64, tables: usize) -> Self {
        self.node_params = LshParams::Manual {
            bucket_length,
            tables,
        };
        self.edge_params = LshParams::Manual {
            bucket_length,
            tables,
        };
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = HiveConfig::default();
        assert_eq!(c.method, LshMethod::Elsh);
        assert_eq!(c.theta, 0.9);
        assert!(c.post_processing);
        assert!(c.datatype_sampling.is_none());
        assert_eq!(c.node_params, LshParams::Adaptive);
        assert!(c.dedup, "dedup fast path is on by default");
        assert!(c.stream.is_none(), "exact accumulators by default");
    }

    #[test]
    fn stream_builder() {
        let c = HiveConfig::default().with_stream(StreamConfig::default());
        let s = c.stream.expect("stream mode set");
        assert_eq!(s.distinct_k, 1024);
        assert_eq!(s.sample_k, 256);
        assert_eq!(s.fingerprint_capacity, 4096);
        assert_eq!(s.frequency_floor, 16);
    }

    #[test]
    fn builders() {
        let c = HiveConfig::minhash()
            .with_seed(7)
            .with_theta(0.8)
            .with_threads(4);
        assert_eq!(c.method, LshMethod::MinHash);
        assert_eq!(c.seed, 7);
        assert_eq!(c.theta, 0.8);
        assert_eq!(c.threads, 4);
        assert_eq!(HiveConfig::default().threads, 0, "default = all cores");
        assert!(!HiveConfig::default().with_dedup(false).dedup);
        let m = HiveConfig::default().with_manual_params(2.0, 20);
        assert_eq!(
            m.node_params,
            LshParams::Manual {
                bucket_length: 2.0,
                tables: 20
            }
        );
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn invalid_theta_rejected() {
        let _ = HiveConfig::default().with_theta(1.5);
    }
}
