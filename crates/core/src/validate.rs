//! Schema validation: check a property graph against a discovered
//! [`SchemaGraph`] under PG-Schema's STRICT or LOOSE semantics (§3,
//! "Schema constraint level"; §4.4: the inferred constraints "support
//! validation processes").
//!
//! * **LOOSE** — permissive: an element conforms if some type covers its
//!   labels and declared properties (extra properties are allowed only if
//!   the covering type knows them; labels must be a subset of the type's).
//! * **STRICT** — additionally enforces MANDATORY properties, data-type
//!   compatibility of every value, edge endpoint labels, and cardinality
//!   upper bounds.
//!
//! Violations are structured values, not strings, so downstream tooling
//! (CI gates, data-quality dashboards) can consume them.

use crate::serialize::SchemaMode;
use pg_model::{
    DataType, EdgeId, EdgeType, LabelSet, Node, NodeId, NodeType, Presence, PropertyGraph,
    SchemaGraph, Symbol, TypeId,
};
use std::collections::HashMap;

/// A single conformance violation.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// No node type covers this node's labels and property keys.
    NodeHasNoType {
        /// The offending node.
        node: NodeId,
    },
    /// No edge type covers this edge.
    EdgeHasNoType {
        /// The offending edge.
        edge: EdgeId,
    },
    /// A MANDATORY property is missing (STRICT only).
    MissingMandatory {
        /// The node missing the property (edges report via
        /// [`Violation::MissingMandatoryEdge`]).
        node: NodeId,
        /// The type the node was matched to.
        type_id: TypeId,
        /// The missing key.
        key: Symbol,
    },
    /// A MANDATORY edge property is missing (STRICT only).
    MissingMandatoryEdge {
        /// The edge missing the property.
        edge: EdgeId,
        /// The type the edge was matched to.
        type_id: TypeId,
        /// The missing key.
        key: Symbol,
    },
    /// A value's data type is not admitted by the declared type
    /// (STRICT only).
    DatatypeMismatch {
        /// Element id (node or edge raw id).
        element: u64,
        /// The property key.
        key: Symbol,
        /// Declared data type.
        declared: DataType,
        /// Observed data type.
        observed: DataType,
    },
    /// An edge endpoint's labels don't match the type's endpoint labels
    /// (STRICT only).
    EndpointMismatch {
        /// The offending edge.
        edge: EdgeId,
        /// The type the edge was matched to.
        type_id: TypeId,
        /// True for the source side, false for the target side.
        source_side: bool,
    },
    /// An edge type's observed fan-out/fan-in exceeds the recorded
    /// cardinality bound (STRICT only).
    CardinalityExceeded {
        /// The edge type.
        type_id: TypeId,
        /// The node that exceeds the bound.
        node: NodeId,
        /// True if the out-bound was exceeded, false for in-bound.
        out_side: bool,
        /// Observed distinct-neighbor count.
        observed: u64,
        /// The recorded bound.
        bound: u64,
    },
}

/// A full validation report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ValidationReport {
    /// All violations found (empty = conformant).
    pub violations: Vec<Violation>,
    /// Nodes checked.
    pub nodes_checked: usize,
    /// Edges checked.
    pub edges_checked: usize,
}

impl ValidationReport {
    /// Whether the graph conforms (no violations).
    pub fn is_valid(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Validate `graph` against `schema` under the given mode.
pub fn validate(graph: &PropertyGraph, schema: &SchemaGraph, mode: SchemaMode) -> ValidationReport {
    let mut report = ValidationReport {
        nodes_checked: graph.node_count(),
        edges_checked: graph.edge_count(),
        ..Default::default()
    };

    // --- Nodes.
    for node in graph.nodes() {
        match best_node_type(schema, node) {
            None => report
                .violations
                .push(Violation::NodeHasNoType { node: node.id }),
            Some(t) => {
                if mode == SchemaMode::Strict {
                    check_node_strict(node, t, &mut report);
                }
            }
        }
    }

    // --- Edges.
    let mut per_type_endpoints: HashMap<TypeId, Vec<(NodeId, NodeId)>> = HashMap::new();
    for edge in graph.edges() {
        let (src_labels, tgt_labels) = graph.endpoint_labels(edge);
        match best_edge_type(schema, edge, &src_labels, &tgt_labels) {
            None => report
                .violations
                .push(Violation::EdgeHasNoType { edge: edge.id }),
            Some(t) => {
                if mode == SchemaMode::Strict {
                    check_edge_strict(edge, t, &src_labels, &tgt_labels, &mut report);
                    per_type_endpoints
                        .entry(t.id)
                        .or_default()
                        .push((edge.src, edge.tgt));
                }
            }
        }
    }

    // --- Cardinality bounds (STRICT).
    if mode == SchemaMode::Strict {
        for (tid, endpoints) in per_type_endpoints {
            let Some(t) = schema.edge_types.iter().find(|t| t.id == tid) else {
                continue;
            };
            let Some(card) = t.cardinality else { continue };
            check_cardinality(tid, card.max_out, card.max_in, &endpoints, &mut report);
        }
    }

    report
}

/// The covering node type with the fewest extra properties (tightest
/// fit); `None` if nothing covers the node.
fn best_node_type<'s>(schema: &'s SchemaGraph, node: &Node) -> Option<&'s NodeType> {
    schema
        .node_types
        .iter()
        .filter(|t| {
            node.labels.is_subset_of(&t.labels)
                && node.props.keys().all(|k| t.properties.contains_key(k))
        })
        .min_by_key(|t| t.properties.len())
}

/// The covering edge type, preferring candidates whose endpoint label
/// sets also cover the edge's endpoints (several types can share a label
/// — e.g. two KNOWS types with different endpoints — and the tightest
/// endpoint-compatible one is the right match). Falls back to a
/// label/property-only match so STRICT mode can report the endpoint
/// mismatch rather than "no type".
fn best_edge_type<'s>(
    schema: &'s SchemaGraph,
    edge: &pg_model::Edge,
    src_labels: &LabelSet,
    tgt_labels: &LabelSet,
) -> Option<&'s EdgeType> {
    let covers = |t: &&EdgeType| {
        edge.labels.is_subset_of(&t.labels)
            && edge.props.keys().all(|k| t.properties.contains_key(k))
    };
    schema
        .edge_types
        .iter()
        .filter(covers)
        .filter(|t| {
            src_labels.is_subset_of(&t.src_labels) && tgt_labels.is_subset_of(&t.tgt_labels)
        })
        .min_by_key(|t| t.properties.len())
        .or_else(|| {
            schema
                .edge_types
                .iter()
                .filter(covers)
                .min_by_key(|t| t.properties.len())
        })
}

fn check_node_strict(node: &Node, t: &NodeType, report: &mut ValidationReport) {
    for (key, spec) in &t.properties {
        match node.props.get(key) {
            None => {
                if spec.presence == Some(Presence::Mandatory) {
                    report.violations.push(Violation::MissingMandatory {
                        node: node.id,
                        type_id: t.id,
                        key: key.clone(),
                    });
                }
            }
            Some(value) => {
                if let Some(declared) = spec.datatype {
                    if !declared.admits(value) {
                        report.violations.push(Violation::DatatypeMismatch {
                            element: node.id.0,
                            key: key.clone(),
                            declared,
                            observed: DataType::of(value),
                        });
                    }
                }
            }
        }
    }
}

fn check_edge_strict(
    edge: &pg_model::Edge,
    t: &EdgeType,
    src_labels: &LabelSet,
    tgt_labels: &LabelSet,
    report: &mut ValidationReport,
) {
    for (key, spec) in &t.properties {
        match edge.props.get(key) {
            None => {
                if spec.presence == Some(Presence::Mandatory) {
                    report.violations.push(Violation::MissingMandatoryEdge {
                        edge: edge.id,
                        type_id: t.id,
                        key: key.clone(),
                    });
                }
            }
            Some(value) => {
                if let Some(declared) = spec.datatype {
                    if !declared.admits(value) {
                        report.violations.push(Violation::DatatypeMismatch {
                            element: edge.id.0,
                            key: key.clone(),
                            declared,
                            observed: DataType::of(value),
                        });
                    }
                }
            }
        }
    }
    // Endpoint labels must be covered by the type's endpoint label sets.
    if !src_labels.is_subset_of(&t.src_labels) {
        report.violations.push(Violation::EndpointMismatch {
            edge: edge.id,
            type_id: t.id,
            source_side: true,
        });
    }
    if !tgt_labels.is_subset_of(&t.tgt_labels) {
        report.violations.push(Violation::EndpointMismatch {
            edge: edge.id,
            type_id: t.id,
            source_side: false,
        });
    }
}

fn check_cardinality(
    tid: TypeId,
    max_out: u64,
    max_in: u64,
    endpoints: &[(NodeId, NodeId)],
    report: &mut ValidationReport,
) {
    use std::collections::HashSet;
    let mut out: HashMap<NodeId, HashSet<NodeId>> = HashMap::new();
    let mut inc: HashMap<NodeId, HashSet<NodeId>> = HashMap::new();
    for &(s, t) in endpoints {
        out.entry(s).or_default().insert(t);
        inc.entry(t).or_default().insert(s);
    }
    for (node, targets) in &out {
        if targets.len() as u64 > max_out {
            report.violations.push(Violation::CardinalityExceeded {
                type_id: tid,
                node: *node,
                out_side: true,
                observed: targets.len() as u64,
                bound: max_out,
            });
        }
    }
    for (node, sources) in &inc {
        if sources.len() as u64 > max_in {
            report.violations.push(Violation::CardinalityExceeded {
                type_id: tid,
                node: *node,
                out_side: false,
                observed: sources.len() as u64,
                bound: max_in,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HiveConfig, PgHive};
    use pg_model::{Edge, LabelSet, Node, PropertyValue};

    fn training_graph() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        for i in 0..10u64 {
            g.add_node(
                Node::new(i, LabelSet::single("Person"))
                    .with_prop("name", format!("p{i}"))
                    .with_prop("age", i as i64),
            )
            .unwrap();
            g.add_node(Node::new(100 + i, LabelSet::single("Org")).with_prop("url", "u"))
                .unwrap();
        }
        for i in 0..10u64 {
            g.add_edge(
                Edge::new(
                    1000 + i,
                    NodeId(i),
                    NodeId(100 + i),
                    LabelSet::single("WORKS_AT"),
                )
                .with_prop("from", 2000 + i as i64),
            )
            .unwrap();
        }
        g
    }

    fn schema() -> SchemaGraph {
        PgHive::new(HiveConfig::default())
            .discover_graph(&training_graph())
            .schema
    }

    #[test]
    fn training_data_conforms_strictly_to_its_own_schema() {
        let g = training_graph();
        let s = schema();
        let report = validate(&g, &s, SchemaMode::Strict);
        assert!(report.is_valid(), "violations: {:?}", report.violations);
        assert_eq!(report.nodes_checked, 20);
        assert_eq!(report.edges_checked, 10);
    }

    #[test]
    fn unknown_type_is_flagged_in_both_modes() {
        let s = schema();
        let mut g = PropertyGraph::new();
        g.add_node(Node::new(1, LabelSet::single("Alien")).with_prop("tentacles", 8i64))
            .unwrap();
        for mode in [SchemaMode::Loose, SchemaMode::Strict] {
            let report = validate(&g, &s, mode);
            assert_eq!(
                report.violations,
                vec![Violation::NodeHasNoType { node: NodeId(1) }],
                "mode {mode:?}"
            );
        }
    }

    #[test]
    fn missing_mandatory_property_fails_strict_but_passes_loose() {
        let s = schema();
        let mut g = PropertyGraph::new();
        // Person without `age` (mandatory in the training data).
        g.add_node(Node::new(1, LabelSet::single("Person")).with_prop("name", "x"))
            .unwrap();
        assert!(validate(&g, &s, SchemaMode::Loose).is_valid());
        let strict = validate(&g, &s, SchemaMode::Strict);
        assert!(matches!(
            strict.violations.as_slice(),
            [Violation::MissingMandatory { key, .. }] if key.as_ref() == "age"
        ));
    }

    #[test]
    fn datatype_mismatch_is_strict_only() {
        let s = schema();
        let mut g = PropertyGraph::new();
        g.add_node(
            Node::new(1, LabelSet::single("Person"))
                .with_prop("name", "x")
                .with_prop("age", PropertyValue::Str("not a number".into())),
        )
        .unwrap();
        assert!(validate(&g, &s, SchemaMode::Loose).is_valid());
        let strict = validate(&g, &s, SchemaMode::Strict);
        assert!(matches!(
            strict.violations.as_slice(),
            [Violation::DatatypeMismatch {
                declared: DataType::Int,
                observed: DataType::Str,
                ..
            }]
        ));
    }

    #[test]
    fn int_value_is_admitted_where_float_declared() {
        // Generalization lattice in action: a schema learned from mixed
        // int/float values declares DOUBLE, which admits INT values.
        let mut g = PropertyGraph::new();
        g.add_node(Node::new(1, LabelSet::single("T")).with_prop("x", 1.5f64))
            .unwrap();
        g.add_node(Node::new(2, LabelSet::single("T")).with_prop("x", 2i64))
            .unwrap();
        let s = PgHive::new(HiveConfig::default()).discover_graph(&g).schema;
        let report = validate(&g, &s, SchemaMode::Strict);
        assert!(report.is_valid(), "{:?}", report.violations);
    }

    #[test]
    fn endpoint_mismatch_detected() {
        let s = schema();
        let mut g = PropertyGraph::new();
        g.add_node(Node::new(1, LabelSet::single("Org")).with_prop("url", "u"))
            .unwrap();
        g.add_node(Node::new(2, LabelSet::single("Org")).with_prop("url", "v"))
            .unwrap();
        // WORKS_AT from Org to Org — source side violates Person.
        g.add_edge(
            Edge::new(9, NodeId(1), NodeId(2), LabelSet::single("WORKS_AT"))
                .with_prop("from", 1i64),
        )
        .unwrap();
        let strict = validate(&g, &s, SchemaMode::Strict);
        assert!(strict.violations.iter().any(|v| matches!(
            v,
            Violation::EndpointMismatch {
                source_side: true,
                ..
            }
        )));
    }

    #[test]
    fn cardinality_bound_enforced() {
        // Training data has each Person at exactly one Org (max_out 1).
        let s = schema();
        let mut g = PropertyGraph::new();
        g.add_node(
            Node::new(1, LabelSet::single("Person"))
                .with_prop("name", "x")
                .with_prop("age", 1i64),
        )
        .unwrap();
        g.add_node(Node::new(2, LabelSet::single("Org")).with_prop("url", "a"))
            .unwrap();
        g.add_node(Node::new(3, LabelSet::single("Org")).with_prop("url", "b"))
            .unwrap();
        for (eid, tgt) in [(10u64, 2u64), (11, 3)] {
            g.add_edge(
                Edge::new(eid, NodeId(1), NodeId(tgt), LabelSet::single("WORKS_AT"))
                    .with_prop("from", 1i64),
            )
            .unwrap();
        }
        let strict = validate(&g, &s, SchemaMode::Strict);
        assert!(
            strict.violations.iter().any(|v| matches!(
                v,
                Violation::CardinalityExceeded {
                    out_side: true,
                    observed: 2,
                    bound: 1,
                    ..
                }
            )),
            "violations: {:?}",
            strict.violations
        );
    }

    #[test]
    fn empty_graph_is_trivially_valid() {
        let report = validate(&PropertyGraph::new(), &schema(), SchemaMode::Strict);
        assert!(report.is_valid());
        assert_eq!(report.nodes_checked, 0);
    }
}
