//! The clustering step (§4.2): run LSH over the feature representation
//! and summarize each cluster by its representative pattern.
//!
//! A cluster's representative (§4.2, "Cluster representative") is the
//! union of member labels, the union of member property keys, and — for
//! edges — the unions of source/target endpoint labels. Candidate types
//! are exactly these representatives, with per-instance statistics folded
//! into an accumulator for later post-processing.

use crate::config::{HiveConfig, LshMethod, LshParams};
use crate::features::{EdgeFingerprint, FeatureSpace, NodeFingerprint};
use crate::state::{DtypeHist, EdgeTypeAccum, NodeTypeAccum};
use pg_lsh::adaptive::{self, AdaptiveParams, ElementKind};
use pg_lsh::{group_by_key, Clustering, EuclideanLsh, Grouping, MinHashLsh, SparseVec};
use pg_model::{DataType, FnvBuildHasher, LabelSet, Symbol};
use pg_store::{EdgeRecord, NodeRecord};
use rayon::prelude::*;
use std::collections::{BTreeSet, HashMap};

/// How far the structural-fingerprint dedup collapsed one clustering
/// pass: `records` elements entered, `distinct` fingerprints were
/// actually featurized and hashed. With dedup disabled
/// `distinct == records`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DedupStats {
    /// Elements in the batch.
    pub records: usize,
    /// Distinct structural fingerprints (= LSH inputs).
    pub distinct: usize,
}

impl DedupStats {
    /// `records / distinct` — how many records each distinct fingerprint
    /// stands for on average (1.0 when dedup is off or every record is
    /// structurally unique).
    pub fn ratio(&self) -> f64 {
        if self.distinct == 0 {
            1.0
        } else {
            self.records as f64 / self.distinct as f64
        }
    }
}

/// Broadcast a clustering of fingerprint representatives back to the
/// full record set. `grouping.reps` is in record first-occurrence order
/// and `rep_clustering` numbers clusters densely in *rep*
/// first-occurrence order, so the composed ids are already dense in
/// record first-occurrence order — exactly what clustering the
/// materialized per-record inputs would have produced (equal
/// fingerprints ⇒ bit-identical vectors ⇒ equal signatures).
fn broadcast(rep_clustering: &Clustering, grouping: &Grouping) -> Clustering {
    let assignment: Vec<usize> = grouping
        .assignment
        .par_iter()
        .map(|&g| rep_clustering.assignment[g])
        .collect();
    Clustering {
        assignment,
        num_clusters: rep_clustering.num_clusters,
    }
}

/// A candidate node type: cluster representative + accumulator.
#[derive(Debug, Clone, Default)]
pub struct NodeCluster {
    /// Union of member labels (L).
    pub labels: LabelSet,
    /// Union of member property keys (K).
    pub keys: BTreeSet<Symbol>,
    /// Folded per-instance statistics.
    pub accum: NodeTypeAccum,
}

/// A candidate edge type: cluster representative + accumulator.
#[derive(Debug, Clone, Default)]
pub struct EdgeCluster {
    /// Union of member edge labels (L).
    pub labels: LabelSet,
    /// Union of member property keys (K).
    pub keys: BTreeSet<Symbol>,
    /// Union of member source labels (R, source side).
    pub src_labels: LabelSet,
    /// Union of member target labels (R, target side).
    pub tgt_labels: LabelSet,
    /// Folded per-instance statistics.
    pub accum: EdgeTypeAccum,
}

/// Resolve LSH parameters for a set of vectors (ELSH path).
fn resolve_elsh_params(
    params: &LshParams,
    vectors: &[SparseVec],
    distinct_labels: usize,
    kind: ElementKind,
    seed: u64,
) -> (f64, usize, Option<AdaptiveParams>) {
    match params {
        LshParams::Adaptive => {
            let p = adaptive::adapt(vectors, distinct_labels, kind, seed);
            (p.bucket_length, p.tables, Some(p))
        }
        LshParams::Manual {
            bucket_length,
            tables,
        } => (*bucket_length, *tables, None),
    }
}

/// Resolve the table count for MinHash (bucket length is meaningless).
fn resolve_minhash_tables(
    params: &LshParams,
    n_items: usize,
    distinct_labels: usize,
    kind: ElementKind,
) -> (usize, Option<AdaptiveParams>) {
    match params {
        LshParams::Adaptive => {
            // MinHash has no distance scale; the table heuristic uses a
            // unit scale (§4.2: "MinHash only requires the number of
            // hash tables T").
            let p = adaptive::from_scale(1.0, n_items, distinct_labels, kind);
            (p.tables, Some(p))
        }
        LshParams::Manual { tables, .. } => (*tables, None),
    }
}

/// Cluster the batch's nodes. Returns the candidate clusters, the
/// adaptive parameters actually used (if adaptive), and the dedup
/// statistics of the pass.
///
/// With `cfg.dedup` (the default), records are first collapsed to their
/// structural fingerprints and only the distinct fingerprints are
/// featurized and LSH-hashed; cluster ids are then broadcast back. The
/// result is bit-identical to the naive per-record path — feature
/// vectors are value-independent, the adaptive μ sample is computed over
/// the full *virtual* record set with the same RNG stream, and the
/// representative cluster assembly below always folds the full record
/// set (counts, cardinalities, and datatype stats are unaffected).
pub fn cluster_nodes(
    nodes: &[NodeRecord],
    fs: &FeatureSpace,
    cfg: &HiveConfig,
) -> (Vec<NodeCluster>, Option<AdaptiveParams>, DedupStats) {
    if nodes.is_empty() {
        return (Vec::new(), None, DedupStats::default());
    }
    let distinct_labels: BTreeSet<&str> = nodes
        .iter()
        .flat_map(|n| n.labels.iter().map(|l| l.as_ref()))
        .collect();

    let (clustering, params, stats) = if cfg.dedup {
        let fps: Vec<NodeFingerprint> = nodes.par_iter().map(|n| fs.node_fingerprint(n)).collect();
        let grouping = group_by_key(&fps);
        let stats = DedupStats {
            records: nodes.len(),
            distinct: grouping.num_groups,
        };
        match cfg.method {
            LshMethod::Elsh => {
                let vectors: Vec<SparseVec> = grouping
                    .reps
                    .par_iter()
                    .map(|&i| fs.node_fingerprint_vector(&fps[i]))
                    .collect();
                let (b, t, p) = match &cfg.node_params {
                    LshParams::Adaptive => {
                        let p = adaptive::adapt_grouped(
                            &vectors,
                            &grouping.assignment,
                            distinct_labels.len(),
                            ElementKind::Node,
                            cfg.seed,
                        );
                        (p.bucket_length, p.tables, Some(p))
                    }
                    LshParams::Manual {
                        bucket_length,
                        tables,
                    } => (*bucket_length, *tables, None),
                };
                let lsh = EuclideanLsh::new(fs.node_dim().max(1), t, b, cfg.seed);
                (
                    broadcast(&lsh.cluster_signature(&vectors), &grouping),
                    p,
                    stats,
                )
            }
            LshMethod::MinHash => {
                let sets: Vec<Vec<u64>> = grouping
                    .reps
                    .par_iter()
                    .map(|&i| fs.node_fingerprint_set(&fps[i]))
                    .collect();
                // Table count scales with the *record* count, not the
                // fingerprint count, to match the naive path.
                let (t, p) = resolve_minhash_tables(
                    &cfg.node_params,
                    nodes.len(),
                    distinct_labels.len(),
                    ElementKind::Node,
                );
                let lsh = MinHashLsh::new(t, cfg.seed);
                (
                    broadcast(&lsh.cluster_signature(&sets), &grouping),
                    p,
                    stats,
                )
            }
        }
    } else {
        let stats = DedupStats {
            records: nodes.len(),
            distinct: nodes.len(),
        };
        match cfg.method {
            LshMethod::Elsh => {
                let vectors: Vec<SparseVec> = nodes.par_iter().map(|n| fs.node_vector(n)).collect();
                let (b, t, p) = resolve_elsh_params(
                    &cfg.node_params,
                    &vectors,
                    distinct_labels.len(),
                    ElementKind::Node,
                    cfg.seed,
                );
                let lsh = EuclideanLsh::new(fs.node_dim().max(1), t, b, cfg.seed);
                (lsh.cluster_signature(&vectors), p, stats)
            }
            LshMethod::MinHash => {
                let sets: Vec<Vec<u64>> = nodes.par_iter().map(|n| fs.node_set(n)).collect();
                let (t, p) = resolve_minhash_tables(
                    &cfg.node_params,
                    nodes.len(),
                    distinct_labels.len(),
                    ElementKind::Node,
                );
                let lsh = MinHashLsh::new(t, cfg.seed);
                (lsh.cluster_signature(&sets), p, stats)
            }
        }
    };
    (assemble_node_clusters(nodes, &clustering), params, stats)
}

/// Cluster the batch's edges (see [`cluster_nodes`] for the dedup
/// contract).
pub fn cluster_edges(
    edges: &[EdgeRecord],
    fs: &FeatureSpace,
    cfg: &HiveConfig,
) -> (Vec<EdgeCluster>, Option<AdaptiveParams>, DedupStats) {
    if edges.is_empty() {
        return (Vec::new(), None, DedupStats::default());
    }
    let distinct_labels: BTreeSet<&str> = edges
        .iter()
        .flat_map(|e| e.edge.labels.iter().map(|l| l.as_ref()))
        .collect();

    let (clustering, params, stats) = if cfg.dedup {
        let fps: Vec<EdgeFingerprint> = edges.par_iter().map(|e| fs.edge_fingerprint(e)).collect();
        let grouping = group_by_key(&fps);
        let stats = DedupStats {
            records: edges.len(),
            distinct: grouping.num_groups,
        };
        match cfg.method {
            LshMethod::Elsh => {
                let vectors: Vec<SparseVec> = grouping
                    .reps
                    .par_iter()
                    .map(|&i| fs.edge_fingerprint_vector(&fps[i]))
                    .collect();
                let (b, t, p) = match &cfg.edge_params {
                    LshParams::Adaptive => {
                        let p = adaptive::adapt_grouped(
                            &vectors,
                            &grouping.assignment,
                            distinct_labels.len(),
                            ElementKind::Edge,
                            cfg.seed.wrapping_add(1),
                        );
                        (p.bucket_length, p.tables, Some(p))
                    }
                    LshParams::Manual {
                        bucket_length,
                        tables,
                    } => (*bucket_length, *tables, None),
                };
                let lsh = EuclideanLsh::new(fs.edge_dim().max(1), t, b, cfg.seed.wrapping_add(1));
                (
                    broadcast(&lsh.cluster_signature(&vectors), &grouping),
                    p,
                    stats,
                )
            }
            LshMethod::MinHash => {
                let sets: Vec<Vec<u64>> = grouping
                    .reps
                    .par_iter()
                    .map(|&i| fs.edge_fingerprint_set(&fps[i]))
                    .collect();
                let (t, p) = resolve_minhash_tables(
                    &cfg.edge_params,
                    edges.len(),
                    distinct_labels.len(),
                    ElementKind::Edge,
                );
                let lsh = MinHashLsh::new(t, cfg.seed.wrapping_add(1));
                (
                    broadcast(&lsh.cluster_signature(&sets), &grouping),
                    p,
                    stats,
                )
            }
        }
    } else {
        let stats = DedupStats {
            records: edges.len(),
            distinct: edges.len(),
        };
        match cfg.method {
            LshMethod::Elsh => {
                let vectors: Vec<SparseVec> = edges.par_iter().map(|e| fs.edge_vector(e)).collect();
                let (b, t, p) = resolve_elsh_params(
                    &cfg.edge_params,
                    &vectors,
                    distinct_labels.len(),
                    ElementKind::Edge,
                    cfg.seed.wrapping_add(1),
                );
                let lsh = EuclideanLsh::new(fs.edge_dim().max(1), t, b, cfg.seed.wrapping_add(1));
                (lsh.cluster_signature(&vectors), p, stats)
            }
            LshMethod::MinHash => {
                let sets: Vec<Vec<u64>> = edges.par_iter().map(|e| fs.edge_set(e)).collect();
                let (t, p) = resolve_minhash_tables(
                    &cfg.edge_params,
                    edges.len(),
                    distinct_labels.len(),
                    ElementKind::Edge,
                );
                let lsh = MinHashLsh::new(t, cfg.seed.wrapping_add(1));
                (lsh.cluster_signature(&sets), p, stats)
            }
        }
    };
    (assemble_edge_clusters(edges, &clustering), params, stats)
}

/// Number of chunks cluster assembly folds in parallel. Chunk
/// boundaries depend only on the record count, never the thread count,
/// so the chunk-ordered merge below is deterministic.
const ASSEMBLE_SHARDS: usize = 64;

impl NodeCluster {
    /// Fold another partial cluster in. Label/key unions are
    /// order-insensitive (sorted sets) and the accumulator's counters
    /// are additive, while `members` concatenate — so merging per-chunk
    /// partials in chunk order reproduces the sequential fold exactly.
    fn merge(&mut self, other: &NodeCluster) {
        self.labels = self.labels.union(&other.labels);
        self.keys.extend(other.keys.iter().cloned());
        self.accum.merge(&other.accum);
    }
}

impl EdgeCluster {
    /// Fold another partial cluster in (see [`NodeCluster::merge`]).
    fn merge(&mut self, other: &EdgeCluster) {
        self.labels = self.labels.union(&other.labels);
        self.src_labels = self.src_labels.union(&other.src_labels);
        self.tgt_labels = self.tgt_labels.union(&other.tgt_labels);
        self.keys.extend(other.keys.iter().cloned());
        self.accum.merge(&other.accum);
    }
}

/// Stable counting-sort of chunk-local record indices by cluster id:
/// records of cluster `c` end up at `order[starts[c]..starts[c]+counts[c]]`,
/// in chunk order. The flat kernels below therefore visit each cluster's
/// members in exactly the order the old per-record fold did, which is
/// what keeps `accum.members` / `accum.endpoints` bit-identical.
fn group_by_cluster(
    assignment: &[usize],
    num_clusters: usize,
) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let mut counts = vec![0usize; num_clusters];
    for &cid in assignment {
        counts[cid] += 1;
    }
    let mut starts = vec![0usize; num_clusters];
    let mut acc = 0usize;
    for (s, &c) in starts.iter_mut().zip(&counts) {
        *s = acc;
        acc += c;
    }
    let mut order = vec![0usize; assignment.len()];
    let mut next = starts.clone();
    for (i, &cid) in assignment.iter().enumerate() {
        order[next[cid]] = i;
        next[cid] += 1;
    }
    (order, starts, counts)
}

/// Per-property flat accumulation state, reused across the clusters of
/// one chunk: property keys resolve to dense slots through an FNV map of
/// borrowed `&str` (no hashing of `Arc` pointers, no per-record clone),
/// and presence counts / dtype histograms live in slot-indexed arrays.
/// Exactly one `Symbol` clone happens per distinct key per cluster — the
/// same clone the old `entry(k.clone())` path kept only on first
/// insertion, minus the 2× per-record clone-and-drop traffic.
#[derive(Default)]
struct KeySlots<'a> {
    slots: HashMap<&'a str, usize, FnvBuildHasher>,
    syms: Vec<Symbol>,
    present: Vec<u64>,
    hist: Vec<DtypeHist>,
}

impl<'a> KeySlots<'a> {
    fn clear(&mut self) {
        self.slots.clear();
        self.syms.clear();
        self.present.clear();
        self.hist.clear();
    }

    /// Fold one property observation in.
    fn observe(&mut self, key: &'a Symbol, value: &pg_model::PropertyValue) {
        let slot = match self.slots.get(key.as_ref()) {
            Some(&s) => s,
            None => {
                let s = self.syms.len();
                self.slots.insert(key.as_ref(), s);
                self.syms.push(key.clone());
                self.present.push(0);
                self.hist.push(DtypeHist::default());
                s
            }
        };
        self.present[slot] += 1;
        self.hist[slot].observe(DataType::of(value));
    }

    /// Convert the flat arrays into the accumulator's map form, draining
    /// the histograms (counts/symbols stay for `clear` reuse).
    fn drain_into(
        &mut self,
        keys: &mut BTreeSet<Symbol>,
        key_present: &mut HashMap<Symbol, u64>,
        dtype_hist: &mut HashMap<Symbol, DtypeHist>,
    ) {
        keys.extend(self.syms.iter().cloned());
        key_present.extend(self.syms.iter().cloned().zip(self.present.iter().copied()));
        dtype_hist.extend(self.syms.iter().cloned().zip(self.hist.drain(..)));
    }
}

/// Fold `other` into `acc` only when it adds a label — the sequential
/// fold's `acc = acc.union(other)` allocates a fresh vector per record;
/// the subset test makes the (overwhelmingly common) already-covered
/// case allocation-free while producing the same canonical set.
fn union_into(acc: &mut LabelSet, other: &LabelSet) {
    if !other.is_subset_of(acc) {
        *acc = acc.union(other);
    }
}

fn assemble_node_clusters(nodes: &[NodeRecord], clustering: &Clustering) -> Vec<NodeCluster> {
    let shard = nodes.len().div_ceil(ASSEMBLE_SHARDS).max(1);
    let partials: Vec<Vec<NodeCluster>> = nodes
        .par_chunks(shard)
        .zip(clustering.assignment.par_chunks(shard))
        .map(|(chunk, assignment)| node_chunk_kernel(chunk, assignment, clustering.num_clusters))
        .collect();
    let mut clusters: Vec<NodeCluster> = (0..clustering.num_clusters)
        .map(|_| NodeCluster::default())
        .collect();
    for partial in &partials {
        for (dst, src) in clusters.iter_mut().zip(partial) {
            dst.merge(src);
        }
    }
    clusters
}

/// Flat accumulation kernel for one chunk: group records by cluster id
/// once, then run a tight per-cluster loop over slot-indexed arrays.
/// Bit-identical to the old per-record fold — member order is chunk
/// order and every map ends up with the same (key, count) content — but
/// without per-record `Arc` churn or redundant label-union allocation.
fn node_chunk_kernel(
    chunk: &[NodeRecord],
    assignment: &[usize],
    num_clusters: usize,
) -> Vec<NodeCluster> {
    let (order, starts, counts) = group_by_cluster(assignment, num_clusters);
    let mut clusters: Vec<NodeCluster> = (0..num_clusters).map(|_| NodeCluster::default()).collect();
    let mut ks = KeySlots::default();
    for (cid, c) in clusters.iter_mut().enumerate() {
        let n = counts[cid];
        if n == 0 {
            continue;
        }
        ks.clear();
        c.accum.members.reserve(n);
        for &i in &order[starts[cid]..starts[cid] + n] {
            let node = &chunk[i];
            union_into(&mut c.labels, &node.labels);
            c.accum.members.push(node.id);
            for (k, v) in &node.props {
                ks.observe(k, v);
            }
        }
        c.accum.count = n as u64;
        ks.drain_into(&mut c.keys, &mut c.accum.key_present, &mut c.accum.dtype_hist);
    }
    clusters
}

fn assemble_edge_clusters(edges: &[EdgeRecord], clustering: &Clustering) -> Vec<EdgeCluster> {
    let shard = edges.len().div_ceil(ASSEMBLE_SHARDS).max(1);
    let partials: Vec<Vec<EdgeCluster>> = edges
        .par_chunks(shard)
        .zip(clustering.assignment.par_chunks(shard))
        .map(|(chunk, assignment)| edge_chunk_kernel(chunk, assignment, clustering.num_clusters))
        .collect();
    let mut clusters: Vec<EdgeCluster> = (0..clustering.num_clusters)
        .map(|_| EdgeCluster::default())
        .collect();
    for partial in &partials {
        for (dst, src) in clusters.iter_mut().zip(partial) {
            dst.merge(src);
        }
    }
    clusters
}

/// Edge counterpart of [`node_chunk_kernel`]; additionally folds the
/// endpoint-label unions and the `(src, tgt)` endpoint list.
fn edge_chunk_kernel(
    chunk: &[EdgeRecord],
    assignment: &[usize],
    num_clusters: usize,
) -> Vec<EdgeCluster> {
    let (order, starts, counts) = group_by_cluster(assignment, num_clusters);
    let mut clusters: Vec<EdgeCluster> = (0..num_clusters).map(|_| EdgeCluster::default()).collect();
    let mut ks = KeySlots::default();
    for (cid, c) in clusters.iter_mut().enumerate() {
        let n = counts[cid];
        if n == 0 {
            continue;
        }
        ks.clear();
        c.accum.members.reserve(n);
        c.accum.endpoints.reserve(n);
        for &i in &order[starts[cid]..starts[cid] + n] {
            let rec = &chunk[i];
            union_into(&mut c.labels, &rec.edge.labels);
            union_into(&mut c.src_labels, &rec.src_labels);
            union_into(&mut c.tgt_labels, &rec.tgt_labels);
            c.accum.members.push(rec.edge.id);
            c.accum.endpoints.push((rec.edge.src, rec.edge.tgt));
            for (k, v) in &rec.edge.props {
                ks.observe(k, v);
            }
        }
        c.accum.count = n as u64;
        ks.drain_into(&mut c.keys, &mut c.accum.key_present, &mut c.accum.dtype_hist);
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EmbeddingKind;
    use pg_embed::Word2VecConfig;
    use pg_model::{Edge, LabelSet, Node, NodeId};

    fn quick_cfg(method: LshMethod) -> HiveConfig {
        HiveConfig {
            method,
            embedding: EmbeddingKind::Word2Vec(Word2VecConfig {
                dim: 5,
                epochs: 2,
                ..Default::default()
            }),
            ..Default::default()
        }
    }

    fn two_type_nodes() -> Vec<NodeRecord> {
        let mut v = Vec::new();
        for i in 0..30u64 {
            v.push(
                Node::new(i, LabelSet::single("Person"))
                    .with_prop("name", "x")
                    .with_prop("age", 1i64),
            );
            v.push(
                Node::new(100 + i, LabelSet::single("Org"))
                    .with_prop("url", "u")
                    .with_prop("name", "y"),
            );
        }
        v
    }

    #[test]
    fn elsh_separates_two_clean_types() {
        let nodes = two_type_nodes();
        let cfg = quick_cfg(LshMethod::Elsh);
        let fs = FeatureSpace::build(&nodes, &[], &cfg.embedding, cfg.seed);
        let (clusters, params, stats) = cluster_nodes(&nodes, &fs, &cfg);
        assert_eq!(clusters.len(), 2, "two structurally distinct types");
        assert!(params.is_some(), "adaptive params reported");
        let total: u64 = clusters.iter().map(|c| c.accum.count).sum();
        assert_eq!(total, 60);
        for c in &clusters {
            assert_eq!(c.labels.len(), 1, "clusters are pure: {}", c.labels);
        }
        // 60 records, 2 structures: dedup collapses 30:1.
        assert_eq!(stats.records, 60);
        assert_eq!(stats.distinct, 2);
        assert_eq!(stats.ratio(), 30.0);
    }

    #[test]
    fn minhash_separates_two_clean_types() {
        let nodes = two_type_nodes();
        let cfg = quick_cfg(LshMethod::MinHash);
        let fs = FeatureSpace::build(&nodes, &[], &cfg.embedding, cfg.seed);
        let (clusters, _, _) = cluster_nodes(&nodes, &fs, &cfg);
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn representative_is_union_of_members() {
        // Same label, varying property sets → AND-rule LSH fragments, but
        // each cluster's rep is the union over its members.
        let nodes = vec![
            Node::new(1, LabelSet::single("Post")).with_prop("imgFile", "a"),
            Node::new(2, LabelSet::single("Post")).with_prop("content", "b"),
        ];
        let cfg = quick_cfg(LshMethod::Elsh);
        let fs = FeatureSpace::build(&nodes, &[], &cfg.embedding, cfg.seed);
        let (clusters, _, _) = cluster_nodes(&nodes, &fs, &cfg);
        let all_keys: BTreeSet<_> = clusters.iter().flat_map(|c| c.keys.clone()).collect();
        assert_eq!(all_keys.len(), 2);
        for c in &clusters {
            assert!(c.labels.contains("Post"));
        }
    }

    #[test]
    fn edges_cluster_by_label_and_endpoints() {
        let mut nodes = Vec::new();
        let mut edges = Vec::new();
        for i in 0..20u64 {
            nodes.push(Node::new(i, LabelSet::single("Person")).with_prop("name", "n"));
            nodes.push(Node::new(100 + i, LabelSet::single("Org")).with_prop("url", "u"));
        }
        for i in 0..19u64 {
            edges.push(EdgeRecord {
                edge: Edge::new(
                    1000 + i,
                    NodeId(i),
                    NodeId(i + 1),
                    LabelSet::single("KNOWS"),
                ),
                src_labels: LabelSet::single("Person"),
                tgt_labels: LabelSet::single("Person"),
            });
            edges.push(EdgeRecord {
                edge: Edge::new(
                    2000 + i,
                    NodeId(i),
                    NodeId(100 + i),
                    LabelSet::single("WORKS_AT"),
                )
                .with_prop("from", 2020i64),
                src_labels: LabelSet::single("Person"),
                tgt_labels: LabelSet::single("Org"),
            });
        }
        let cfg = quick_cfg(LshMethod::Elsh);
        let fs = FeatureSpace::build(&nodes, &edges, &cfg.embedding, cfg.seed);
        let (clusters, _, _) = cluster_edges(&edges, &fs, &cfg);
        assert_eq!(clusters.len(), 2);
        let works = clusters
            .iter()
            .find(|c| c.labels.contains("WORKS_AT"))
            .unwrap();
        assert_eq!(works.src_labels, LabelSet::single("Person"));
        assert_eq!(works.tgt_labels, LabelSet::single("Org"));
        assert_eq!(works.accum.endpoints.len(), 19);
    }

    #[test]
    fn assembly_is_thread_count_invariant() {
        let nodes = two_type_nodes();
        let cfg = quick_cfg(LshMethod::Elsh);
        let fs = FeatureSpace::build(&nodes, &[], &cfg.embedding, cfg.seed);
        let run = |threads: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| cluster_nodes(&nodes, &fs, &cfg).0)
        };
        let seq = run(1);
        for t in [2, 4, 8] {
            let par = run(t);
            assert_eq!(seq.len(), par.len(), "threads = {t}");
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.labels, b.labels, "threads = {t}");
                assert_eq!(a.keys, b.keys, "threads = {t}");
                assert_eq!(a.accum.count, b.accum.count, "threads = {t}");
                // Member order is part of the contract: chunk-ordered
                // merge must reproduce the sequential visit order.
                assert_eq!(a.accum.members, b.accum.members, "threads = {t}");
            }
        }
    }

    /// The flat chunk kernels are an optimization of the old per-record
    /// fold; this pins them against a literal reimplementation of that
    /// fold — same labels, same key sets, same presence counts and
    /// histograms, same member/endpoint order.
    #[test]
    fn flat_kernels_match_naive_fold() {
        let mut nodes = Vec::new();
        for i in 0..50u64 {
            let n = match i % 3 {
                0 => Node::new(i, LabelSet::from_iter(["Person", "Student"]))
                    .with_prop("name", format!("p{i}"))
                    .with_prop("age", i as i64),
                1 => Node::new(i, LabelSet::single("Person")).with_prop("name", 1.5f64),
                _ => Node::new(i, LabelSet::empty()).with_prop("age", "old"),
            };
            nodes.push(n);
        }
        let assignment: Vec<usize> = (0..nodes.len()).map(|i| i % 4).collect();
        let clustering = Clustering {
            assignment: assignment.clone(),
            num_clusters: 5, // one cluster deliberately empty
        };
        let flat = assemble_node_clusters(&nodes, &clustering);
        // Naive reference fold (the pre-kernel implementation).
        let mut naive: Vec<NodeCluster> = (0..clustering.num_clusters)
            .map(|_| NodeCluster::default())
            .collect();
        for (node, &cid) in nodes.iter().zip(&assignment) {
            let c = &mut naive[cid];
            c.labels = c.labels.union(&node.labels);
            c.keys.extend(node.props.keys().cloned());
            c.accum.observe(node);
        }
        assert_eq!(flat.len(), naive.len());
        for (a, b) in flat.iter().zip(&naive) {
            assert_eq!(a.labels, b.labels);
            assert_eq!(a.keys, b.keys);
            assert_eq!(a.accum.count, b.accum.count);
            assert_eq!(a.accum.key_present, b.accum.key_present);
            assert_eq!(a.accum.dtype_hist, b.accum.dtype_hist);
            assert_eq!(a.accum.members, b.accum.members);
        }

        let edges: Vec<EdgeRecord> = (0..40u64)
            .map(|i| EdgeRecord {
                edge: Edge::new(1000 + i, NodeId(i % 7), NodeId(i % 5), {
                    if i % 2 == 0 {
                        LabelSet::single("KNOWS")
                    } else {
                        LabelSet::single("LIKES")
                    }
                })
                .with_prop("w", i as i64),
                src_labels: LabelSet::single("Person"),
                tgt_labels: if i % 3 == 0 {
                    LabelSet::single("Org")
                } else {
                    LabelSet::single("Person")
                },
            })
            .collect();
        let assignment: Vec<usize> = (0..edges.len()).map(|i| (i / 3) % 3).collect();
        let clustering = Clustering {
            assignment: assignment.clone(),
            num_clusters: 3,
        };
        let flat = assemble_edge_clusters(&edges, &clustering);
        let mut naive: Vec<EdgeCluster> = (0..clustering.num_clusters)
            .map(|_| EdgeCluster::default())
            .collect();
        for (rec, &cid) in edges.iter().zip(&assignment) {
            let c = &mut naive[cid];
            c.labels = c.labels.union(&rec.edge.labels);
            c.src_labels = c.src_labels.union(&rec.src_labels);
            c.tgt_labels = c.tgt_labels.union(&rec.tgt_labels);
            c.keys.extend(rec.edge.props.keys().cloned());
            c.accum.observe(&rec.edge);
        }
        for (a, b) in flat.iter().zip(&naive) {
            assert_eq!(a.labels, b.labels);
            assert_eq!(a.src_labels, b.src_labels);
            assert_eq!(a.tgt_labels, b.tgt_labels);
            assert_eq!(a.keys, b.keys);
            assert_eq!(a.accum.count, b.accum.count);
            assert_eq!(a.accum.key_present, b.accum.key_present);
            assert_eq!(a.accum.dtype_hist, b.accum.dtype_hist);
            assert_eq!(a.accum.members, b.accum.members);
            assert_eq!(a.accum.endpoints, b.accum.endpoints);
        }
    }

    #[test]
    fn empty_inputs() {
        let cfg = quick_cfg(LshMethod::Elsh);
        let fs = FeatureSpace::build(&[], &[], &cfg.embedding, cfg.seed);
        let (nc, np, ns) = cluster_nodes(&[], &fs, &cfg);
        assert!(nc.is_empty() && np.is_none());
        assert_eq!(ns, DedupStats::default());
        let (ec, ep, es) = cluster_edges(&[], &fs, &cfg);
        assert!(ec.is_empty() && ep.is_none());
        assert_eq!(es, DedupStats::default());
    }

    /// Mixed-structure stream where fingerprints recur in a scrambled
    /// order: the dedup fast path must assign cluster ids in record
    /// first-occurrence order, i.e. exactly the ids of the naive path.
    fn scrambled_nodes() -> Vec<NodeRecord> {
        let mut v = Vec::new();
        for i in 0..120u64 {
            let n = match i % 4 {
                0 => Node::new(i, LabelSet::single("Person"))
                    .with_prop("name", format!("p{i}"))
                    .with_prop("age", i as i64),
                1 => Node::new(i, LabelSet::single("Org")).with_prop("url", format!("u{i}")),
                2 => Node::new(i, LabelSet::empty()).with_prop("name", format!("x{i}")),
                _ => Node::new(i, LabelSet::single("Person")).with_prop("name", format!("q{i}")),
            };
            v.push(n);
        }
        v
    }

    #[test]
    fn dedup_preserves_first_occurrence_cluster_order() {
        // The naive path is the specification; dedup must reproduce its
        // cluster representatives *in the same order* (assembly indexes
        // clusters by id, so any renumbering would reorder the output).
        let nodes = scrambled_nodes();
        for method in [LshMethod::Elsh, LshMethod::MinHash] {
            let on = quick_cfg(method);
            let off = quick_cfg(method).with_dedup(false);
            let fs = FeatureSpace::build(&nodes, &[], &on.embedding, on.seed);
            let (c_on, p_on, s_on) = cluster_nodes(&nodes, &fs, &on);
            let (c_off, p_off, s_off) = cluster_nodes(&nodes, &fs, &off);
            assert_eq!(p_on, p_off, "adaptive params must agree ({method:?})");
            assert_eq!(c_on.len(), c_off.len(), "({method:?})");
            for (a, b) in c_on.iter().zip(&c_off) {
                assert_eq!(a.labels, b.labels, "({method:?})");
                assert_eq!(a.keys, b.keys, "({method:?})");
                assert_eq!(a.accum.count, b.accum.count, "({method:?})");
                assert_eq!(a.accum.members, b.accum.members, "({method:?})");
            }
            assert_eq!(s_on.records, 120);
            assert_eq!(s_on.distinct, 4, "four structural fingerprints");
            assert_eq!(s_off.distinct, 120, "dedup off: no collapsing");
        }
    }

    #[test]
    fn dedup_matches_naive_for_edges() {
        let mut nodes = Vec::new();
        let mut edges = Vec::new();
        for i in 0..40u64 {
            nodes.push(Node::new(i, LabelSet::single("Person")).with_prop("name", "n"));
            nodes.push(Node::new(100 + i, LabelSet::single("Org")).with_prop("url", "u"));
            edges.push(EdgeRecord {
                edge: Edge::new(
                    1000 + i,
                    NodeId(i),
                    NodeId(i + 1),
                    LabelSet::single("KNOWS"),
                ),
                src_labels: LabelSet::single("Person"),
                tgt_labels: LabelSet::single("Person"),
            });
            edges.push(EdgeRecord {
                edge: Edge::new(
                    2000 + i,
                    NodeId(i),
                    NodeId(100 + i),
                    LabelSet::single("WORKS_AT"),
                )
                .with_prop("from", 2020 + i as i64),
                src_labels: LabelSet::single("Person"),
                tgt_labels: LabelSet::single("Org"),
            });
        }
        let on = quick_cfg(LshMethod::Elsh);
        let off = quick_cfg(LshMethod::Elsh).with_dedup(false);
        let fs = FeatureSpace::build(&nodes, &edges, &on.embedding, on.seed);
        let (c_on, p_on, s_on) = cluster_edges(&edges, &fs, &on);
        let (c_off, p_off, _) = cluster_edges(&edges, &fs, &off);
        assert_eq!(p_on, p_off);
        assert_eq!(c_on.len(), c_off.len());
        for (a, b) in c_on.iter().zip(&c_off) {
            assert_eq!(a.labels, b.labels);
            assert_eq!(a.src_labels, b.src_labels);
            assert_eq!(a.tgt_labels, b.tgt_labels);
            assert_eq!(a.accum.members, b.accum.members);
        }
        assert_eq!(s_on.distinct, 2);
    }
}
