//! The one-shot pipeline façade and the discovery result type.

use crate::config::HiveConfig;
use crate::incremental::{BatchTiming, HiveSession};
use crate::state::DiscoveryState;
use pg_lsh::AdaptiveParams;
use pg_model::{EdgeId, NodeId, PropertyGraph, SchemaGraph, TypeId};
use pg_store::{load, EdgeRecord, NodeRecord};
use std::collections::HashMap;

/// The output of schema discovery: the schema graph plus everything an
/// evaluation or downstream tool needs — instance assignments, the
/// statistics accumulators, the adaptive parameters used, and timings.
#[derive(Debug)]
pub struct DiscoveryResult {
    /// The inferred schema (Definition 3.4), with constraints, data
    /// types, and cardinalities if post-processing ran.
    pub schema: SchemaGraph,
    /// Full discovery state (the same schema + per-type accumulators,
    /// including member ids and data-type histograms).
    pub state: DiscoveryState,
    /// Adaptive LSH parameters used for node clustering (None if manual).
    pub node_params: Option<AdaptiveParams>,
    /// Adaptive LSH parameters used for edge clustering (None if manual).
    pub edge_params: Option<AdaptiveParams>,
    /// Per-batch timings.
    pub timings: Vec<BatchTiming>,
}

impl DiscoveryResult {
    /// Node → type assignment.
    pub fn node_assignment(&self) -> HashMap<NodeId, TypeId> {
        let mut out = HashMap::new();
        for (tid, acc) in &self.state.node_accums {
            for &n in &acc.members {
                out.insert(n, *tid);
            }
        }
        out
    }

    /// Edge → type assignment.
    pub fn edge_assignment(&self) -> HashMap<EdgeId, TypeId> {
        let mut out = HashMap::new();
        for (tid, acc) in &self.state.edge_accums {
            for &e in &acc.members {
                out.insert(e, *tid);
            }
        }
        out
    }

    /// Members of each node type (cluster contents, for evaluation).
    pub fn node_members(&self) -> HashMap<TypeId, Vec<NodeId>> {
        self.state
            .node_accums
            .iter()
            .map(|(t, a)| (*t, a.members.clone()))
            .collect()
    }

    /// Members of each edge type.
    pub fn edge_members(&self) -> HashMap<TypeId, Vec<EdgeId>> {
        self.state
            .edge_accums
            .iter()
            .map(|(t, a)| (*t, a.members.clone()))
            .collect()
    }

    /// Total wall-clock time across batches.
    pub fn total_time(&self) -> std::time::Duration {
        self.timings.iter().map(|t| t.total).sum()
    }
}

/// The PG-HIVE schema-discovery engine.
#[derive(Debug, Clone)]
pub struct PgHive {
    config: HiveConfig,
}

impl PgHive {
    /// Create an engine with the given configuration.
    pub fn new(config: HiveConfig) -> PgHive {
        PgHive { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &HiveConfig {
        &self.config
    }

    /// Discover the schema of a full graph in one pass (the static
    /// module of §4.7): load → preprocess → cluster → extract →
    /// post-process.
    pub fn discover_graph(&self, graph: &PropertyGraph) -> DiscoveryResult {
        let (nodes, edges) = load(graph);
        self.discover(&nodes, &edges)
    }

    /// Discover the schema from pre-loaded records.
    pub fn discover(&self, nodes: &[NodeRecord], edges: &[EdgeRecord]) -> DiscoveryResult {
        let mut session = HiveSession::new(self.config.clone());
        session.process_batch(nodes, edges);
        session.finish()
    }

    /// Shard-parallel discovery: partition the graph, discover each
    /// shard on its own worker thread, and merge the results via the
    /// monotone schema merge (see [`crate::merge::discover_sharded`]).
    /// Errors only on `n_shards == 0`.
    pub fn discover_graph_sharded(
        &self,
        graph: &PropertyGraph,
        n_shards: usize,
    ) -> Result<DiscoveryResult, crate::merge::MergeError> {
        crate::merge::discover_sharded(graph, n_shards, &self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EmbeddingKind;
    use crate::fixtures::figure1;
    use pg_model::{CardinalityClass, DataType, Presence, PropertyGraph};

    fn quick_config() -> HiveConfig {
        let mut c = HiveConfig::default();
        if let EmbeddingKind::Word2Vec(ref mut w) = c.embedding {
            w.dim = 5;
            w.epochs = 2;
        }
        c
    }

    #[test]
    fn figure1_end_to_end() {
        let r = PgHive::new(quick_config()).discover_graph(&figure1());
        // Four node types: Person (absorbing Alice), Org, Post, Place.
        assert_eq!(r.schema.node_types.len(), 4, "schema:\n{}", r.schema);
        // Four edge types.
        assert_eq!(r.schema.edge_types.len(), 4);

        let person = r
            .schema
            .node_types
            .iter()
            .find(|t| t.labels.contains("Person"))
            .unwrap();
        assert_eq!(
            r.state.node_accums[&person.id].count, 3,
            "Alice merged into Person via Jaccard"
        );
        // Mandatory name/gender/bday (Example 6).
        for key in ["name", "gender", "bday"] {
            assert_eq!(
                person.properties[&pg_model::sym(key)].presence,
                Some(Presence::Mandatory),
                "{key}"
            );
        }
        assert_eq!(
            person.properties[&pg_model::sym("bday")].datatype,
            Some(DataType::Date)
        );

        // Post has two optional structure-split properties.
        let post = r
            .schema
            .node_types
            .iter()
            .find(|t| t.labels.contains("Post"))
            .unwrap();
        assert_eq!(
            post.properties[&pg_model::sym("imgFile")].presence,
            Some(Presence::Optional)
        );

        // WORKS_AT connects Person → Org (Example 8 shape).
        let works = r
            .schema
            .edge_types
            .iter()
            .find(|t| t.labels.contains("WORKS_AT"))
            .unwrap();
        assert!(works.src_labels.contains("Person"));
        assert!(works.tgt_labels.contains("Org"));
        assert_eq!(
            works.cardinality.unwrap().class(),
            CardinalityClass::OneToOne,
            "single observed pair"
        );
    }

    #[test]
    fn minhash_variant_also_discovers_figure1() {
        let mut cfg = quick_config();
        cfg.method = crate::config::LshMethod::MinHash;
        let r = PgHive::new(cfg).discover_graph(&figure1());
        assert_eq!(r.schema.node_types.len(), 4, "schema:\n{}", r.schema);
        assert_eq!(r.schema.edge_types.len(), 4);
    }

    #[test]
    fn assignments_cover_every_element() {
        let g = figure1();
        let r = PgHive::new(quick_config()).discover_graph(&g);
        let na = r.node_assignment();
        let ea = r.edge_assignment();
        assert_eq!(na.len(), g.node_count());
        assert_eq!(ea.len(), g.edge_count());
        for n in g.nodes() {
            assert!(na.contains_key(&n.id), "node {:?} unassigned", n.id);
        }
    }

    #[test]
    fn type_completeness_guarantee() {
        // §4.7: every node's labels and properties are covered by a type.
        let g = figure1();
        let r = PgHive::new(quick_config()).discover_graph(&g);
        let (bad_nodes, bad_edges) = r.schema.uncovered_elements(&g);
        assert!(bad_nodes.is_empty(), "uncovered nodes: {bad_nodes:?}");
        assert!(bad_edges.is_empty(), "uncovered edges: {bad_edges:?}");
    }

    #[test]
    fn empty_graph_discovers_empty_schema() {
        let r = PgHive::new(quick_config()).discover_graph(&PropertyGraph::new());
        assert_eq!(r.schema.type_count(), 0);
        assert!(r.node_assignment().is_empty());
    }

    #[test]
    fn determinism_same_seed_same_schema() {
        let g = figure1();
        let a = PgHive::new(quick_config()).discover_graph(&g);
        let b = PgHive::new(quick_config()).discover_graph(&g);
        assert_eq!(a.schema, b.schema);
    }
}
