//! Distributed discovery: the monotone schema merge of §4.6 lifted from
//! batches-within-a-session to whole per-shard discovery results.
//!
//! Every step of Algorithm 1's merge is a set union or an integer-additive
//! accumulator fold, so merging is commutative and associative up to type
//! renumbering. This module makes that a first-class, *canonical*
//! operation:
//!
//! * **Type alignment by structural fingerprint** — every per-shard type
//!   re-enters Algorithm 2 as a cluster (labels, key set, accumulator):
//!   labeled types align by exact label set (plus endpoint label sets for
//!   edges, with unlabeled endpoints as wildcards), unlabeled types by
//!   property-set Jaccard ≥ θ against labeled then abstract types.
//! * **Union of property sets with mandatory-key intersection** —
//!   per-key presence counts add across shards, so a key is MANDATORY in
//!   the merged type iff it is present in every instance of every shard.
//! * **Histogram and cardinality merging** — [`NodeTypeAccum::merge`] /
//!   [`EdgeTypeAccum::merge`] fold the per-type statistics; data types,
//!   constraints, and cardinalities are then re-derived from the merged
//!   accumulators, never averaged from per-shard summaries.
//! * **Deterministic renumbering** — input types are folded in a canonical
//!   order and the merged state is renumbered canonically, so the result
//!   is bit-identical regardless of shard order or shard count.
//!
//! [`discover_sharded`] builds on this: partition the graph with
//! [`pg_store::split_batches`], run independent discovery sessions on
//! worker threads, and merge. With full-scan data-type inference (the
//! default), the merged schema's [`crate::serialize::content_hash`] equals
//! single-node discovery's on label-clean inputs — the
//! `merge_equivalence` suite proves this property-based; sampled
//! data-type inference draws from a sequential RNG whose stream depends
//! on type order, so only the full-scan mode carries the bit-equality
//! guarantee.

use crate::cardinality::compute_cardinalities;
use crate::cluster::{EdgeCluster, NodeCluster};
use crate::config::HiveConfig;
use crate::constraints::infer_property_constraints;
use crate::datatypes::infer_datatypes;
use crate::extract::{integrate_edge_clusters_opts, integrate_node_clusters_opts, MergeOptions};
use crate::pipeline::{DiscoveryResult, PgHive};
use crate::serialize::{edge_line, node_line};
use crate::state::{DiscoveryState, DtypeHist, EdgeTypeAccum, NodeTypeAccum};
use pg_model::{
    DataType, EdgeType, NodeType, Presence, PropertyGraph, SchemaGraph, Symbol, TypeId,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

/// Salt applied to the config seed before [`pg_store::split_batches`], so
/// shard partitioning and any user-level batch splitting with the same
/// seed stay decorrelated.
pub const SHARD_SPLIT_SALT: u64 = 0xd15c0;

/// Why a merge could not run. Merging is total on non-empty input — the
/// only failures are structural misuse, never data content.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeError {
    /// An empty list of schemas/states has no well-defined merge (the
    /// identity element exists, but callers passing nothing almost always
    /// hold a bug — return an error instead of inventing an empty schema).
    EmptyInput,
    /// `discover_sharded` was asked for zero shards.
    ZeroShards,
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::EmptyInput => write!(f, "cannot merge an empty list of schemas"),
            MergeError::ZeroShards => write!(f, "shard count must be positive"),
        }
    }
}

impl std::error::Error for MergeError {}

/// A serializable snapshot of one shard's discovery state: the schema plus
/// the per-type accumulators, with map keys flattened to sorted pairs so
/// the JSON round-trips (`TypeId` map keys do not). This is the exchange
/// format of the `pg-hive merge` CLI and `POST /sessions/{id}/merge` —
/// unlike a bare [`SchemaGraph`], it carries enough statistics to
/// reproduce global constraints, data types, and cardinalities exactly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardState {
    /// The shard's inferred schema.
    pub schema: SchemaGraph,
    /// Node accumulators as `(type id, accumulator)` pairs, sorted by id.
    pub node_accums: Vec<(TypeId, NodeTypeAccum)>,
    /// Edge accumulators as `(type id, accumulator)` pairs, sorted by id.
    pub edge_accums: Vec<(TypeId, EdgeTypeAccum)>,
}

impl ShardState {
    /// Snapshot a discovery state.
    pub fn from_state(state: &DiscoveryState) -> ShardState {
        let mut node_accums: Vec<(TypeId, NodeTypeAccum)> = state
            .node_accums
            .iter()
            .map(|(id, acc)| (*id, acc.clone()))
            .collect();
        node_accums.sort_by_key(|(id, _)| *id);
        let mut edge_accums: Vec<(TypeId, EdgeTypeAccum)> = state
            .edge_accums
            .iter()
            .map(|(id, acc)| (*id, acc.clone()))
            .collect();
        edge_accums.sort_by_key(|(id, _)| *id);
        ShardState {
            schema: state.schema.clone(),
            node_accums,
            edge_accums,
        }
    }

    /// Rebuild the discovery state.
    pub fn into_state(self) -> DiscoveryState {
        DiscoveryState {
            schema: self.schema,
            node_accums: self.node_accums.into_iter().collect(),
            edge_accums: self.edge_accums.into_iter().collect(),
        }
    }
}

/// Merge per-shard discovery states into one canonical state.
///
/// Uses `config` for the Algorithm 2 alignment knobs (θ, similarity,
/// endpoint awareness) and for post-processing (constraints, data types,
/// cardinalities — recomputed from the merged accumulators when
/// `config.post_processing` is set). Errors on an empty input list.
pub fn merge_states(
    states: &[DiscoveryState],
    config: &HiveConfig,
) -> Result<DiscoveryState, MergeError> {
    if states.is_empty() {
        return Err(MergeError::EmptyInput);
    }
    let mut node_clusters: Vec<NodeCluster> = Vec::new();
    let mut edge_clusters: Vec<EdgeCluster> = Vec::new();
    for state in states {
        let (nodes, edges) = clusters_of(state);
        node_clusters.extend(nodes);
        edge_clusters.extend(edges);
    }
    // Canonical input order: integration decisions (and thus the merged
    // state) depend only on the multiset of per-shard types, never on the
    // order or grouping of the shard list.
    node_clusters.sort_by_cached_key(node_cluster_key);
    edge_clusters.sort_by_cached_key(edge_cluster_key);

    let opts = MergeOptions::from_config(config);
    let mut state = DiscoveryState::new();
    integrate_node_clusters_opts(&mut state, node_clusters, opts);
    integrate_edge_clusters_opts(&mut state, edge_clusters, opts);

    let mut state = canonicalize(state);
    if config.post_processing {
        infer_property_constraints(&mut state);
        infer_datatypes(&mut state, config.datatype_sampling, config.seed);
        compute_cardinalities(&mut state);
    }
    Ok(state)
}

/// Merge bare schemas (no accumulators) with default alignment settings.
///
/// Statistics are reconstructed from each schema's own claims
/// (`instance_count`, presence flags, data types, cardinalities), so the
/// merged constraints follow the pessimistic algebra: a key stays
/// MANDATORY only if every contributing type with instances declares it
/// mandatory; data types join on the lattice; cardinalities take the
/// per-component maxima (an observed floor, not a recomputed global —
/// use [`ShardState`]s / [`merge_states`] when exact global statistics
/// matter). Unknown presence is normalized to OPTIONAL.
pub fn merge_schemas(schemas: &[SchemaGraph]) -> Result<SchemaGraph, MergeError> {
    merge_schemas_with(schemas, &HiveConfig::default())
}

/// [`merge_schemas`] with explicit alignment/post-processing settings.
pub fn merge_schemas_with(
    schemas: &[SchemaGraph],
    config: &HiveConfig,
) -> Result<SchemaGraph, MergeError> {
    if schemas.is_empty() {
        return Err(MergeError::EmptyInput);
    }
    let states: Vec<DiscoveryState> = schemas.iter().map(schema_to_state).collect();
    Ok(merge_states(&states, config)?.schema)
}

/// Lift a bare schema into a discovery state by synthesizing the
/// accumulators its specs imply (see [`merge_schemas`] for the algebra).
pub fn schema_to_state(schema: &SchemaGraph) -> DiscoveryState {
    let mut state = DiscoveryState {
        schema: schema.clone(),
        node_accums: HashMap::new(),
        edge_accums: HashMap::new(),
    };
    for t in &schema.node_types {
        state.node_accums.insert(t.id, synthetic_node_accum(t));
    }
    for t in &schema.edge_types {
        state.edge_accums.insert(t.id, synthetic_edge_accum(t));
    }
    state
}

/// Shard-parallel discovery: partition `graph` into `n_shards` via
/// [`pg_store::split_batches`] (seeded with `config.seed ^
/// SHARD_SPLIT_SALT`), run an independent discovery session per shard on
/// its own worker thread, and [`merge_states`] the results.
///
/// Edge endpoint labels are resolved against the full graph before
/// partitioning, so shards see the same records a single-node run would.
/// With the default full-scan data-type inference the merged schema is
/// content-hash-equal to single-node discovery whenever type alignment is
/// unambiguous (in particular on label-clean graphs); the
/// `merge_equivalence` suite pins this down.
pub fn discover_sharded(
    graph: &PropertyGraph,
    n_shards: usize,
    config: &HiveConfig,
) -> Result<DiscoveryResult, MergeError> {
    if n_shards == 0 {
        return Err(MergeError::ZeroShards);
    }
    let batches = pg_store::split_batches(graph, n_shards, config.seed ^ SHARD_SPLIT_SALT);
    let hive = PgHive::new(config.clone());
    let results: Vec<DiscoveryResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = batches
            .iter()
            .map(|batch| {
                let hive = &hive;
                scope.spawn(move || hive.discover(&batch.nodes, &batch.edges))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard discovery worker panicked"))
            .collect()
    });
    let mut timings = Vec::new();
    let mut states = Vec::with_capacity(results.len());
    for r in results {
        timings.extend(r.timings);
        states.push(r.state);
    }
    let state = merge_states(&states, config)?;
    Ok(DiscoveryResult {
        schema: state.schema.clone(),
        state,
        node_params: None,
        edge_params: None,
        timings,
    })
}

/// Re-express every type of `state` as an Algorithm 2 input cluster,
/// carrying the real accumulator when the state has one and a synthetic
/// reconstruction (see [`merge_schemas`]) otherwise.
fn clusters_of(state: &DiscoveryState) -> (Vec<NodeCluster>, Vec<EdgeCluster>) {
    let mut node_clusters = Vec::with_capacity(state.schema.node_types.len());
    for t in &state.schema.node_types {
        let accum = state
            .node_accums
            .get(&t.id)
            .cloned()
            .unwrap_or_else(|| synthetic_node_accum(t));
        node_clusters.push(NodeCluster {
            labels: t.labels.clone(),
            keys: t.key_set(),
            accum,
        });
    }
    let mut edge_clusters = Vec::with_capacity(state.schema.edge_types.len());
    for t in &state.schema.edge_types {
        let accum = state
            .edge_accums
            .get(&t.id)
            .cloned()
            .unwrap_or_else(|| synthetic_edge_accum(t));
        edge_clusters.push(EdgeCluster {
            labels: t.labels.clone(),
            keys: t.key_set(),
            src_labels: t.src_labels.clone(),
            tgt_labels: t.tgt_labels.clone(),
            accum,
        });
    }
    (node_clusters, edge_clusters)
}

/// Fold `foreign` into a live `state` *without* renumbering: existing
/// type ids survive (so a session's memoization caches stay valid) and
/// foreign types re-enter Algorithm 2 as clusters exactly as
/// [`merge_states`] would feed them. Post-processing is the caller's
/// job — a live session re-derives constraints/datatypes/cardinalities
/// on its own cadence.
pub(crate) fn fold_state(
    state: &mut DiscoveryState,
    foreign: &DiscoveryState,
    config: &HiveConfig,
) {
    let (mut node_clusters, mut edge_clusters) = clusters_of(foreign);
    node_clusters.sort_by_cached_key(node_cluster_key);
    edge_clusters.sort_by_cached_key(edge_cluster_key);
    let opts = MergeOptions::from_config(config);
    integrate_node_clusters_opts(state, node_clusters, opts);
    integrate_edge_clusters_opts(state, edge_clusters, opts);
}

/// Renumber a state canonically: types sorted by their canonical-form
/// line (the same rendering [`crate::serialize::canonical_form`] hashes),
/// ids reassigned densely in that order, accumulator members and
/// endpoints sorted. Two states describing the same types become
/// bit-identical.
fn canonicalize(state: DiscoveryState) -> DiscoveryState {
    let DiscoveryState {
        schema,
        mut node_accums,
        mut edge_accums,
    } = state;
    let mut node_types = schema.node_types;
    node_types.sort_by_cached_key(node_line);
    let mut edge_types = schema.edge_types;
    edge_types.sort_by_cached_key(edge_line);

    let mut out = SchemaGraph::new();
    let mut new_node_accums = HashMap::new();
    for t in node_types {
        let mut acc = node_accums.remove(&t.id).unwrap_or_default();
        acc.members.sort_unstable();
        let id = out.push_node_type(t);
        new_node_accums.insert(id, acc);
    }
    let mut new_edge_accums = HashMap::new();
    for t in edge_types {
        let mut acc = edge_accums.remove(&t.id).unwrap_or_default();
        acc.members.sort_unstable();
        acc.endpoints.sort_unstable();
        let id = out.push_edge_type(t);
        new_edge_accums.insert(id, acc);
    }
    DiscoveryState {
        schema: out,
        node_accums: new_node_accums,
        edge_accums: new_edge_accums,
    }
}

/// Accumulator a bare node type implies: MANDATORY keys present on every
/// instance, OPTIONAL (or unknown) keys on all but one — enough for
/// constraint re-inference to reproduce the declared presence whenever
/// `instance_count > 0`. Declared data types become single-slot
/// histograms so the lattice join over shards matches
/// [`pg_model::DataType::join`].
fn synthetic_node_accum(t: &NodeType) -> NodeTypeAccum {
    let mut acc = NodeTypeAccum {
        count: t.instance_count,
        ..NodeTypeAccum::default()
    };
    synthesize_props(
        t.instance_count,
        &t.properties,
        &mut acc.key_present,
        &mut acc.dtype_hist,
    );
    acc
}

/// Edge-type counterpart of [`synthetic_node_accum`]. No endpoint pairs
/// exist to recompute cardinality from, so the declared cardinality is
/// carried as the accumulator's floor (see [`EdgeTypeAccum::card_floor`]).
fn synthetic_edge_accum(t: &EdgeType) -> EdgeTypeAccum {
    let mut acc = EdgeTypeAccum {
        count: t.instance_count,
        card_floor: t.cardinality,
        ..EdgeTypeAccum::default()
    };
    synthesize_props(
        t.instance_count,
        &t.properties,
        &mut acc.key_present,
        &mut acc.dtype_hist,
    );
    acc
}

fn synthesize_props(
    count: u64,
    properties: &std::collections::BTreeMap<Symbol, pg_model::PropertySpec>,
    key_present: &mut HashMap<Symbol, u64>,
    dtype_hist: &mut HashMap<Symbol, DtypeHist>,
) {
    for (key, spec) in properties {
        let present = match spec.presence {
            Some(Presence::Mandatory) => count,
            Some(Presence::Optional) | None => count.saturating_sub(1),
        };
        key_present.insert(key.clone(), present);
        if let Some(dt) = spec.datatype {
            let mut hist = DtypeHist::default();
            // At least one observation even for never-present optional
            // keys, so the declared data type survives re-inference.
            hist.observe_n(dt, present.max(1));
            dtype_hist.insert(key.clone(), hist);
        }
    }
}

const ALL_DTYPES: [DataType; 6] = [
    DataType::Int,
    DataType::Float,
    DataType::Bool,
    DataType::Date,
    DataType::DateTime,
    DataType::Str,
];

/// Total order over node clusters: structural identity first (labels,
/// keys), then the full accumulator fingerprint so even statistically
/// distinct twins order deterministically.
fn node_cluster_key(c: &NodeCluster) -> String {
    let mut s = format!("{}\u{1f}", c.labels);
    for k in &c.keys {
        let _ = write!(s, "{k},");
    }
    accum_fingerprint(
        &mut s,
        c.accum.count,
        &c.accum.key_present,
        &c.accum.dtype_hist,
    );
    s
}

/// Total order over edge clusters (labels, endpoints, keys, statistics).
fn edge_cluster_key(c: &EdgeCluster) -> String {
    let mut s = format!(
        "{}\u{1f}{}\u{1f}{}\u{1f}",
        c.labels, c.src_labels, c.tgt_labels
    );
    for k in &c.keys {
        let _ = write!(s, "{k},");
    }
    accum_fingerprint(
        &mut s,
        c.accum.count,
        &c.accum.key_present,
        &c.accum.dtype_hist,
    );
    let _ = write!(s, "\u{1f}{}", c.accum.endpoints.len());
    if let Some(card) = c.accum.card_floor {
        let _ = write!(s, "\u{1f}{}:{}", card.max_out, card.max_in);
    }
    s
}

fn accum_fingerprint(
    out: &mut String,
    count: u64,
    key_present: &HashMap<Symbol, u64>,
    dtype_hist: &HashMap<Symbol, DtypeHist>,
) {
    let _ = write!(out, "\u{1f}{count}");
    let mut present: Vec<(&Symbol, &u64)> = key_present.iter().collect();
    present.sort();
    for (k, n) in present {
        let _ = write!(out, "|{k}:{n}");
    }
    let mut hists: Vec<&Symbol> = dtype_hist.keys().collect();
    hists.sort();
    for k in hists {
        let _ = write!(out, "|{k}~");
        for t in ALL_DTYPES {
            let _ = write!(out, "{},", dtype_hist[k].count(t));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize::content_hash;
    use pg_model::{sym, Cardinality, LabelSet, PropertySpec};

    fn labeled_type(labels: &[&str], count: u64, keys: &[(&str, DataType, Presence)]) -> NodeType {
        let mut t = NodeType::new(TypeId(0), LabelSet::from_iter(labels.iter().copied()), []);
        t.instance_count = count;
        for (k, dt, p) in keys {
            t.properties.insert(
                sym(k),
                PropertySpec {
                    datatype: Some(*dt),
                    presence: Some(*p),
                },
            );
        }
        t
    }

    #[test]
    fn empty_input_is_a_typed_error() {
        assert_eq!(merge_schemas(&[]), Err(MergeError::EmptyInput));
        assert_eq!(
            merge_states(&[], &HiveConfig::default()).map(|_| ()),
            Err(MergeError::EmptyInput)
        );
        assert!(MergeError::EmptyInput.to_string().contains("empty"));
    }

    #[test]
    fn zero_shards_is_a_typed_error() {
        let g = PropertyGraph::new();
        let err = discover_sharded(&g, 0, &HiveConfig::default())
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err, MergeError::ZeroShards);
    }

    #[test]
    fn identity_merge_with_empty_schema() {
        let mut s = SchemaGraph::new();
        s.push_node_type(labeled_type(
            &["Person"],
            3,
            &[("name", DataType::Str, Presence::Mandatory)],
        ));
        let merged = merge_schemas(&[s.clone(), SchemaGraph::new()]).unwrap();
        let alone = merge_schemas(&[s]).unwrap();
        assert_eq!(merged, alone);
        assert_eq!(content_hash(&merged), content_hash(&alone));
    }

    #[test]
    fn mandatory_key_demotes_when_a_shard_lacks_it() {
        let mut a = SchemaGraph::new();
        a.push_node_type(labeled_type(
            &["Person"],
            4,
            &[
                ("name", DataType::Str, Presence::Mandatory),
                ("age", DataType::Int, Presence::Mandatory),
            ],
        ));
        let mut b = SchemaGraph::new();
        b.push_node_type(labeled_type(
            &["Person"],
            2,
            &[("name", DataType::Str, Presence::Mandatory)],
        ));
        let merged = merge_schemas(&[a, b]).unwrap();
        assert_eq!(merged.node_types.len(), 1);
        let t = &merged.node_types[0];
        assert_eq!(t.instance_count, 6);
        assert_eq!(
            t.properties[&sym("name")].presence,
            Some(Presence::Mandatory),
            "present in all 6 instances"
        );
        assert_eq!(
            t.properties[&sym("age")].presence,
            Some(Presence::Optional),
            "absent from shard b's instances"
        );
    }

    #[test]
    fn datatypes_join_on_the_lattice() {
        let mut a = SchemaGraph::new();
        a.push_node_type(labeled_type(
            &["M"],
            1,
            &[("x", DataType::Int, Presence::Mandatory)],
        ));
        let mut b = SchemaGraph::new();
        b.push_node_type(labeled_type(
            &["M"],
            1,
            &[("x", DataType::Float, Presence::Mandatory)],
        ));
        let merged = merge_schemas(&[a, b]).unwrap();
        assert_eq!(
            merged.node_types[0].properties[&sym("x")].datatype,
            Some(DataType::Float),
            "int ⊔ float = float"
        );
    }

    #[test]
    fn edge_cardinality_floor_survives_schema_merge() {
        let mk = |max_out, max_in| {
            let mut s = SchemaGraph::new();
            let person = labeled_type(&["Person"], 2, &[]);
            let labels = person.labels.clone();
            s.push_node_type(person);
            let mut e = EdgeType::new(
                TypeId(0),
                LabelSet::single("KNOWS"),
                [],
                labels.clone(),
                labels,
            );
            e.instance_count = 2;
            e.cardinality = Some(Cardinality { max_out, max_in });
            s.push_edge_type(e);
            s
        };
        let merged = merge_schemas(&[mk(1, 3), mk(2, 1)]).unwrap();
        assert_eq!(merged.edge_types.len(), 1);
        assert_eq!(
            merged.edge_types[0].cardinality,
            Some(Cardinality {
                max_out: 2,
                max_in: 3
            }),
            "per-component maxima"
        );
    }

    #[test]
    fn merge_is_invariant_under_input_order() {
        let mut a = SchemaGraph::new();
        a.push_node_type(labeled_type(
            &["Person"],
            4,
            &[("name", DataType::Str, Presence::Mandatory)],
        ));
        let mut b = SchemaGraph::new();
        b.push_node_type(labeled_type(
            &["Org"],
            2,
            &[("url", DataType::Str, Presence::Optional)],
        ));
        let ab = merge_schemas(&[a.clone(), b.clone()]).unwrap();
        let ba = merge_schemas(&[b, a]).unwrap();
        assert_eq!(ab, ba, "bit-identical, ids included");
    }
}
