//! The incremental pipeline (Algorithm 1 / §4.6).
//!
//! A [`HiveSession`] owns the running [`DiscoveryState`] and processes
//! batch after batch: featurize → cluster → extract/merge. Post-processing
//! can run after each batch (the `postProcessing` flag) or once at the
//! end. Because every merge is monotone, the schema after batch `i+1`
//! generalizes the schema after batch `i`.

use crate::cluster::{cluster_edges, cluster_nodes, DedupStats};
use crate::config::HiveConfig;
use crate::constraints::infer_property_constraints;
use crate::datatypes::infer_datatypes;
use crate::extract::{integrate_edge_clusters_opts, integrate_node_clusters_opts};
use crate::features::FeatureSpace;
use crate::pipeline::DiscoveryResult;
use crate::state::DiscoveryState;
use pg_lsh::AdaptiveParams;
use pg_model::SchemaGraph;
use pg_store::{EdgeRecord, GraphBatch, NodeRecord};
use std::time::{Duration, Instant};

/// Wall-clock breakdown of one processed batch (Figure 7's data points).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchTiming {
    /// 0-based batch index within the session.
    pub batch_index: usize,
    /// Worker threads the batch ran with (resolved: the config's `0`
    /// becomes the actual default parallelism). Lets the bench harness
    /// report sequential-vs-parallel speedups next to the raw stage
    /// timings.
    pub threads: usize,
    /// Nodes in the batch.
    pub nodes: usize,
    /// Edges in the batch.
    pub edges: usize,
    /// Structural-fingerprint dedup of the node clustering pass
    /// (`records` = nodes that reached the hot path after memoization,
    /// `distinct` = fingerprints actually featurized/hashed; equal when
    /// `HiveConfig::dedup` is off).
    pub node_dedup: DedupStats,
    /// Dedup of the edge clustering pass.
    pub edge_dedup: DedupStats,
    /// Featurization time (vector building + embedder training).
    pub preprocess: Duration,
    /// LSH clustering time.
    pub cluster: Duration,
    /// Type extraction/merging time (Algorithm 2).
    pub extract: Duration,
    /// Post-processing time, if it ran for this batch.
    pub post: Option<Duration>,
    /// End-to-end batch time.
    pub total: Duration,
}

/// What one hot-path run hands back to [`HiveSession::process_batch`]:
/// stage durations plus the dedup statistics of the two clustering
/// passes.
struct HotPathOutcome {
    preprocess: Duration,
    cluster: Duration,
    extract: Duration,
    node_dedup: DedupStats,
    edge_dedup: DedupStats,
}

/// Which statistics representation a session's accumulators use. A
/// checkpoint records the mode it was written under so a resume can
/// refuse to mix exact lists with sketched estimates — the two carry
/// incompatible invariants (exact maxima vs KMV estimates), and a
/// silent mix would corrupt every downstream cardinality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum AccumMode {
    /// Exact member/endpoint lists (batch and incremental default).
    Exact,
    /// Sketched statistics (bounded-memory streaming mode).
    Sketch,
}

impl std::fmt::Display for AccumMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AccumMode::Exact => "exact",
            AccumMode::Sketch => "sketch",
        })
    }
}

/// Typed rejection of a cross-mode resume: the checkpoint was written
/// under one [`AccumMode`], the resuming configuration implies the
/// other. The CLI maps this to the state-error exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModeMismatch {
    /// Mode recorded in the checkpoint envelope.
    pub checkpoint: AccumMode,
    /// Mode the resuming session's configuration implies.
    pub session: AccumMode,
}

impl std::fmt::Display for ModeMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "checkpoint was written in {} accumulator mode but the session is configured for {} \
             mode; resume with a matching configuration instead of mixing statistics",
            self.checkpoint, self.session
        )
    }
}

impl std::error::Error for ModeMismatch {}

/// A serializable snapshot of a [`HiveSession`] (see
/// [`HiveSession::checkpoint`]). Maps are stored as pair lists so the
/// JSON form is stable and human-inspectable.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SessionCheckpoint {
    /// The schema discovered so far.
    pub schema: SchemaGraph,
    /// Node accumulators.
    pub node_accums: Vec<(pg_model::TypeId, crate::state::NodeTypeAccum)>,
    /// Edge accumulators.
    pub edge_accums: Vec<(pg_model::TypeId, crate::state::EdgeTypeAccum)>,
    /// Node memoization cache.
    pub node_cache: Vec<(NodePatternKey, pg_model::TypeId)>,
    /// Edge memoization cache.
    pub edge_cache: Vec<(EdgePatternKey, pg_model::TypeId)>,
    /// Cache hits so far.
    pub cache_hits: u64,
    /// Batches processed before the checkpoint.
    pub batches_processed: usize,
    /// Accumulator mode the checkpoint was written under. `None` in
    /// checkpoints from before streaming mode existed — those were
    /// always exact.
    pub mode: Option<AccumMode>,
    /// Bounded node-pattern memoization store (stream mode only).
    pub node_fps: Option<crate::sketch::FingerprintStore<NodePatternKey, pg_model::TypeId>>,
    /// Bounded edge-pattern memoization store (stream mode only).
    pub edge_fps: Option<crate::sketch::FingerprintStore<EdgePatternKey, pg_model::TypeId>>,
}

impl SessionCheckpoint {
    /// The accumulator mode this checkpoint was written under
    /// (pre-stream checkpoints default to exact).
    pub fn accum_mode(&self) -> AccumMode {
        self.mode.unwrap_or(AccumMode::Exact)
    }
}

/// Pattern key for node memoization: (labels, property keys).
type NodePatternKey = (
    pg_model::LabelSet,
    std::collections::BTreeSet<pg_model::Symbol>,
);
/// Pattern key for edge memoization: (labels, keys, src labels, tgt labels).
type EdgePatternKey = (
    pg_model::LabelSet,
    std::collections::BTreeSet<pg_model::Symbol>,
    pg_model::LabelSet,
    pg_model::LabelSet,
);

/// Estimated memory retained by a session's long-lived state (see
/// [`HiveSession::memory_stats`]). All figures are estimates for
/// observability gauges, not allocator ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionMemoryStats {
    /// Accumulator heap bytes (members, endpoints, histograms,
    /// sketches). Grows O(records) in exact mode; bounded in stream
    /// mode.
    pub accum_bytes: usize,
    /// Entries across the memoization stores: the bounded fingerprint
    /// stores in stream mode, the exact pattern maps otherwise.
    pub fingerprint_entries: usize,
    /// Estimated bytes of those stores.
    pub fingerprint_bytes: usize,
}

/// An incremental schema-discovery session.
pub struct HiveSession {
    config: HiveConfig,
    state: DiscoveryState,
    /// Batches applied before this process (restored from a
    /// checkpoint). Batch indices — and therefore per-batch seeds —
    /// continue from here, so a resumed session is bit-identical to an
    /// uninterrupted one.
    batch_offset: usize,
    timings: Vec<BatchTiming>,
    node_params: Option<AdaptiveParams>,
    edge_params: Option<AdaptiveParams>,
    node_cache: std::collections::HashMap<NodePatternKey, pg_model::TypeId>,
    edge_cache: std::collections::HashMap<EdgePatternKey, pg_model::TypeId>,
    /// Stream-mode replacements for the memoization maps above: bounded
    /// fingerprint stores with frequency-aware eviction, so a drifting
    /// pattern universe cannot grow the caches without bound. `Some`
    /// exactly when the config enables streaming.
    node_fps: Option<crate::sketch::FingerprintStore<NodePatternKey, pg_model::TypeId>>,
    edge_fps: Option<crate::sketch::FingerprintStore<EdgePatternKey, pg_model::TypeId>>,
    /// Types whose first (type-defining) pattern was pinned in the
    /// fingerprint stores. Rebuilt from the stores on restore.
    pinned_node_types: std::collections::HashSet<pg_model::TypeId>,
    pinned_edge_types: std::collections::HashSet<pg_model::TypeId>,
    cache_hits: u64,
    /// Cross-batch incremental degree state for cardinality inference:
    /// per-batch post-processing folds in only the endpoint pairs
    /// appended since the last pass instead of rescanning every edge
    /// ever ingested. Not serialized — a restored session rebuilds it
    /// with one full scan on its first post-processing pass, which is
    /// bit-identical.
    card_cache: crate::cardinality::CardCache,
    /// The batch worker pool, built on first use and reused for every
    /// subsequent batch (see `process_batch`).
    pool: Option<rayon::ThreadPool>,
}

impl HiveSession {
    /// Start a session with an empty schema (`S_G ← ∅`).
    pub fn new(config: HiveConfig) -> HiveSession {
        let fps_bounds = config
            .stream
            .as_ref()
            .map(|s| (s.fingerprint_capacity, s.frequency_floor));
        HiveSession {
            config,
            state: DiscoveryState::new(),
            batch_offset: 0,
            timings: Vec::new(),
            node_params: None,
            edge_params: None,
            node_cache: std::collections::HashMap::new(),
            edge_cache: std::collections::HashMap::new(),
            node_fps: fps_bounds.map(|(c, f)| crate::sketch::FingerprintStore::new(c, f)),
            edge_fps: fps_bounds.map(|(c, f)| crate::sketch::FingerprintStore::new(c, f)),
            pinned_node_types: std::collections::HashSet::new(),
            pinned_edge_types: std::collections::HashSet::new(),
            cache_hits: 0,
            card_cache: crate::cardinality::CardCache::default(),
            pool: None,
        }
    }

    /// The accumulator mode this session's configuration implies.
    pub fn accum_mode(&self) -> AccumMode {
        if self.config.stream.is_some() {
            AccumMode::Sketch
        } else {
            AccumMode::Exact
        }
    }

    /// Number of elements served from the memoization cache so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Total batches applied to this session's state, including batches
    /// restored from a checkpoint.
    pub fn batches_processed(&self) -> usize {
        self.batch_offset + self.timings.len()
    }

    /// The session configuration.
    pub fn config(&self) -> &HiveConfig {
        &self.config
    }

    /// The schema discovered so far.
    pub fn schema(&self) -> &SchemaGraph {
        &self.state.schema
    }

    /// The full running state (schema + accumulators).
    pub fn state(&self) -> &DiscoveryState {
        &self.state
    }

    /// Per-batch timings recorded so far.
    pub fn timings(&self) -> &[BatchTiming] {
        &self.timings
    }

    /// Process one batch of loaded records (Algorithm 1, lines 3–6, plus
    /// lines 7–10 when `post_processing` is set).
    pub fn process_batch(&mut self, nodes: &[NodeRecord], edges: &[EdgeRecord]) -> BatchTiming {
        let start = Instant::now();
        let batch_index = self.batches_processed();
        let batch_seed = self.config.seed.wrapping_add(batch_index as u64 * 0x9e37);
        let (batch_nodes, batch_edges) = (nodes.len(), edges.len());

        // Memoization (DiscoPG-style): elements whose exact pattern has
        // already been typed bypass the pipeline entirely. Only that
        // filter needs owned records — with memoization off the batch
        // slices are used as-is (cloning a million-record batch costs
        // whole seconds of page faults).
        let owned: Option<(Vec<NodeRecord>, Vec<EdgeRecord>)> = if self.config.memoize {
            let mut novel_nodes = Vec::new();
            for node in nodes {
                let key = (node.labels.clone(), node.key_set());
                // Stream mode serves lookups from the bounded
                // fingerprint store (touch also bumps the frequency
                // that ranks eviction); batch mode from the exact map.
                let hit = match &mut self.node_fps {
                    Some(fps) => fps.touch(&key).copied(),
                    None => self.node_cache.get(&key).copied(),
                };
                match hit {
                    Some(tid) => {
                        self.cache_hits += 1;
                        self.state
                            .node_accums
                            .get_mut(&tid)
                            .expect("cached type exists")
                            .observe(node);
                        if let Some(t) = self
                            .state
                            .schema
                            .node_types
                            .iter_mut()
                            .find(|t| t.id == tid)
                        {
                            t.instance_count += 1;
                        }
                    }
                    None => novel_nodes.push(node.clone()),
                }
            }
            let mut novel_edges = Vec::new();
            for rec in edges {
                let key = (
                    rec.edge.labels.clone(),
                    rec.edge.key_set(),
                    rec.src_labels.clone(),
                    rec.tgt_labels.clone(),
                );
                let hit = match &mut self.edge_fps {
                    Some(fps) => fps.touch(&key).copied(),
                    None => self.edge_cache.get(&key).copied(),
                };
                match hit {
                    Some(tid) => {
                        self.cache_hits += 1;
                        self.state
                            .edge_accums
                            .get_mut(&tid)
                            .expect("cached type exists")
                            .observe(&rec.edge);
                        if let Some(t) = self
                            .state
                            .schema
                            .edge_types
                            .iter_mut()
                            .find(|t| t.id == tid)
                        {
                            t.instance_count += 1;
                        }
                    }
                    None => novel_edges.push(rec.clone()),
                }
            }
            Some((novel_nodes, novel_edges))
        } else {
            None
        };
        let (nodes, edges) = match &owned {
            Some((n, e)) => (n.as_slice(), e.as_slice()),
            None => (nodes, edges),
        };

        // The parallel hot path runs under a thread pool sized by the
        // `threads` knob (0 = available parallelism, 1 = the exact
        // sequential path). Every parallel reduction inside is
        // deterministic, so the schema is bit-identical for any count.
        // The pool is built once and kept for the session's lifetime:
        // spawning worker threads per batch is milliseconds of fixed
        // cost that dominates small streamed batches.
        let pool = self.pool.take().unwrap_or_else(|| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(self.config.threads)
                .build()
                .expect("thread pool construction is infallible")
        });
        let threads = pool.current_num_threads();
        let hot = pool.install(|| self.batch_hot_path(nodes, edges, batch_seed));

        let post = if self.config.post_processing {
            let t3 = Instant::now();
            pool.install(|| self.post_process());
            Some(t3.elapsed())
        } else {
            None
        };
        self.pool = Some(pool);

        let timing = BatchTiming {
            batch_index,
            threads,
            nodes: batch_nodes,
            edges: batch_edges,
            node_dedup: hot.node_dedup,
            edge_dedup: hot.edge_dedup,
            preprocess: hot.preprocess,
            cluster: hot.cluster,
            extract: hot.extract,
            post,
            total: start.elapsed(),
        };
        self.timings.push(timing);
        timing
    }

    /// Featurize → cluster → extract/merge for one batch (Algorithm 1,
    /// lines 3–6). Runs inside the session's thread pool; returns the
    /// per-stage wall-clock durations plus the dedup statistics.
    fn batch_hot_path(
        &mut self,
        nodes: &[NodeRecord],
        edges: &[EdgeRecord],
        batch_seed: u64,
    ) -> HotPathOutcome {
        // Preprocess: train the embedder on the batch labels and build
        // the per-batch feature space.
        let t0 = Instant::now();
        let fs = FeatureSpace::build(nodes, edges, &self.config.embedding, batch_seed);
        let preprocess = t0.elapsed();

        // Cluster nodes and edges with LSH.
        let t1 = Instant::now();
        let mut cfg = self.config.clone();
        cfg.seed = batch_seed;
        let (node_clusters, np, node_dedup) = cluster_nodes(nodes, &fs, &cfg);
        let (edge_clusters, ep, edge_dedup) = cluster_edges(edges, &fs, &cfg);
        if np.is_some() {
            self.node_params = np;
        }
        if ep.is_some() {
            self.edge_params = ep;
        }
        let cluster = t1.elapsed();

        // Extract + merge into the running schema; remember per-cluster
        // member ids first so cache entries can be written afterwards.
        let t2 = Instant::now();
        let node_members: Vec<Vec<pg_model::NodeId>> = node_clusters
            .iter()
            .map(|c| c.accum.members.clone())
            .collect();
        let edge_members: Vec<Vec<pg_model::EdgeId>> = edge_clusters
            .iter()
            .map(|c| c.accum.members.clone())
            .collect();
        let merge_opts = crate::extract::MergeOptions::from_config(&self.config);
        let node_assignment =
            integrate_node_clusters_opts(&mut self.state, node_clusters, merge_opts);
        let edge_assignment =
            integrate_edge_clusters_opts(&mut self.state, edge_clusters, merge_opts);
        if merge_opts.stream.is_some() {
            // Sketched accumulators sample property *values* for
            // data-type inference, but cluster accumulators are exact
            // and values are gone by integration time — so feed each
            // record's values into its assigned type's sketch here.
            // (Member ids were already absorbed by the merge; bottom-k
            // re-observation would be idempotent anyway.)
            let by_id: std::collections::HashMap<pg_model::NodeId, &NodeRecord> =
                nodes.iter().map(|n| (n.id, n)).collect();
            for (members, tid) in node_members.iter().zip(&node_assignment) {
                let Some(sk) = self
                    .state
                    .node_accums
                    .get_mut(tid)
                    .and_then(|a| a.sketch.as_mut())
                else {
                    continue;
                };
                for id in members {
                    sk.observe_values(&by_id[id].props);
                }
            }
            let by_id: std::collections::HashMap<pg_model::EdgeId, &EdgeRecord> =
                edges.iter().map(|e| (e.edge.id, e)).collect();
            for (members, tid) in edge_members.iter().zip(&edge_assignment) {
                let Some(sk) = self
                    .state
                    .edge_accums
                    .get_mut(tid)
                    .and_then(|a| a.sketch.as_mut())
                else {
                    continue;
                };
                for id in members {
                    sk.observe_values(&by_id[id].edge.props);
                }
            }
        }
        if self.config.memoize {
            let by_id: std::collections::HashMap<pg_model::NodeId, &NodeRecord> =
                nodes.iter().map(|n| (n.id, n)).collect();
            for (members, &tid) in node_members.iter().zip(&node_assignment) {
                for id in members {
                    let node = by_id[id];
                    let key = (node.labels.clone(), node.key_set());
                    match &mut self.node_fps {
                        Some(fps) => {
                            // Pin the first pattern recorded for each
                            // type — the type-defining fingerprint —
                            // so churn can never evict the pattern
                            // that anchors an established type.
                            let pin = self.pinned_node_types.insert(tid);
                            fps.record(key, tid, pin);
                        }
                        None => {
                            self.node_cache.insert(key, tid);
                        }
                    }
                }
            }
            let by_id: std::collections::HashMap<pg_model::EdgeId, &EdgeRecord> =
                edges.iter().map(|e| (e.edge.id, e)).collect();
            for (members, &tid) in edge_members.iter().zip(&edge_assignment) {
                for id in members {
                    let rec = by_id[id];
                    let key = (
                        rec.edge.labels.clone(),
                        rec.edge.key_set(),
                        rec.src_labels.clone(),
                        rec.tgt_labels.clone(),
                    );
                    match &mut self.edge_fps {
                        Some(fps) => {
                            let pin = self.pinned_edge_types.insert(tid);
                            fps.record(key, tid, pin);
                        }
                        None => {
                            self.edge_cache.insert(key, tid);
                        }
                    }
                }
            }
        }
        let extract = t2.elapsed();
        HotPathOutcome {
            preprocess,
            cluster,
            extract,
            node_dedup,
            edge_dedup,
        }
    }

    /// Convenience wrapper over a [`GraphBatch`].
    pub fn process_graph_batch(&mut self, batch: &GraphBatch) -> BatchTiming {
        self.process_batch(&batch.nodes, &batch.edges)
    }

    /// Fold a foreign shard's discovery state into this session — the
    /// session-side half of distributed discovery (§4.6). The foreign
    /// types re-enter Algorithm 2 as clusters against the live state
    /// under this session's alignment knobs; existing type ids are never
    /// renumbered, so the memoization caches stay valid. Post-processing
    /// then re-derives constraints, data types, and cardinalities from
    /// the merged accumulators (when the config enables it), exactly as
    /// after an ingested batch.
    pub fn merge_state(&mut self, foreign: &DiscoveryState) {
        crate::merge::fold_state(&mut self.state, foreign, &self.config);
        // A fold may rebuild or rekey edge accumulators, which breaks
        // the append-only premise of the incremental degree cache; the
        // next post-processing pass rescans from scratch.
        self.card_cache.invalidate();
        if self.config.post_processing {
            self.post_process();
        }
    }

    /// Run post-processing now (constraints, data types, cardinalities).
    pub fn post_process(&mut self) {
        infer_property_constraints(&mut self.state);
        infer_datatypes(
            &mut self.state,
            self.config.datatype_sampling,
            self.config.seed,
        );
        crate::cardinality::compute_cardinalities_cached(&mut self.state, &mut self.card_cache);
    }

    /// Serialize the entire session state (schema, accumulators,
    /// memoization caches) into a checkpoint that can be persisted and
    /// restored later — streaming deployments survive restarts without
    /// reprocessing history.
    pub fn checkpoint(&self) -> SessionCheckpoint {
        SessionCheckpoint {
            schema: self.state.schema.clone(),
            node_accums: self
                .state
                .node_accums
                .iter()
                .map(|(k, v)| (*k, v.clone()))
                .collect(),
            edge_accums: self
                .state
                .edge_accums
                .iter()
                .map(|(k, v)| (*k, v.clone()))
                .collect(),
            node_cache: self
                .node_cache
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            edge_cache: self
                .edge_cache
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            cache_hits: self.cache_hits,
            batches_processed: self.batches_processed(),
            mode: Some(self.accum_mode()),
            node_fps: self.node_fps.clone(),
            edge_fps: self.edge_fps.clone(),
        }
    }

    /// Restore a session from a checkpoint. Per-batch timings are not
    /// part of the checkpoint; the restored session starts a fresh
    /// timing log but continues the batch numbering.
    ///
    /// Refuses a cross-mode resume: a checkpoint written with exact
    /// accumulators cannot seed a sketched session or vice versa —
    /// the statistics are not interchangeable (exact maxima vs KMV
    /// estimates), so mixing them would silently corrupt cardinality
    /// and data-type inference.
    pub fn restore(
        config: HiveConfig,
        checkpoint: SessionCheckpoint,
    ) -> Result<HiveSession, ModeMismatch> {
        let mut session = HiveSession::new(config);
        let (ckpt_mode, session_mode) = (checkpoint.accum_mode(), session.accum_mode());
        if ckpt_mode != session_mode {
            return Err(ModeMismatch {
                checkpoint: ckpt_mode,
                session: session_mode,
            });
        }
        session.batch_offset = checkpoint.batches_processed;
        session.state.schema = checkpoint.schema;
        session.state.node_accums = checkpoint.node_accums.into_iter().collect();
        session.state.edge_accums = checkpoint.edge_accums.into_iter().collect();
        session.node_cache = checkpoint.node_cache.into_iter().collect();
        session.edge_cache = checkpoint.edge_cache.into_iter().collect();
        if let Some(fps) = checkpoint.node_fps {
            session.pinned_node_types = fps
                .iter()
                .filter(|(_, e)| e.pinned)
                .map(|(_, e)| e.value)
                .collect();
            session.node_fps = Some(fps);
        }
        if let Some(fps) = checkpoint.edge_fps {
            session.pinned_edge_types = fps
                .iter()
                .filter(|(_, e)| e.pinned)
                .map(|(_, e)| e.value)
                .collect();
            session.edge_fps = Some(fps);
        }
        session.cache_hits = checkpoint.cache_hits;
        Ok(session)
    }

    /// Estimated memory retained by the session's long-lived state —
    /// the numbers behind the server's per-session `/metrics` gauges.
    pub fn memory_stats(&self) -> SessionMemoryStats {
        let (fp_entries, fp_bytes) = match (&self.node_fps, &self.edge_fps) {
            (Some(n), Some(e)) => (n.len() + e.len(), n.estimated_bytes() + e.estimated_bytes()),
            _ => (
                self.node_cache.len() + self.edge_cache.len(),
                (self.node_cache.len() + self.edge_cache.len()) * 128,
            ),
        };
        SessionMemoryStats {
            accum_bytes: self.state.estimated_accum_bytes(),
            fingerprint_entries: fp_entries,
            fingerprint_bytes: fp_bytes,
        }
    }

    /// Finish the session: ensure post-processing ran at least once (the
    /// `i = n` case of Algorithm 1 line 7) and hand back the result.
    pub fn finish(mut self) -> DiscoveryResult {
        self.post_process();
        DiscoveryResult {
            schema: self.state.schema.clone(),
            state: self.state,
            node_params: self.node_params,
            edge_params: self.edge_params,
            timings: self.timings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_model::{Edge, LabelSet, Node, NodeId, PropertyGraph};
    use pg_store::split_batches;

    fn dataset(n: u64) -> PropertyGraph {
        let mut g = PropertyGraph::new();
        for i in 0..n {
            g.add_node(
                Node::new(i, LabelSet::single("Person"))
                    .with_prop("name", format!("p{i}"))
                    .with_prop("age", i as i64),
            )
            .unwrap();
            g.add_node(Node::new(n + i, LabelSet::single("Org")).with_prop("url", format!("o{i}")))
                .unwrap();
        }
        for i in 0..n {
            g.add_edge(
                Edge::new(
                    10_000 + i,
                    NodeId(i),
                    NodeId(n + i),
                    LabelSet::single("WORKS_AT"),
                )
                .with_prop("from", 2000 + i as i64),
            )
            .unwrap();
        }
        g
    }

    fn quick_config() -> HiveConfig {
        let mut c = HiveConfig::default();
        if let crate::config::EmbeddingKind::Word2Vec(ref mut w) = c.embedding {
            w.dim = 5;
            w.epochs = 2;
        }
        c.post_processing = false;
        c
    }

    #[test]
    fn incremental_matches_types_of_single_shot() {
        let g = dataset(60);
        let batches = split_batches(&g, 5, 99);

        let mut session = HiveSession::new(quick_config());
        for b in &batches {
            session.process_graph_batch(b);
        }
        let inc = session.finish();

        let single = crate::pipeline::PgHive::new(quick_config()).discover_graph(&g);

        let labels = |s: &SchemaGraph| -> Vec<String> {
            let mut v: Vec<String> = s.node_types.iter().map(|t| t.labels.to_string()).collect();
            v.sort();
            v
        };
        assert_eq!(labels(&inc.schema), labels(&single.schema));
        assert_eq!(inc.schema.edge_types.len(), single.schema.edge_types.len());
    }

    #[test]
    fn schema_chain_is_monotone_across_batches() {
        let g = dataset(40);
        let batches = split_batches(&g, 4, 5);
        let mut session = HiveSession::new(quick_config());
        let mut prev = session.schema().clone();
        for b in &batches {
            session.process_graph_batch(b);
            let cur = session.schema().clone();
            assert!(
                prev.is_generalized_by(&cur),
                "batch broke the monotone chain"
            );
            prev = cur;
        }
    }

    #[test]
    fn timings_are_recorded_per_batch() {
        let g = dataset(20);
        let batches = split_batches(&g, 3, 1);
        let mut session = HiveSession::new(quick_config());
        for b in &batches {
            session.process_graph_batch(b);
        }
        assert_eq!(session.timings().len(), 3);
        for (i, t) in session.timings().iter().enumerate() {
            assert_eq!(t.batch_index, i);
            assert!(t.threads >= 1, "resolved thread count is concrete");
            assert!(t.total >= t.extract);
            assert!(t.post.is_none(), "post_processing disabled");
            // The dataset has two node structures and one edge
            // structure total; no memoization, so records = batch size.
            assert_eq!(t.node_dedup.records, t.nodes);
            assert_eq!(t.edge_dedup.records, t.edges);
            assert!((1..=2).contains(&t.node_dedup.distinct));
            assert!(t.edge_dedup.distinct <= 1);
            assert!(t.node_dedup.ratio() >= 1.0);
        }
    }

    #[test]
    fn per_batch_post_processing_flag() {
        let g = dataset(10);
        let mut cfg = quick_config();
        cfg.post_processing = true;
        let mut session = HiveSession::new(cfg);
        let (nodes, edges) = pg_store::load(&g);
        let t = session.process_batch(&nodes, &edges);
        assert!(t.post.is_some());
        // Constraints are already available before finish().
        let person = session
            .schema()
            .node_types
            .iter()
            .find(|t| t.labels.contains("Person"))
            .unwrap();
        assert!(person
            .properties
            .values()
            .all(|spec| spec.presence.is_some()));
    }

    #[test]
    fn memoized_session_matches_unmemoized_results() {
        let g = dataset(50);
        let batches = split_batches(&g, 5, 13);

        let mut plain = HiveSession::new(quick_config());
        let mut memo_cfg = quick_config();
        memo_cfg.memoize = true;
        let mut memoized = HiveSession::new(memo_cfg);
        for b in &batches {
            plain.process_graph_batch(b);
            memoized.process_graph_batch(b);
        }
        assert!(memoized.cache_hits() > 0, "cache never hit");
        let (a, b) = (plain.finish(), memoized.finish());

        // Same types (by labels) and same instance counts per type.
        let summary = |r: &crate::pipeline::DiscoveryResult| {
            let mut v: Vec<(String, u64)> = r
                .schema
                .node_types
                .iter()
                .map(|t| (t.labels.to_string(), r.state.node_accums[&t.id].count))
                .collect();
            v.sort();
            v
        };
        assert_eq!(summary(&a), summary(&b));
        let edge_total = |r: &crate::pipeline::DiscoveryResult| -> u64 {
            r.state.edge_accums.values().map(|acc| acc.count).sum()
        };
        assert_eq!(edge_total(&a), edge_total(&b));
        // Every element is assigned exactly once in the memoized run.
        assert_eq!(b.node_assignment().len(), g.node_count());
        assert_eq!(b.edge_assignment().len(), g.edge_count());
    }

    #[test]
    fn memoized_second_pass_is_all_hits() {
        let g = dataset(30);
        let (nodes, edges) = pg_store::load(&g);
        let mut cfg = quick_config();
        cfg.memoize = true;
        let mut session = HiveSession::new(cfg);
        session.process_batch(&nodes, &edges);
        assert_eq!(session.cache_hits(), 0, "first pass sees only novelty");
        let before_types = session.schema().type_count();
        // Re-streaming identical structure: everything memoized. (Ids
        // repeat, which is fine — accums simply accumulate.)
        session.process_batch(&nodes, &edges);
        assert_eq!(
            session.cache_hits() as usize,
            nodes.len() + edges.len(),
            "second pass should be served entirely from the cache"
        );
        assert_eq!(session.schema().type_count(), before_types);
    }

    #[test]
    fn checkpoint_restore_round_trips_through_json() {
        let g = dataset(40);
        let batches = split_batches(&g, 4, 2);
        let mut cfg = quick_config();
        cfg.memoize = true;

        // Process half, checkpoint, serialize to JSON, restore, process
        // the rest — must equal an uninterrupted session.
        let mut first = HiveSession::new(cfg.clone());
        first.process_graph_batch(&batches[0]);
        first.process_graph_batch(&batches[1]);
        let json = serde_json::to_string(&first.checkpoint()).unwrap();
        let checkpoint: SessionCheckpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(checkpoint.batches_processed, 2);
        let mut resumed = HiveSession::restore(cfg.clone(), checkpoint).unwrap();
        resumed.process_graph_batch(&batches[2]);
        resumed.process_graph_batch(&batches[3]);
        let resumed_result = resumed.finish();

        let mut uninterrupted = HiveSession::new(cfg);
        for b in &batches {
            uninterrupted.process_graph_batch(b);
        }
        let full_result = uninterrupted.finish();

        assert_eq!(resumed_result.schema, full_result.schema);
        assert_eq!(
            resumed_result.node_assignment().len(),
            full_result.node_assignment().len()
        );
    }

    #[test]
    fn empty_batches_are_harmless() {
        let mut session = HiveSession::new(quick_config());
        session.process_batch(&[], &[]);
        let r = session.finish();
        assert_eq!(r.schema.type_count(), 0);
    }

    #[test]
    fn empty_batch_mid_session_changes_nothing_but_the_count() {
        let g = dataset(30);
        let batches = split_batches(&g, 2, 8);

        let mut session = HiveSession::new(quick_config());
        session.process_graph_batch(&batches[0]);
        let before = session.schema().clone();
        session.process_batch(&[], &[]);
        assert_eq!(session.schema(), &before, "empty batch mutated the schema");
        assert_eq!(session.batches_processed(), 2, "but it still counts");
        session.process_graph_batch(&batches[1]);
        let with_gap = session.finish();

        // A checkpoint taken right after the empty batch restores to the
        // same place: an idle period in a stream is representable state.
        let mut reference = HiveSession::new(quick_config());
        reference.process_graph_batch(&batches[0]);
        reference.process_batch(&[], &[]);
        let mut restored = HiveSession::restore(quick_config(), reference.checkpoint()).unwrap();
        assert_eq!(restored.batches_processed(), 2);
        restored.process_graph_batch(&batches[1]);
        let resumed = restored.finish();

        assert_eq!(with_gap.schema, resumed.schema);
    }
}
