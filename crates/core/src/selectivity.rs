//! Schema-based selectivity estimation — the "query optimization" use
//! case the paper's introduction motivates (§1: schema discovery
//! supports "query optimization [34, 73]").
//!
//! A discovered [`DiscoveryState`] carries per-type instance counts and
//! per-property presence rates; that is exactly a coarse statistics
//! catalog. This module estimates result cardinalities for simple match
//! patterns without touching the data:
//!
//! * `(:Label)` — nodes carrying a label;
//! * `(:Label {key})` — nodes carrying a label and a property key;
//! * `()-[:LABEL]->()` — edges by label;
//! * `(:A)-[:E]->(:B)` — edges by label and endpoint labels.
//!
//! Estimates are exact when types are label-pure and properties are
//! independent of everything else within a type (which discovery's own
//! accumulators make true by construction for labels, and true per type
//! for presence rates). The tests validate against `pg-store`'s
//! ground-truth [`pg_store::index::GraphIndex`].

use crate::state::DiscoveryState;

/// Estimated number of nodes carrying `label`.
pub fn estimate_nodes_with_label(state: &DiscoveryState, label: &str) -> f64 {
    state
        .schema
        .node_types
        .iter()
        .filter(|t| t.labels.contains(label))
        .map(|t| {
            state
                .node_accums
                .get(&t.id)
                .map(|a| a.count as f64)
                .unwrap_or(0.0)
        })
        .sum()
}

/// Estimated number of nodes carrying `label` **and** property `key`,
/// using per-type presence rates.
pub fn estimate_nodes_with_label_and_key(state: &DiscoveryState, label: &str, key: &str) -> f64 {
    state
        .schema
        .node_types
        .iter()
        .filter(|t| t.labels.contains(label))
        .filter_map(|t| state.node_accums.get(&t.id))
        .map(|a| *a.key_present.get(key).unwrap_or(&0) as f64)
        .sum()
}

/// Estimated number of edges carrying `label`.
pub fn estimate_edges_with_label(state: &DiscoveryState, label: &str) -> f64 {
    state
        .schema
        .edge_types
        .iter()
        .filter(|t| t.labels.contains(label))
        .filter_map(|t| state.edge_accums.get(&t.id))
        .map(|a| a.count as f64)
        .sum()
}

/// Estimated number of `(:src)-[:label]->(:tgt)` edges: edge types whose
/// label and endpoint label sets cover the pattern contribute their full
/// count (endpoint label sets are unions over instances, so this is an
/// upper-bound estimate, tight when endpoint types are pure).
pub fn estimate_edges_with_pattern(
    state: &DiscoveryState,
    src_label: &str,
    edge_label: &str,
    tgt_label: &str,
) -> f64 {
    state
        .schema
        .edge_types
        .iter()
        .filter(|t| {
            t.labels.contains(edge_label)
                && t.src_labels.contains(src_label)
                && t.tgt_labels.contains(tgt_label)
        })
        .filter_map(|t| state.edge_accums.get(&t.id))
        .map(|a| a.count as f64)
        .sum()
}

/// Selectivity (fraction of all nodes) of a `(:Label)` scan.
pub fn node_label_selectivity(state: &DiscoveryState, label: &str) -> f64 {
    let total: u64 = state.node_accums.values().map(|a| a.count).sum();
    if total == 0 {
        return 0.0;
    }
    estimate_nodes_with_label(state, label) / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HiveConfig, PgHive};
    use pg_datasets::{generate, spec_by_name};
    use pg_store::index::GraphIndex;

    fn discovered() -> (DiscoveryState, GraphIndex) {
        let spec = spec_by_name("POLE").unwrap().scaled(0.1);
        let (graph, _) = generate(&spec, 17);
        let result = PgHive::new(HiveConfig::default()).discover_graph(&graph);
        (result.state, GraphIndex::build(&graph))
    }

    #[test]
    fn label_estimates_match_ground_truth_on_pure_types() {
        let (state, idx) = discovered();
        for label in ["Person", "Officer", "Crime", "Location", "Phone"] {
            let est = estimate_nodes_with_label(&state, label);
            let truth = idx.nodes_with_label(label).len() as f64;
            assert!(
                (est - truth).abs() <= truth * 0.02 + 1.0,
                "{label}: est {est} vs truth {truth}"
            );
        }
    }

    #[test]
    fn label_key_estimates_match_presence_counts() {
        let (state, idx) = discovered();
        // `year` is 90 %-present on Vehicle only.
        let est = estimate_nodes_with_label_and_key(&state, "Vehicle", "year");
        let truth = idx.nodes_with_key("year").len() as f64;
        assert!(
            (est - truth).abs() <= truth * 0.02 + 1.0,
            "est {est} vs truth {truth}"
        );
        // A key that never occurs on the label estimates ~0.
        assert_eq!(
            estimate_nodes_with_label_and_key(&state, "Phone", "year"),
            0.0
        );
    }

    #[test]
    fn edge_estimates_match_ground_truth() {
        let (state, idx) = discovered();
        for label in ["KNOWS", "OCCURRED_AT", "PARTY_TO"] {
            let est = estimate_edges_with_label(&state, label);
            let truth = idx.edges_with_label(label).len() as f64;
            assert!(
                (est - truth).abs() <= truth * 0.02 + 1.0,
                "{label}: est {est} vs truth {truth}"
            );
        }
    }

    #[test]
    fn endpoint_patterns_discriminate() {
        let (state, _) = discovered();
        // KNOWS exists Person→Person and Phone→Phone (shared label).
        let pp = estimate_edges_with_pattern(&state, "Person", "KNOWS", "Person");
        let phph = estimate_edges_with_pattern(&state, "Phone", "KNOWS", "Phone");
        let cross = estimate_edges_with_pattern(&state, "Person", "KNOWS", "Phone");
        assert!(pp > 0.0);
        assert!(phph > 0.0);
        assert_eq!(cross, 0.0, "no Person→Phone KNOWS edges exist");
        assert!(pp > phph, "Person-KNOWS dominates by construction");
    }

    #[test]
    fn selectivities_are_fractions_that_sum_sanely() {
        let (state, _) = discovered();
        let s = node_label_selectivity(&state, "Person");
        assert!((0.0..=1.0).contains(&s));
        assert!(s > 0.1, "Person is the biggest POLE type, got {s}");
        assert_eq!(node_label_selectivity(&state, "Unicorn"), 0.0);
    }

    #[test]
    fn empty_state_estimates_zero() {
        let state = DiscoveryState::new();
        assert_eq!(estimate_nodes_with_label(&state, "X"), 0.0);
        assert_eq!(node_label_selectivity(&state, "X"), 0.0);
    }
}
