//! Type extraction and merging — Algorithm 2 (§4.3) and the incremental
//! schema-merge rules (§4.6).
//!
//! Clusters from the current batch are integrated into the running
//! [`DiscoveryState`]:
//!
//! 1. **Labeled clusters** merge with the existing type carrying exactly
//!    the same label set, else become new types (Lemmas 1/2 guarantee the
//!    merge is a lossless union).
//! 2. **Unlabeled clusters** merge into the labeled type with the highest
//!    property-set Jaccard similarity, provided it reaches θ (0.9 by
//!    default — high, to avoid over-merging).
//! 3. Remaining unlabeled clusters merge among themselves / with existing
//!    ABSTRACT types by the same criterion, and whatever is left becomes
//!    a new ABSTRACT type (PG-Schema's marker for label-less types).
//!
//! Because every merge is a set union, the schema sequence is a monotone
//! chain: `S_i ⊑ S_{i+1}` (§4.7).

use crate::cluster::{EdgeCluster, NodeCluster};
use crate::config::MergeSimilarity;
use crate::state::{DiscoveryState, SketchParams};
use pg_model::pattern::jaccard;
use pg_model::{EdgeType, NodeType, Symbol, TypeId};
use std::collections::HashMap;

/// Options for the merge step (Algorithm 2).
#[derive(Debug, Clone, Copy)]
pub struct MergeOptions {
    /// Jaccard threshold θ.
    pub theta: f64,
    /// Binary or frequency-weighted similarity.
    pub similarity: MergeSimilarity,
    /// Edge merge on the full (L, R) key.
    pub edge_endpoint_aware: bool,
    /// Streaming mode: sketch the state-side accumulators at
    /// integration time. Cluster-local accumulators stay exact (they
    /// are batch-bounded); only the long-lived per-type state switches
    /// onto sketches, so integration memory is O(types), not O(records).
    pub stream: Option<SketchParams>,
}

impl Default for MergeOptions {
    fn default() -> Self {
        MergeOptions {
            theta: 0.9,
            similarity: MergeSimilarity::BinaryJaccard,
            edge_endpoint_aware: true,
            stream: None,
        }
    }
}

impl MergeOptions {
    /// The merge knobs a full pipeline configuration implies — shared by
    /// the incremental session and the distributed shard merge so the
    /// two integration paths can never drift apart.
    pub fn from_config(config: &crate::config::HiveConfig) -> MergeOptions {
        MergeOptions {
            theta: config.theta,
            similarity: config.merge_similarity,
            edge_endpoint_aware: config.edge_endpoint_aware,
            stream: config
                .stream
                .as_ref()
                .map(|s| SketchParams::resolve(s, config.seed)),
        }
    }
}

/// Frequency-weighted Jaccard between two (presence-count, total) maps:
/// `Σ_k min(f_a(k), f_b(k)) / Σ_k max(f_a(k), f_b(k))` with
/// `f(k) = presence(k) / instances`. Two property-less sides are
/// identical (1.0), matching the binary convention.
pub fn weighted_jaccard(
    a_present: &HashMap<Symbol, u64>,
    a_total: u64,
    b_present: &HashMap<Symbol, u64>,
    b_total: u64,
) -> f64 {
    if a_present.is_empty() && b_present.is_empty() {
        return 1.0;
    }
    if a_total == 0 || b_total == 0 {
        return 0.0;
    }
    let mut num = 0.0;
    let mut den = 0.0;
    let keys: std::collections::BTreeSet<&Symbol> =
        a_present.keys().chain(b_present.keys()).collect();
    for k in keys {
        let fa = *a_present.get(k).unwrap_or(&0) as f64 / a_total as f64;
        let fb = *b_present.get(k).unwrap_or(&0) as f64 / b_total as f64;
        num += fa.min(fb);
        den += fa.max(fb);
    }
    if den == 0.0 {
        1.0
    } else {
        num / den
    }
}

/// Integrate node clusters into the state (Algorithm 2 for nodes).
///
/// Returns, for each input cluster (same order), the id of the type it
/// merged into or became — the hook the memoization cache uses.
pub fn integrate_node_clusters(
    state: &mut DiscoveryState,
    clusters: Vec<NodeCluster>,
    theta: f64,
) -> Vec<TypeId> {
    integrate_node_clusters_opts(
        state,
        clusters,
        MergeOptions {
            theta,
            ..MergeOptions::default()
        },
    )
}

/// [`integrate_node_clusters`] with full merge options.
pub fn integrate_node_clusters_opts(
    state: &mut DiscoveryState,
    clusters: Vec<NodeCluster>,
    opts: MergeOptions,
) -> Vec<TypeId> {
    let theta = opts.theta;
    let mut assigned: Vec<Option<TypeId>> = vec![None; clusters.len()];
    let (labeled, unlabeled): (Vec<_>, Vec<_>) = clusters
        .into_iter()
        .enumerate()
        .partition(|(_, c)| !c.labels.is_empty());

    // Lines 2–7: labeled clusters merge by exact label set.
    for (idx, cluster) in labeled {
        let existing = state
            .schema
            .node_types
            .iter()
            .find(|t| !t.labels.is_empty() && t.labels == cluster.labels)
            .map(|t| t.id);
        let id = match existing {
            Some(id) => {
                merge_node_cluster_into(state, id, cluster, opts.stream);
                id
            }
            None => push_node_cluster(state, cluster, false, opts.stream),
        };
        assigned[idx] = Some(id);
    }

    // Lines 8–11: unlabeled clusters vs labeled types by key Jaccard.
    // Lines 12–14: leftovers vs abstract types (existing + earlier
    // leftovers of this very loop), then new ABSTRACT types.
    for (idx, cluster) in unlabeled {
        let best = best_candidate(state, &cluster, false, theta, opts.similarity)
            .or_else(|| best_candidate(state, &cluster, true, theta, opts.similarity));
        let id = match best {
            Some(id) => {
                merge_node_cluster_into(state, id, cluster, opts.stream);
                id
            }
            None => push_node_cluster(state, cluster, true, opts.stream),
        };
        assigned[idx] = Some(id);
    }
    assigned
        .into_iter()
        .map(|a| a.expect("every cluster assigned"))
        .collect()
}

/// Find the type (labeled or abstract, per `want_abstract`) with the
/// highest key-set Jaccard ≥ θ. Ties break toward the lower type id for
/// determinism.
fn best_candidate(
    state: &DiscoveryState,
    cluster: &NodeCluster,
    want_abstract: bool,
    theta: f64,
    similarity: MergeSimilarity,
) -> Option<TypeId> {
    let mut best: Option<(f64, TypeId)> = None;
    for t in &state.schema.node_types {
        if t.is_abstract != want_abstract {
            continue;
        }
        let sim = match similarity {
            MergeSimilarity::BinaryJaccard => jaccard(&cluster.keys, &t.key_set()),
            MergeSimilarity::WeightedJaccard => {
                let type_accum = state.node_accums.get(&t.id);
                match type_accum {
                    Some(acc) => weighted_jaccard(
                        &cluster.accum.key_present,
                        cluster.accum.count,
                        &acc.key_present,
                        acc.count,
                    ),
                    None => jaccard(&cluster.keys, &t.key_set()),
                }
            }
        };
        if sim >= theta {
            let better = match best {
                None => true,
                Some((bs, bid)) => sim > bs || (sim == bs && t.id < bid),
            };
            if better {
                best = Some((sim, t.id));
            }
        }
    }
    best.map(|(_, id)| id)
}

fn merge_node_cluster_into(
    state: &mut DiscoveryState,
    id: TypeId,
    cluster: NodeCluster,
    stream: Option<SketchParams>,
) {
    let incoming = node_type_from_cluster(&cluster, false);
    let t = state
        .schema
        .node_types
        .iter_mut()
        .find(|t| t.id == id)
        .expect("type id from this schema");
    t.merge_from(&incoming);
    let entry = state.node_accums.entry(id).or_default();
    if let Some(params) = stream {
        entry.ensure_sketched(params);
    }
    entry.merge(&cluster.accum);
}

fn push_node_cluster(
    state: &mut DiscoveryState,
    cluster: NodeCluster,
    is_abstract: bool,
    stream: Option<SketchParams>,
) -> TypeId {
    let mut t = node_type_from_cluster(&cluster, is_abstract);
    t.instance_count = 0; // merge_from/push bookkeeping below
    let id = state.schema.push_node_type(t);
    let entry = state.node_accums.entry(id).or_default();
    if let Some(params) = stream {
        entry.ensure_sketched(params);
    }
    entry.merge(&cluster.accum);
    if let Some(t) = state.schema.node_types.iter_mut().find(|t| t.id == id) {
        t.instance_count = entry.count;
    }
    id
}

fn node_type_from_cluster(cluster: &NodeCluster, is_abstract: bool) -> NodeType {
    let mut t = NodeType::new(
        TypeId(0),
        cluster.labels.clone(),
        cluster.keys.iter().cloned(),
    );
    t.is_abstract = is_abstract && cluster.labels.is_empty();
    t.instance_count = cluster.accum.count;
    t
}

/// Integrate edge clusters (Algorithm 2 for edges: merge by label,
/// record endpoint label sets as the connectivity ρ_s; unlabeled edge
/// clusters follow the same Jaccard fallback as nodes).
///
/// When `endpoint_aware` is set (the default), the merge key is the full
/// `(L, R)` of Definition 3.6 — two same-label clusters merge only if
/// their source and target label sets also match, so e.g. a `ConnectsTo`
/// between Neurons stays distinct from a `ConnectsTo` from Segments (the
/// MB6/FIB25 situation: 5 edge types over 3 labels). With it off, edges
/// merge purely by label, unioning endpoints per Lemma 2 — the
/// `merge_ablation` benchmark contrasts the two.
pub fn integrate_edge_clusters(
    state: &mut DiscoveryState,
    clusters: Vec<EdgeCluster>,
    theta: f64,
    endpoint_aware: bool,
) -> Vec<TypeId> {
    integrate_edge_clusters_opts(
        state,
        clusters,
        MergeOptions {
            theta,
            edge_endpoint_aware: endpoint_aware,
            ..MergeOptions::default()
        },
    )
}

/// [`integrate_edge_clusters`] with full merge options.
pub fn integrate_edge_clusters_opts(
    state: &mut DiscoveryState,
    clusters: Vec<EdgeCluster>,
    opts: MergeOptions,
) -> Vec<TypeId> {
    let (theta, endpoint_aware) = (opts.theta, opts.edge_endpoint_aware);
    let mut assigned: Vec<Option<TypeId>> = vec![None; clusters.len()];
    let (labeled, unlabeled): (Vec<_>, Vec<_>) = clusters
        .into_iter()
        .enumerate()
        .partition(|(_, c)| !c.labels.is_empty());

    for (idx, cluster) in labeled {
        let existing = state
            .schema
            .edge_types
            .iter()
            .find(|t| {
                !t.labels.is_empty()
                    && t.labels == cluster.labels
                    && (!endpoint_aware
                        || (endpoints_compatible(&t.src_labels, &cluster.src_labels)
                            && endpoints_compatible(&t.tgt_labels, &cluster.tgt_labels)))
            })
            .map(|t| t.id);
        let id = match existing {
            Some(id) => {
                merge_edge_cluster_into(state, id, cluster, opts.stream);
                id
            }
            None => push_edge_cluster(state, cluster, false, opts.stream),
        };
        assigned[idx] = Some(id);
    }

    for (idx, cluster) in unlabeled {
        let best = best_edge_candidate(state, &cluster, false, theta, opts.similarity)
            .or_else(|| best_edge_candidate(state, &cluster, true, theta, opts.similarity));
        let id = match best {
            Some(id) => {
                merge_edge_cluster_into(state, id, cluster, opts.stream);
                id
            }
            None => push_edge_cluster(state, cluster, true, opts.stream),
        };
        assigned[idx] = Some(id);
    }
    assigned
        .into_iter()
        .map(|a| a.expect("every cluster assigned"))
        .collect()
}

/// Endpoint label sets are compatible when equal, or when either side is
/// empty — an unlabeled endpoint (missing node labels, cross-batch edge)
/// acts as a wildcard so noise does not fragment edge types. The merge
/// union then fills in the missing side (Lemma 2).
fn endpoints_compatible(a: &pg_model::LabelSet, b: &pg_model::LabelSet) -> bool {
    a.is_empty() || b.is_empty() || a == b
}

fn best_edge_candidate(
    state: &DiscoveryState,
    cluster: &EdgeCluster,
    want_abstract: bool,
    theta: f64,
    similarity: MergeSimilarity,
) -> Option<TypeId> {
    let mut best: Option<(f64, TypeId)> = None;
    for t in &state.schema.edge_types {
        if t.is_abstract != want_abstract {
            continue;
        }
        let sim = match similarity {
            MergeSimilarity::BinaryJaccard => jaccard(&cluster.keys, &t.key_set()),
            MergeSimilarity::WeightedJaccard => match state.edge_accums.get(&t.id) {
                Some(acc) => weighted_jaccard(
                    &cluster.accum.key_present,
                    cluster.accum.count,
                    &acc.key_present,
                    acc.count,
                ),
                None => jaccard(&cluster.keys, &t.key_set()),
            },
        };
        if sim >= theta {
            let better = match best {
                None => true,
                Some((bs, bid)) => sim > bs || (sim == bs && t.id < bid),
            };
            if better {
                best = Some((sim, t.id));
            }
        }
    }
    best.map(|(_, id)| id)
}

fn merge_edge_cluster_into(
    state: &mut DiscoveryState,
    id: TypeId,
    cluster: EdgeCluster,
    stream: Option<SketchParams>,
) {
    let incoming = edge_type_from_cluster(&cluster, false);
    let t = state
        .schema
        .edge_types
        .iter_mut()
        .find(|t| t.id == id)
        .expect("type id from this schema");
    t.merge_from(&incoming);
    let entry = state.edge_accums.entry(id).or_default();
    if let Some(params) = stream {
        entry.ensure_sketched(params);
    }
    entry.merge(&cluster.accum);
}

fn push_edge_cluster(
    state: &mut DiscoveryState,
    cluster: EdgeCluster,
    is_abstract: bool,
    stream: Option<SketchParams>,
) -> TypeId {
    let mut t = edge_type_from_cluster(&cluster, is_abstract);
    t.instance_count = 0;
    let id = state.schema.push_edge_type(t);
    let entry = state.edge_accums.entry(id).or_default();
    if let Some(params) = stream {
        entry.ensure_sketched(params);
    }
    entry.merge(&cluster.accum);
    if let Some(t) = state.schema.edge_types.iter_mut().find(|t| t.id == id) {
        t.instance_count = entry.count;
    }
    id
}

fn edge_type_from_cluster(cluster: &EdgeCluster, is_abstract: bool) -> EdgeType {
    let mut t = EdgeType::new(
        TypeId(0),
        cluster.labels.clone(),
        cluster.keys.iter().cloned(),
        cluster.src_labels.clone(),
        cluster.tgt_labels.clone(),
    );
    t.is_abstract = is_abstract && cluster.labels.is_empty();
    t.instance_count = cluster.accum.count;
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{EdgeTypeAccum, NodeTypeAccum};
    use pg_model::{sym, LabelSet, Node, Symbol};
    use std::collections::BTreeSet;

    fn keys(ks: &[&str]) -> BTreeSet<Symbol> {
        ks.iter().map(|k| sym(k)).collect()
    }

    fn node_cluster(labels: &[&str], ks: &[&str], n: u64) -> NodeCluster {
        let mut accum = NodeTypeAccum::default();
        for i in 0..n {
            let mut node = Node::new(i * 7919 + ks.len() as u64, LabelSet::from_iter(labels));
            for k in ks {
                node = node.with_prop(k, 1i64);
            }
            accum.observe(&node);
        }
        NodeCluster {
            labels: LabelSet::from_iter(labels),
            keys: keys(ks),
            accum,
        }
    }

    #[test]
    fn labeled_clusters_with_same_labels_merge() {
        let mut state = DiscoveryState::new();
        // Two Post clusters with different structure (Example 5).
        integrate_node_clusters(
            &mut state,
            vec![
                node_cluster(&["Post"], &["imgFile"], 3),
                node_cluster(&["Post"], &["content"], 2),
            ],
            0.9,
        );
        assert_eq!(state.schema.node_types.len(), 1);
        let t = &state.schema.node_types[0];
        assert_eq!(t.key_set(), keys(&["content", "imgFile"]));
        assert_eq!(state.node_accums[&t.id].count, 5);
    }

    #[test]
    fn unlabeled_cluster_merges_into_similar_labeled_type() {
        let mut state = DiscoveryState::new();
        integrate_node_clusters(
            &mut state,
            vec![
                node_cluster(&["Person"], &["name", "gender", "bday"], 2),
                node_cluster(&[], &["name", "gender", "bday"], 1), // "Alice"
            ],
            0.9,
        );
        assert_eq!(state.schema.node_types.len(), 1);
        let t = &state.schema.node_types[0];
        assert!(!t.is_abstract);
        assert_eq!(state.node_accums[&t.id].count, 3);
    }

    #[test]
    fn dissimilar_unlabeled_cluster_becomes_abstract() {
        let mut state = DiscoveryState::new();
        integrate_node_clusters(
            &mut state,
            vec![
                node_cluster(&["Person"], &["name", "gender", "bday"], 2),
                node_cluster(&[], &["voltage", "current"], 1),
            ],
            0.9,
        );
        assert_eq!(state.schema.node_types.len(), 2);
        let abs: Vec<_> = state
            .schema
            .node_types
            .iter()
            .filter(|t| t.is_abstract)
            .collect();
        assert_eq!(abs.len(), 1);
        assert_eq!(abs[0].key_set(), keys(&["current", "voltage"]));
    }

    #[test]
    fn unlabeled_clusters_merge_among_themselves() {
        let mut state = DiscoveryState::new();
        integrate_node_clusters(
            &mut state,
            vec![
                node_cluster(&[], &["x", "y", "z"], 1),
                node_cluster(&[], &["x", "y", "z"], 2),
            ],
            0.9,
        );
        assert_eq!(state.schema.node_types.len(), 1);
        assert!(state.schema.node_types[0].is_abstract);
        let id = state.schema.node_types[0].id;
        assert_eq!(state.node_accums[&id].count, 3);
    }

    #[test]
    fn theta_controls_merging() {
        let mut state = DiscoveryState::new();
        // Jaccard({a,b},{a,b,c,d}) = 0.5.
        let clusters = vec![
            node_cluster(&["T"], &["a", "b", "c", "d"], 1),
            node_cluster(&[], &["a", "b"], 1),
        ];
        integrate_node_clusters(&mut state, clusters.clone(), 0.9);
        assert_eq!(state.schema.node_types.len(), 2, "strict θ keeps apart");

        let mut state2 = DiscoveryState::new();
        integrate_node_clusters(&mut state2, clusters, 0.4);
        assert_eq!(state2.schema.node_types.len(), 1, "loose θ merges");
    }

    #[test]
    fn best_candidate_prefers_highest_jaccard() {
        let mut state = DiscoveryState::new();
        integrate_node_clusters(
            &mut state,
            vec![
                node_cluster(&["A"], &["p", "q", "r"], 1),
                node_cluster(&["B"], &["p", "q", "r", "s"], 1),
                // J with A = 1.0, J with B = 0.75 → merges into A.
                node_cluster(&[], &["p", "q", "r"], 1),
            ],
            0.7,
        );
        let a = state
            .schema
            .node_types
            .iter()
            .find(|t| t.labels.contains("A"))
            .unwrap();
        assert_eq!(state.node_accums[&a.id].count, 2);
    }

    fn edge_cluster(label: &str, src: &str, tgt: &str) -> EdgeCluster {
        EdgeCluster {
            labels: LabelSet::single(label),
            keys: BTreeSet::new(),
            src_labels: LabelSet::single(src),
            tgt_labels: LabelSet::single(tgt),
            accum: EdgeTypeAccum::default(),
        }
    }

    #[test]
    fn endpoint_aware_merge_keeps_same_label_types_distinct() {
        // The MB6/FIB25 situation: ConnectsTo between different endpoint
        // types are distinct ground-truth types (Def 3.6's R component).
        let mut state = DiscoveryState::new();
        integrate_edge_clusters(
            &mut state,
            vec![
                edge_cluster("ConnectsTo", "Neuron", "Neuron"),
                edge_cluster("ConnectsTo", "Segment", "Neuron"),
            ],
            0.9,
            true,
        );
        assert_eq!(state.schema.edge_types.len(), 2);
        // Same (L, R) merges.
        integrate_edge_clusters(
            &mut state,
            vec![edge_cluster("ConnectsTo", "Neuron", "Neuron")],
            0.9,
            true,
        );
        assert_eq!(state.schema.edge_types.len(), 2);
    }

    #[test]
    fn label_only_merge_unions_endpoints() {
        let mut state = DiscoveryState::new();
        integrate_edge_clusters(
            &mut state,
            vec![
                edge_cluster("LIKES", "Person", "Post"),
                edge_cluster("LIKES", "Bot", "Post"),
            ],
            0.9,
            false,
        );
        assert_eq!(state.schema.edge_types.len(), 1);
        let t = &state.schema.edge_types[0];
        assert_eq!(t.src_labels, LabelSet::from_iter(["Bot", "Person"]));
        assert_eq!(t.tgt_labels, LabelSet::single("Post"));
    }

    #[test]
    fn weighted_jaccard_formula() {
        use std::collections::HashMap;
        let m = |pairs: &[(&str, u64)]| -> HashMap<Symbol, u64> {
            pairs.iter().map(|(k, c)| (sym(k), *c)).collect()
        };
        // Identical frequency profiles -> 1.0.
        let a = m(&[("x", 10), ("y", 5)]);
        assert!((weighted_jaccard(&a, 10, &a, 10) - 1.0).abs() < 1e-12);
        // Disjoint keys -> 0.0.
        let b = m(&[("z", 10)]);
        assert_eq!(weighted_jaccard(&a, 10, &b, 10), 0.0);
        // Both empty -> 1.0 (binary convention).
        let e: HashMap<Symbol, u64> = HashMap::new();
        assert_eq!(weighted_jaccard(&e, 0, &e, 0), 1.0);
        // Same keys at different rates: f_a = (1.0, 0.5), f_b = (0.5, 1.0)
        // -> min-sum 1.0 / max-sum 2.0 = 0.5.
        let c = m(&[("x", 5), ("y", 10)]);
        assert!((weighted_jaccard(&a, 10, &c, 10) - 0.5).abs() < 1e-12);
        // Symmetry.
        assert_eq!(
            weighted_jaccard(&a, 10, &c, 10),
            weighted_jaccard(&c, 10, &a, 10)
        );
    }

    #[test]
    fn weighted_jaccard_merges_sparse_clusters_binary_misses() {
        // A labeled type whose instances carry each of 4 keys at rate
        // ~0.5 (sparse data). A small unlabeled cluster with the same
        // rate profile only ever observed 2 of the keys: binary Jaccard
        // fails (2/4 = 0.5 < 0.9) while the frequency-weighted form
        // recognizes the matching rates (future-work item (a)).
        use crate::state::NodeTypeAccum;
        let sparse_accum = |present: &[(&str, u64)], n: u64, id0: u64| -> NodeTypeAccum {
            let mut acc = NodeTypeAccum {
                count: n,
                ..NodeTypeAccum::default()
            };
            for i in 0..n {
                acc.members.push(pg_model::NodeId(id0 + i));
            }
            for (k, c) in present {
                acc.key_present.insert(sym(k), *c);
            }
            acc
        };

        let labeled = NodeCluster {
            labels: LabelSet::single("T"),
            keys: keys(&["a", "b", "c", "d"]),
            accum: sparse_accum(&[("a", 50), ("b", 50), ("c", 50), ("d", 50)], 100, 0),
        };
        let unlabeled = || NodeCluster {
            labels: LabelSet::empty(),
            keys: keys(&["a", "b"]),
            accum: sparse_accum(&[("a", 2), ("b", 2)], 4, 1000),
        };

        // Binary Jaccard (theta = 0.9): no merge -> abstract leftover.
        let mut state_b = DiscoveryState::new();
        integrate_node_clusters(&mut state_b, vec![labeled.clone(), unlabeled()], 0.9);
        assert_eq!(state_b.schema.node_types.len(), 2);

        // Weighted Jaccard: rates (0.5,0.5,0.5,0.5) vs (0.5,0.5,0,0)
        // -> 1.0/2.0 = 0.5; with theta_w = 0.45 the cluster merges.
        let mut state_w = DiscoveryState::new();
        integrate_node_clusters_opts(
            &mut state_w,
            vec![labeled, unlabeled()],
            MergeOptions {
                theta: 0.45,
                similarity: MergeSimilarity::WeightedJaccard,
                edge_endpoint_aware: true,
                stream: None,
            },
        );
        assert_eq!(state_w.schema.node_types.len(), 1);
        assert!(!state_w.schema.node_types[0].is_abstract);
        let tid = state_w.schema.node_types[0].id;
        assert_eq!(state_w.node_accums[&tid].count, 104);
    }

    #[test]
    fn incremental_integration_is_monotone() {
        let mut state = DiscoveryState::new();
        integrate_node_clusters(
            &mut state,
            vec![node_cluster(&["Person"], &["name"], 2)],
            0.9,
        );
        let s1 = state.schema.clone();
        integrate_node_clusters(
            &mut state,
            vec![
                node_cluster(&["Person"], &["name", "age"], 1),
                node_cluster(&["Org"], &["url"], 1),
            ],
            0.9,
        );
        assert!(s1.is_generalized_by(&state.schema));
        assert!(!state.schema.is_generalized_by(&s1));
    }
}
