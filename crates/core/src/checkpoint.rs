//! Durable session checkpoints: versioned envelope, atomic writes,
//! retention, and corruption-tolerant resume.
//!
//! A long-running incremental session (§4.6) is only useful if hours of
//! accumulated schema state survive a crash. [`CheckpointStore`]
//! persists [`SessionCheckpoint`]s to a directory with the guarantees a
//! stream consumer actually needs:
//!
//! * **Versioned envelope** — every file starts with a one-line ASCII
//!   header `PGHIVE-CKPT v1 len=<n> crc32=<hex>` followed by the JSON
//!   payload. The length catches truncation, the CRC-32 catches bit
//!   rot (CRC-32 detects *all* single-bit errors), and the version
//!   gates format evolution.
//! * **Atomic writes** — payloads are written to a temp file in the
//!   same directory, fsynced, then renamed over the final name; the
//!   directory is fsynced afterwards. A crash mid-write leaves at
//!   worst a stray temp file, never a half-written checkpoint under a
//!   valid name.
//! * **Retention** — only the newest `keep` checkpoints are retained
//!   (default [`CheckpointStore::DEFAULT_KEEP`]); older ones are
//!   pruned after each successful save.
//! * **Fallback resume** — [`CheckpointStore::resume`] walks
//!   checkpoints newest-first, skipping any file that fails envelope
//!   validation, and loads the newest *valid* one. Corrupt files are
//!   reported, not trusted.
//!
//! The byte-level [`encode`]/[`decode`] functions are exposed so
//! fault-injection tests can corrupt envelopes at arbitrary offsets
//! without going through the filesystem.

use crate::incremental::SessionCheckpoint;
use std::fmt;
use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Current envelope format version.
pub const FORMAT_VERSION: u32 = 1;

const MAGIC: &str = "PGHIVE-CKPT";
const FILE_SUFFIX: &str = ".pghive";

/// Errors raised by checkpoint persistence.
#[derive(Debug)]
pub enum CheckpointError {
    /// An underlying filesystem operation failed.
    Io {
        /// What the store was doing.
        context: String,
        /// The OS error.
        source: std::io::Error,
    },
    /// An envelope failed validation (bad magic, version, length,
    /// checksum, or payload).
    Corrupt {
        /// The offending file, when the bytes came from disk.
        path: Option<PathBuf>,
        /// What failed.
        reason: String,
    },
    /// `resume()` found checkpoint files but none of them were valid.
    NoValidCheckpoint {
        /// Every file tried, newest first, with its failure reason.
        skipped: Vec<(PathBuf, String)>,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { context, source } => {
                write!(f, "checkpoint I/O error while {context}: {source}")
            }
            CheckpointError::Corrupt { path, reason } => match path {
                Some(p) => write!(f, "corrupt checkpoint {}: {reason}", p.display()),
                None => write!(f, "corrupt checkpoint: {reason}"),
            },
            CheckpointError::NoValidCheckpoint { skipped } => {
                write!(f, "no valid checkpoint found; tried {}:", skipped.len())?;
                for (p, why) in skipped {
                    write!(f, "\n  {}: {why}", p.display())?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn io_err(context: impl Into<String>) -> impl FnOnce(std::io::Error) -> CheckpointError {
    let context = context.into();
    move |source| CheckpointError::Io { context, source }
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the payload
/// checksum of the envelope. Table-free bitwise form: the store writes
/// checkpoints once per batch, so throughput is irrelevant next to the
/// serde pass, and the bitwise form is obviously correct.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Serialize a checkpoint into its envelope bytes.
pub fn encode(ckpt: &SessionCheckpoint) -> Result<Vec<u8>, CheckpointError> {
    let payload = serde_json::to_string(ckpt).map_err(|e| CheckpointError::Corrupt {
        path: None,
        reason: format!("serializing checkpoint: {e}"),
    })?;
    let payload = payload.into_bytes();
    let mut out = format!(
        "{MAGIC} v{FORMAT_VERSION} len={} crc32={:08x}\n",
        payload.len(),
        crc32(&payload)
    )
    .into_bytes();
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Serialize a checkpoint directly into a writer (the fault-injection
/// harness wraps this with a failing writer to model torn writes).
pub fn encode_to<W: std::io::Write>(
    ckpt: &SessionCheckpoint,
    w: &mut W,
) -> Result<(), CheckpointError> {
    let bytes = encode(ckpt)?;
    w.write_all(&bytes).map_err(io_err("writing checkpoint"))
}

/// Validate an envelope and deserialize the checkpoint inside. Any
/// deviation — missing or garbled header, wrong magic, unsupported
/// version, short or long payload, checksum mismatch, undecodable JSON
/// — yields [`CheckpointError::Corrupt`]; garbage is never returned as
/// a checkpoint.
pub fn decode(bytes: &[u8]) -> Result<SessionCheckpoint, CheckpointError> {
    let corrupt = |reason: String| CheckpointError::Corrupt { path: None, reason };

    // The header is one short ASCII line; cap the newline scan so a
    // corrupt multi-gigabyte blob is rejected cheaply.
    let header_end = bytes
        .iter()
        .take(128)
        .position(|&b| b == b'\n')
        .ok_or_else(|| corrupt("missing envelope header".into()))?;
    let header = std::str::from_utf8(&bytes[..header_end])
        .map_err(|_| corrupt("header is not UTF-8".into()))?;

    let parts: Vec<&str> = header.split_whitespace().collect();
    let [magic, version, len, crc] = parts.as_slice() else {
        return Err(corrupt(format!("malformed header {header:?}")));
    };
    if *magic != MAGIC {
        return Err(corrupt(format!("bad magic {magic:?}")));
    }
    let version: u32 = version
        .strip_prefix('v')
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| corrupt(format!("malformed version {version:?}")))?;
    if version != FORMAT_VERSION {
        return Err(corrupt(format!(
            "unsupported format version {version} (this build reads v{FORMAT_VERSION})"
        )));
    }
    let expected_len: usize = len
        .strip_prefix("len=")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| corrupt(format!("malformed length field {len:?}")))?;
    let expected_crc: u32 = crc
        .strip_prefix("crc32=")
        .and_then(|v| u32::from_str_radix(v, 16).ok())
        .ok_or_else(|| corrupt(format!("malformed checksum field {crc:?}")))?;

    let payload = &bytes[header_end + 1..];
    if payload.len() < expected_len {
        return Err(corrupt(format!(
            "truncated payload: have {} of {expected_len} bytes",
            payload.len()
        )));
    }
    if payload.len() > expected_len {
        return Err(corrupt(format!(
            "trailing garbage: have {} of {expected_len} bytes",
            payload.len()
        )));
    }
    let actual_crc = crc32(payload);
    if actual_crc != expected_crc {
        return Err(corrupt(format!(
            "checksum mismatch: stored {expected_crc:08x}, computed {actual_crc:08x}"
        )));
    }
    let text = std::str::from_utf8(payload).map_err(|_| corrupt("payload is not UTF-8".into()))?;
    serde_json::from_str(text).map_err(|e| corrupt(format!("undecodable payload: {e}")))
}

/// The result of [`CheckpointStore::resume`].
#[derive(Debug)]
pub struct ResumeOutcome {
    /// The newest valid checkpoint, or `None` if the directory holds no
    /// checkpoint files at all (a fresh start, not an error).
    pub checkpoint: Option<SessionCheckpoint>,
    /// The file the checkpoint was loaded from.
    pub path: Option<PathBuf>,
    /// Files that failed validation and were skipped, newest first.
    pub skipped: Vec<(PathBuf, String)>,
}

/// A directory of durable, sequence-numbered checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
}

impl CheckpointStore {
    /// Checkpoints retained by default.
    pub const DEFAULT_KEEP: usize = 3;

    /// Open (creating if needed) a checkpoint directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<CheckpointStore, CheckpointError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(io_err(format!("creating directory {}", dir.display())))?;
        Ok(CheckpointStore {
            dir,
            keep: Self::DEFAULT_KEEP,
        })
    }

    /// Set how many checkpoints to retain (minimum 1).
    pub fn with_retention(mut self, keep: usize) -> CheckpointStore {
        self.keep = keep.max(1);
        self
    }

    /// The directory checkpoints live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sequence-numbered checkpoint files, sorted oldest → newest.
    /// Files whose names don't match `ckpt-<seq>.pghive` are ignored.
    pub fn list(&self) -> Result<Vec<(u64, PathBuf)>, CheckpointError> {
        let mut found = Vec::new();
        let entries =
            fs::read_dir(&self.dir).map_err(io_err(format!("listing {}", self.dir.display())))?;
        for entry in entries {
            let entry = entry.map_err(io_err(format!("listing {}", self.dir.display())))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(seq) = name
                .strip_prefix("ckpt-")
                .and_then(|r| r.strip_suffix(FILE_SUFFIX))
                .and_then(|s| s.parse::<u64>().ok())
            else {
                continue;
            };
            found.push((seq, entry.path()));
        }
        found.sort_unstable_by_key(|(seq, _)| *seq);
        Ok(found)
    }

    /// Persist a checkpoint atomically (temp file + fsync + rename +
    /// directory fsync) under the next sequence number, then prune
    /// checkpoints beyond the retention limit. Returns the final path.
    pub fn save(&self, ckpt: &SessionCheckpoint) -> Result<PathBuf, CheckpointError> {
        let seq = self.list()?.last().map_or(0, |(s, _)| s + 1);
        let final_path = self.dir.join(format!("ckpt-{seq:08}{FILE_SUFFIX}"));
        let tmp_path = self.dir.join(format!(".tmp-ckpt-{seq:08}"));

        let bytes = encode(ckpt)?;
        let mut f =
            File::create(&tmp_path).map_err(io_err(format!("creating {}", tmp_path.display())))?;
        f.write_all(&bytes)
            .map_err(io_err(format!("writing {}", tmp_path.display())))?;
        f.sync_all()
            .map_err(io_err(format!("fsyncing {}", tmp_path.display())))?;
        drop(f);
        fs::rename(&tmp_path, &final_path).map_err(io_err(format!(
            "renaming {} to {}",
            tmp_path.display(),
            final_path.display()
        )))?;
        // Make the rename itself durable. Directory fsync is
        // best-effort: some platforms refuse to open directories.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }

        self.prune()?;
        Ok(final_path)
    }

    /// Delete checkpoints beyond the retention limit, oldest first.
    fn prune(&self) -> Result<(), CheckpointError> {
        let files = self.list()?;
        if files.len() > self.keep {
            for (_, path) in &files[..files.len() - self.keep] {
                fs::remove_file(path).map_err(io_err(format!("pruning {}", path.display())))?;
            }
        }
        Ok(())
    }

    /// Load the newest valid checkpoint, skipping (and reporting) any
    /// that fail envelope validation. An empty directory is a fresh
    /// start (`checkpoint: None`); a directory with only corrupt files
    /// is [`CheckpointError::NoValidCheckpoint`].
    pub fn resume(&self) -> Result<ResumeOutcome, CheckpointError> {
        let mut files = self.list()?;
        files.reverse(); // newest first
        if files.is_empty() {
            return Ok(ResumeOutcome {
                checkpoint: None,
                path: None,
                skipped: Vec::new(),
            });
        }
        let mut skipped = Vec::new();
        for (_, path) in files {
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(e) => {
                    skipped.push((path, format!("unreadable: {e}")));
                    continue;
                }
            };
            match decode(&bytes) {
                Ok(ckpt) => {
                    return Ok(ResumeOutcome {
                        checkpoint: Some(ckpt),
                        path: Some(path),
                        skipped,
                    });
                }
                Err(e) => skipped.push((path, e.to_string())),
            }
        }
        Err(CheckpointError::NoValidCheckpoint { skipped })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HiveConfig;
    use crate::incremental::HiveSession;
    use pg_model::{LabelSet, Node, PropertyGraph};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pg-hive-ckpt-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_checkpoint() -> SessionCheckpoint {
        let mut g = PropertyGraph::new();
        for i in 0..8 {
            g.add_node(Node::new(i, LabelSet::single("Person")).with_prop("age", i as i64))
                .unwrap();
        }
        let mut cfg = HiveConfig::default();
        if let crate::config::EmbeddingKind::Word2Vec(ref mut w) = cfg.embedding {
            w.dim = 4;
            w.epochs = 1;
        }
        cfg.post_processing = false;
        let mut session = HiveSession::new(cfg);
        let (nodes, edges) = pg_store::load(&g);
        session.process_batch(&nodes, &edges);
        session.checkpoint()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_round_trips() {
        let ckpt = small_checkpoint();
        let bytes = encode(&ckpt).unwrap();
        let back = decode(&bytes).unwrap();
        assert_eq!(back.batches_processed, ckpt.batches_processed);
        assert_eq!(back.schema, ckpt.schema);
        assert_eq!(back.node_accums.len(), ckpt.node_accums.len());
    }

    #[test]
    fn header_is_humane_ascii() {
        let bytes = encode(&small_checkpoint()).unwrap();
        let header: Vec<u8> = bytes.iter().copied().take_while(|&b| b != b'\n').collect();
        let header = String::from_utf8(header).unwrap();
        assert!(header.starts_with("PGHIVE-CKPT v1 len="), "{header}");
        assert!(header.contains("crc32="), "{header}");
    }

    #[test]
    fn truncation_is_detected_at_every_boundary() {
        let bytes = encode(&small_checkpoint()).unwrap();
        // Spot-check a spread of prefixes including the empty file.
        for cut in [0, 1, 5, bytes.len() / 2, bytes.len() - 1] {
            let err = decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, CheckpointError::Corrupt { .. }),
                "cut at {cut} gave {err}"
            );
        }
    }

    #[test]
    fn bit_flips_are_detected() {
        let bytes = encode(&small_checkpoint()).unwrap();
        for pos in [0, 3, 14, bytes.len() / 2, bytes.len() - 1] {
            for bit in [0, 4, 7] {
                let mut evil = bytes.clone();
                evil[pos] ^= 1 << bit;
                assert!(
                    decode(&evil).is_err(),
                    "flip at byte {pos} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode(&small_checkpoint()).unwrap();
        bytes.extend_from_slice(b"junk");
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn future_versions_are_refused_not_misread() {
        let bytes = encode(&small_checkpoint()).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let bumped = text.replacen("PGHIVE-CKPT v1 ", "PGHIVE-CKPT v2 ", 1);
        let err = decode(bumped.as_bytes()).unwrap_err();
        assert!(
            err.to_string().contains("unsupported format version"),
            "{err}"
        );
    }

    #[test]
    fn save_resume_round_trips_through_disk() {
        let dir = tmpdir("roundtrip");
        let store = CheckpointStore::open(&dir).unwrap();
        let ckpt = small_checkpoint();
        let path = store.save(&ckpt).unwrap();
        assert!(path.exists());
        let outcome = store.resume().unwrap();
        assert_eq!(outcome.path.as_deref(), Some(path.as_path()));
        assert!(outcome.skipped.is_empty());
        assert_eq!(outcome.checkpoint.unwrap().schema, ckpt.schema);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_store_is_a_fresh_start() {
        let dir = tmpdir("fresh");
        let store = CheckpointStore::open(&dir).unwrap();
        let outcome = store.resume().unwrap();
        assert!(outcome.checkpoint.is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_prunes_oldest() {
        let dir = tmpdir("retention");
        let store = CheckpointStore::open(&dir).unwrap().with_retention(2);
        let ckpt = small_checkpoint();
        for _ in 0..5 {
            store.save(&ckpt).unwrap();
        }
        let files = store.list().unwrap();
        assert_eq!(files.len(), 2);
        assert_eq!(
            files.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![3, 4],
            "the newest sequence numbers survive"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_one_keeps_exactly_the_newest_and_recovers_past_corruption() {
        let dir = tmpdir("retention-one");
        let store = CheckpointStore::open(&dir).unwrap().with_retention(1);
        let ckpt = small_checkpoint();
        for _ in 0..3 {
            store.save(&ckpt).unwrap();
        }
        let files = store.list().unwrap();
        assert_eq!(files.len(), 1, "keep=1 retains a single file");
        assert_eq!(files[0].0, 2, "and it is the newest sequence");

        // Corrupt the sole survivor: resume must refuse (there is
        // nothing valid to fall back to), not fabricate a fresh start.
        fs::write(&files[0].1, b"scribbled over").unwrap();
        match store.resume().unwrap_err() {
            CheckpointError::NoValidCheckpoint { skipped } => assert_eq!(skipped.len(), 1),
            other => panic!("wrong error {other}"),
        }

        // The next save sequences past the corrupt file, prunes it, and
        // resume is healthy again.
        store.save(&ckpt).unwrap();
        let files = store.list().unwrap();
        assert_eq!(files.len(), 1);
        assert_eq!(
            files[0].0, 3,
            "sequence numbering continues past the corpse"
        );
        let outcome = store.resume().unwrap();
        assert!(outcome.checkpoint.is_some());
        assert!(outcome.skipped.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_falls_back_past_a_corrupt_newest() {
        let dir = tmpdir("fallback");
        let store = CheckpointStore::open(&dir).unwrap();
        let ckpt = small_checkpoint();
        let good = store.save(&ckpt).unwrap();
        let newest = store.save(&ckpt).unwrap();
        // Truncate the newest file to half its size.
        let bytes = fs::read(&newest).unwrap();
        fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();

        let outcome = store.resume().unwrap();
        assert_eq!(outcome.path.as_deref(), Some(good.as_path()));
        assert_eq!(outcome.skipped.len(), 1);
        assert_eq!(outcome.skipped[0].0, newest);
        assert!(outcome.checkpoint.is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn all_corrupt_is_an_error_not_garbage() {
        let dir = tmpdir("all-corrupt");
        let store = CheckpointStore::open(&dir).unwrap();
        let ckpt = small_checkpoint();
        for _ in 0..2 {
            store.save(&ckpt).unwrap();
        }
        for (_, path) in store.list().unwrap() {
            fs::write(&path, b"PGHIVE-CKPT v1 len=4 crc32=deadbeef\nXXXX").unwrap();
        }
        let err = store.resume().unwrap_err();
        match err {
            CheckpointError::NoValidCheckpoint { skipped } => assert_eq!(skipped.len(), 2),
            other => panic!("wrong error {other}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stray_files_are_ignored_by_listing() {
        let dir = tmpdir("stray");
        let store = CheckpointStore::open(&dir).unwrap();
        fs::write(dir.join("notes.txt"), "hi").unwrap();
        fs::write(dir.join(".tmp-ckpt-00000000"), "torn write leftovers").unwrap();
        let ckpt = small_checkpoint();
        store.save(&ckpt).unwrap();
        assert_eq!(store.list().unwrap().len(), 1);
        assert!(store.resume().unwrap().checkpoint.is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_via_faulty_writer_is_detected() {
        use pg_store::faults::{FaultKind, FaultyWriter};
        let ckpt = small_checkpoint();
        let full = encode(&ckpt).unwrap();

        // A writer that silently drops everything past half the
        // envelope models a crash between write() and fsync().
        let mut w = FaultyWriter::new(Vec::new(), full.len() / 2, FaultKind::SilentTruncate);
        encode_to(&ckpt, &mut w).unwrap();
        let torn = w.into_inner();
        assert!(torn.len() < full.len());
        assert!(decode(&torn).is_err(), "torn write must not decode");

        // An erroring writer surfaces the failure instead of passing
        // a half-written checkpoint off as saved.
        let mut w = FaultyWriter::new(Vec::new(), full.len() / 2, FaultKind::Error);
        assert!(encode_to(&ckpt, &mut w).is_err());
    }
}
