//! Property data-type inference (§4.4, "Property data types").
//!
//! For each property of each type, the observed value types are joined on
//! the shallow lattice (int → float, date → datetime, mixed → string).
//! A full scan joins every value; the optional sampling mode joins a
//! without-replacement sample ("10 % of the properties, and at least
//! 1000") — Figure 8 measures how often sampling disagrees with the full
//! scan.

use crate::config::DatatypeSampling;
use crate::state::{DiscoveryState, DtypeHist};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Infer and write data types for every property of every type.
///
/// Sketched accumulators (streaming mode) with sampling enabled join
/// over the accumulator's bottom-k value sample instead of drawing from
/// the histogram: a deterministic, RNG-free sample of *distinct*
/// values, so two sessions that saw the same stream in any order infer
/// identical types. Full-scan inference (`sampling == None`) uses the
/// exact histogram in both modes — the histogram stays O(1) per
/// property regardless of mode, so streaming keeps full fidelity there.
pub fn infer_datatypes(state: &mut DiscoveryState, sampling: Option<DatatypeSampling>, seed: u64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for t in &mut state.schema.node_types {
        let Some(acc) = state.node_accums.get(&t.id) else {
            continue;
        };
        for (key, spec) in t.properties.iter_mut() {
            let reservoir = sampling
                .and(acc.sketch.as_ref())
                .and_then(|sk| sk.samples.get(key))
                .filter(|s| !s.is_empty());
            if let Some(sample) = reservoir {
                spec.datatype = sample.join();
            } else if let Some(hist) = acc.dtype_hist.get(key) {
                spec.datatype = infer_one(hist, sampling, &mut rng);
            }
        }
    }
    for t in &mut state.schema.edge_types {
        let Some(acc) = state.edge_accums.get(&t.id) else {
            continue;
        };
        for (key, spec) in t.properties.iter_mut() {
            let reservoir = sampling
                .and(acc.sketch.as_ref())
                .and_then(|sk| sk.samples.get(key))
                .filter(|s| !s.is_empty());
            if let Some(sample) = reservoir {
                spec.datatype = sample.join();
            } else if let Some(hist) = acc.dtype_hist.get(key) {
                spec.datatype = infer_one(hist, sampling, &mut rng);
            }
        }
    }
}

/// Data type of one property: full join or sampled join.
pub fn infer_one(
    hist: &DtypeHist,
    sampling: Option<DatatypeSampling>,
    rng: &mut ChaCha8Rng,
) -> Option<pg_model::DataType> {
    match sampling {
        None => hist.full_join(),
        Some(s) => hist.sample_join(sample_size(hist.total(), s), rng),
    }
}

/// The paper's sample size: `max(fraction·total, min_values)`, capped at
/// the total.
pub fn sample_size(total: u64, s: DatatypeSampling) -> usize {
    let frac = (total as f64 * s.fraction).ceil() as usize;
    frac.max(s.min_values).min(total as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_model::DataType;

    #[test]
    fn sample_size_rules() {
        let s = DatatypeSampling {
            fraction: 0.1,
            min_values: 1000,
        };
        assert_eq!(sample_size(50, s), 50, "capped at total");
        assert_eq!(sample_size(5_000, s), 1000, "minimum enforced");
        assert_eq!(sample_size(100_000, s), 10_000, "10 % of large sets");
    }

    #[test]
    fn full_scan_joins_all_values() {
        let mut h = DtypeHist::default();
        h.observe(DataType::Int);
        h.observe(DataType::Float);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(infer_one(&h, None, &mut rng), Some(DataType::Float));
    }

    #[test]
    fn sampling_can_miss_rare_outliers() {
        // 100k ints + 1 string: the full scan must say Str, a small
        // sample will usually say Int — exactly the Figure 8 phenomenon.
        let mut h = DtypeHist::default();
        for _ in 0..100_000 {
            h.observe(DataType::Int);
        }
        h.observe(DataType::Str);
        assert_eq!(h.full_join(), Some(DataType::Str));
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let sampled = infer_one(
            &h,
            Some(DatatypeSampling {
                fraction: 0.001,
                min_values: 100,
            }),
            &mut rng,
        );
        assert_eq!(sampled, Some(DataType::Int), "outlier missed by sample");
    }

    #[test]
    fn pipeline_writes_datatypes() {
        use crate::cluster::NodeCluster;
        use crate::extract::integrate_node_clusters;
        use crate::state::NodeTypeAccum;
        use pg_model::{LabelSet, Node};

        let mut accum = NodeTypeAccum::default();
        accum.observe(
            &Node::new(1, LabelSet::single("P"))
                .with_prop("age", 30i64)
                .with_prop("name", "bob")
                .with_prop("bday", pg_model::Date::new(1999, 12, 19).unwrap()),
        );
        let cluster = NodeCluster {
            labels: LabelSet::single("P"),
            keys: ["age", "name", "bday"]
                .iter()
                .map(|k| pg_model::sym(k))
                .collect(),
            accum,
        };
        let mut state = DiscoveryState::new();
        integrate_node_clusters(&mut state, vec![cluster], 0.9);
        infer_datatypes(&mut state, None, 0);
        let t = &state.schema.node_types[0];
        assert_eq!(
            t.properties[&pg_model::sym("age")].datatype,
            Some(DataType::Int)
        );
        assert_eq!(
            t.properties[&pg_model::sym("name")].datatype,
            Some(DataType::Str)
        );
        assert_eq!(
            t.properties[&pg_model::sym("bday")].datatype,
            Some(DataType::Date)
        );
    }
}
