//! Discovery state: the running schema plus per-type instance
//! accumulators.
//!
//! The accumulators record exactly what post-processing needs, in O(1)
//! per instance: per-key presence counts (mandatory/optional, §4.4),
//! per-key data-type histograms (data-type inference, §4.4), edge
//! endpoint pairs (cardinalities, §4.4), and member ids (evaluation).
//! They merge by addition/concatenation, so the incremental pipeline
//! maintains them across batches without recomputation.

use crate::config::StreamConfig;
use crate::sketch::{hash_pair, DistinctSketch, ValueSample, SKETCH_SALT};
use pg_model::{Cardinality, DataType, EdgeId, NodeId, SchemaGraph, Symbol, TypeId};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Histogram of observed value data types for one property of one type.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DtypeHist {
    counts: [u64; 6],
}

const ALL_TYPES: [DataType; 6] = [
    DataType::Int,
    DataType::Float,
    DataType::Bool,
    DataType::Date,
    DataType::DateTime,
    DataType::Str,
];

fn slot(t: DataType) -> usize {
    match t {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Bool => 2,
        DataType::Date => 3,
        DataType::DateTime => 4,
        DataType::Str => 5,
    }
}

impl DtypeHist {
    /// Record one observed value's type.
    pub fn observe(&mut self, t: DataType) {
        self.counts[slot(t)] += 1;
    }

    /// Record `n` observations of one type at once (used when lifting a
    /// bare schema's declared data types back into accumulator form).
    pub fn observe_n(&mut self, t: DataType, n: u64) {
        self.counts[slot(t)] += n;
    }

    /// Total number of observed values.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Count for one data type.
    pub fn count(&self, t: DataType) -> u64 {
        self.counts[slot(t)]
    }

    /// Full-scan inference: the lattice join over every observed value's
    /// type (`None` if nothing was observed).
    pub fn full_join(&self) -> Option<DataType> {
        DataType::join_all(
            ALL_TYPES
                .iter()
                .copied()
                .filter(|&t| self.counts[slot(t)] > 0),
        )
    }

    /// Draw a without-replacement sample of value types of the requested
    /// size (capped at the total) and return the join over the sample.
    pub fn sample_join(&self, sample_size: usize, rng: &mut ChaCha8Rng) -> Option<DataType> {
        let sample = self.draw(sample_size, rng);
        DataType::join_all(ALL_TYPES.iter().copied().filter(|&t| sample[slot(t)] > 0))
    }

    /// The paper's sampling-error metric (§5, "Evaluation metrics"):
    /// `error(p) = (1/|S_p|) Σ_{v∈S_p} 1(f(v) ≠ f(D_p))` — the fraction
    /// of sampled values whose individual type disagrees with the
    /// full-scan inference. Returns `None` when no values exist.
    pub fn sampling_error(&self, sample_size: usize, rng: &mut ChaCha8Rng) -> Option<f64> {
        let full = self.full_join()?;
        let sample = self.draw(sample_size, rng);
        let drawn: u64 = sample.iter().sum();
        if drawn == 0 {
            return None;
        }
        let disagree: u64 = ALL_TYPES
            .iter()
            .filter(|&&t| t != full)
            .map(|&t| sample[slot(t)])
            .sum();
        Some(disagree as f64 / drawn as f64)
    }

    /// Without-replacement draw from the histogram (multivariate
    /// hypergeometric), returned as per-type counts.
    fn draw(&self, sample_size: usize, rng: &mut ChaCha8Rng) -> [u64; 6] {
        let mut remaining = self.counts;
        let mut remaining_total = self.total();
        let mut out = [0u64; 6];
        let want = (sample_size as u64).min(remaining_total);
        for _ in 0..want {
            let mut pick = rng.gen_range(0..remaining_total);
            for (i, r) in remaining.iter_mut().enumerate() {
                if pick < *r {
                    *r -= 1;
                    out[i] += 1;
                    break;
                }
                pick -= *r;
            }
            remaining_total -= 1;
        }
        out
    }

    /// Merge another histogram (incremental batches). Pure integer
    /// addition per slot — commutative and associative, so any merge
    /// order (batch arrival, shard order, reduction tree shape) yields
    /// the same histogram. There is deliberately no floating-point
    /// accumulation anywhere in the per-type statistics: fractions like
    /// presence rates are derived at read time, never accumulated.
    pub fn merge(&mut self, other: &DtypeHist) {
        for i in 0..6 {
            self.counts[i] += other.counts[i];
        }
    }
}

/// Resolved sketch parameters for one accumulator (streaming mode).
/// Derived once from [`StreamConfig`] + the pipeline seed, then carried
/// inside every sketched accumulator so checkpoints and shard states
/// are self-describing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SketchParams {
    /// KMV sketch size for distinct counters.
    pub distinct_k: usize,
    /// Bottom-k value-sample size per property.
    pub sample_k: usize,
    /// Sketch hash seed (pipeline seed ⊕ [`SKETCH_SALT`]).
    pub seed: u64,
}

impl SketchParams {
    /// Resolve from the config's stream knobs and the pipeline seed.
    pub fn resolve(stream: &StreamConfig, seed: u64) -> SketchParams {
        SketchParams {
            distinct_k: stream.distinct_k,
            sample_k: stream.sample_k,
            seed: seed ^ SKETCH_SALT,
        }
    }
}

/// Sketched statistics of a node-type accumulator (streaming mode):
/// member ids collapse into a KMV distinct counter and property values
/// into bottom-k samples, so the accumulator's size is independent of
/// how many instances streamed through it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSketch {
    /// The parameters every sketch below was built with.
    pub params: SketchParams,
    /// Distinct member ids (replaces the `members` list).
    pub members: DistinctSketch,
    /// Per property key: sampled distinct values with their types.
    pub samples: HashMap<Symbol, ValueSample>,
}

impl NodeSketch {
    /// Empty sketch set.
    pub fn new(params: SketchParams) -> NodeSketch {
        NodeSketch {
            params,
            members: DistinctSketch::new(params.distinct_k, params.seed ^ 0x01),
            samples: HashMap::new(),
        }
    }

    /// Fold one node instance in (id + property values).
    pub fn observe(&mut self, node: &pg_model::Node) {
        self.members.insert(node.id.0);
        self.observe_values(&node.props);
    }

    /// Fold only the property values (used when ids were already
    /// absorbed from an exact member list).
    pub fn observe_values(
        &mut self,
        props: &std::collections::BTreeMap<Symbol, pg_model::PropertyValue>,
    ) {
        for (k, v) in props {
            self.samples
                .entry(k.clone())
                .or_insert_with(|| ValueSample::new(self.params.sample_k, self.params.seed ^ 0x02))
                .observe(k, v);
        }
    }

    /// Absorb an exact member-id list.
    pub fn absorb_members(&mut self, members: &[NodeId]) {
        for m in members {
            self.members.insert(m.0);
        }
    }

    /// Merge another node sketch (order-insensitive).
    pub fn merge(&mut self, other: &NodeSketch) {
        self.members.merge(&other.members);
        for (k, s) in &other.samples {
            match self.samples.get_mut(k) {
                Some(mine) => mine.merge(s),
                None => {
                    self.samples.insert(k.clone(), s.clone());
                }
            }
        }
    }

    /// Bytes retained (memory gauges).
    pub fn retained_bytes(&self) -> usize {
        self.members.retained_bytes()
            + self
                .samples
                .values()
                .map(|s| s.retained_bytes() + 64)
                .sum::<usize>()
    }
}

/// Sketched statistics of an edge-type accumulator (streaming mode):
/// the endpoint list collapses into three KMV distinct counters —
/// distinct `(src, tgt)` pairs, distinct sources, distinct targets —
/// which are exactly the per-endpoint distinct counts that decide the
/// `1:1 / 1:N / N:M` cardinality class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeSketch {
    /// The parameters every sketch below was built with.
    pub params: SketchParams,
    /// Distinct member ids.
    pub members: DistinctSketch,
    /// Distinct `(src, tgt)` endpoint pairs.
    pub pairs: DistinctSketch,
    /// Distinct source node ids.
    pub srcs: DistinctSketch,
    /// Distinct target node ids.
    pub tgts: DistinctSketch,
    /// Per property key: sampled distinct values with their types.
    pub samples: HashMap<Symbol, ValueSample>,
}

impl EdgeSketch {
    /// Empty sketch set.
    pub fn new(params: SketchParams) -> EdgeSketch {
        EdgeSketch {
            params,
            members: DistinctSketch::new(params.distinct_k, params.seed ^ 0x11),
            pairs: DistinctSketch::new(params.distinct_k, params.seed ^ 0x12),
            srcs: DistinctSketch::new(params.distinct_k, params.seed ^ 0x13),
            tgts: DistinctSketch::new(params.distinct_k, params.seed ^ 0x14),
            samples: HashMap::new(),
        }
    }

    /// Fold one edge instance in.
    pub fn observe(&mut self, edge: &pg_model::Edge) {
        self.members.insert(edge.id.0);
        self.observe_endpoint(edge.src, edge.tgt);
        self.observe_values(&edge.props);
    }

    /// Fold only the property values.
    pub fn observe_values(
        &mut self,
        props: &std::collections::BTreeMap<Symbol, pg_model::PropertyValue>,
    ) {
        for (k, v) in props {
            self.samples
                .entry(k.clone())
                .or_insert_with(|| ValueSample::new(self.params.sample_k, self.params.seed ^ 0x15))
                .observe(k, v);
        }
    }

    /// Fold one endpoint pair into the three distinct counters.
    pub fn observe_endpoint(&mut self, src: NodeId, tgt: NodeId) {
        self.pairs
            .insert_hash(hash_pair(self.pairs.seed(), src.0, tgt.0));
        self.srcs.insert(src.0);
        self.tgts.insert(tgt.0);
    }

    /// Absorb exact member-id and endpoint lists.
    pub fn absorb(&mut self, members: &[EdgeId], endpoints: &[(NodeId, NodeId)]) {
        for m in members {
            self.members.insert(m.0);
        }
        for &(s, t) in endpoints {
            self.observe_endpoint(s, t);
        }
    }

    /// Merge another edge sketch (order-insensitive).
    pub fn merge(&mut self, other: &EdgeSketch) {
        self.members.merge(&other.members);
        self.pairs.merge(&other.pairs);
        self.srcs.merge(&other.srcs);
        self.tgts.merge(&other.tgts);
        for (k, s) in &other.samples {
            match self.samples.get_mut(k) {
                Some(mine) => mine.merge(s),
                None => {
                    self.samples.insert(k.clone(), s.clone());
                }
            }
        }
    }

    /// Cardinality bounds from the distinct counters, or `None` when no
    /// endpoint was ever observed.
    ///
    /// `max_out > 1` iff distinct pairs exceed distinct sources beyond
    /// the sketches' error slack (a source with two distinct targets
    /// contributes two pairs but one source), and the magnitude is the
    /// mean fan-out `pairs / srcs` — an estimate of the fan-out class,
    /// not the exact maximum an endpoint scan would produce. Symmetric
    /// for `max_in`. Deterministic: a pure function of the merged
    /// sketch state, so shard order cannot change the classification.
    pub fn cardinality_estimate(&self) -> Option<Cardinality> {
        if self.pairs.is_empty() {
            return None;
        }
        let pairs = self.pairs.estimate().max(1);
        let srcs = self.srcs.estimate().max(1);
        let tgts = self.tgts.estimate().max(1);
        let out_slack = 1.0 + self.pairs.error_bound() + self.srcs.error_bound();
        let in_slack = 1.0 + self.pairs.error_bound() + self.tgts.error_bound();
        Some(Cardinality {
            max_out: ratio_bound(pairs, srcs, out_slack),
            max_in: ratio_bound(pairs, tgts, in_slack),
        })
    }

    /// Bytes retained (memory gauges).
    pub fn retained_bytes(&self) -> usize {
        self.members.retained_bytes()
            + self.pairs.retained_bytes()
            + self.srcs.retained_bytes()
            + self.tgts.retained_bytes()
            + self
                .samples
                .values()
                .map(|s| s.retained_bytes() + 64)
                .sum::<usize>()
    }
}

/// `pairs / ends` rounded, floored at 2 when the pair count exceeds the
/// endpoint count beyond the error slack, else 1.
fn ratio_bound(pairs: u64, ends: u64, slack: f64) -> u64 {
    if (pairs as f64) <= (ends as f64) * slack {
        1
    } else {
        (((pairs as f64) / (ends as f64)).round() as u64).max(2)
    }
}

/// Per-node-type accumulator.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NodeTypeAccum {
    /// Number of instances assigned to the type.
    pub count: u64,
    /// Per property key: how many instances carry it.
    pub key_present: HashMap<Symbol, u64>,
    /// Per property key: histogram of observed value types.
    pub dtype_hist: HashMap<Symbol, DtypeHist>,
    /// Member node ids (evaluation + instance queries). Empty in
    /// streaming mode, where `sketch` summarizes membership instead.
    pub members: Vec<NodeId>,
    /// Streaming-mode sketched statistics. `None` (the default, and the
    /// wire default for checkpoints written before streaming existed)
    /// means the accumulator is exact.
    pub sketch: Option<NodeSketch>,
}

impl NodeTypeAccum {
    /// Fold one node instance in. Exact accumulators append the member
    /// id; sketched accumulators fold it (and the property values) into
    /// fixed-size sketches instead.
    pub fn observe(&mut self, node: &pg_model::Node) {
        self.count += 1;
        match &mut self.sketch {
            Some(sk) => sk.observe(node),
            None => self.members.push(node.id),
        }
        for (k, v) in &node.props {
            *self.key_present.entry(k.clone()).or_insert(0) += 1;
            self.dtype_hist
                .entry(k.clone())
                .or_default()
                .observe(DataType::of(v));
        }
    }

    /// Convert an exact accumulator to sketched form: fold the member
    /// list into the sketches and drop it. No-op when already sketched.
    pub fn ensure_sketched(&mut self, params: SketchParams) {
        if self.sketch.is_none() {
            let mut sk = NodeSketch::new(params);
            sk.absorb_members(&self.members);
            self.members = Vec::new();
            self.sketch = Some(sk);
        }
    }

    /// Merge another accumulator (cluster merge / batch merge). Counts,
    /// presence maps, and histograms always add exactly; membership
    /// merges sketch-to-sketch, absorbs exact lists into sketches, or
    /// concatenates lists — whichever the two modes imply. A mixed
    /// merge promotes the result to sketched form (the bounded side
    /// wins), so the outcome is the same regardless of operand order.
    pub fn merge(&mut self, other: &NodeTypeAccum) {
        self.count += other.count;
        for (k, c) in &other.key_present {
            *self.key_present.entry(k.clone()).or_insert(0) += c;
        }
        for (k, h) in &other.dtype_hist {
            self.dtype_hist.entry(k.clone()).or_default().merge(h);
        }
        match (&mut self.sketch, &other.sketch) {
            (Some(sk), Some(osk)) => {
                sk.merge(osk);
                sk.absorb_members(&other.members);
            }
            (Some(sk), None) => sk.absorb_members(&other.members),
            (None, Some(osk)) => {
                let mut sk = NodeSketch::new(osk.params);
                sk.absorb_members(&self.members);
                sk.merge(osk);
                sk.absorb_members(&other.members);
                self.members = Vec::new();
                self.sketch = Some(sk);
            }
            (None, None) => self.members.extend_from_slice(&other.members),
        }
    }

    /// Estimated heap bytes this accumulator retains (memory gauges).
    pub fn retained_bytes(&self) -> usize {
        let maps = (self.key_present.len() + self.dtype_hist.len()) * 96;
        self.members.capacity() * std::mem::size_of::<NodeId>()
            + maps
            + self.sketch.as_ref().map_or(0, |s| s.retained_bytes())
    }
}

/// Per-edge-type accumulator.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EdgeTypeAccum {
    /// Number of instances assigned to the type.
    pub count: u64,
    /// Per property key: how many instances carry it.
    pub key_present: HashMap<Symbol, u64>,
    /// Per property key: histogram of observed value types.
    pub dtype_hist: HashMap<Symbol, DtypeHist>,
    /// Member edge ids. Empty in streaming mode (see `sketch`).
    pub members: Vec<EdgeId>,
    /// Endpoint pairs for cardinality inference. In batch/incremental
    /// mode this grows O(edges) and is the dominant memory cost of a
    /// long-lived session; streaming mode replaces it with the three
    /// KMV distinct counters of [`EdgeSketch`].
    pub endpoints: Vec<(NodeId, NodeId)>,
    /// Cardinality floor folded in from a merged foreign schema whose
    /// endpoint pairs are unavailable (e.g. a shard schema posted to
    /// `/sessions/{id}/merge`). Cardinality inference takes the
    /// component-wise max of this floor and the bounds observed from
    /// `endpoints`. `None` for locally observed edges.
    pub card_floor: Option<Cardinality>,
    /// Streaming-mode sketched statistics (see [`NodeTypeAccum::sketch`]).
    pub sketch: Option<EdgeSketch>,
}

impl EdgeTypeAccum {
    /// Fold one edge instance in (see [`NodeTypeAccum::observe`]).
    pub fn observe(&mut self, edge: &pg_model::Edge) {
        self.count += 1;
        match &mut self.sketch {
            Some(sk) => sk.observe(edge),
            None => {
                self.members.push(edge.id);
                self.endpoints.push((edge.src, edge.tgt));
            }
        }
        for (k, v) in &edge.props {
            *self.key_present.entry(k.clone()).or_insert(0) += 1;
            self.dtype_hist
                .entry(k.clone())
                .or_default()
                .observe(DataType::of(v));
        }
    }

    /// Convert an exact accumulator to sketched form: fold members and
    /// endpoints into the sketches and drop the lists. No-op when
    /// already sketched.
    pub fn ensure_sketched(&mut self, params: SketchParams) {
        if self.sketch.is_none() {
            let mut sk = EdgeSketch::new(params);
            sk.absorb(&self.members, &self.endpoints);
            self.members = Vec::new();
            self.endpoints = Vec::new();
            self.sketch = Some(sk);
        }
    }

    /// Merge another accumulator (see [`NodeTypeAccum::merge`] for the
    /// mixed-mode rules).
    pub fn merge(&mut self, other: &EdgeTypeAccum) {
        self.count += other.count;
        self.card_floor = match (self.card_floor, other.card_floor) {
            (Some(a), Some(b)) => Some(a.merge(&b)),
            (a, b) => a.or(b),
        };
        for (k, c) in &other.key_present {
            *self.key_present.entry(k.clone()).or_insert(0) += c;
        }
        for (k, h) in &other.dtype_hist {
            self.dtype_hist.entry(k.clone()).or_default().merge(h);
        }
        match (&mut self.sketch, &other.sketch) {
            (Some(sk), Some(osk)) => {
                sk.merge(osk);
                sk.absorb(&other.members, &other.endpoints);
            }
            (Some(sk), None) => sk.absorb(&other.members, &other.endpoints),
            (None, Some(osk)) => {
                let mut sk = EdgeSketch::new(osk.params);
                sk.absorb(&self.members, &self.endpoints);
                sk.merge(osk);
                sk.absorb(&other.members, &other.endpoints);
                self.members = Vec::new();
                self.endpoints = Vec::new();
                self.sketch = Some(sk);
            }
            (None, None) => {
                self.members.extend_from_slice(&other.members);
                self.endpoints.extend_from_slice(&other.endpoints);
            }
        }
    }

    /// Estimated heap bytes this accumulator retains (memory gauges).
    pub fn retained_bytes(&self) -> usize {
        let maps = (self.key_present.len() + self.dtype_hist.len()) * 96;
        self.members.capacity() * std::mem::size_of::<EdgeId>()
            + self.endpoints.capacity() * std::mem::size_of::<(NodeId, NodeId)>()
            + maps
            + self.sketch.as_ref().map_or(0, |s| s.retained_bytes())
    }
}

/// The running discovery state: schema graph + per-type accumulators.
#[derive(Debug, Clone, Default)]
pub struct DiscoveryState {
    /// The schema inferred so far.
    pub schema: SchemaGraph,
    /// Node accumulators, keyed by node type id.
    pub node_accums: HashMap<TypeId, NodeTypeAccum>,
    /// Edge accumulators, keyed by edge type id.
    pub edge_accums: HashMap<TypeId, EdgeTypeAccum>,
}

impl DiscoveryState {
    /// Fresh, empty state (`S_G ← ∅`, Algorithm 1 line 1).
    pub fn new() -> Self {
        DiscoveryState::default()
    }

    /// Estimated heap bytes retained by all accumulators. Exposed as a
    /// `/metrics` gauge so operators can watch memory pressure: grows
    /// O(records) in batch mode, stays bounded in streaming mode.
    pub fn estimated_accum_bytes(&self) -> usize {
        self.node_accums
            .values()
            .map(|a| a.retained_bytes())
            .chain(self.edge_accums.values().map(|a| a.retained_bytes()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_model::{LabelSet, Node};
    use rand::SeedableRng;

    #[test]
    fn hist_full_join() {
        let mut h = DtypeHist::default();
        assert_eq!(h.full_join(), None);
        h.observe(DataType::Int);
        assert_eq!(h.full_join(), Some(DataType::Int));
        h.observe(DataType::Float);
        assert_eq!(h.full_join(), Some(DataType::Float));
        h.observe(DataType::Str);
        assert_eq!(h.full_join(), Some(DataType::Str));
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn hist_sampling_error_pure_property_is_zero() {
        let mut h = DtypeHist::default();
        for _ in 0..1000 {
            h.observe(DataType::Int);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(h.sampling_error(100, &mut rng), Some(0.0));
    }

    #[test]
    fn hist_sampling_error_mixed_property() {
        // 90 % Int + 10 % Str → full join = Str; an Int draw disagrees,
        // so the expected error is ≈ 0.9.
        let mut h = DtypeHist::default();
        for _ in 0..900 {
            h.observe(DataType::Int);
        }
        for _ in 0..100 {
            h.observe(DataType::Str);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let e = h.sampling_error(200, &mut rng).unwrap();
        assert!((e - 0.9).abs() < 0.1, "error {e} should be near 0.9");
    }

    #[test]
    fn hist_draw_is_capped_at_total() {
        let mut h = DtypeHist::default();
        h.observe(DataType::Bool);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        // Sampling more than exists must not loop or overcount.
        assert_eq!(h.sample_join(10, &mut rng), Some(DataType::Bool));
    }

    /// Audit regression (distributed merge): `DtypeHist::merge` must be
    /// order-insensitive. The histogram stores pure integer counts, so
    /// any permutation and any reduction-tree shape must agree bit for
    /// bit — no float accumulation is allowed to sneak in.
    #[test]
    fn dtype_hist_merge_is_order_insensitive() {
        let parts: Vec<DtypeHist> = (0..6u64)
            .map(|i| {
                let mut h = DtypeHist::default();
                for (j, t) in [
                    DataType::Int,
                    DataType::Float,
                    DataType::Bool,
                    DataType::Date,
                    DataType::DateTime,
                    DataType::Str,
                ]
                .into_iter()
                .enumerate()
                {
                    for _ in 0..(i * 7 + j as u64 * 3 + 1) {
                        h.observe(t);
                    }
                }
                h
            })
            .collect();
        // Left fold in input order.
        let mut forward = DtypeHist::default();
        for p in &parts {
            forward.merge(p);
        }
        // Left fold in reverse order.
        let mut backward = DtypeHist::default();
        for p in parts.iter().rev() {
            backward.merge(p);
        }
        // Balanced reduction tree: (0+1) + ((2+3) + (4+5)).
        let pair = |a: &DtypeHist, b: &DtypeHist| {
            let mut m = a.clone();
            m.merge(b);
            m
        };
        let tree = pair(
            &pair(&parts[0], &parts[1]),
            &pair(&pair(&parts[2], &parts[3]), &pair(&parts[4], &parts[5])),
        );
        assert_eq!(forward, backward);
        assert_eq!(forward, tree);
        assert_eq!(forward.total(), parts.iter().map(DtypeHist::total).sum());
    }

    /// Audit regression: the edge accumulator's cardinality floor is an
    /// integer max-merge, so shard order cannot change it.
    #[test]
    fn card_floor_merge_is_order_insensitive() {
        let floors = [
            Some(Cardinality {
                max_out: 1,
                max_in: 5,
            }),
            None,
            Some(Cardinality {
                max_out: 4,
                max_in: 2,
            }),
            Some(Cardinality {
                max_out: 2,
                max_in: 2,
            }),
        ];
        let fold = |order: &[usize]| {
            let mut acc = EdgeTypeAccum::default();
            for &i in order {
                let other = EdgeTypeAccum {
                    card_floor: floors[i],
                    ..EdgeTypeAccum::default()
                };
                acc.merge(&other);
            }
            acc.card_floor
        };
        let expect = Some(Cardinality {
            max_out: 4,
            max_in: 5,
        });
        assert_eq!(fold(&[0, 1, 2, 3]), expect);
        assert_eq!(fold(&[3, 2, 1, 0]), expect);
        assert_eq!(fold(&[1, 3, 0, 2]), expect);
    }

    #[test]
    fn observe_n_matches_repeated_observe() {
        let mut a = DtypeHist::default();
        a.observe_n(DataType::Date, 17);
        let mut b = DtypeHist::default();
        for _ in 0..17 {
            b.observe(DataType::Date);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn node_accum_counts_presence() {
        let mut acc = NodeTypeAccum::default();
        acc.observe(&Node::new(1, LabelSet::single("P")).with_prop("a", 1i64));
        acc.observe(
            &Node::new(2, LabelSet::single("P"))
                .with_prop("a", 2i64)
                .with_prop("b", "x"),
        );
        assert_eq!(acc.count, 2);
        assert_eq!(acc.key_present[&pg_model::sym("a")], 2);
        assert_eq!(acc.key_present[&pg_model::sym("b")], 1);
        assert_eq!(acc.members.len(), 2);

        let mut other = NodeTypeAccum::default();
        other.observe(&Node::new(3, LabelSet::single("P")).with_prop("b", "y"));
        acc.merge(&other);
        assert_eq!(acc.count, 3);
        assert_eq!(acc.key_present[&pg_model::sym("b")], 2);
        assert_eq!(
            acc.dtype_hist[&pg_model::sym("a")].full_join(),
            Some(DataType::Int)
        );
    }
}
