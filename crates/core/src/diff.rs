//! Schema diffing: structural comparison of two schema graphs.
//!
//! Useful for tracking schema evolution across incremental batches (what
//! did the last batch add?), for regression-testing discovery runs, and
//! as the foundation for the paper's future-work item on handling
//! updates and deletions.

use pg_model::{EdgeType, LabelSet, NodeType, SchemaGraph, Symbol};
use std::collections::BTreeSet;
use std::fmt;

/// A change to one property of a type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropertyChange {
    /// The property exists only in the newer schema.
    Added(Symbol),
    /// The property exists only in the older schema.
    Removed(Symbol),
    /// Data type or presence changed.
    SpecChanged(Symbol),
}

/// A change to a node type (keyed by label set).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeTypeDiff {
    /// The type's label set (the matching key).
    pub labels: LabelSet,
    /// Property-level changes.
    pub properties: Vec<PropertyChange>,
}

/// A change to an edge type (keyed by labels + endpoints).
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeTypeDiff {
    /// Edge label set.
    pub labels: LabelSet,
    /// Source endpoint label set.
    pub src_labels: LabelSet,
    /// Target endpoint label set.
    pub tgt_labels: LabelSet,
    /// Property-level changes.
    pub properties: Vec<PropertyChange>,
    /// Whether the cardinality annotation changed.
    pub cardinality_changed: bool,
}

/// The full diff `old → new`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchemaDiff {
    /// Node types present only in `new`.
    pub added_node_types: Vec<LabelSet>,
    /// Node types present only in `old`.
    pub removed_node_types: Vec<LabelSet>,
    /// Node types present in both but changed.
    pub changed_node_types: Vec<NodeTypeDiff>,
    /// Edge types present only in `new` (label + endpoints key).
    pub added_edge_types: Vec<(LabelSet, LabelSet, LabelSet)>,
    /// Edge types present only in `old`.
    pub removed_edge_types: Vec<(LabelSet, LabelSet, LabelSet)>,
    /// Edge types present in both but changed.
    pub changed_edge_types: Vec<EdgeTypeDiff>,
}

impl SchemaDiff {
    /// Whether the two schemas are structurally identical.
    pub fn is_empty(&self) -> bool {
        self.added_node_types.is_empty()
            && self.removed_node_types.is_empty()
            && self.changed_node_types.is_empty()
            && self.added_edge_types.is_empty()
            && self.removed_edge_types.is_empty()
            && self.changed_edge_types.is_empty()
    }

    /// Whether the diff only *adds* information (no removals) — the
    /// shape every monotone incremental step must produce (§4.6).
    pub fn is_pure_extension(&self) -> bool {
        self.removed_node_types.is_empty()
            && self.removed_edge_types.is_empty()
            && self.changed_node_types.iter().all(|d| {
                d.properties
                    .iter()
                    .all(|p| !matches!(p, PropertyChange::Removed(_)))
            })
            && self.changed_edge_types.iter().all(|d| {
                d.properties
                    .iter()
                    .all(|p| !matches!(p, PropertyChange::Removed(_)))
            })
    }
}

impl fmt::Display for SchemaDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return writeln!(f, "schemas are identical");
        }
        for t in &self.added_node_types {
            writeln!(f, "+ node type {t}")?;
        }
        for t in &self.removed_node_types {
            writeln!(f, "- node type {t}")?;
        }
        for d in &self.changed_node_types {
            writeln!(
                f,
                "~ node type {} ({} property changes)",
                d.labels,
                d.properties.len()
            )?;
        }
        for (l, s, t) in &self.added_edge_types {
            writeln!(f, "+ edge type {l} ({s} -> {t})")?;
        }
        for (l, s, t) in &self.removed_edge_types {
            writeln!(f, "- edge type {l} ({s} -> {t})")?;
        }
        for d in &self.changed_edge_types {
            writeln!(
                f,
                "~ edge type {} ({} property changes{})",
                d.labels,
                d.properties.len(),
                if d.cardinality_changed {
                    ", cardinality"
                } else {
                    ""
                }
            )?;
        }
        Ok(())
    }
}

fn diff_properties(old: &NodeType, new: &NodeType) -> Vec<PropertyChange> {
    diff_prop_maps(&old.properties, &new.properties)
}

fn diff_prop_maps(
    old: &std::collections::BTreeMap<Symbol, pg_model::PropertySpec>,
    new: &std::collections::BTreeMap<Symbol, pg_model::PropertySpec>,
) -> Vec<PropertyChange> {
    let mut out = Vec::new();
    let keys: BTreeSet<&Symbol> = old.keys().chain(new.keys()).collect();
    for k in keys {
        match (old.get(k), new.get(k)) {
            (None, Some(_)) => out.push(PropertyChange::Added(k.clone())),
            (Some(_), None) => out.push(PropertyChange::Removed(k.clone())),
            (Some(a), Some(b)) if a != b => out.push(PropertyChange::SpecChanged(k.clone())),
            _ => {}
        }
    }
    out
}

fn edge_key(t: &EdgeType) -> (LabelSet, LabelSet, LabelSet) {
    (t.labels.clone(), t.src_labels.clone(), t.tgt_labels.clone())
}

/// Compute the structural diff from `old` to `new`. Node types match by
/// label set; edge types by (labels, src labels, tgt labels). ABSTRACT
/// types (empty label sets) match by property-key set.
pub fn diff(old: &SchemaGraph, new: &SchemaGraph) -> SchemaDiff {
    let mut out = SchemaDiff::default();

    // --- Node types.
    for nt in &new.node_types {
        match old.node_types.iter().find(|o| node_matches(o, nt)) {
            None => out.added_node_types.push(nt.labels.clone()),
            Some(o) => {
                let props = diff_properties(o, nt);
                if !props.is_empty() {
                    out.changed_node_types.push(NodeTypeDiff {
                        labels: nt.labels.clone(),
                        properties: props,
                    });
                }
            }
        }
    }
    for ot in &old.node_types {
        if !new.node_types.iter().any(|n| node_matches(ot, n)) {
            out.removed_node_types.push(ot.labels.clone());
        }
    }

    // --- Edge types.
    for et in &new.edge_types {
        match old.edge_types.iter().find(|o| edge_key(o) == edge_key(et)) {
            None => out.added_edge_types.push(edge_key(et)),
            Some(o) => {
                let props = diff_prop_maps(&o.properties, &et.properties);
                let cardinality_changed = o.cardinality != et.cardinality;
                if !props.is_empty() || cardinality_changed {
                    out.changed_edge_types.push(EdgeTypeDiff {
                        labels: et.labels.clone(),
                        src_labels: et.src_labels.clone(),
                        tgt_labels: et.tgt_labels.clone(),
                        properties: props,
                        cardinality_changed,
                    });
                }
            }
        }
    }
    for ot in &old.edge_types {
        if !new.edge_types.iter().any(|n| edge_key(ot) == edge_key(n)) {
            out.removed_edge_types.push(edge_key(ot));
        }
    }

    out
}

/// Node types match by label set; for the unlabeled (ABSTRACT) case, by
/// property-key set.
fn node_matches(a: &NodeType, b: &NodeType) -> bool {
    if a.labels.is_empty() && b.labels.is_empty() {
        a.key_set() == b.key_set()
    } else {
        a.labels == b.labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_model::{PropertySpec, TypeId};

    fn node_type(labels: &[&str], keys: &[&str]) -> NodeType {
        NodeType::new(
            TypeId(0),
            LabelSet::from_iter(labels),
            keys.iter().map(|k| pg_model::sym(k)),
        )
    }

    #[test]
    fn identical_schemas_diff_empty() {
        let mut s = SchemaGraph::new();
        s.push_node_type(node_type(&["A"], &["x"]));
        let d = diff(&s, &s.clone());
        assert!(d.is_empty());
        assert!(d.is_pure_extension());
        assert_eq!(d.to_string(), "schemas are identical\n");
    }

    #[test]
    fn added_and_removed_types() {
        let mut old = SchemaGraph::new();
        old.push_node_type(node_type(&["A"], &["x"]));
        let mut new = SchemaGraph::new();
        new.push_node_type(node_type(&["B"], &["y"]));
        let d = diff(&old, &new);
        assert_eq!(d.added_node_types, vec![LabelSet::single("B")]);
        assert_eq!(d.removed_node_types, vec![LabelSet::single("A")]);
        assert!(!d.is_pure_extension());
    }

    #[test]
    fn property_changes_detected() {
        let mut old = SchemaGraph::new();
        old.push_node_type(node_type(&["A"], &["x"]));
        let mut new = SchemaGraph::new();
        let mut t = node_type(&["A"], &["x", "y"]);
        t.properties.insert(
            pg_model::sym("x"),
            PropertySpec {
                datatype: Some(pg_model::DataType::Int),
                presence: None,
            },
        );
        new.push_node_type(t);
        let d = diff(&old, &new);
        assert_eq!(d.changed_node_types.len(), 1);
        let changes = &d.changed_node_types[0].properties;
        assert!(changes.contains(&PropertyChange::Added(pg_model::sym("y"))));
        assert!(changes.contains(&PropertyChange::SpecChanged(pg_model::sym("x"))));
        assert!(d.is_pure_extension(), "additions + spec changes only");
    }

    #[test]
    fn incremental_steps_produce_pure_extensions() {
        use crate::{HiveConfig, HiveSession};
        use pg_model::{Node, PropertyGraph};
        let mut g = PropertyGraph::new();
        for i in 0..30u64 {
            g.add_node(
                Node::new(i, LabelSet::single(if i % 2 == 0 { "A" } else { "B" }))
                    .with_prop(if i % 3 == 0 { "extra" } else { "base" }, 1i64),
            )
            .unwrap();
        }
        let mut session = HiveSession::new(HiveConfig::default());
        let batches = pg_store::split_batches(&g, 3, 1);
        let mut prev = session.schema().clone();
        for b in &batches {
            session.process_graph_batch(b);
            let d = diff(&prev, session.schema());
            assert!(d.is_pure_extension(), "non-monotone diff:\n{d}");
            prev = session.schema().clone();
        }
    }

    #[test]
    fn abstract_types_match_by_key_set() {
        let mut old = SchemaGraph::new();
        let mut t = node_type(&[], &["x", "y"]);
        t.is_abstract = true;
        old.push_node_type(t.clone());
        let mut new = SchemaGraph::new();
        new.push_node_type(t);
        assert!(diff(&old, &new).is_empty());
    }
}
