//! Schema diffing: structural comparison of two schema graphs, and the
//! inverse operation of replaying a diff onto a base schema.
//!
//! Useful for tracking schema evolution across incremental batches (what
//! did the last batch add?), for regression-testing discovery runs, and
//! as the foundation for the paper's future-work item on handling
//! updates and deletions. The diff is *applicable*: [`apply`] replays
//! `diff(old, new)` onto `old` and reproduces `new` up to type ids,
//! instance counts, and type ordering — the round-trip the property
//! tests in this module pin down.

use pg_model::{Cardinality, EdgeType, LabelSet, NodeType, PropertySpec, SchemaGraph, Symbol};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A change to one property of a type. `Added` and `SpecChanged` carry
/// the *new* specification so the change can be replayed.
#[derive(Debug, Clone, PartialEq)]
pub enum PropertyChange {
    /// The property exists only in the newer schema.
    Added(Symbol, PropertySpec),
    /// The property exists only in the older schema.
    Removed(Symbol),
    /// Data type or presence changed; carries the new spec.
    SpecChanged(Symbol, PropertySpec),
}

impl PropertyChange {
    /// The property key the change concerns.
    pub fn key(&self) -> &Symbol {
        match self {
            PropertyChange::Added(k, _)
            | PropertyChange::Removed(k)
            | PropertyChange::SpecChanged(k, _) => k,
        }
    }
}

/// A change to a node type (keyed by label set; ABSTRACT types are
/// keyed by their property-key set in the *old* schema).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeTypeDiff {
    /// The type's label set (the matching key).
    pub labels: LabelSet,
    /// The old schema's property-key set: locates the type during
    /// [`apply`] when `labels` is empty (ABSTRACT).
    pub old_keys: BTreeSet<Symbol>,
    /// Property-level changes.
    pub properties: Vec<PropertyChange>,
}

/// A change to an edge type (keyed by labels + endpoints).
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeTypeDiff {
    /// Edge label set.
    pub labels: LabelSet,
    /// Source endpoint label set.
    pub src_labels: LabelSet,
    /// Target endpoint label set.
    pub tgt_labels: LabelSet,
    /// Property-level changes.
    pub properties: Vec<PropertyChange>,
    /// Whether the cardinality annotation changed.
    pub cardinality_changed: bool,
    /// The new cardinality (meaningful only when `cardinality_changed`;
    /// `None` then means the annotation was dropped).
    pub new_cardinality: Option<Cardinality>,
}

/// The full diff `old → new`. Added types carry their complete
/// definition; removed types carry the old definition (whose labels /
/// key set identify what to delete on replay).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchemaDiff {
    /// Node types present only in `new`.
    pub added_node_types: Vec<NodeType>,
    /// Node types present only in `old`.
    pub removed_node_types: Vec<NodeType>,
    /// Node types present in both but changed.
    pub changed_node_types: Vec<NodeTypeDiff>,
    /// Edge types present only in `new`.
    pub added_edge_types: Vec<EdgeType>,
    /// Edge types present only in `old`.
    pub removed_edge_types: Vec<EdgeType>,
    /// Edge types present in both but changed.
    pub changed_edge_types: Vec<EdgeTypeDiff>,
}

impl SchemaDiff {
    /// Whether the two schemas are structurally identical.
    pub fn is_empty(&self) -> bool {
        self.added_node_types.is_empty()
            && self.removed_node_types.is_empty()
            && self.changed_node_types.is_empty()
            && self.added_edge_types.is_empty()
            && self.removed_edge_types.is_empty()
            && self.changed_edge_types.is_empty()
    }

    /// Whether the diff only *adds* information (no removals) — the
    /// shape every monotone incremental step must produce (§4.6).
    pub fn is_pure_extension(&self) -> bool {
        self.removed_node_types.is_empty()
            && self.removed_edge_types.is_empty()
            && self.changed_node_types.iter().all(|d| {
                d.properties
                    .iter()
                    .all(|p| !matches!(p, PropertyChange::Removed(_)))
            })
            && self.changed_edge_types.iter().all(|d| {
                d.properties
                    .iter()
                    .all(|p| !matches!(p, PropertyChange::Removed(_)))
            })
    }
}

impl fmt::Display for SchemaDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return writeln!(f, "schemas are identical");
        }
        for t in &self.added_node_types {
            writeln!(f, "+ node type {}", t.labels)?;
        }
        for t in &self.removed_node_types {
            writeln!(f, "- node type {}", t.labels)?;
        }
        for d in &self.changed_node_types {
            writeln!(
                f,
                "~ node type {} ({} property changes)",
                d.labels,
                d.properties.len()
            )?;
        }
        for t in &self.added_edge_types {
            writeln!(
                f,
                "+ edge type {} ({} -> {})",
                t.labels, t.src_labels, t.tgt_labels
            )?;
        }
        for t in &self.removed_edge_types {
            writeln!(
                f,
                "- edge type {} ({} -> {})",
                t.labels, t.src_labels, t.tgt_labels
            )?;
        }
        for d in &self.changed_edge_types {
            writeln!(
                f,
                "~ edge type {} ({} property changes{})",
                d.labels,
                d.properties.len(),
                if d.cardinality_changed {
                    ", cardinality"
                } else {
                    ""
                }
            )?;
        }
        Ok(())
    }
}

fn diff_prop_maps(
    old: &BTreeMap<Symbol, PropertySpec>,
    new: &BTreeMap<Symbol, PropertySpec>,
) -> Vec<PropertyChange> {
    let mut out = Vec::new();
    let keys: BTreeSet<&Symbol> = old.keys().chain(new.keys()).collect();
    for k in keys {
        match (old.get(k), new.get(k)) {
            (None, Some(b)) => out.push(PropertyChange::Added(k.clone(), *b)),
            (Some(_), None) => out.push(PropertyChange::Removed(k.clone())),
            (Some(a), Some(b)) if a != b => out.push(PropertyChange::SpecChanged(k.clone(), *b)),
            _ => {}
        }
    }
    out
}

fn edge_key(t: &EdgeType) -> (LabelSet, LabelSet, LabelSet) {
    (t.labels.clone(), t.src_labels.clone(), t.tgt_labels.clone())
}

/// Compute the structural diff from `old` to `new`. Node types match by
/// label set; edge types by (labels, src labels, tgt labels). ABSTRACT
/// types (empty label sets) match by property-key set.
pub fn diff(old: &SchemaGraph, new: &SchemaGraph) -> SchemaDiff {
    let mut out = SchemaDiff::default();

    // --- Node types.
    for nt in &new.node_types {
        match old.node_types.iter().find(|o| node_matches(o, nt)) {
            None => out.added_node_types.push(nt.clone()),
            Some(o) => {
                let props = diff_prop_maps(&o.properties, &nt.properties);
                if !props.is_empty() {
                    out.changed_node_types.push(NodeTypeDiff {
                        labels: nt.labels.clone(),
                        old_keys: o.key_set(),
                        properties: props,
                    });
                }
            }
        }
    }
    for ot in &old.node_types {
        if !new.node_types.iter().any(|n| node_matches(ot, n)) {
            out.removed_node_types.push(ot.clone());
        }
    }

    // --- Edge types.
    for et in &new.edge_types {
        match old.edge_types.iter().find(|o| edge_key(o) == edge_key(et)) {
            None => out.added_edge_types.push(et.clone()),
            Some(o) => {
                let props = diff_prop_maps(&o.properties, &et.properties);
                let cardinality_changed = o.cardinality != et.cardinality;
                if !props.is_empty() || cardinality_changed {
                    out.changed_edge_types.push(EdgeTypeDiff {
                        labels: et.labels.clone(),
                        src_labels: et.src_labels.clone(),
                        tgt_labels: et.tgt_labels.clone(),
                        properties: props,
                        cardinality_changed,
                        new_cardinality: et.cardinality,
                    });
                }
            }
        }
    }
    for ot in &old.edge_types {
        if !new.edge_types.iter().any(|n| edge_key(ot) == edge_key(n)) {
            out.removed_edge_types.push(ot.clone());
        }
    }

    out
}

/// Node types match by label set; for the unlabeled (ABSTRACT) case, by
/// property-key set.
fn node_matches(a: &NodeType, b: &NodeType) -> bool {
    if a.labels.is_empty() && b.labels.is_empty() {
        a.key_set() == b.key_set()
    } else {
        a.labels == b.labels
    }
}

/// Whether a changed-type record addresses this (old-schema) node type.
fn change_matches(c: &NodeTypeDiff, t: &NodeType) -> bool {
    if c.labels.is_empty() && t.labels.is_empty() {
        c.old_keys == t.key_set()
    } else {
        c.labels == t.labels
    }
}

fn apply_prop_changes(props: &mut BTreeMap<Symbol, PropertySpec>, changes: &[PropertyChange]) {
    for ch in changes {
        match ch {
            PropertyChange::Added(k, spec) | PropertyChange::SpecChanged(k, spec) => {
                props.insert(k.clone(), *spec);
            }
            PropertyChange::Removed(k) => {
                props.remove(k);
            }
        }
    }
}

/// Replay a diff onto a base schema: `apply(old, &diff(old, new))`
/// reproduces `new` up to type ids, instance counts, and the ordering
/// of type lists (kept: surviving base order, then additions in diff
/// order). Removals and changes that address no base type are silently
/// skipped, so applying a diff twice is idempotent.
pub fn apply(base: &SchemaGraph, d: &SchemaDiff) -> SchemaGraph {
    let mut out = SchemaGraph::new();

    for nt in &base.node_types {
        if d.removed_node_types.iter().any(|r| node_matches(r, nt)) {
            continue;
        }
        if d.added_node_types.iter().any(|a| node_matches(a, nt)) {
            // The addition below supersedes the base definition.
            continue;
        }
        let mut t = nt.clone();
        if let Some(ch) = d.changed_node_types.iter().find(|c| change_matches(c, nt)) {
            apply_prop_changes(&mut t.properties, &ch.properties);
        }
        out.push_node_type(t);
    }
    for nt in &d.added_node_types {
        out.push_node_type(nt.clone());
    }

    for et in &base.edge_types {
        let key = edge_key(et);
        if d.removed_edge_types.iter().any(|r| edge_key(r) == key) {
            continue;
        }
        if d.added_edge_types.iter().any(|a| edge_key(a) == key) {
            continue;
        }
        let mut t = et.clone();
        if let Some(ch) = d
            .changed_edge_types
            .iter()
            .find(|c| (&c.labels, &c.src_labels, &c.tgt_labels) == (&key.0, &key.1, &key.2))
        {
            apply_prop_changes(&mut t.properties, &ch.properties);
            if ch.cardinality_changed {
                t.cardinality = ch.new_cardinality;
            }
        }
        out.push_edge_type(t);
    }
    for et in &d.added_edge_types {
        out.push_edge_type(et.clone());
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_model::{PropertySpec, TypeId};

    fn node_type(labels: &[&str], keys: &[&str]) -> NodeType {
        NodeType::new(
            TypeId(0),
            LabelSet::from_iter(labels),
            keys.iter().map(|k| pg_model::sym(k)),
        )
    }

    #[test]
    fn identical_schemas_diff_empty() {
        let mut s = SchemaGraph::new();
        s.push_node_type(node_type(&["A"], &["x"]));
        let d = diff(&s, &s.clone());
        assert!(d.is_empty());
        assert!(d.is_pure_extension());
        assert_eq!(d.to_string(), "schemas are identical\n");
    }

    #[test]
    fn added_and_removed_types() {
        let mut old = SchemaGraph::new();
        old.push_node_type(node_type(&["A"], &["x"]));
        let mut new = SchemaGraph::new();
        new.push_node_type(node_type(&["B"], &["y"]));
        let d = diff(&old, &new);
        assert_eq!(d.added_node_types.len(), 1);
        assert_eq!(d.added_node_types[0].labels, LabelSet::single("B"));
        assert_eq!(d.removed_node_types.len(), 1);
        assert_eq!(d.removed_node_types[0].labels, LabelSet::single("A"));
        assert!(!d.is_pure_extension());
    }

    #[test]
    fn property_changes_detected_with_new_specs() {
        let mut old = SchemaGraph::new();
        old.push_node_type(node_type(&["A"], &["x"]));
        let mut new = SchemaGraph::new();
        let mut t = node_type(&["A"], &["x", "y"]);
        let int_spec = PropertySpec {
            datatype: Some(pg_model::DataType::Int),
            presence: None,
        };
        t.properties.insert(pg_model::sym("x"), int_spec);
        new.push_node_type(t);
        let d = diff(&old, &new);
        assert_eq!(d.changed_node_types.len(), 1);
        let changes = &d.changed_node_types[0].properties;
        assert!(changes.contains(&PropertyChange::Added(
            pg_model::sym("y"),
            PropertySpec::default()
        )));
        assert!(changes.contains(&PropertyChange::SpecChanged(pg_model::sym("x"), int_spec)));
        assert!(d.is_pure_extension(), "additions + spec changes only");
    }

    #[test]
    fn incremental_steps_produce_pure_extensions() {
        use crate::{HiveConfig, HiveSession};
        use pg_model::{Node, PropertyGraph};
        let mut g = PropertyGraph::new();
        for i in 0..30u64 {
            g.add_node(
                Node::new(i, LabelSet::single(if i % 2 == 0 { "A" } else { "B" }))
                    .with_prop(if i % 3 == 0 { "extra" } else { "base" }, 1i64),
            )
            .unwrap();
        }
        let mut session = HiveSession::new(HiveConfig::default());
        let batches = pg_store::split_batches(&g, 3, 1);
        let mut prev = session.schema().clone();
        for b in &batches {
            session.process_graph_batch(b);
            let d = diff(&prev, session.schema());
            assert!(d.is_pure_extension(), "non-monotone diff:\n{d}");
            prev = session.schema().clone();
        }
    }

    #[test]
    fn abstract_types_match_by_key_set() {
        let mut old = SchemaGraph::new();
        let mut t = node_type(&[], &["x", "y"]);
        t.is_abstract = true;
        old.push_node_type(t.clone());
        let mut new = SchemaGraph::new();
        new.push_node_type(t);
        assert!(diff(&old, &new).is_empty());
    }

    #[test]
    fn apply_replays_added_removed_and_changed_types() {
        let mut old = SchemaGraph::new();
        old.push_node_type(node_type(&["A"], &["x"]));
        old.push_node_type(node_type(&["Gone"], &["z"]));
        let mut new = SchemaGraph::new();
        let mut a = node_type(&["A"], &["x", "y"]);
        a.properties.insert(
            pg_model::sym("x"),
            PropertySpec {
                datatype: Some(pg_model::DataType::Str),
                presence: None,
            },
        );
        new.push_node_type(a);
        new.push_node_type(node_type(&["B"], &["w"]));
        let replayed = apply(&old, &diff(&old, &new));
        assert!(
            diff(&replayed, &new).is_empty(),
            "{}",
            diff(&replayed, &new)
        );
    }
}
