//! Featurization (§4.1): the hybrid vector representation.
//!
//! Each node `v` becomes `f_v ∈ R^{d+K}`: the Word2Vec embedding of its
//! canonical label token (zero vector if unlabeled) concatenated with a
//! binary indicator over the dataset's `K` distinct node property keys.
//! Each edge `e` becomes `f_e ∈ R^{3d+Q}`: embeddings of the edge label,
//! source labels, and target labels, plus the binary indicator over the
//! `Q` distinct edge property keys.
//!
//! For MinHash, elements are instead modeled as *sets*: property-key ids
//! plus (namespaced) label-token ids.

use crate::config::EmbeddingKind;
use pg_embed::{build_sentences, HashedEmbedder, LabelEmbedder, Word2Vec};
use pg_lsh::SparseVec;
use pg_model::Symbol;
use pg_store::{EdgeRecord, NodeRecord};
use rayon::prelude::*;
use std::collections::HashMap;

/// Chunks the key-universe scan splits into; boundaries depend only on
/// the record count, and the per-chunk key lists are sorted + deduped
/// afterwards, so the universe is identical for any thread count.
const KEY_SCAN_SHARDS: usize = 64;

/// Collect the sorted, deduplicated universe of property keys over
/// `records`, scanning chunks in parallel.
fn key_universe<R: Sync>(records: &[R], keys_of: impl Fn(&R) -> Vec<Symbol> + Sync) -> Vec<Symbol> {
    let shard = records.len().div_ceil(KEY_SCAN_SHARDS).max(1);
    let chunks: Vec<Vec<Symbol>> = records
        .par_chunks(shard)
        .map(|chunk| chunk.iter().flat_map(&keys_of).collect())
        .collect();
    let mut keys: Vec<Symbol> = chunks.into_iter().flatten().collect();
    keys.sort();
    keys.dedup();
    keys
}

/// Namespace tags that keep MinHash set elements of different roles
/// disjoint (a property key can never collide with a label token).
const NS_NODE_KEY: u64 = 1 << 56;
const NS_EDGE_KEY: u64 = 2 << 56;
const NS_LABEL: u64 = 3 << 56;
const NS_SRC_LABEL: u64 = 4 << 56;
const NS_TGT_LABEL: u64 = 5 << 56;

/// Weight of the label-embedding blocks relative to the binary property
/// bits. A weight > 1 widens the gap between structurally identical
/// types that differ only in label — §4.1: the hybrid representation
/// "prevents semantically different nodes, or edges, from being merged
/// due to their same structure". With unit-norm embeddings, distinct
/// labels end up ≥ `LABEL_WEIGHT` apart while within-type (same-label)
/// distance is governed by property noise alone.
const LABEL_WEIGHT: f64 = 2.0;

/// The per-batch feature space: key universes + trained embedder.
pub struct FeatureSpace {
    node_keys: Vec<Symbol>,
    node_key_idx: HashMap<Symbol, u32>,
    edge_keys: Vec<Symbol>,
    edge_key_idx: HashMap<Symbol, u32>,
    embedder: Box<dyn LabelEmbedder>,
}

impl FeatureSpace {
    /// Build the feature space for one batch: collect the distinct node
    /// and edge property keys, then train (or instantiate) the label
    /// embedder on the batch's label corpus.
    pub fn build(
        nodes: &[NodeRecord],
        edges: &[EdgeRecord],
        embedding: &EmbeddingKind,
        seed: u64,
    ) -> FeatureSpace {
        let node_keys = key_universe(nodes, |n| n.props.keys().cloned().collect());
        let edge_keys = key_universe(edges, |e| e.edge.props.keys().cloned().collect());

        let embedder: Box<dyn LabelEmbedder> = match embedding {
            EmbeddingKind::Word2Vec(cfg) => {
                let sentences = build_sentences(nodes, edges);
                let mut cfg = cfg.clone();
                cfg.seed ^= seed;
                Box::new(Word2Vec::train(&sentences, &cfg))
            }
            EmbeddingKind::Hashed { dim } => Box::new(HashedEmbedder::new(*dim, seed)),
        };

        let node_key_idx = node_keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), i as u32))
            .collect();
        let edge_key_idx = edge_keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), i as u32))
            .collect();
        FeatureSpace {
            node_keys,
            node_key_idx,
            edge_keys,
            edge_key_idx,
            embedder,
        }
    }

    /// Embedding dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.embedder.dim()
    }

    /// Node vector dimensionality `d + K`.
    pub fn node_dim(&self) -> usize {
        self.dim() + self.node_keys.len()
    }

    /// Edge vector dimensionality `3d + Q`.
    pub fn edge_dim(&self) -> usize {
        3 * self.dim() + self.edge_keys.len()
    }

    /// `f_v ∈ R^{d+K}` for one node.
    pub fn node_vector(&self, node: &NodeRecord) -> SparseVec {
        let d = self.dim();
        let mut entries: Vec<(u32, f64)> = Vec::with_capacity(d + node.props.len());
        let token = node.labels.canonical_token();
        let emb = self.embedder.embed_opt(token.as_deref());
        for (i, &x) in emb.iter().enumerate() {
            if x != 0.0 {
                entries.push((i as u32, LABEL_WEIGHT * x));
            }
        }
        for k in node.props.keys() {
            if let Some(&idx) = self.node_key_idx.get(k) {
                entries.push((d as u32 + idx, 1.0));
            }
        }
        SparseVec::new(self.node_dim(), entries)
    }

    /// `f_e ∈ R^{3d+Q}` for one edge record.
    pub fn edge_vector(&self, rec: &EdgeRecord) -> SparseVec {
        let d = self.dim();
        let mut entries: Vec<(u32, f64)> = Vec::with_capacity(3 * d + rec.edge.props.len());
        let blocks = [
            self.embedder
                .embed_opt(rec.edge.labels.canonical_token().as_deref()),
            self.embedder
                .embed_opt(rec.src_labels.canonical_token().as_deref()),
            self.embedder
                .embed_opt(rec.tgt_labels.canonical_token().as_deref()),
        ];
        for (b, emb) in blocks.iter().enumerate() {
            let base = (b * d) as u32;
            for (i, &x) in emb.iter().enumerate() {
                if x != 0.0 {
                    entries.push((base + i as u32, LABEL_WEIGHT * x));
                }
            }
        }
        for k in rec.edge.props.keys() {
            if let Some(&idx) = self.edge_key_idx.get(k) {
                entries.push((3 * d as u32 + idx, 1.0));
            }
        }
        SparseVec::new(self.edge_dim(), entries)
    }

    /// MinHash set representation of a node: property-key ids plus the
    /// label token (namespaced).
    pub fn node_set(&self, node: &NodeRecord) -> Vec<u64> {
        let mut set: Vec<u64> = node
            .props
            .keys()
            .filter_map(|k| self.node_key_idx.get(k))
            .map(|&i| NS_NODE_KEY | i as u64)
            .collect();
        if let Some(tok) = node.labels.canonical_token() {
            set.push(NS_LABEL | hash48(&tok));
        }
        set
    }

    /// MinHash set representation of an edge: property-key ids plus the
    /// edge/source/target label tokens (each in its own namespace).
    pub fn edge_set(&self, rec: &EdgeRecord) -> Vec<u64> {
        let mut set: Vec<u64> = rec
            .edge
            .props
            .keys()
            .filter_map(|k| self.edge_key_idx.get(k))
            .map(|&i| NS_EDGE_KEY | i as u64)
            .collect();
        if let Some(tok) = rec.edge.labels.canonical_token() {
            set.push(NS_LABEL | hash48(&tok));
        }
        if let Some(tok) = rec.src_labels.canonical_token() {
            set.push(NS_SRC_LABEL | hash48(&tok));
        }
        if let Some(tok) = rec.tgt_labels.canonical_token() {
            set.push(NS_TGT_LABEL | hash48(&tok));
        }
        set
    }
}

/// FNV-1a truncated to 48 bits so namespace tags survive in the top byte.
fn hash48(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h & ((1 << 48) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_embed::Word2VecConfig;
    use pg_model::{Edge, LabelSet, Node, NodeId};

    fn records() -> (Vec<NodeRecord>, Vec<EdgeRecord>) {
        let nodes = vec![
            Node::new(1, LabelSet::single("Person"))
                .with_prop("name", "a")
                .with_prop("age", 3i64),
            Node::new(2, LabelSet::empty()).with_prop("name", "b"),
            Node::new(3, LabelSet::single("Org")).with_prop("url", "u"),
        ];
        let edges = vec![EdgeRecord {
            edge: Edge::new(9, NodeId(1), NodeId(3), LabelSet::single("WORKS_AT"))
                .with_prop("from", 2020i64),
            src_labels: LabelSet::single("Person"),
            tgt_labels: LabelSet::single("Org"),
        }];
        (nodes, edges)
    }

    fn space() -> (FeatureSpace, Vec<NodeRecord>, Vec<EdgeRecord>) {
        let (nodes, edges) = records();
        let fs = FeatureSpace::build(
            &nodes,
            &edges,
            &EmbeddingKind::Word2Vec(Word2VecConfig {
                dim: 5,
                epochs: 2,
                ..Default::default()
            }),
            1,
        );
        (fs, nodes, edges)
    }

    #[test]
    fn dimensions_match_paper_formulas() {
        let (fs, _, _) = space();
        // K = {age, name, url} → 3; Q = {from} → 1; d = 5.
        assert_eq!(fs.node_dim(), 5 + 3);
        assert_eq!(fs.edge_dim(), 15 + 1);
    }

    #[test]
    fn unlabeled_nodes_have_zero_embedding_block() {
        let (fs, nodes, _) = space();
        let v = fs.node_vector(&nodes[1]); // unlabeled
        for (i, x) in v.iter() {
            assert!(
                (i as usize) >= fs.dim(),
                "embedding block must be zero, found ({i}, {x})"
            );
        }
        // But the binary block has the `name` bit set.
        assert_eq!(v.nnz(), 1);
    }

    #[test]
    fn identical_structures_give_identical_vectors() {
        let (fs, _, _) = space();
        let a = Node::new(10, LabelSet::single("Person"))
            .with_prop("name", "x")
            .with_prop("age", 1i64);
        let b = Node::new(11, LabelSet::single("Person"))
            .with_prop("name", "yyy")
            .with_prop("age", 999i64);
        // Property *values* don't matter, only presence.
        assert_eq!(fs.node_vector(&a), fs.node_vector(&b));
    }

    #[test]
    fn different_labels_differ_in_embedding_block() {
        let (fs, nodes, _) = space();
        let person = fs.node_vector(&nodes[0]);
        let mut org = nodes[2].clone();
        // Give Org the same property structure as Person.
        org.props = nodes[0].props.clone();
        let org_v = fs.node_vector(&org);
        assert!(person.distance(&org_v) > 0.1);
    }

    #[test]
    fn edge_vectors_use_three_blocks() {
        let (fs, _, edges) = space();
        let v = fs.edge_vector(&edges[0]);
        let d = fs.dim();
        let blocks: Vec<usize> = v
            .iter()
            .map(|(i, _)| (i as usize) / d)
            .filter(|&b| b < 3)
            .collect();
        // All three embedding blocks are populated (labeled endpoints).
        assert!(blocks.contains(&0));
        assert!(blocks.contains(&1));
        assert!(blocks.contains(&2));
    }

    #[test]
    fn minhash_sets_are_namespaced() {
        let (fs, nodes, edges) = space();
        let ns: Vec<u64> = fs.node_set(&nodes[0]);
        assert_eq!(ns.len(), 3); // 2 keys + 1 label token
        let es = fs.edge_set(&edges[0]);
        assert_eq!(es.len(), 4); // 1 key + 3 label tokens
                                 // Node key ids and edge key ids never collide.
        for a in &ns {
            for b in &es {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn unknown_key_is_ignored_gracefully() {
        let (fs, _, _) = space();
        let alien = Node::new(99, LabelSet::empty()).with_prop("never_seen", 1i64);
        // Key not in the batch universe: vector just has no bit for it.
        let v = fs.node_vector(&alien);
        assert_eq!(v.nnz(), 0);
        assert!(fs.node_set(&alien).is_empty());
    }
}
