//! Featurization (§4.1): the hybrid vector representation.
//!
//! Each node `v` becomes `f_v ∈ R^{d+K}`: the Word2Vec embedding of its
//! canonical label token (zero vector if unlabeled) concatenated with a
//! binary indicator over the dataset's `K` distinct node property keys.
//! Each edge `e` becomes `f_e ∈ R^{3d+Q}`: embeddings of the edge label,
//! source labels, and target labels, plus the binary indicator over the
//! `Q` distinct edge property keys.
//!
//! For MinHash, elements are instead modeled as *sets*: property-key ids
//! plus (namespaced) label-token ids.

use crate::config::EmbeddingKind;
use pg_embed::{build_sentences, HashedEmbedder, LabelEmbedder, Word2Vec};
use pg_lsh::{FnvHashMap, SparseVec};
use pg_model::{LabelSet, Symbol};
use pg_store::{EdgeRecord, NodeRecord};
use rayon::prelude::*;
use std::borrow::Cow;
use std::collections::HashSet;

/// Chunks the key-universe scan splits into; boundaries depend only on
/// the record count, and the per-chunk key lists are sorted + deduped
/// afterwards, so the universe is identical for any thread count.
const KEY_SCAN_SHARDS: usize = 64;

/// Collect the sorted, deduplicated universe of property keys over
/// `records`, scanning chunks in parallel.
fn key_universe<R: Sync>(records: &[R], keys_of: impl Fn(&R) -> Vec<Symbol> + Sync) -> Vec<Symbol> {
    let shard = records.len().div_ceil(KEY_SCAN_SHARDS).max(1);
    // Dedup inside each shard first: the distinct-key set is tiny
    // compared to the occurrence count, so this avoids materializing
    // (and sorting) one Symbol clone per occurrence. The union of
    // per-shard sets is order-independent, so the final sort still
    // yields a thread-count-invariant universe.
    let chunks: Vec<HashSet<Symbol>> = records
        .par_chunks(shard)
        .map(|chunk| chunk.iter().flat_map(&keys_of).collect())
        .collect();
    let mut keys: Vec<Symbol> = chunks
        .into_iter()
        .reduce(|mut a, b| {
            a.extend(b);
            a
        })
        .unwrap_or_default()
        .into_iter()
        .collect();
    keys.sort();
    keys
}

/// Namespace tags that keep MinHash set elements of different roles
/// disjoint (a property key can never collide with a label token).
const NS_NODE_KEY: u64 = 1 << 56;
const NS_EDGE_KEY: u64 = 2 << 56;
const NS_LABEL: u64 = 3 << 56;
const NS_SRC_LABEL: u64 = 4 << 56;
const NS_TGT_LABEL: u64 = 5 << 56;

/// Weight of the label-embedding blocks relative to the binary property
/// bits. A weight > 1 widens the gap between structurally identical
/// types that differ only in label — §4.1: the hybrid representation
/// "prevents semantically different nodes, or edges, from being merged
/// due to their same structure". With unit-norm embeddings, distinct
/// labels end up ≥ `LABEL_WEIGHT` apart while within-type (same-label)
/// distance is governed by property noise alone.
const LABEL_WEIGHT: f64 = 2.0;

/// Everything featurization needs to know about one label set, computed
/// once per *distinct* set instead of once per record: the nonzero
/// entries of its (weighted) embedding block and the 48-bit hash of its
/// canonical token. Caching this is what lets the edge path stop
/// allocating three fresh canonical-token `String`s per edge.
#[derive(Debug, Clone)]
struct LabelInfo {
    /// `(index within the embedding block, LABEL_WEIGHT · x)` for each
    /// nonzero embedding coordinate, in increasing index order — exactly
    /// the entries the uncached path would push.
    entries: Vec<(u32, f64)>,
    /// `hash48(canonical_token)`, `None` for the empty label set.
    token_hash: Option<u64>,
}

fn label_info_for(embedder: &dyn LabelEmbedder, labels: &LabelSet) -> LabelInfo {
    let token = labels.canonical_token();
    let emb = embedder.embed_opt(token.as_deref());
    let entries = emb
        .iter()
        .enumerate()
        .filter(|&(_, &x)| x != 0.0)
        .map(|(i, &x)| (i as u32, LABEL_WEIGHT * x))
        .collect();
    LabelInfo {
        entries,
        token_hash: token.as_deref().map(hash48),
    }
}

/// The property-key set of a fingerprint. When the batch key universe
/// holds at most 128 keys — essentially always — the set is a bitmask
/// over key ids, making the whole fingerprint a couple of machine words
/// with no per-record allocation. The list fallback keeps correctness
/// for pathological universes. A batch uses one variant exclusively
/// (chosen by universe size), so equality never crosses variants.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum KeyBits {
    Mask(u128),
    List(Vec<u32>),
}

impl KeyBits {
    fn collect<'a>(
        idx: &FnvHashMap<Symbol, u32>,
        universe_len: usize,
        keys: impl Iterator<Item = &'a Symbol>,
    ) -> KeyBits {
        if universe_len <= 128 {
            let mut mask = 0u128;
            for k in keys {
                if let Some(&i) = idx.get(k) {
                    mask |= 1u128 << i;
                }
            }
            KeyBits::Mask(mask)
        } else {
            let mut list = Vec::new();
            // `props` is a BTreeMap and the key universe is sorted, so
            // ids come out ascending without an explicit sort.
            list.extend(keys.filter_map(|k| idx.get(k).copied()));
            KeyBits::List(list)
        }
    }

    fn count(&self) -> usize {
        match self {
            KeyBits::Mask(m) => m.count_ones() as usize,
            KeyBits::List(v) => v.len(),
        }
    }

    /// Visit the key ids in ascending order (bit order == id order).
    fn for_each(&self, mut f: impl FnMut(u32)) {
        match self {
            KeyBits::Mask(m) => {
                let mut m = *m;
                while m != 0 {
                    f(m.trailing_zeros());
                    m &= m - 1;
                }
            }
            KeyBits::List(v) => {
                for &i in v {
                    f(i);
                }
            }
        }
    }
}

/// A node's structural fingerprint: everything its feature vector (and
/// MinHash set) depends on. Records with equal fingerprints get
/// bit-identical representations, which is what makes the dedup fast
/// path lossless. Label sets are interned to dense per-batch ids and
/// key sets to bitmasks, so building, hashing and comparing
/// fingerprints touches only integers — this is what keeps the grouping
/// pass cheap at millions of records.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NodeFingerprint {
    labels: u32,
    keys: KeyBits,
}

/// An edge's structural fingerprint: interned edge + endpoint label set
/// ids and the present property-key set.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EdgeFingerprint {
    labels: u32,
    src_labels: u32,
    tgt_labels: u32,
    keys: KeyBits,
}

/// The per-batch feature space: key universes, trained embedder, and the
/// per-distinct-label-set cache (`label_idx` interns each of the batch's
/// label sets to a dense id; `label_infos[id]` holds its embedding
/// entries and canonical-token hash).
pub struct FeatureSpace {
    node_keys: Vec<Symbol>,
    node_key_idx: FnvHashMap<Symbol, u32>,
    edge_keys: Vec<Symbol>,
    edge_key_idx: FnvHashMap<Symbol, u32>,
    embedder: Box<dyn LabelEmbedder>,
    label_idx: FnvHashMap<LabelSet, u32>,
    label_infos: Vec<LabelInfo>,
}

impl FeatureSpace {
    /// Build the feature space for one batch: collect the distinct node
    /// and edge property keys, then train (or instantiate) the label
    /// embedder on the batch's label corpus.
    pub fn build(
        nodes: &[NodeRecord],
        edges: &[EdgeRecord],
        embedding: &EmbeddingKind,
        seed: u64,
    ) -> FeatureSpace {
        let node_keys = key_universe(nodes, |n| n.props.keys().cloned().collect());
        let edge_keys = key_universe(edges, |e| e.edge.props.keys().cloned().collect());

        let embedder: Box<dyn LabelEmbedder> = match embedding {
            EmbeddingKind::Word2Vec(cfg) => {
                let sentences = build_sentences(nodes, edges);
                let mut cfg = cfg.clone();
                cfg.seed ^= seed;
                Box::new(Word2Vec::train(&sentences, &cfg))
            }
            EmbeddingKind::Hashed { dim } => Box::new(HashedEmbedder::new(*dim, seed)),
        };

        let node_key_idx = node_keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), i as u32))
            .collect();
        let edge_key_idx = edge_keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), i as u32))
            .collect();

        // Distinct label sets of the batch (node labels plus all three
        // edge roles), embedded once each. Per-shard hash dedup keeps
        // the scan from materializing one clone per occurrence; the
        // union of shard sets is order-independent and the final sort
        // makes the id assignment thread-count invariant.
        let shard = nodes.len().div_ceil(KEY_SCAN_SHARDS).max(1);
        let node_sets: Vec<HashSet<LabelSet>> = nodes
            .par_chunks(shard)
            .map(|chunk| chunk.iter().map(|n| n.labels.clone()).collect())
            .collect();
        let shard = edges.len().div_ceil(KEY_SCAN_SHARDS).max(1);
        let edge_sets: Vec<HashSet<LabelSet>> = edges
            .par_chunks(shard)
            .map(|chunk| {
                chunk
                    .iter()
                    .flat_map(|e| {
                        [
                            e.edge.labels.clone(),
                            e.src_labels.clone(),
                            e.tgt_labels.clone(),
                        ]
                    })
                    .collect()
            })
            .collect();
        let mut sets: Vec<LabelSet> = node_sets
            .into_iter()
            .chain(edge_sets)
            .reduce(|mut a, b| {
                a.extend(b);
                a
            })
            .unwrap_or_default()
            .into_iter()
            .collect();
        sets.sort();
        let label_infos: Vec<LabelInfo> = sets
            .iter()
            .map(|ls| label_info_for(embedder.as_ref(), ls))
            .collect();
        let label_idx = sets
            .into_iter()
            .enumerate()
            .map(|(i, ls)| (ls, i as u32))
            .collect();

        FeatureSpace {
            node_keys,
            node_key_idx,
            edge_keys,
            edge_key_idx,
            embedder,
            label_idx,
            label_infos,
        }
    }

    /// Cached info for a label set; falls back to computing it on the
    /// fly for sets outside the batch (e.g. memoization probes against a
    /// space built from an earlier batch).
    fn label_info(&self, labels: &LabelSet) -> Cow<'_, LabelInfo> {
        match self.label_idx.get(labels) {
            Some(&i) => Cow::Borrowed(&self.label_infos[i as usize]),
            None => Cow::Owned(label_info_for(self.embedder.as_ref(), labels)),
        }
    }

    /// The interned id of a batch label set. Fingerprints are only taken
    /// of the records the space was built from, so the lookup is total.
    fn label_id(&self, labels: &LabelSet) -> u32 {
        *self
            .label_idx
            .get(labels)
            .expect("fingerprinted label set was registered at build time")
    }

    /// Embedding dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.embedder.dim()
    }

    /// Node vector dimensionality `d + K`.
    pub fn node_dim(&self) -> usize {
        self.dim() + self.node_keys.len()
    }

    /// Edge vector dimensionality `3d + Q`.
    pub fn edge_dim(&self) -> usize {
        3 * self.dim() + self.edge_keys.len()
    }

    /// The structural fingerprint of a node. Two nodes with equal
    /// fingerprints produce bit-identical [`Self::node_vector`] /
    /// [`Self::node_set`] outputs (values never enter either).
    pub fn node_fingerprint(&self, node: &NodeRecord) -> NodeFingerprint {
        NodeFingerprint {
            labels: self.label_id(&node.labels),
            keys: KeyBits::collect(&self.node_key_idx, self.node_keys.len(), node.props.keys()),
        }
    }

    /// The structural fingerprint of an edge record.
    pub fn edge_fingerprint(&self, rec: &EdgeRecord) -> EdgeFingerprint {
        EdgeFingerprint {
            labels: self.label_id(&rec.edge.labels),
            src_labels: self.label_id(&rec.src_labels),
            tgt_labels: self.label_id(&rec.tgt_labels),
            keys: KeyBits::collect(
                &self.edge_key_idx,
                self.edge_keys.len(),
                rec.edge.props.keys(),
            ),
        }
    }

    /// `f_v ∈ R^{d+K}` for one node.
    pub fn node_vector(&self, node: &NodeRecord) -> SparseVec {
        let d = self.dim();
        let info = self.label_info(&node.labels);
        // Exact: every cached entry is nonzero and every present key in
        // the universe adds one bit (label block and key block are
        // disjoint index ranges). Unknown keys over-reserve by one slot
        // each — they only occur for records outside the batch.
        let mut entries: Vec<(u32, f64)> =
            Vec::with_capacity(info.entries.len() + node.props.len());
        entries.extend_from_slice(&info.entries);
        for k in node.props.keys() {
            if let Some(&idx) = self.node_key_idx.get(k) {
                entries.push((d as u32 + idx, 1.0));
            }
        }
        SparseVec::new(self.node_dim(), entries)
    }

    /// [`Self::node_vector`] from a fingerprint — the dedup path
    /// featurizes each distinct fingerprint exactly once. Sized exactly:
    /// fingerprint keys are already resolved against the universe.
    pub fn node_fingerprint_vector(&self, fp: &NodeFingerprint) -> SparseVec {
        let d = self.dim();
        let info = &self.label_infos[fp.labels as usize];
        let mut entries: Vec<(u32, f64)> = Vec::with_capacity(info.entries.len() + fp.keys.count());
        entries.extend_from_slice(&info.entries);
        fp.keys.for_each(|idx| entries.push((d as u32 + idx, 1.0)));
        SparseVec::new(self.node_dim(), entries)
    }

    /// `f_e ∈ R^{3d+Q}` for one edge record.
    pub fn edge_vector(&self, rec: &EdgeRecord) -> SparseVec {
        let d = self.dim();
        let infos = [
            self.label_info(&rec.edge.labels),
            self.label_info(&rec.src_labels),
            self.label_info(&rec.tgt_labels),
        ];
        let emb_nnz: usize = infos.iter().map(|i| i.entries.len()).sum();
        let mut entries: Vec<(u32, f64)> = Vec::with_capacity(emb_nnz + rec.edge.props.len());
        for (b, info) in infos.iter().enumerate() {
            let base = (b * d) as u32;
            for &(i, x) in &info.entries {
                entries.push((base + i, x));
            }
        }
        for k in rec.edge.props.keys() {
            if let Some(&idx) = self.edge_key_idx.get(k) {
                entries.push((3 * d as u32 + idx, 1.0));
            }
        }
        SparseVec::new(self.edge_dim(), entries)
    }

    /// [`Self::edge_vector`] from a fingerprint, sized exactly.
    pub fn edge_fingerprint_vector(&self, fp: &EdgeFingerprint) -> SparseVec {
        let d = self.dim();
        let infos = [
            &self.label_infos[fp.labels as usize],
            &self.label_infos[fp.src_labels as usize],
            &self.label_infos[fp.tgt_labels as usize],
        ];
        let emb_nnz: usize = infos.iter().map(|i| i.entries.len()).sum();
        let mut entries: Vec<(u32, f64)> = Vec::with_capacity(emb_nnz + fp.keys.count());
        for (b, info) in infos.iter().enumerate() {
            let base = (b * d) as u32;
            for &(i, x) in &info.entries {
                entries.push((base + i, x));
            }
        }
        fp.keys
            .for_each(|idx| entries.push((3 * d as u32 + idx, 1.0)));
        SparseVec::new(self.edge_dim(), entries)
    }

    /// MinHash set representation of a node: property-key ids plus the
    /// label token (namespaced).
    pub fn node_set(&self, node: &NodeRecord) -> Vec<u64> {
        let mut set: Vec<u64> = node
            .props
            .keys()
            .filter_map(|k| self.node_key_idx.get(k))
            .map(|&i| NS_NODE_KEY | i as u64)
            .collect();
        if let Some(h) = self.label_info(&node.labels).token_hash {
            set.push(NS_LABEL | h);
        }
        set
    }

    /// [`Self::node_set`] from a fingerprint.
    pub fn node_fingerprint_set(&self, fp: &NodeFingerprint) -> Vec<u64> {
        let mut set: Vec<u64> = Vec::with_capacity(fp.keys.count() + 1);
        fp.keys.for_each(|i| set.push(NS_NODE_KEY | i as u64));
        if let Some(h) = self.label_infos[fp.labels as usize].token_hash {
            set.push(NS_LABEL | h);
        }
        set
    }

    /// MinHash set representation of an edge: property-key ids plus the
    /// edge/source/target label tokens (each in its own namespace).
    pub fn edge_set(&self, rec: &EdgeRecord) -> Vec<u64> {
        let mut set: Vec<u64> = rec
            .edge
            .props
            .keys()
            .filter_map(|k| self.edge_key_idx.get(k))
            .map(|&i| NS_EDGE_KEY | i as u64)
            .collect();
        if let Some(h) = self.label_info(&rec.edge.labels).token_hash {
            set.push(NS_LABEL | h);
        }
        if let Some(h) = self.label_info(&rec.src_labels).token_hash {
            set.push(NS_SRC_LABEL | h);
        }
        if let Some(h) = self.label_info(&rec.tgt_labels).token_hash {
            set.push(NS_TGT_LABEL | h);
        }
        set
    }

    /// [`Self::edge_set`] from a fingerprint.
    pub fn edge_fingerprint_set(&self, fp: &EdgeFingerprint) -> Vec<u64> {
        let mut set: Vec<u64> = Vec::with_capacity(fp.keys.count() + 3);
        fp.keys.for_each(|i| set.push(NS_EDGE_KEY | i as u64));
        if let Some(h) = self.label_infos[fp.labels as usize].token_hash {
            set.push(NS_LABEL | h);
        }
        if let Some(h) = self.label_infos[fp.src_labels as usize].token_hash {
            set.push(NS_SRC_LABEL | h);
        }
        if let Some(h) = self.label_infos[fp.tgt_labels as usize].token_hash {
            set.push(NS_TGT_LABEL | h);
        }
        set
    }
}

/// FNV-1a truncated to 48 bits so namespace tags survive in the top byte.
fn hash48(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h & ((1 << 48) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_embed::Word2VecConfig;
    use pg_model::{Edge, LabelSet, Node, NodeId};

    fn records() -> (Vec<NodeRecord>, Vec<EdgeRecord>) {
        let nodes = vec![
            Node::new(1, LabelSet::single("Person"))
                .with_prop("name", "a")
                .with_prop("age", 3i64),
            Node::new(2, LabelSet::empty()).with_prop("name", "b"),
            Node::new(3, LabelSet::single("Org")).with_prop("url", "u"),
        ];
        let edges = vec![EdgeRecord {
            edge: Edge::new(9, NodeId(1), NodeId(3), LabelSet::single("WORKS_AT"))
                .with_prop("from", 2020i64),
            src_labels: LabelSet::single("Person"),
            tgt_labels: LabelSet::single("Org"),
        }];
        (nodes, edges)
    }

    fn space() -> (FeatureSpace, Vec<NodeRecord>, Vec<EdgeRecord>) {
        let (nodes, edges) = records();
        let fs = FeatureSpace::build(
            &nodes,
            &edges,
            &EmbeddingKind::Word2Vec(Word2VecConfig {
                dim: 5,
                epochs: 2,
                ..Default::default()
            }),
            1,
        );
        (fs, nodes, edges)
    }

    #[test]
    fn dimensions_match_paper_formulas() {
        let (fs, _, _) = space();
        // K = {age, name, url} → 3; Q = {from} → 1; d = 5.
        assert_eq!(fs.node_dim(), 5 + 3);
        assert_eq!(fs.edge_dim(), 15 + 1);
    }

    #[test]
    fn unlabeled_nodes_have_zero_embedding_block() {
        let (fs, nodes, _) = space();
        let v = fs.node_vector(&nodes[1]); // unlabeled
        for (i, x) in v.iter() {
            assert!(
                (i as usize) >= fs.dim(),
                "embedding block must be zero, found ({i}, {x})"
            );
        }
        // But the binary block has the `name` bit set.
        assert_eq!(v.nnz(), 1);
    }

    #[test]
    fn identical_structures_give_identical_vectors() {
        let (fs, _, _) = space();
        let a = Node::new(10, LabelSet::single("Person"))
            .with_prop("name", "x")
            .with_prop("age", 1i64);
        let b = Node::new(11, LabelSet::single("Person"))
            .with_prop("name", "yyy")
            .with_prop("age", 999i64);
        // Property *values* don't matter, only presence.
        assert_eq!(fs.node_vector(&a), fs.node_vector(&b));
    }

    #[test]
    fn different_labels_differ_in_embedding_block() {
        let (fs, nodes, _) = space();
        let person = fs.node_vector(&nodes[0]);
        let mut org = nodes[2].clone();
        // Give Org the same property structure as Person.
        org.props = nodes[0].props.clone();
        let org_v = fs.node_vector(&org);
        assert!(person.distance(&org_v) > 0.1);
    }

    #[test]
    fn edge_vectors_use_three_blocks() {
        let (fs, _, edges) = space();
        let v = fs.edge_vector(&edges[0]);
        let d = fs.dim();
        let blocks: Vec<usize> = v
            .iter()
            .map(|(i, _)| (i as usize) / d)
            .filter(|&b| b < 3)
            .collect();
        // All three embedding blocks are populated (labeled endpoints).
        assert!(blocks.contains(&0));
        assert!(blocks.contains(&1));
        assert!(blocks.contains(&2));
    }

    #[test]
    fn minhash_sets_are_namespaced() {
        let (fs, nodes, edges) = space();
        let ns: Vec<u64> = fs.node_set(&nodes[0]);
        assert_eq!(ns.len(), 3); // 2 keys + 1 label token
        let es = fs.edge_set(&edges[0]);
        assert_eq!(es.len(), 4); // 1 key + 3 label tokens
                                 // Node key ids and edge key ids never collide.
        for a in &ns {
            for b in &es {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn unknown_key_is_ignored_gracefully() {
        let (fs, _, _) = space();
        let alien = Node::new(99, LabelSet::empty()).with_prop("never_seen", 1i64);
        // Key not in the batch universe: vector just has no bit for it.
        let v = fs.node_vector(&alien);
        assert_eq!(v.nnz(), 0);
        assert!(fs.node_set(&alien).is_empty());
    }

    #[test]
    fn fingerprint_representations_match_record_representations() {
        // The dedup fast path builds vectors/sets from fingerprints; they
        // must be bit-identical to the per-record builders.
        let (fs, nodes, edges) = space();
        for n in &nodes {
            let fp = fs.node_fingerprint(n);
            assert_eq!(fs.node_fingerprint_vector(&fp), fs.node_vector(n));
            assert_eq!(fs.node_fingerprint_set(&fp), fs.node_set(n));
        }
        for e in &edges {
            let fp = fs.edge_fingerprint(e);
            assert_eq!(fs.edge_fingerprint_vector(&fp), fs.edge_vector(e));
            assert_eq!(fs.edge_fingerprint_set(&fp), fs.edge_set(e));
        }
    }

    #[test]
    fn fingerprints_ignore_values_but_not_structure() {
        let (fs, _, _) = space();
        let a = Node::new(1, LabelSet::single("Person"))
            .with_prop("name", "x")
            .with_prop("age", 1i64);
        let b = Node::new(2, LabelSet::single("Person"))
            .with_prop("name", "completely different")
            .with_prop("age", 999i64);
        assert_eq!(fs.node_fingerprint(&a), fs.node_fingerprint(&b));
        // Dropping a property or changing the label breaks equality.
        let fewer = Node::new(3, LabelSet::single("Person")).with_prop("name", "x");
        assert_ne!(fs.node_fingerprint(&a), fs.node_fingerprint(&fewer));
        let other = Node::new(4, LabelSet::single("Org"))
            .with_prop("name", "x")
            .with_prop("age", 1i64);
        assert_ne!(fs.node_fingerprint(&a), fs.node_fingerprint(&other));
    }

    #[test]
    fn foreign_label_sets_fall_back_to_uncached_info() {
        // A label set the space never saw (memoization probes do this)
        // still featurizes through the uncached fallback.
        let (fs, _, _) = space();
        let foreign = Node::new(7, LabelSet::single("NeverSeen")).with_prop("name", "n");
        let v = fs.node_vector(&foreign);
        assert!(v.nnz() >= 1, "name bit survives; embedding may add more");
    }

    #[test]
    #[should_panic(expected = "registered at build time")]
    fn fingerprinting_foreign_label_sets_is_a_contract_violation() {
        // Fingerprints intern label sets to per-batch ids, so they are
        // only defined for the records the space was built from — the
        // dedup path never fingerprints anything else.
        let (fs, _, _) = space();
        let foreign = Node::new(7, LabelSet::single("NeverSeen")).with_prop("name", "n");
        let _ = fs.node_fingerprint(&foreign);
    }
}
