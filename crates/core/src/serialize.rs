//! Schema serialization (§4.5): PG-Schema declarations (LOOSE and
//! STRICT), XSD, and JSON.
//!
//! PG-Schema has no finalized concrete syntax; like the paper, we emit
//! both a LOOSE declaration (names and property keys only, tolerant of
//! deviation) and a STRICT one (data types, mandatory/optional markers,
//! cardinality annotations).

use pg_model::{DataType, EdgeType, NodeType, Presence, SchemaGraph};
use std::fmt::Write as _;

/// Strictness mode of the emitted PG-Schema declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemaMode {
    /// Flexible: property lists are OPEN, no data types or constraints.
    Loose,
    /// Rigorous: data types, OPTIONAL markers, cardinality comments.
    Strict,
}

fn node_type_name(t: &NodeType, idx: usize) -> String {
    if t.labels.is_empty() {
        format!("abstractType{idx}")
    } else {
        let mut n: String = t
            .labels
            .iter()
            .map(|l| l.as_ref())
            .collect::<Vec<_>>()
            .join("_");
        n.push_str("Type");
        sanitize(&n)
    }
}

fn edge_type_name(t: &EdgeType, idx: usize) -> String {
    if t.labels.is_empty() {
        format!("abstractEdgeType{idx}")
    } else {
        let mut n: String = t
            .labels
            .iter()
            .map(|l| l.as_ref())
            .collect::<Vec<_>>()
            .join("_");
        n.push_str("Type");
        sanitize(&n)
    }
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn label_spec(labels: &pg_model::LabelSet) -> String {
    labels
        .iter()
        .map(|l| l.as_ref())
        .collect::<Vec<_>>()
        .join(" & ")
}

fn dt_name(dt: Option<DataType>) -> &'static str {
    dt.map(DataType::gql_name).unwrap_or("ANY")
}

/// Render the schema as a PG-Schema `CREATE GRAPH TYPE` declaration.
pub fn to_pg_schema(schema: &SchemaGraph, mode: SchemaMode) -> String {
    let strictness = match mode {
        SchemaMode::Loose => "LOOSE",
        SchemaMode::Strict => "STRICT",
    };
    let mut out = String::new();
    let _ = writeln!(out, "CREATE GRAPH TYPE DiscoveredGraphType {strictness} {{");

    let mut first = true;
    for (i, t) in schema.node_types.iter().enumerate() {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let name = node_type_name(t, i);
        let abstract_kw = if t.is_abstract { "ABSTRACT " } else { "" };
        let head = if t.labels.is_empty() {
            format!("  ({abstract_kw}{name}")
        } else {
            format!("  ({abstract_kw}{name} : {}", label_spec(&t.labels))
        };
        out.push_str(&head);
        write_props(&mut out, &t.properties, mode);
        out.push(')');
    }
    for (i, t) in schema.edge_types.iter().enumerate() {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let name = edge_type_name(t, i);
        let src = if t.src_labels.is_empty() {
            String::new()
        } else {
            format!(":{}", label_spec(&t.src_labels))
        };
        let tgt = if t.tgt_labels.is_empty() {
            String::new()
        } else {
            format!(":{}", label_spec(&t.tgt_labels))
        };
        let _ = write!(out, "  ({src})-[{name} : {}", label_spec(&t.labels));
        write_props(&mut out, &t.properties, mode);
        let _ = write!(out, "]->({tgt})");
        if mode == SchemaMode::Strict {
            if let Some(c) = t.cardinality {
                let _ = write!(
                    out,
                    " /* cardinality {} (max_out={}, max_in={}) */",
                    c.class(),
                    c.max_out,
                    c.max_in
                );
            }
        }
    }
    out.push_str("\n}\n");
    out
}

fn write_props(
    out: &mut String,
    props: &std::collections::BTreeMap<pg_model::Symbol, pg_model::PropertySpec>,
    mode: SchemaMode,
) {
    if props.is_empty() {
        if mode == SchemaMode::Loose {
            out.push_str(" {OPEN}");
        }
        return;
    }
    out.push_str(" {");
    match mode {
        SchemaMode::Loose => {
            // LOOSE: key names only, plus OPEN to admit deviation.
            let keys: Vec<&str> = props.keys().map(|k| k.as_ref()).collect();
            let _ = write!(out, "{}", keys.join(", "));
            out.push_str(", OPEN");
        }
        SchemaMode::Strict => {
            let mut first = true;
            for (k, spec) in props {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                if spec.presence == Some(Presence::Optional) {
                    out.push_str("OPTIONAL ");
                }
                let _ = write!(out, "{k} {}", dt_name(spec.datatype));
            }
        }
    }
    out.push('}');
}

/// Render the schema as an XML Schema document: one `xs:element` per node
/// type and per edge type, properties as child elements with
/// `minOccurs="0"` for optionals.
pub fn to_xsd(schema: &SchemaGraph) -> String {
    let mut out = String::new();
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    out.push_str("<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">\n");
    for (i, t) in schema.node_types.iter().enumerate() {
        let name = node_type_name(t, i);
        let _ = writeln!(out, "  <xs:element name=\"{name}\">");
        out.push_str("    <xs:complexType>\n      <xs:sequence>\n");
        for (k, spec) in &t.properties {
            let min = if spec.presence == Some(Presence::Mandatory) {
                1
            } else {
                0
            };
            let _ = writeln!(
                out,
                "        <xs:element name=\"{}\" type=\"{}\" minOccurs=\"{min}\"/>",
                xml_escape(k),
                spec.datatype.unwrap_or(DataType::Str).xsd_name()
            );
        }
        out.push_str("      </xs:sequence>\n");
        let _ = writeln!(
            out,
            "      <xs:attribute name=\"labels\" type=\"xs:string\" fixed=\"{}\"/>",
            xml_escape(&label_spec(&t.labels))
        );
        out.push_str("    </xs:complexType>\n  </xs:element>\n");
    }
    for (i, t) in schema.edge_types.iter().enumerate() {
        let name = edge_type_name(t, i);
        let _ = writeln!(out, "  <xs:element name=\"{name}\">");
        out.push_str("    <xs:complexType>\n      <xs:sequence>\n");
        for (k, spec) in &t.properties {
            let min = if spec.presence == Some(Presence::Mandatory) {
                1
            } else {
                0
            };
            let _ = writeln!(
                out,
                "        <xs:element name=\"{}\" type=\"{}\" minOccurs=\"{min}\"/>",
                xml_escape(k),
                spec.datatype.unwrap_or(DataType::Str).xsd_name()
            );
        }
        out.push_str("      </xs:sequence>\n");
        let _ = writeln!(
            out,
            "      <xs:attribute name=\"source\" type=\"xs:string\" fixed=\"{}\"/>",
            xml_escape(&label_spec(&t.src_labels))
        );
        let _ = writeln!(
            out,
            "      <xs:attribute name=\"target\" type=\"xs:string\" fixed=\"{}\"/>",
            xml_escape(&label_spec(&t.tgt_labels))
        );
        out.push_str("    </xs:complexType>\n  </xs:element>\n");
    }
    out.push_str("</xs:schema>\n");
    out
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Render the schema as pretty-printed JSON (lossless; pairs with
/// `serde_json::from_str::<SchemaGraph>` for round-tripping).
pub fn to_json(schema: &SchemaGraph) -> String {
    serde_json::to_string_pretty(schema).expect("schema is serializable")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_model::{Cardinality, LabelSet, PropertySpec, TypeId};

    fn sample_schema() -> SchemaGraph {
        let mut s = SchemaGraph::new();
        let mut person = NodeType::new(
            TypeId(0),
            LabelSet::single("Person"),
            ["name", "age"].iter().map(|k| pg_model::sym(k)),
        );
        person.properties.insert(
            pg_model::sym("name"),
            PropertySpec {
                datatype: Some(DataType::Str),
                presence: Some(Presence::Mandatory),
            },
        );
        person.properties.insert(
            pg_model::sym("age"),
            PropertySpec {
                datatype: Some(DataType::Int),
                presence: Some(Presence::Optional),
            },
        );
        s.push_node_type(person);
        let mut abs = NodeType::new(TypeId(0), LabelSet::empty(), std::iter::empty());
        abs.is_abstract = true;
        s.push_node_type(abs);
        let mut knows = EdgeType::new(
            TypeId(0),
            LabelSet::single("KNOWS"),
            [pg_model::sym("since")],
            LabelSet::single("Person"),
            LabelSet::single("Person"),
        );
        knows.cardinality = Some(Cardinality {
            max_out: 5,
            max_in: 7,
        });
        s.push_edge_type(knows);
        s
    }

    #[test]
    fn strict_mode_includes_types_and_optionals() {
        let text = to_pg_schema(&sample_schema(), SchemaMode::Strict);
        assert!(text.contains("STRICT"));
        assert!(text.contains("name STRING"));
        assert!(text.contains("OPTIONAL age INT"));
        assert!(text.contains("cardinality M:N"));
        assert!(text.contains("ABSTRACT"));
        assert!(text.contains("(:Person)-[KNOWSType : KNOWS"));
    }

    #[test]
    fn loose_mode_omits_types_and_stays_open() {
        let text = to_pg_schema(&sample_schema(), SchemaMode::Loose);
        assert!(text.contains("LOOSE"));
        assert!(text.contains("OPEN"));
        assert!(!text.contains("STRING"));
        assert!(!text.contains("OPTIONAL"));
    }

    #[test]
    fn xsd_is_wellformed_enough() {
        let xsd = to_xsd(&sample_schema());
        assert!(xsd.starts_with("<?xml"));
        assert!(xsd.contains("<xs:element name=\"PersonType\">"));
        assert!(xsd.contains("type=\"xs:long\""));
        assert!(xsd.contains("minOccurs=\"0\""));
        assert!(xsd.contains("minOccurs=\"1\""));
        // Balanced tags (crude check): every open element is either
        // self-closed or explicitly closed.
        let opened = xsd.matches("<xs:element").count();
        let closed = xsd.matches("</xs:element>").count();
        let self_closed = xsd.matches("<xs:element name=").count()
            - xsd.matches("<xs:element name=\"PersonType\">").count()
            - xsd.matches("<xs:element name=\"abstractType1\">").count()
            - xsd.matches("<xs:element name=\"KNOWSType\">").count();
        assert_eq!(opened, closed + self_closed);
        assert!(xsd.ends_with("</xs:schema>\n"));
    }

    #[test]
    fn json_round_trips() {
        let s = sample_schema();
        let text = to_json(&s);
        let back: SchemaGraph = serde_json::from_str(&text).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn names_are_sanitized() {
        let mut s = SchemaGraph::new();
        s.push_node_type(NodeType::new(
            TypeId(0),
            LabelSet::single("Weird Label-With:Chars"),
            std::iter::empty(),
        ));
        let text = to_pg_schema(&s, SchemaMode::Strict);
        assert!(text.contains("Weird_Label_With_CharsType"));
    }
}
