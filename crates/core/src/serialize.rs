//! Schema serialization (§4.5): PG-Schema declarations (LOOSE and
//! STRICT), XSD, and JSON.
//!
//! PG-Schema has no finalized concrete syntax; like the paper, we emit
//! both a LOOSE declaration (names and property keys only, tolerant of
//! deviation) and a STRICT one (data types, mandatory/optional markers,
//! cardinality annotations).

use pg_model::{DataType, EdgeType, NodeType, Presence, SchemaGraph};
use std::fmt::Write as _;

/// Strictness mode of the emitted PG-Schema declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemaMode {
    /// Flexible: property lists are OPEN, no data types or constraints.
    Loose,
    /// Rigorous: data types, OPTIONAL markers, cardinality comments.
    Strict,
}

fn node_type_name(t: &NodeType, idx: usize) -> String {
    if t.labels.is_empty() {
        format!("abstractType{idx}")
    } else {
        let mut n: String = t
            .labels
            .iter()
            .map(|l| l.as_ref())
            .collect::<Vec<_>>()
            .join("_");
        n.push_str("Type");
        sanitize(&n)
    }
}

fn edge_type_name(t: &EdgeType, idx: usize) -> String {
    if t.labels.is_empty() {
        format!("abstractEdgeType{idx}")
    } else {
        let mut n: String = t
            .labels
            .iter()
            .map(|l| l.as_ref())
            .collect::<Vec<_>>()
            .join("_");
        n.push_str("Type");
        sanitize(&n)
    }
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn label_spec(labels: &pg_model::LabelSet) -> String {
    labels
        .iter()
        .map(|l| l.as_ref())
        .collect::<Vec<_>>()
        .join(" & ")
}

fn dt_name(dt: Option<DataType>) -> &'static str {
    dt.map(DataType::gql_name).unwrap_or("ANY")
}

/// Render the schema as a PG-Schema `CREATE GRAPH TYPE` declaration.
pub fn to_pg_schema(schema: &SchemaGraph, mode: SchemaMode) -> String {
    let strictness = match mode {
        SchemaMode::Loose => "LOOSE",
        SchemaMode::Strict => "STRICT",
    };
    let mut out = String::new();
    let _ = writeln!(out, "CREATE GRAPH TYPE DiscoveredGraphType {strictness} {{");

    let mut first = true;
    for (i, t) in schema.node_types.iter().enumerate() {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let name = node_type_name(t, i);
        let abstract_kw = if t.is_abstract { "ABSTRACT " } else { "" };
        let head = if t.labels.is_empty() {
            format!("  ({abstract_kw}{name}")
        } else {
            format!("  ({abstract_kw}{name} : {}", label_spec(&t.labels))
        };
        out.push_str(&head);
        write_props(&mut out, &t.properties, mode);
        out.push(')');
    }
    for (i, t) in schema.edge_types.iter().enumerate() {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let name = edge_type_name(t, i);
        let src = if t.src_labels.is_empty() {
            String::new()
        } else {
            format!(":{}", label_spec(&t.src_labels))
        };
        let tgt = if t.tgt_labels.is_empty() {
            String::new()
        } else {
            format!(":{}", label_spec(&t.tgt_labels))
        };
        let _ = write!(out, "  ({src})-[{name} : {}", label_spec(&t.labels));
        write_props(&mut out, &t.properties, mode);
        let _ = write!(out, "]->({tgt})");
        if mode == SchemaMode::Strict {
            if let Some(c) = t.cardinality {
                let _ = write!(
                    out,
                    " /* cardinality {} (max_out={}, max_in={}) */",
                    c.class(),
                    c.max_out,
                    c.max_in
                );
            }
        }
    }
    out.push_str("\n}\n");
    out
}

fn write_props(
    out: &mut String,
    props: &std::collections::BTreeMap<pg_model::Symbol, pg_model::PropertySpec>,
    mode: SchemaMode,
) {
    if props.is_empty() {
        if mode == SchemaMode::Loose {
            out.push_str(" {OPEN}");
        }
        return;
    }
    out.push_str(" {");
    match mode {
        SchemaMode::Loose => {
            // LOOSE: key names only, plus OPEN to admit deviation.
            let keys: Vec<&str> = props.keys().map(|k| k.as_ref()).collect();
            let _ = write!(out, "{}", keys.join(", "));
            out.push_str(", OPEN");
        }
        SchemaMode::Strict => {
            let mut first = true;
            for (k, spec) in props {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                if spec.presence == Some(Presence::Optional) {
                    out.push_str("OPTIONAL ");
                }
                let _ = write!(out, "{k} {}", dt_name(spec.datatype));
            }
        }
    }
    out.push('}');
}

/// Render the schema as an XML Schema document: one `xs:element` per node
/// type and per edge type, properties as child elements with
/// `minOccurs="0"` for optionals.
pub fn to_xsd(schema: &SchemaGraph) -> String {
    let mut out = String::new();
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    out.push_str("<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">\n");
    for (i, t) in schema.node_types.iter().enumerate() {
        let name = node_type_name(t, i);
        let _ = writeln!(out, "  <xs:element name=\"{name}\">");
        out.push_str("    <xs:complexType>\n      <xs:sequence>\n");
        for (k, spec) in &t.properties {
            let min = if spec.presence == Some(Presence::Mandatory) {
                1
            } else {
                0
            };
            let _ = writeln!(
                out,
                "        <xs:element name=\"{}\" type=\"{}\" minOccurs=\"{min}\"/>",
                xml_escape(k),
                spec.datatype.unwrap_or(DataType::Str).xsd_name()
            );
        }
        out.push_str("      </xs:sequence>\n");
        let _ = writeln!(
            out,
            "      <xs:attribute name=\"labels\" type=\"xs:string\" fixed=\"{}\"/>",
            xml_escape(&label_spec(&t.labels))
        );
        out.push_str("    </xs:complexType>\n  </xs:element>\n");
    }
    for (i, t) in schema.edge_types.iter().enumerate() {
        let name = edge_type_name(t, i);
        let _ = writeln!(out, "  <xs:element name=\"{name}\">");
        out.push_str("    <xs:complexType>\n      <xs:sequence>\n");
        for (k, spec) in &t.properties {
            let min = if spec.presence == Some(Presence::Mandatory) {
                1
            } else {
                0
            };
            let _ = writeln!(
                out,
                "        <xs:element name=\"{}\" type=\"{}\" minOccurs=\"{min}\"/>",
                xml_escape(k),
                spec.datatype.unwrap_or(DataType::Str).xsd_name()
            );
        }
        out.push_str("      </xs:sequence>\n");
        let _ = writeln!(
            out,
            "      <xs:attribute name=\"source\" type=\"xs:string\" fixed=\"{}\"/>",
            xml_escape(&label_spec(&t.src_labels))
        );
        let _ = writeln!(
            out,
            "      <xs:attribute name=\"target\" type=\"xs:string\" fixed=\"{}\"/>",
            xml_escape(&label_spec(&t.tgt_labels))
        );
        out.push_str("    </xs:complexType>\n  </xs:element>\n");
    }
    out.push_str("</xs:schema>\n");
    out
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Render the schema as pretty-printed JSON (lossless; pairs with
/// `serde_json::from_str::<SchemaGraph>` for round-tripping).
pub fn to_json(schema: &SchemaGraph) -> String {
    serde_json::to_string_pretty(schema).expect("schema is serializable")
}

/// A canonical, order-independent textual form of a schema.
///
/// Two schemas that describe the same types produce the same canonical
/// form even when their `TypeId`s or the order of their type vectors
/// differ — both are artifacts of discovery order (batch arrival,
/// cluster enumeration), not of the schema itself. Concretely:
///
/// * `TypeId`s are dropped.
/// * Node types are sorted by `(labels, property keys, is_abstract)`;
///   edge types by `(labels, src, tgt, property keys, is_abstract)`.
/// * Everything semantically meaningful is kept: label sets, property
///   specs (datatype + presence), abstractness, instance counts, and
///   cardinality bounds — all of which are computed from commutative
///   accumulators, so they agree across batchings and thread counts.
pub fn canonical_form(schema: &SchemaGraph) -> String {
    let mut node_lines: Vec<String> = schema.node_types.iter().map(node_line).collect();
    node_lines.sort();
    let mut edge_lines: Vec<String> = schema.edge_types.iter().map(edge_line).collect();
    edge_lines.sort();

    let mut out = String::from("pg-hive schema v1\n");
    for l in node_lines.into_iter().chain(edge_lines) {
        out.push_str(&l);
        out.push('\n');
    }
    out
}

fn canonical_props(
    out: &mut String,
    props: &std::collections::BTreeMap<pg_model::Symbol, pg_model::PropertySpec>,
) {
    out.push_str(" props=[");
    let mut first = true;
    for (k, spec) in props {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{}:{}:{}",
            k,
            spec.datatype.map(DataType::gql_name).unwrap_or("?"),
            match spec.presence {
                Some(Presence::Mandatory) => "man",
                Some(Presence::Optional) => "opt",
                None => "?",
            }
        );
    }
    out.push(']');
}

fn canonical_labels(set: &pg_model::LabelSet) -> String {
    set.iter().map(|l| l.as_ref()).collect::<Vec<_>>().join("|")
}

/// One node type's line of the [`canonical_form`] — also the canonical
/// sort key the distributed merge renumbers types by, so merged schemas
/// come out in exactly the order their canonical form lists them.
pub(crate) fn node_line(t: &pg_model::NodeType) -> String {
    let mut line = format!(
        "node labels=[{}] abstract={} count={}",
        canonical_labels(&t.labels),
        t.is_abstract,
        t.instance_count
    );
    canonical_props(&mut line, &t.properties);
    line
}

/// One edge type's line of the [`canonical_form`] (see [`node_line`]).
pub(crate) fn edge_line(t: &pg_model::EdgeType) -> String {
    let mut line = format!(
        "edge labels=[{}] src=[{}] tgt=[{}] abstract={} count={} card={}",
        canonical_labels(&t.labels),
        canonical_labels(&t.src_labels),
        canonical_labels(&t.tgt_labels),
        t.is_abstract,
        t.instance_count,
        t.cardinality
            .map(|c| format!("{}:{}", c.max_out, c.max_in))
            .unwrap_or_else(|| "?".to_owned()),
    );
    canonical_props(&mut line, &t.properties);
    line
}

/// Stable 64-bit content hash of a schema: FNV-1a over
/// [`canonical_form`]. Equal for semantically equal schemas regardless
/// of thread count, batch split, or ingestion order (see the module
/// tests and `crates/server`'s equivalence suite); stable across
/// processes and platforms.
pub fn content_hash(schema: &SchemaGraph) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in canonical_form(schema).as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// [`content_hash`] rendered as 16 lowercase hex digits — the form used
/// in ETags, the CLI `hash` subcommand, and persisted version history.
pub fn content_hash_hex(schema: &SchemaGraph) -> String {
    format!("{:016x}", content_hash(schema))
}

/// One retained entry of a [`SchemaHistory`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SchemaVersion {
    /// Monotone version number (1-based; never reused or rewound).
    pub version: u64,
    /// [`content_hash_hex`] of `schema`.
    pub hash: String,
    /// The schema as of this version.
    pub schema: SchemaGraph,
}

/// A monotone, content-addressed version history of a discovery
/// session's schema.
///
/// [`SchemaHistory::observe`] assigns a fresh version number only when
/// the content hash actually changes, so pollers see a counter that
/// moves exactly when the schema does (ETag semantics), and
/// `diff?from=v` can be answered for any still-retained version. At
/// most `retain` versions are kept; asking for an evicted one is
/// distinguishable from asking for one that never existed.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SchemaHistory {
    versions: Vec<SchemaVersion>,
    next_version: u64,
    retain: usize,
}

impl SchemaHistory {
    /// An empty history retaining at most `retain` versions (min 1).
    pub fn new(retain: usize) -> SchemaHistory {
        SchemaHistory {
            versions: Vec::new(),
            next_version: 1,
            retain: retain.max(1),
        }
    }

    /// Record the current schema. Returns `(version, changed)`: the
    /// version now current and whether this observation created it.
    pub fn observe(&mut self, schema: &SchemaGraph) -> (u64, bool) {
        let hash = content_hash_hex(schema);
        if let Some(last) = self.versions.last() {
            if last.hash == hash {
                return (last.version, false);
            }
        }
        let version = self.next_version;
        self.next_version += 1;
        self.versions.push(SchemaVersion {
            version,
            hash,
            schema: schema.clone(),
        });
        if self.versions.len() > self.retain {
            let excess = self.versions.len() - self.retain;
            self.versions.drain(..excess);
        }
        (version, true)
    }

    /// The current (latest) version entry, if any schema was observed.
    pub fn current(&self) -> Option<&SchemaVersion> {
        self.versions.last()
    }

    /// The current version number (0 before the first observation).
    pub fn version(&self) -> u64 {
        self.versions.last().map(|v| v.version).unwrap_or(0)
    }

    /// Look up a retained version by number.
    pub fn get(&self, version: u64) -> Option<&SchemaVersion> {
        self.versions.iter().find(|v| v.version == version)
    }

    /// Whether `version` was ever assigned (even if since evicted).
    pub fn existed(&self, version: u64) -> bool {
        version >= 1 && version < self.next_version
    }

    /// Number of retained versions.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Whether no version was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_model::{Cardinality, LabelSet, PropertySpec, TypeId};

    fn sample_schema() -> SchemaGraph {
        let mut s = SchemaGraph::new();
        let mut person = NodeType::new(
            TypeId(0),
            LabelSet::single("Person"),
            ["name", "age"].iter().map(|k| pg_model::sym(k)),
        );
        person.properties.insert(
            pg_model::sym("name"),
            PropertySpec {
                datatype: Some(DataType::Str),
                presence: Some(Presence::Mandatory),
            },
        );
        person.properties.insert(
            pg_model::sym("age"),
            PropertySpec {
                datatype: Some(DataType::Int),
                presence: Some(Presence::Optional),
            },
        );
        s.push_node_type(person);
        let mut abs = NodeType::new(TypeId(0), LabelSet::empty(), std::iter::empty());
        abs.is_abstract = true;
        s.push_node_type(abs);
        let mut knows = EdgeType::new(
            TypeId(0),
            LabelSet::single("KNOWS"),
            [pg_model::sym("since")],
            LabelSet::single("Person"),
            LabelSet::single("Person"),
        );
        knows.cardinality = Some(Cardinality {
            max_out: 5,
            max_in: 7,
        });
        s.push_edge_type(knows);
        s
    }

    #[test]
    fn strict_mode_includes_types_and_optionals() {
        let text = to_pg_schema(&sample_schema(), SchemaMode::Strict);
        assert!(text.contains("STRICT"));
        assert!(text.contains("name STRING"));
        assert!(text.contains("OPTIONAL age INT"));
        assert!(text.contains("cardinality M:N"));
        assert!(text.contains("ABSTRACT"));
        assert!(text.contains("(:Person)-[KNOWSType : KNOWS"));
    }

    #[test]
    fn loose_mode_omits_types_and_stays_open() {
        let text = to_pg_schema(&sample_schema(), SchemaMode::Loose);
        assert!(text.contains("LOOSE"));
        assert!(text.contains("OPEN"));
        assert!(!text.contains("STRING"));
        assert!(!text.contains("OPTIONAL"));
    }

    #[test]
    fn xsd_is_wellformed_enough() {
        let xsd = to_xsd(&sample_schema());
        assert!(xsd.starts_with("<?xml"));
        assert!(xsd.contains("<xs:element name=\"PersonType\">"));
        assert!(xsd.contains("type=\"xs:long\""));
        assert!(xsd.contains("minOccurs=\"0\""));
        assert!(xsd.contains("minOccurs=\"1\""));
        // Balanced tags (crude check): every open element is either
        // self-closed or explicitly closed.
        let opened = xsd.matches("<xs:element").count();
        let closed = xsd.matches("</xs:element>").count();
        let self_closed = xsd.matches("<xs:element name=").count()
            - xsd.matches("<xs:element name=\"PersonType\">").count()
            - xsd.matches("<xs:element name=\"abstractType1\">").count()
            - xsd.matches("<xs:element name=\"KNOWSType\">").count();
        assert_eq!(opened, closed + self_closed);
        assert!(xsd.ends_with("</xs:schema>\n"));
    }

    #[test]
    fn json_round_trips() {
        let s = sample_schema();
        let text = to_json(&s);
        let back: SchemaGraph = serde_json::from_str(&text).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn content_hash_ignores_type_ids_and_order() {
        let a = sample_schema();
        // Same types, different vector order and different TypeIds.
        let mut b = a.clone();
        b.node_types.reverse();
        for (i, t) in b.node_types.iter_mut().enumerate() {
            t.id = TypeId(90 + i as u32);
        }
        b.edge_types[0].id = TypeId(77);
        assert_ne!(a, b, "structurally different representations");
        assert_eq!(canonical_form(&a), canonical_form(&b));
        assert_eq!(content_hash(&a), content_hash(&b));

        // Any semantic change moves the hash.
        let mut c = a.clone();
        c.node_types[0].properties.insert(
            pg_model::sym("email"),
            PropertySpec {
                datatype: Some(DataType::Str),
                presence: Some(Presence::Optional),
            },
        );
        assert_ne!(content_hash(&a), content_hash(&c));
        let mut d = a.clone();
        d.edge_types[0].cardinality = Some(Cardinality {
            max_out: 6,
            max_in: 7,
        });
        assert_ne!(content_hash(&a), content_hash(&d));
    }

    #[test]
    fn content_hash_is_stable_across_processes() {
        // Pinned value: the hash is persisted (ETags, version history,
        // CI restart checks), so accidental algorithm changes must fail
        // loudly rather than silently invalidate stored state.
        assert_eq!(content_hash_hex(&SchemaGraph::new()), "158e42a825006d8d");
    }

    #[test]
    fn content_hash_equal_across_thread_counts() {
        // Discover the same graph with 1 and 4 worker threads: the
        // schemas are semantically equal, so the content hashes agree.
        let g = crate::fixtures::figure1();
        let discover = |threads: usize| {
            crate::pipeline::PgHive::new(crate::config::HiveConfig::default().with_threads(threads))
                .discover_graph(&g)
                .schema
        };
        let h1 = content_hash(&discover(1));
        let h4 = content_hash(&discover(4));
        assert_eq!(h1, h4);
    }

    #[test]
    fn history_counter_is_monotone_and_content_addressed() {
        let mut hist = SchemaHistory::new(8);
        assert_eq!(hist.version(), 0);
        assert!(hist.is_empty());

        let a = sample_schema();
        let (v1, changed) = hist.observe(&a);
        assert!(changed);
        assert_eq!(v1, 1);
        // Re-observing an unchanged schema does not mint a version.
        let (v1b, changed) = hist.observe(&a);
        assert!(!changed);
        assert_eq!(v1b, 1);
        assert_eq!(hist.len(), 1);

        let mut b = a.clone();
        b.node_types[0].instance_count += 1;
        let (v2, changed) = hist.observe(&b);
        assert!(changed);
        assert_eq!(v2, 2);
        assert_eq!(hist.current().unwrap().version, 2);
        assert_eq!(hist.get(1).unwrap().schema, a);
        assert_eq!(hist.get(1).unwrap().hash, content_hash_hex(&a));
        assert!(hist.existed(2));
        assert!(!hist.existed(3));
    }

    #[test]
    fn history_eviction_keeps_the_counter_monotone() {
        let mut hist = SchemaHistory::new(2);
        let mut s = SchemaGraph::new();
        for i in 0..5u32 {
            s.push_node_type(NodeType::new(
                TypeId(0),
                LabelSet::single(&format!("T{i}")),
                std::iter::empty(),
            ));
            hist.observe(&s);
        }
        assert_eq!(hist.version(), 5);
        assert_eq!(hist.len(), 2, "older versions evicted");
        assert!(hist.get(1).is_none());
        assert!(hist.existed(1), "evicted, but it did exist");
        assert!(hist.get(5).is_some());

        // Round-trips through JSON (persisted in server state dirs).
        let json = serde_json::to_string(&hist).unwrap();
        let back: SchemaHistory = serde_json::from_str(&json).unwrap();
        assert_eq!(hist, back);
        // The counter survives the round trip: the next change is 6.
        let mut hist = back;
        s.push_node_type(NodeType::new(
            TypeId(0),
            LabelSet::single("T9"),
            std::iter::empty(),
        ));
        let (v, _) = hist.observe(&s);
        assert_eq!(v, 6);
    }

    #[test]
    fn names_are_sanitized() {
        let mut s = SchemaGraph::new();
        s.push_node_type(NodeType::new(
            TypeId(0),
            LabelSet::single("Weird Label-With:Chars"),
            std::iter::empty(),
        ));
        let text = to_pg_schema(&s, SchemaMode::Strict);
        assert!(text.contains("Weird_Label_With_CharsType"));
    }
}
