//! Edge cardinality inference (§4.4, "Cardinalities").
//!
//! For every edge type ρ, compute the maximum number of distinct targets
//! per source (`max_out`) and distinct sources per target (`max_in`) over
//! the type's observed instances, and classify: `(1,1) → 0:1`,
//! `(>1,1) → N:1`, `(1,>1) → 0:N`, `(>1,>1) → M:N`. These are sound upper
//! bounds (§4.7); the exact lower bound would require scanning nodes
//! without edges, which the paper defers.

use crate::state::DiscoveryState;
use pg_store::query::max_degrees;

/// Compute and store cardinalities for every edge type: the bounds
/// observed from the accumulated endpoint pairs, max-merged with the
/// accumulator's folded floor (a foreign schema's declared cardinality
/// whose endpoints are not available locally — see
/// `EdgeTypeAccum::card_floor`). Types with neither endpoints nor a
/// floor are left untouched.
pub fn compute_cardinalities(state: &mut DiscoveryState) {
    for t in &mut state.schema.edge_types {
        let Some(acc) = state.edge_accums.get(&t.id) else {
            continue;
        };
        let observed = if acc.endpoints.is_empty() {
            None
        } else {
            Some(max_degrees(acc.endpoints.iter().copied()))
        };
        match (observed, acc.card_floor) {
            (Some(o), Some(f)) => t.cardinality = Some(o.merge(&f)),
            (Some(o), None) => t.cardinality = Some(o),
            (None, Some(f)) => t.cardinality = Some(f),
            (None, None) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::EdgeCluster;
    use crate::extract::integrate_edge_clusters;
    use crate::state::EdgeTypeAccum;
    use pg_model::{CardinalityClass, Edge, LabelSet, NodeId};

    fn edge_cluster(label: &str, pairs: &[(u64, u64)]) -> EdgeCluster {
        let mut accum = EdgeTypeAccum::default();
        for (i, &(s, t)) in pairs.iter().enumerate() {
            accum.observe(&Edge::new(
                10_000 + i as u64,
                NodeId(s),
                NodeId(t),
                LabelSet::single(label),
            ));
        }
        EdgeCluster {
            labels: LabelSet::single(label),
            keys: Default::default(),
            src_labels: LabelSet::single("Person"),
            tgt_labels: LabelSet::single("Org"),
            accum,
        }
    }

    #[test]
    fn works_at_example_is_n_to_1() {
        // Example 8: many people → one org each; orgs have many employees.
        let mut state = DiscoveryState::new();
        integrate_edge_clusters(
            &mut state,
            vec![edge_cluster("WORKS_AT", &[(1, 100), (2, 100), (3, 100)])],
            0.9,
            true,
        );
        compute_cardinalities(&mut state);
        let t = &state.schema.edge_types[0];
        let c = t.cardinality.unwrap();
        assert_eq!(c.max_out, 1);
        assert_eq!(c.max_in, 3);
        assert_eq!(c.class(), CardinalityClass::OneToMany);
    }

    #[test]
    fn knows_example_is_m_to_n() {
        let mut state = DiscoveryState::new();
        integrate_edge_clusters(
            &mut state,
            vec![edge_cluster("KNOWS", &[(1, 2), (1, 3), (2, 1), (3, 1)])],
            0.9,
            true,
        );
        compute_cardinalities(&mut state);
        let c = state.schema.edge_types[0].cardinality.unwrap();
        assert_eq!(c.class(), CardinalityClass::ManyToMany);
    }

    #[test]
    fn upper_bound_soundness() {
        // §4.7: the recorded maxima are achieved by some instance.
        let pairs = [(1, 2), (1, 3), (1, 4), (5, 2)];
        let mut state = DiscoveryState::new();
        integrate_edge_clusters(&mut state, vec![edge_cluster("E", &pairs)], 0.9, true);
        compute_cardinalities(&mut state);
        let c = state.schema.edge_types[0].cardinality.unwrap();
        assert_eq!(c.max_out, 3, "node 1 has 3 distinct targets");
        assert_eq!(c.max_in, 2, "node 2 has 2 distinct sources");
    }

    #[test]
    fn folded_floor_survives_and_max_merges_with_observations() {
        use pg_model::Cardinality;
        let mut state = DiscoveryState::new();
        integrate_edge_clusters(&mut state, vec![edge_cluster("E", &[(1, 2)])], 0.9, true);
        let id = state.schema.edge_types[0].id;
        // A foreign shard claimed (3, 1) without shipping endpoints.
        state.edge_accums.get_mut(&id).unwrap().card_floor = Some(Cardinality {
            max_out: 3,
            max_in: 1,
        });
        compute_cardinalities(&mut state);
        let c = state.schema.edge_types[0].cardinality.unwrap();
        assert_eq!((c.max_out, c.max_in), (3, 1), "floor dominates (1,1)");

        // Only a floor, no endpoints at all.
        let mut floor_only = DiscoveryState::new();
        integrate_edge_clusters(&mut floor_only, vec![edge_cluster("F", &[])], 0.9, true);
        let fid = floor_only.schema.edge_types[0].id;
        floor_only.edge_accums.get_mut(&fid).unwrap().card_floor = Some(Cardinality {
            max_out: 2,
            max_in: 5,
        });
        compute_cardinalities(&mut floor_only);
        assert_eq!(
            floor_only.schema.edge_types[0].cardinality,
            Some(Cardinality {
                max_out: 2,
                max_in: 5
            })
        );
    }

    #[test]
    fn incremental_merge_grows_bounds() {
        let mut state = DiscoveryState::new();
        integrate_edge_clusters(&mut state, vec![edge_cluster("E", &[(1, 2)])], 0.9, true);
        compute_cardinalities(&mut state);
        assert_eq!(
            state.schema.edge_types[0].cardinality.unwrap().class(),
            CardinalityClass::OneToOne
        );
        // Second batch adds fan-out for the same type.
        integrate_edge_clusters(
            &mut state,
            vec![edge_cluster("E", &[(1, 3), (1, 4)])],
            0.9,
            true,
        );
        compute_cardinalities(&mut state);
        let c = state.schema.edge_types[0].cardinality.unwrap();
        assert_eq!(c.max_out, 3, "endpoints accumulate across batches");
    }
}
