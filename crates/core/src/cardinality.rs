//! Edge cardinality inference (§4.4, "Cardinalities").
//!
//! For every edge type ρ, compute the maximum number of distinct targets
//! per source (`max_out`) and distinct sources per target (`max_in`) over
//! the type's observed instances, and classify: `(1,1) → 0:1`,
//! `(>1,1) → N:1`, `(1,>1) → 0:N`, `(>1,>1) → M:N`. These are sound upper
//! bounds (§4.7); the exact lower bound would require scanning nodes
//! without edges, which the paper defers.

use crate::state::DiscoveryState;
use pg_model::{Cardinality, NodeId, TypeId};
use std::collections::{HashMap, HashSet};

/// Compute and store cardinalities for every edge type: the bounds
/// observed from the accumulated endpoint pairs, max-merged with the
/// accumulator's folded floor (a foreign schema's declared cardinality
/// whose endpoints are not available locally — see
/// `EdgeTypeAccum::card_floor`). Types with neither endpoints nor a
/// floor are left untouched.
pub fn compute_cardinalities(state: &mut DiscoveryState) {
    compute_cardinalities_cached(state, &mut CardCache::default());
}

/// Incremental degree bookkeeping for one edge type: the distinct
/// endpoint pairs seen so far, per-node distinct-neighbor counts, and
/// the running maxima — exactly the quantities [`max_degrees`] derives
/// from a full scan, maintained pair by pair instead.
///
/// The running maxima equal the full-scan maxima because degree counts
/// only ever grow: deduplicating through `seen` makes each count "the
/// number of distinct neighbors", and the maximum of a set of
/// monotonically growing counters is the final maximum.
#[derive(Debug, Default, Clone)]
struct TypeDegrees {
    /// How many of the accumulator's `endpoints` entries are folded in.
    watermark: usize,
    seen: HashSet<(NodeId, NodeId)>,
    out_count: HashMap<NodeId, u64>,
    in_count: HashMap<NodeId, u64>,
    max_out: u64,
    max_in: u64,
}

impl TypeDegrees {
    fn fold(&mut self, pairs: &[(NodeId, NodeId)]) {
        for &(s, t) in pairs {
            if !self.seen.insert((s, t)) {
                continue;
            }
            let out = self.out_count.entry(s).or_insert(0);
            *out += 1;
            self.max_out = self.max_out.max(*out);
            let inc = self.in_count.entry(t).or_insert(0);
            *inc += 1;
            self.max_in = self.max_in.max(*inc);
        }
    }
}

/// Cross-batch cardinality cache for an incremental session.
///
/// Endpoint lists in [`crate::state::EdgeTypeAccum`] are append-only
/// under batch ingest (`observe` pushes, `merge` extends), so the cache
/// folds in only the pairs past its per-type watermark on each
/// post-processing pass — O(new edges) per batch instead of a full
/// O(all edges) rescan. Any operation that may rebuild or rekey the
/// accumulators (a state fold / distributed merge, a restore) must
/// [`CardCache::invalidate`] the cache; the next pass then rebuilds it
/// with one full scan and is bit-identical to the uncached path.
#[derive(Debug, Default)]
pub struct CardCache {
    per_type: HashMap<TypeId, TypeDegrees>,
}

impl CardCache {
    /// Drop all cached degree state: the next computation rescans every
    /// endpoint list from scratch. Required after any mutation of the
    /// accumulators that is not append-only (merges, restores).
    pub fn invalidate(&mut self) {
        self.per_type.clear();
    }
}

/// [`compute_cardinalities`], incrementally: only endpoint pairs the
/// cache has not folded in yet are scanned. With an empty (or
/// invalidated) cache this degenerates to exactly the full scan.
///
/// Memory bound: in batch/incremental mode the cache's `seen` set and
/// degree maps are bounded by the number of **distinct** endpoint pairs
/// and nodes of the graph, not the instance stream — still O(graph),
/// which is why streaming sessions must not use it. A sketched
/// accumulator (streaming mode) takes the KMV estimation branch
/// instead: nothing is inserted into the cache, so server sessions in
/// stream mode hold no per-endpoint state at all.
pub fn compute_cardinalities_cached(state: &mut DiscoveryState, cache: &mut CardCache) {
    for t in &mut state.schema.edge_types {
        let Some(acc) = state.edge_accums.get(&t.id) else {
            continue;
        };
        let observed = if let Some(sk) = &acc.sketch {
            sk.cardinality_estimate()
        } else if acc.endpoints.is_empty() {
            None
        } else {
            let deg = cache.per_type.entry(t.id).or_default();
            if deg.watermark > acc.endpoints.len() {
                // The endpoint list shrank: the accumulator was rebuilt
                // behind our back. Resync defensively with a full scan.
                *deg = TypeDegrees::default();
            }
            deg.fold(&acc.endpoints[deg.watermark..]);
            deg.watermark = acc.endpoints.len();
            Some(Cardinality {
                max_out: deg.max_out,
                max_in: deg.max_in,
            })
        };
        match (observed, acc.card_floor) {
            (Some(o), Some(f)) => t.cardinality = Some(o.merge(&f)),
            (Some(o), None) => t.cardinality = Some(o),
            (None, Some(f)) => t.cardinality = Some(f),
            (None, None) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::EdgeCluster;
    use crate::extract::integrate_edge_clusters;
    use crate::state::EdgeTypeAccum;
    use pg_model::{CardinalityClass, Edge, LabelSet, NodeId};

    fn edge_cluster(label: &str, pairs: &[(u64, u64)]) -> EdgeCluster {
        let mut accum = EdgeTypeAccum::default();
        for (i, &(s, t)) in pairs.iter().enumerate() {
            accum.observe(&Edge::new(
                10_000 + i as u64,
                NodeId(s),
                NodeId(t),
                LabelSet::single(label),
            ));
        }
        EdgeCluster {
            labels: LabelSet::single(label),
            keys: Default::default(),
            src_labels: LabelSet::single("Person"),
            tgt_labels: LabelSet::single("Org"),
            accum,
        }
    }

    #[test]
    fn works_at_example_is_n_to_1() {
        // Example 8: many people → one org each; orgs have many employees.
        let mut state = DiscoveryState::new();
        integrate_edge_clusters(
            &mut state,
            vec![edge_cluster("WORKS_AT", &[(1, 100), (2, 100), (3, 100)])],
            0.9,
            true,
        );
        compute_cardinalities(&mut state);
        let t = &state.schema.edge_types[0];
        let c = t.cardinality.unwrap();
        assert_eq!(c.max_out, 1);
        assert_eq!(c.max_in, 3);
        assert_eq!(c.class(), CardinalityClass::OneToMany);
    }

    #[test]
    fn knows_example_is_m_to_n() {
        let mut state = DiscoveryState::new();
        integrate_edge_clusters(
            &mut state,
            vec![edge_cluster("KNOWS", &[(1, 2), (1, 3), (2, 1), (3, 1)])],
            0.9,
            true,
        );
        compute_cardinalities(&mut state);
        let c = state.schema.edge_types[0].cardinality.unwrap();
        assert_eq!(c.class(), CardinalityClass::ManyToMany);
    }

    #[test]
    fn upper_bound_soundness() {
        // §4.7: the recorded maxima are achieved by some instance.
        let pairs = [(1, 2), (1, 3), (1, 4), (5, 2)];
        let mut state = DiscoveryState::new();
        integrate_edge_clusters(&mut state, vec![edge_cluster("E", &pairs)], 0.9, true);
        compute_cardinalities(&mut state);
        let c = state.schema.edge_types[0].cardinality.unwrap();
        assert_eq!(c.max_out, 3, "node 1 has 3 distinct targets");
        assert_eq!(c.max_in, 2, "node 2 has 2 distinct sources");
    }

    #[test]
    fn folded_floor_survives_and_max_merges_with_observations() {
        use pg_model::Cardinality;
        let mut state = DiscoveryState::new();
        integrate_edge_clusters(&mut state, vec![edge_cluster("E", &[(1, 2)])], 0.9, true);
        let id = state.schema.edge_types[0].id;
        // A foreign shard claimed (3, 1) without shipping endpoints.
        state.edge_accums.get_mut(&id).unwrap().card_floor = Some(Cardinality {
            max_out: 3,
            max_in: 1,
        });
        compute_cardinalities(&mut state);
        let c = state.schema.edge_types[0].cardinality.unwrap();
        assert_eq!((c.max_out, c.max_in), (3, 1), "floor dominates (1,1)");

        // Only a floor, no endpoints at all.
        let mut floor_only = DiscoveryState::new();
        integrate_edge_clusters(&mut floor_only, vec![edge_cluster("F", &[])], 0.9, true);
        let fid = floor_only.schema.edge_types[0].id;
        floor_only.edge_accums.get_mut(&fid).unwrap().card_floor = Some(Cardinality {
            max_out: 2,
            max_in: 5,
        });
        compute_cardinalities(&mut floor_only);
        assert_eq!(
            floor_only.schema.edge_types[0].cardinality,
            Some(Cardinality {
                max_out: 2,
                max_in: 5
            })
        );
    }

    /// The cached incremental path must agree with [`max_degrees`]'
    /// full scan for any append sequence, including duplicate pairs and
    /// re-observations across batches.
    #[test]
    fn cached_degrees_match_full_scan_across_appends() {
        use pg_store::query::max_degrees;
        // A deterministic pseudo-random pair stream with heavy reuse so
        // duplicates, fan-out, and fan-in all occur.
        let mut x = 0x2545f4914f6cdd1du64;
        let mut pairs = Vec::new();
        for _ in 0..500 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            pairs.push((NodeId(x % 23), NodeId((x >> 32) % 17)));
        }
        let mut state = DiscoveryState::new();
        integrate_edge_clusters(&mut state, vec![edge_cluster("E", &[])], 0.9, true);
        let id = state.schema.edge_types[0].id;
        let mut cache = CardCache::default();
        // Feed the stream in uneven increments; after every batch the
        // cached bounds must equal a from-scratch full scan.
        for (i, chunk) in pairs.chunks(37).enumerate() {
            state
                .edge_accums
                .get_mut(&id)
                .unwrap()
                .endpoints
                .extend(chunk.iter().copied());
            compute_cardinalities_cached(&mut state, &mut cache);
            let cached = state.schema.edge_types[0].cardinality.unwrap();
            let full = max_degrees(state.edge_accums[&id].endpoints.iter().copied());
            assert_eq!(cached, full, "divergence after chunk {i}");
        }
        // Invalidation rebuilds to the same answer.
        cache.invalidate();
        compute_cardinalities_cached(&mut state, &mut cache);
        assert_eq!(
            state.schema.edge_types[0].cardinality.unwrap(),
            max_degrees(state.edge_accums[&id].endpoints.iter().copied()),
        );
    }

    /// A rebuilt (shrunk) endpoint list must not panic or leave stale
    /// maxima behind: the stale cache entry resyncs with a full scan.
    #[test]
    fn shrunken_endpoint_list_resyncs_the_cache() {
        let mut state = DiscoveryState::new();
        integrate_edge_clusters(
            &mut state,
            vec![edge_cluster("E", &[(1, 2), (1, 3), (1, 4)])],
            0.9,
            true,
        );
        let id = state.schema.edge_types[0].id;
        let mut cache = CardCache::default();
        compute_cardinalities_cached(&mut state, &mut cache);
        assert_eq!(state.schema.edge_types[0].cardinality.unwrap().max_out, 3);
        // Simulate an accumulator rebuilt by a merge the cache never
        // heard about.
        state.edge_accums.get_mut(&id).unwrap().endpoints = vec![(NodeId(9), NodeId(8))];
        compute_cardinalities_cached(&mut state, &mut cache);
        let c = state.schema.edge_types[0].cardinality.unwrap();
        assert_eq!((c.max_out, c.max_in), (1, 1));
    }

    #[test]
    fn incremental_merge_grows_bounds() {
        let mut state = DiscoveryState::new();
        integrate_edge_clusters(&mut state, vec![edge_cluster("E", &[(1, 2)])], 0.9, true);
        compute_cardinalities(&mut state);
        assert_eq!(
            state.schema.edge_types[0].cardinality.unwrap().class(),
            CardinalityClass::OneToOne
        );
        // Second batch adds fan-out for the same type.
        integrate_edge_clusters(
            &mut state,
            vec![edge_cluster("E", &[(1, 3), (1, 4)])],
            0.9,
            true,
        );
        compute_cardinalities(&mut state);
        let c = state.schema.edge_types[0].cardinality.unwrap();
        assert_eq!(c.max_out, 3, "endpoints accumulate across batches");
    }
}
