//! Context refinement — the paper's future-work item (b): "detect types
//! that share identical type patterns but lack distinguishing labels"
//! (§6).
//!
//! Structure-only clustering cannot separate two unlabeled types whose
//! instances carry the same property keys. Their *graph context* often
//! can: a `Person`-shaped node that only receives `WORKS_AT` edges is
//! not the same type as one that only receives `FOLLOWS` edges. This
//! pass re-examines each ABSTRACT node type and splits it when its
//! members fall into clearly distinct context groups, where a member's
//! context signature is the set of `(edge label set, direction)` pairs
//! over its incident edges.
//!
//! The pass is **opt-in and runs after discovery**: a split refines the
//! schema rather than extending it, so it deliberately steps outside the
//! monotone chain of §4.6 (rerun post-processing afterwards to refresh
//! constraints).

use crate::state::{DiscoveryState, NodeTypeAccum};
use pg_model::{NodeType, PropertyGraph, TypeId};
use std::collections::{BTreeMap, BTreeSet};

/// Settings for the refinement pass.
#[derive(Debug, Clone, Copy)]
pub struct RefineConfig {
    /// Only types with at least this many members are examined.
    pub min_members: usize,
    /// A context group must hold at least this fraction of the type's
    /// members to be split out (guards against noise-induced slivers).
    pub min_group_fraction: f64,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig {
            min_members: 4,
            min_group_fraction: 0.2,
        }
    }
}

/// Outcome of one refinement pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefineReport {
    /// Types examined (abstract, large enough).
    pub examined: usize,
    /// Types split, with the number of resulting parts.
    pub splits: Vec<(TypeId, usize)>,
}

/// A member's context signature: incident `(edge label set rendering,
/// direction)` pairs. Out = true.
fn context_signature(graph: &PropertyGraph, node: pg_model::NodeId) -> BTreeSet<(String, bool)> {
    let mut sig = BTreeSet::new();
    for e in graph.out_edges(node) {
        sig.insert((e.labels.to_string(), true));
    }
    for e in graph.in_edges(node) {
        sig.insert((e.labels.to_string(), false));
    }
    sig
}

/// Split ABSTRACT node types whose members exhibit distinct graph
/// contexts. Returns what happened; rerun constraint/data-type inference
/// afterwards (the new types carry freshly rebuilt accumulators).
pub fn refine_abstract_types(
    state: &mut DiscoveryState,
    graph: &PropertyGraph,
    cfg: RefineConfig,
) -> RefineReport {
    let mut report = RefineReport::default();
    let candidates: Vec<TypeId> = state
        .schema
        .node_types
        .iter()
        .filter(|t| t.is_abstract)
        .map(|t| t.id)
        .collect();

    for tid in candidates {
        let Some(accum) = state.node_accums.get(&tid) else {
            continue;
        };
        if accum.members.len() < cfg.min_members {
            continue;
        }
        report.examined += 1;

        // Group members by context signature. Members not present in
        // this graph (e.g. earlier batches) keep the original type.
        let mut groups: BTreeMap<BTreeSet<(String, bool)>, Vec<pg_model::NodeId>> = BTreeMap::new();
        let mut absent: Vec<pg_model::NodeId> = Vec::new();
        for &m in &accum.members {
            if graph.node(m).is_some() {
                groups
                    .entry(context_signature(graph, m))
                    .or_default()
                    .push(m);
            } else {
                absent.push(m);
            }
        }
        let total: usize = groups.values().map(Vec::len).sum();
        if total == 0 {
            continue;
        }
        let threshold = ((total as f64) * cfg.min_group_fraction).ceil() as usize;
        let (big, small): (Vec<_>, Vec<_>) = groups
            .into_values()
            .partition(|g| g.len() >= threshold.max(1));
        if big.len() < 2 {
            continue; // context does not separate this type
        }

        // Split: the largest group (plus sub-threshold slivers and
        // absent members) keeps the original id; every other big group
        // becomes a fresh ABSTRACT type with a rebuilt accumulator.
        let mut big = big;
        big.sort_by_key(|g| std::cmp::Reverse(g.len()));
        let mut keep: Vec<pg_model::NodeId> = big.remove(0);
        keep.extend(small.into_iter().flatten());
        keep.extend(absent);

        let template = state
            .schema
            .node_types
            .iter()
            .find(|t| t.id == tid)
            .expect("candidate exists")
            .clone();

        // Rebuild the kept accumulator from scratch.
        let rebuilt = rebuild_accum(graph, &keep, state.node_accums.get(&tid));
        let kept_count = rebuilt.count;
        state.node_accums.insert(tid, rebuilt);
        if let Some(t) = state.schema.node_types.iter_mut().find(|t| t.id == tid) {
            t.instance_count = kept_count;
        }

        let mut parts = 1;
        for group in big {
            let accum = rebuild_accum(graph, &group, None);
            let mut t = NodeType::new(
                TypeId(0),
                template.labels.clone(),
                accum.key_present.keys().cloned(),
            );
            t.is_abstract = true;
            t.instance_count = accum.count;
            let new_id = state.schema.push_node_type(t);
            state.node_accums.insert(new_id, accum);
            parts += 1;
        }
        report.splits.push((tid, parts));
    }
    report
}

/// Rebuild an accumulator by re-observing members from the graph;
/// members absent from the graph fall back to bare membership (their
/// property statistics came from an earlier batch and are approximated
/// by the old accumulator's marginal rates — we keep them as members
/// only, which under-counts presence and therefore never produces an
/// unsound MANDATORY).
fn rebuild_accum(
    graph: &PropertyGraph,
    members: &[pg_model::NodeId],
    _old: Option<&NodeTypeAccum>,
) -> NodeTypeAccum {
    let mut accum = NodeTypeAccum::default();
    for &m in members {
        match graph.node(m) {
            Some(node) => accum.observe(node),
            None => {
                accum.count += 1;
                accum.members.push(m);
            }
        }
    }
    accum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HiveConfig, PgHive};
    use pg_model::{Edge, LabelSet, Node, NodeId};

    /// Two unlabeled "sensor"-shaped types with identical properties:
    /// one kind emits MEASURES edges, the other receives CONTROLS edges.
    fn ambiguous_graph(n: u64) -> PropertyGraph {
        let mut g = PropertyGraph::new();
        for i in 0..n {
            g.add_node(Node::new(i, LabelSet::empty()).with_prop("serial", i as i64))
                .unwrap();
            g.add_node(Node::new(100 + i, LabelSet::empty()).with_prop("serial", i as i64))
                .unwrap();
            g.add_node(Node::new(200 + i, LabelSet::single("Hub")).with_prop("name", "h"))
                .unwrap();
        }
        for i in 0..n {
            g.add_edge(Edge::new(
                1000 + i,
                NodeId(i),
                NodeId(200 + i),
                LabelSet::single("MEASURES"),
            ))
            .unwrap();
            g.add_edge(Edge::new(
                2000 + i,
                NodeId(200 + i),
                NodeId(100 + i),
                LabelSet::single("CONTROLS"),
            ))
            .unwrap();
        }
        g
    }

    #[test]
    fn splits_structurally_identical_unlabeled_types_by_context() {
        let g = ambiguous_graph(10);
        let mut result = PgHive::new(HiveConfig::default()).discover_graph(&g);
        // Structure alone cannot separate the two sensor kinds: they end
        // up in one ABSTRACT type.
        let abstract_before: Vec<_> = result
            .schema
            .node_types
            .iter()
            .filter(|t| t.is_abstract)
            .collect();
        assert_eq!(abstract_before.len(), 1);
        assert_eq!(result.state.node_accums[&abstract_before[0].id].count, 20);

        let report = refine_abstract_types(&mut result.state, &g, RefineConfig::default());
        assert_eq!(report.examined, 1);
        assert_eq!(report.splits.len(), 1);
        assert_eq!(report.splits[0].1, 2, "split into two parts");

        let abstract_after: Vec<_> = result
            .state
            .schema
            .node_types
            .iter()
            .filter(|t| t.is_abstract)
            .collect();
        assert_eq!(abstract_after.len(), 2);
        // The split is clean: 10 + 10.
        let mut sizes: Vec<u64> = abstract_after
            .iter()
            .map(|t| result.state.node_accums[&t.id].count)
            .collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![10, 10]);
        // No member lost.
        let total: usize = result
            .state
            .node_accums
            .values()
            .map(|a| a.members.len())
            .sum();
        assert_eq!(total, g.node_count());
    }

    #[test]
    fn uniform_context_is_not_split() {
        // One unlabeled type whose members all have the same context.
        let mut g = PropertyGraph::new();
        for i in 0..10u64 {
            g.add_node(Node::new(i, LabelSet::empty()).with_prop("x", 1i64))
                .unwrap();
            g.add_node(Node::new(100 + i, LabelSet::single("Hub")))
                .unwrap();
            g.add_edge(Edge::new(
                1000 + i,
                NodeId(i),
                NodeId(100 + i),
                LabelSet::single("E"),
            ))
            .unwrap();
        }
        let mut result = PgHive::new(HiveConfig::default()).discover_graph(&g);
        let before = result.schema.node_types.len();
        let report = refine_abstract_types(&mut result.state, &g, RefineConfig::default());
        assert!(report.splits.is_empty());
        assert_eq!(result.state.schema.node_types.len(), before);
    }

    #[test]
    fn labeled_types_are_never_touched() {
        let g = ambiguous_graph(5);
        let mut result = PgHive::new(HiveConfig::default()).discover_graph(&g);
        let hub_before = result
            .schema
            .node_types
            .iter()
            .find(|t| t.labels.contains("Hub"))
            .unwrap()
            .clone();
        refine_abstract_types(&mut result.state, &g, RefineConfig::default());
        let hub_after = result
            .state
            .schema
            .node_types
            .iter()
            .find(|t| t.labels.contains("Hub"))
            .unwrap();
        assert_eq!(&hub_before, hub_after);
    }

    #[test]
    fn small_types_are_skipped() {
        let g = ambiguous_graph(1); // 2 members < min_members
        let mut result = PgHive::new(HiveConfig::default()).discover_graph(&g);
        let report = refine_abstract_types(&mut result.state, &g, RefineConfig::default());
        assert_eq!(report.examined, 0);
    }
}
