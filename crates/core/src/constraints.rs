//! Mandatory/optional property constraints (§4.4, "Property
//! constraints").
//!
//! A property `p` is MANDATORY for type `T` iff `f_T(p) = 1`, i.e. it
//! appears in every instance of `T`; otherwise it is OPTIONAL. Soundness
//! (§4.7): every property marked mandatory is indeed present in every
//! observed instance, by construction of the presence counts.

use crate::state::DiscoveryState;
use pg_model::Presence;

/// Infer presence constraints for every type in the state and write them
/// into the schema's property specs.
pub fn infer_property_constraints(state: &mut DiscoveryState) {
    for t in &mut state.schema.node_types {
        let Some(acc) = state.node_accums.get(&t.id) else {
            continue;
        };
        for (key, spec) in t.properties.iter_mut() {
            let present = acc.key_present.get(key).copied().unwrap_or(0);
            spec.presence = Some(if present == acc.count && acc.count > 0 {
                Presence::Mandatory
            } else {
                Presence::Optional
            });
        }
    }
    for t in &mut state.schema.edge_types {
        let Some(acc) = state.edge_accums.get(&t.id) else {
            continue;
        };
        for (key, spec) in t.properties.iter_mut() {
            let present = acc.key_present.get(key).copied().unwrap_or(0);
            spec.presence = Some(if present == acc.count && acc.count > 0 {
                Presence::Mandatory
            } else {
                Presence::Optional
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::NodeCluster;
    use crate::extract::integrate_node_clusters;
    use crate::state::NodeTypeAccum;
    use pg_model::{LabelSet, Node};
    use std::collections::BTreeSet;

    #[test]
    fn mandatory_iff_present_in_all_instances() {
        // Example 6: Person{name,gender,bday} everywhere → mandatory;
        // Post.imgFile only sometimes → optional.
        let mut accum = NodeTypeAccum::default();
        accum.observe(
            &Node::new(1, LabelSet::single("Post"))
                .with_prop("content", "a")
                .with_prop("imgFile", "x.png"),
        );
        accum.observe(&Node::new(2, LabelSet::single("Post")).with_prop("content", "b"));
        let cluster = NodeCluster {
            labels: LabelSet::single("Post"),
            keys: ["content", "imgFile"]
                .iter()
                .map(|k| pg_model::sym(k))
                .collect::<BTreeSet<_>>(),
            accum,
        };
        let mut state = DiscoveryState::new();
        integrate_node_clusters(&mut state, vec![cluster], 0.9);
        infer_property_constraints(&mut state);
        let t = &state.schema.node_types[0];
        assert_eq!(
            t.properties[&pg_model::sym("content")].presence,
            Some(Presence::Mandatory)
        );
        assert_eq!(
            t.properties[&pg_model::sym("imgFile")].presence,
            Some(Presence::Optional)
        );
    }

    #[test]
    fn soundness_every_mandatory_key_is_in_every_instance() {
        // Randomized-ish structure; check the §4.7 soundness claim.
        let mut accum = NodeTypeAccum::default();
        let mut nodes = Vec::new();
        for i in 0..20u64 {
            let mut n = Node::new(i, LabelSet::single("T")).with_prop("always", 1i64);
            if i % 3 == 0 {
                n = n.with_prop("sometimes", 2i64);
            }
            accum.observe(&n);
            nodes.push(n);
        }
        let cluster = NodeCluster {
            labels: LabelSet::single("T"),
            keys: ["always", "sometimes"]
                .iter()
                .map(|k| pg_model::sym(k))
                .collect(),
            accum,
        };
        let mut state = DiscoveryState::new();
        integrate_node_clusters(&mut state, vec![cluster], 0.9);
        infer_property_constraints(&mut state);
        let t = &state.schema.node_types[0];
        for (key, spec) in &t.properties {
            if spec.presence == Some(Presence::Mandatory) {
                assert!(
                    nodes.iter().all(|n| n.props.contains_key(key)),
                    "{key} marked mandatory but missing somewhere"
                );
            }
        }
        assert_eq!(
            t.properties[&pg_model::sym("sometimes")].presence,
            Some(Presence::Optional)
        );
    }
}
