//! Shared test/demo fixtures. Kept in the library (not `#[cfg(test)]`)
//! so unit tests, the integration suites, and the golden-snapshot test
//! all construct the paper's running example identically.

use pg_model::{Edge, LabelSet, Node, NodeId, PropertyGraph};

/// The paper's Figure 1 running example: Person/Org/Post/Place nodes
/// (with the unlabeled-but-structurally-Person "Alice") and the
/// KNOWS/LIKES/WORKS_AT/LOCATED_IN edges.
pub fn figure1() -> PropertyGraph {
    let mut g = PropertyGraph::new();
    g.add_node(
        Node::new(1, LabelSet::single("Person"))
            .with_prop("name", "Bob")
            .with_prop("gender", "m")
            .with_prop("bday", pg_model::Date::new(1999, 12, 19).unwrap()),
    )
    .unwrap();
    g.add_node(
        Node::new(2, LabelSet::single("Person"))
            .with_prop("name", "John")
            .with_prop("gender", "m")
            .with_prop("bday", pg_model::Date::new(1985, 3, 2).unwrap()),
    )
    .unwrap();
    // Alice: unlabeled but structurally a Person.
    g.add_node(
        Node::new(3, LabelSet::empty())
            .with_prop("name", "Alice")
            .with_prop("gender", "f")
            .with_prop("bday", pg_model::Date::new(2000, 1, 1).unwrap()),
    )
    .unwrap();
    g.add_node(
        Node::new(4, LabelSet::single("Org"))
            .with_prop("name", "FORTH")
            .with_prop("url", "ics.forth.gr"),
    )
    .unwrap();
    g.add_node(Node::new(5, LabelSet::single("Post")).with_prop("imgFile", "x.png"))
        .unwrap();
    g.add_node(Node::new(6, LabelSet::single("Post")).with_prop("content", "hello"))
        .unwrap();
    g.add_node(Node::new(7, LabelSet::single("Place")).with_prop("name", "Heraklion"))
        .unwrap();
    g.add_edge(
        Edge::new(10, NodeId(3), NodeId(2), LabelSet::single("KNOWS")).with_prop("since", 2015i64),
    )
    .unwrap();
    g.add_edge(Edge::new(
        11,
        NodeId(1),
        NodeId(2),
        LabelSet::single("KNOWS"),
    ))
    .unwrap();
    g.add_edge(Edge::new(
        12,
        NodeId(3),
        NodeId(5),
        LabelSet::single("LIKES"),
    ))
    .unwrap();
    g.add_edge(
        Edge::new(13, NodeId(1), NodeId(4), LabelSet::single("WORKS_AT"))
            .with_prop("from", 2019i64),
    )
    .unwrap();
    g.add_edge(Edge::new(
        14,
        NodeId(1),
        NodeId(7),
        LabelSet::single("LOCATED_IN"),
    ))
    .unwrap();
    g
}
