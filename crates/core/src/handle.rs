//! Thread-safe live-session handle used by the serving layer.
//!
//! A [`SharedSession`] wraps a [`HiveSession`] behind a mutex together
//! with everything a *stream* (as opposed to a file) needs on top of the
//! batch pipeline:
//!
//! * a cumulative `NodeId → LabelSet` index so edge endpoint labels can
//!   be resolved against every node seen so far (the offline loader
//!   resolves against the full graph; a live session can only resolve
//!   against history),
//! * duplicate-element tracking with the same quarantine semantics the
//!   offline lenient loaders apply,
//! * a content-addressed [`SchemaHistory`] driven after every batch,
//! * a panic boundary: if the discovery engine panics mid-batch the
//!   session is marked broken (its in-memory state can no longer be
//!   trusted) instead of poisoning the lock — callers get a structured
//!   error and the last durable checkpoint stays authoritative.
//!
//! All of the stream-side state ([`SessionAux`]) is serializable so a
//! serving process can persist it next to the engine's
//! [`SessionCheckpoint`] and restore the whole handle bit-identically.

use crate::config::HiveConfig;
use crate::incremental::{BatchTiming, HiveSession, SessionCheckpoint};
use crate::serialize::{SchemaHistory, SchemaVersion};
use pg_model::{LabelSet, ModelError, SchemaGraph};
use pg_store::jsonl::Element;
use pg_store::{EdgeRecord, ErrorPolicy, NodeRecord, Quarantine};
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Why an ingest call did not apply its batch.
#[derive(Debug, Clone, PartialEq)]
pub enum IngestError {
    /// The error policy aborted the batch (Strict, or a Cap exceeded).
    /// Nothing was applied: session state is exactly as before the call.
    Rejected(ModelError),
    /// The discovery engine panicked while processing this batch; the
    /// in-memory session state is no longer trustworthy and the session
    /// refuses further work. Resume from the last durable checkpoint.
    Engine(String),
    /// The session was already marked broken by an earlier engine
    /// failure.
    Broken(String),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Rejected(e) => write!(f, "batch rejected: {e}"),
            IngestError::Engine(m) => write!(f, "discovery engine failed: {m}"),
            IngestError::Broken(m) => {
                write!(f, "session is broken (earlier engine failure: {m})")
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// Result of one applied ingest batch.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestOutcome {
    /// 0-based batch index the elements were processed as.
    pub batch_index: usize,
    /// Nodes accepted into the batch.
    pub nodes: usize,
    /// Edges accepted into the batch.
    pub edges: usize,
    /// Elements diverted to the quarantine by this call.
    pub quarantined: usize,
    /// Schema version after the batch.
    pub version: u64,
    /// Schema content hash (hex) after the batch.
    pub hash: String,
    /// Whether the batch changed the schema (minted a new version).
    pub changed: bool,
    /// Engine timing for the batch.
    pub timing: BatchTiming,
}

/// Result of one applied shard-state merge.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeOutcome {
    /// Schema version after the merge.
    pub version: u64,
    /// Schema content hash (hex) after the merge.
    pub hash: String,
    /// Whether the merge changed the schema (minted a new version).
    pub changed: bool,
    /// Node types in the schema after the merge.
    pub node_types: usize,
    /// Edge types in the schema after the merge.
    pub edge_types: usize,
}

/// Result of a version lookup in the session's history.
#[derive(Debug, Clone, PartialEq)]
pub enum VersionLookup {
    /// The version is retained; here is its entry.
    Found(SchemaVersion),
    /// The version existed but was evicted from the bounded history.
    Evicted,
    /// The version was never assigned.
    NeverExisted,
}

/// Serializable stream-side state of a [`SharedSession`] — everything
/// beyond the engine's own [`SessionCheckpoint`] that a restart needs to
/// be bit-identical: version history, the endpoint-label index, and the
/// duplicate-tracking sets.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SessionAux {
    /// Content-addressed schema version history.
    pub history: SchemaHistory,
    /// Cumulative `NodeId → LabelSet` index (pair list for stable JSON).
    pub node_labels: Vec<(u64, LabelSet)>,
    /// Edge ids seen so far (duplicate detection).
    pub seen_edges: Vec<u64>,
}

struct Inner {
    session: HiveSession,
    history: SchemaHistory,
    node_labels: HashMap<u64, LabelSet>,
    seen_edges: HashSet<u64>,
    broken: Option<String>,
}

/// A mutex-guarded live discovery session. See the module docs.
pub struct SharedSession {
    inner: Mutex<Inner>,
}

impl SharedSession {
    /// Start an empty session retaining at most `retain` schema versions.
    pub fn new(config: HiveConfig, retain: usize) -> SharedSession {
        let mut history = SchemaHistory::new(retain);
        let session = HiveSession::new(config);
        // Version 1 is the empty schema: a session is pollable (and
        // diffable-from) before its first batch arrives.
        history.observe(session.schema());
        SharedSession {
            inner: Mutex::new(Inner {
                session,
                history,
                node_labels: HashMap::new(),
                seen_edges: HashSet::new(),
                broken: None,
            }),
        }
    }

    /// Restore a session from its engine checkpoint plus stream-side
    /// state, continuing batch numbering and the version counter.
    /// Fails if the checkpoint's accumulator mode does not match the
    /// mode the configuration implies (see [`HiveSession::restore`]).
    pub fn restore(
        config: HiveConfig,
        checkpoint: SessionCheckpoint,
        aux: SessionAux,
    ) -> Result<Self, crate::incremental::ModeMismatch> {
        Ok(SharedSession {
            inner: Mutex::new(Inner {
                session: HiveSession::restore(config, checkpoint)?,
                history: aux.history,
                node_labels: aux.node_labels.into_iter().collect(),
                seen_edges: aux.seen_edges.into_iter().collect(),
                broken: None,
            }),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // The engine panic boundary in `ingest` means no code path
        // panics while holding the lock, so poisoning is unreachable;
        // recover defensively anyway rather than propagating a panic
        // into a serving thread.
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Ingest one batch of parsed JSONL elements (with their 1-based
    /// line numbers) under `policy`.
    ///
    /// Semantic dirt — duplicate node/edge ids, edges whose endpoints
    /// were never seen (neither in history nor earlier in this batch) —
    /// is diverted to `quarantine` with the same reasons the offline
    /// lenient loaders produce. Edges may precede their endpoints
    /// *within* a batch (they are buffered, like the offline JSONL
    /// loader), but not across batches: a stream cannot wait forever.
    ///
    /// The batch is transactional: if the policy aborts, no element of
    /// the batch reaches the engine and the session is unchanged.
    pub fn ingest(
        &self,
        elements: Vec<(usize, Element)>,
        policy: ErrorPolicy,
        quarantine: &mut Quarantine,
        source: &str,
    ) -> Result<IngestOutcome, IngestError> {
        let mut inner = self.lock();
        if let Some(m) = &inner.broken {
            return Err(IngestError::Broken(m.clone()));
        }
        let before_quarantine = quarantine.len();

        // Stage: semantic checks against cumulative + staged state. A
        // pre-resolved edge carries its endpoint labels (resolved by a
        // cluster coordinator against the *global* node index), so it
        // skips the local endpoint lookup entirely.
        let mut staged_nodes: Vec<NodeRecord> = Vec::new();
        let mut staged_labels: HashMap<u64, LabelSet> = HashMap::new();
        // (source line, edge, pre-resolved endpoint labels if any)
        type PendingEdge = (usize, pg_model::Edge, Option<(LabelSet, LabelSet)>);
        let mut pending_edges: Vec<PendingEdge> = Vec::new();
        let divert = |q: &mut Quarantine, line: usize, err: ModelError, raw: String| {
            q.divert(policy, source, line, err.to_string(), &raw)
                .map_err(IngestError::Rejected)
        };
        // Elements are consumed by value: records move into the staging
        // buffers instead of deep-cloning every property map, which is
        // the per-row cost that dominates a serialized ingest stream.
        for (line, el) in elements {
            match el {
                Element::Node(n) => {
                    let id = n.id.0;
                    if inner.node_labels.contains_key(&id) || staged_labels.contains_key(&id) {
                        divert(
                            quarantine,
                            line,
                            ModelError::DuplicateNode { node: id },
                            render(&Element::Node(n)),
                        )?;
                    } else {
                        staged_labels.insert(id, n.labels.clone());
                        staged_nodes.push(n);
                    }
                }
                Element::Edge(e) => pending_edges.push((line, e, None)),
                Element::ResolvedEdge(r) => {
                    pending_edges.push((line, r.edge, Some((r.src_labels, r.tgt_labels))))
                }
            }
        }
        let mut staged_edges: Vec<EdgeRecord> = Vec::new();
        let mut staged_edge_ids: HashSet<u64> = HashSet::new();
        for (line, e, resolved) in pending_edges {
            let id = e.id.0;
            let rerender =
                |e: pg_model::Edge, resolved: &Option<(LabelSet, LabelSet)>| match resolved {
                    Some((s, t)) => render(&Element::ResolvedEdge(EdgeRecord {
                        edge: e,
                        src_labels: s.clone(),
                        tgt_labels: t.clone(),
                    })),
                    None => render(&Element::Edge(e)),
                };
            if inner.seen_edges.contains(&id) || staged_edge_ids.contains(&id) {
                divert(
                    quarantine,
                    line,
                    ModelError::DuplicateEdge { edge: id },
                    rerender(e, &resolved),
                )?;
                continue;
            }
            let (src_labels, tgt_labels) = if let Some(pair) = resolved {
                pair
            } else {
                let lookup = |nid: pg_model::NodeId| -> Option<LabelSet> {
                    staged_labels
                        .get(&nid.0)
                        .or_else(|| inner.node_labels.get(&nid.0))
                        .cloned()
                };
                match (lookup(e.src), lookup(e.tgt)) {
                    (Some(s), Some(t)) => (s, t),
                    (None, _) => {
                        divert(
                            quarantine,
                            line,
                            ModelError::DanglingEndpoint { node: e.src.0 },
                            render(&Element::Edge(e)),
                        )?;
                        continue;
                    }
                    (_, None) => {
                        divert(
                            quarantine,
                            line,
                            ModelError::DanglingEndpoint { node: e.tgt.0 },
                            render(&Element::Edge(e)),
                        )?;
                        continue;
                    }
                }
            };
            staged_edge_ids.insert(id);
            staged_edges.push(EdgeRecord {
                edge: e,
                src_labels,
                tgt_labels,
            });
        }

        // Commit: run the engine inside a panic boundary, then fold the
        // staged stream state in.
        let inner = &mut *inner;
        let timing = match catch_unwind(AssertUnwindSafe(|| {
            inner.session.process_batch(&staged_nodes, &staged_edges)
        })) {
            Ok(t) => t,
            Err(panic) => {
                let msg = panic_message(panic);
                inner.broken = Some(msg.clone());
                return Err(IngestError::Engine(msg));
            }
        };
        inner.node_labels.extend(staged_labels);
        inner.seen_edges.extend(staged_edge_ids);
        let (version, changed) = inner.history.observe(inner.session.schema());
        let hash = inner
            .history
            .current()
            .map(|v| v.hash.clone())
            .unwrap_or_default();
        Ok(IngestOutcome {
            batch_index: timing.batch_index,
            nodes: staged_nodes.len(),
            edges: staged_edges.len(),
            quarantined: quarantine.len() - before_quarantine,
            version,
            hash,
            changed,
            timing,
        })
    }

    /// Fold a foreign shard's discovery state into the live session
    /// (distributed discovery, §4.6) and record the resulting schema in
    /// the version history. Runs under the same panic boundary as
    /// [`SharedSession::ingest`]: an engine panic marks the session
    /// broken instead of poisoning the lock.
    pub fn merge_state(
        &self,
        foreign: &crate::state::DiscoveryState,
    ) -> Result<MergeOutcome, IngestError> {
        let mut inner = self.lock();
        if let Some(m) = &inner.broken {
            return Err(IngestError::Broken(m.clone()));
        }
        let inner = &mut *inner;
        if let Err(panic) = catch_unwind(AssertUnwindSafe(|| inner.session.merge_state(foreign))) {
            let msg = panic_message(panic);
            inner.broken = Some(msg.clone());
            return Err(IngestError::Engine(msg));
        }
        let (version, changed) = inner.history.observe(inner.session.schema());
        let hash = inner
            .history
            .current()
            .map(|v| v.hash.clone())
            .unwrap_or_default();
        let schema = inner.session.schema();
        Ok(MergeOutcome {
            version,
            hash,
            changed,
            node_types: schema.node_types.len(),
            edge_types: schema.edge_types.len(),
        })
    }

    /// Snapshot the current schema.
    pub fn schema(&self) -> SchemaGraph {
        self.lock().session.schema().clone()
    }

    /// Snapshot the full discovery state as a serializable
    /// [`crate::merge::ShardState`] — schema plus accumulators, the
    /// exchange format of exact cluster merge-on-read. Refused for
    /// broken sessions: their in-memory state must not be exported.
    pub fn shard_state(&self) -> Result<crate::merge::ShardState, IngestError> {
        let inner = self.lock();
        if let Some(m) = &inner.broken {
            return Err(IngestError::Broken(m.clone()));
        }
        Ok(crate::merge::ShardState::from_state(inner.session.state()))
    }

    /// Current `(version, content-hash-hex)`.
    pub fn version_info(&self) -> (u64, String) {
        let inner = self.lock();
        match inner.history.current() {
            Some(v) => (v.version, v.hash.clone()),
            None => (
                0,
                crate::serialize::content_hash_hex(inner.session.schema()),
            ),
        }
    }

    /// Look up a historical version.
    pub fn lookup_version(&self, version: u64) -> VersionLookup {
        let inner = self.lock();
        match inner.history.get(version) {
            Some(v) => VersionLookup::Found(v.clone()),
            None if inner.history.existed(version) => VersionLookup::Evicted,
            None => VersionLookup::NeverExisted,
        }
    }

    /// Batches applied so far (including restored ones).
    pub fn batches_processed(&self) -> usize {
        self.lock().session.batches_processed()
    }

    /// Nodes seen so far (size of the endpoint-label index).
    pub fn nodes_seen(&self) -> usize {
        self.lock().node_labels.len()
    }

    /// Edges seen so far.
    pub fn edges_seen(&self) -> usize {
        self.lock().seen_edges.len()
    }

    /// The broken-marker message, if the engine failed earlier.
    pub fn broken(&self) -> Option<String> {
        self.lock().broken.clone()
    }

    /// Estimated engine-side memory (accumulators + memoization
    /// stores), for the server's per-session `/metrics` gauges.
    pub fn memory_stats(&self) -> crate::incremental::SessionMemoryStats {
        self.lock().session.memory_stats()
    }

    /// Export the engine checkpoint plus stream-side state for durable
    /// persistence. Refused for broken sessions: their in-memory state
    /// must not overwrite the last good checkpoint.
    pub fn export(&self) -> Result<(SessionCheckpoint, SessionAux), IngestError> {
        let inner = self.lock();
        if let Some(m) = &inner.broken {
            return Err(IngestError::Broken(m.clone()));
        }
        let mut node_labels: Vec<(u64, LabelSet)> = inner
            .node_labels
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        node_labels.sort_by_key(|(k, _)| *k);
        let mut seen_edges: Vec<u64> = inner.seen_edges.iter().copied().collect();
        seen_edges.sort_unstable();
        Ok((
            inner.session.checkpoint(),
            SessionAux {
                history: inner.history.clone(),
                node_labels,
                seen_edges,
            },
        ))
    }
}

fn render(el: &Element) -> String {
    serde_json::to_string(el).unwrap_or_else(|_| "<unrenderable element>".to_owned())
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_model::{Edge, LabelSet, Node, NodeId};

    fn node(id: u64, label: &str) -> (usize, Element) {
        (
            id as usize,
            Element::Node(Node::new(id, LabelSet::single(label)).with_prop("k", id as i64)),
        )
    }

    fn edge(id: u64, src: u64, tgt: u64) -> (usize, Element) {
        (
            id as usize,
            Element::Edge(Edge::new(
                id,
                NodeId(src),
                NodeId(tgt),
                LabelSet::single("R"),
            )),
        )
    }

    fn quick_config() -> HiveConfig {
        let mut c = HiveConfig::default();
        if let crate::config::EmbeddingKind::Word2Vec(ref mut w) = c.embedding {
            w.dim = 5;
            w.epochs = 2;
        }
        c
    }

    #[test]
    fn ingest_resolves_edges_against_history() {
        let s = SharedSession::new(quick_config(), 8);
        let mut q = Quarantine::new();
        // Batch 1: nodes only.
        let out = s
            .ingest(
                vec![node(1, "A"), node(2, "B")],
                ErrorPolicy::Skip,
                &mut q,
                "t",
            )
            .unwrap();
        assert_eq!(out.nodes, 2);
        assert_eq!(out.batch_index, 0);
        // Batch 2: an edge whose endpoints arrived in batch 1.
        let out = s
            .ingest(vec![edge(10, 1, 2)], ErrorPolicy::Skip, &mut q, "t")
            .unwrap();
        assert_eq!(out.edges, 1);
        assert!(q.is_empty());
        let schema = s.schema();
        let et = &schema.edge_types[0];
        assert_eq!(et.src_labels, LabelSet::single("A"));
        assert_eq!(et.tgt_labels, LabelSet::single("B"));
    }

    #[test]
    fn duplicates_and_dangling_edges_are_quarantined() {
        let s = SharedSession::new(quick_config(), 8);
        let mut q = Quarantine::new();
        s.ingest(vec![node(1, "A")], ErrorPolicy::Skip, &mut q, "t")
            .unwrap();
        let out = s
            .ingest(
                vec![node(1, "A"), edge(10, 1, 999), edge(10, 1, 1)],
                ErrorPolicy::Skip,
                &mut q,
                "t",
            )
            .unwrap();
        // Duplicate node and dangling edge are diverted. The second
        // edge reuses id 10, but the first never got past quarantine,
        // so the id was never marked seen and the self-loop goes in.
        assert_eq!(out.nodes, 0);
        assert_eq!(out.edges, 1);
        assert_eq!(out.quarantined, 2);
        assert!(q.entries()[0].reason.contains("duplicate node id 1"));
        assert!(q.entries()[1].reason.contains("unknown node id 999"));

        // Re-sending the surviving edge id now IS a duplicate.
        let out = s
            .ingest(vec![edge(10, 1, 1)], ErrorPolicy::Skip, &mut q, "t")
            .unwrap();
        assert_eq!(out.edges, 0);
        assert!(q.entries()[2].reason.contains("duplicate edge id 10"));
    }

    #[test]
    fn resolved_edges_apply_without_local_endpoints() {
        use pg_store::EdgeRecord;
        let s = SharedSession::new(quick_config(), 8);
        let mut q = Quarantine::new();
        // Neither endpoint was ever ingested here — the labels ride on
        // the record, as a cluster coordinator would ship them.
        let rec = EdgeRecord {
            edge: Edge::new(5, NodeId(100), NodeId(200), LabelSet::single("R")),
            src_labels: LabelSet::single("A"),
            tgt_labels: LabelSet::single("B"),
        };
        let out = s
            .ingest(
                vec![(1, Element::ResolvedEdge(rec.clone()))],
                ErrorPolicy::Skip,
                &mut q,
                "t",
            )
            .unwrap();
        assert_eq!(out.edges, 1);
        assert!(q.is_empty(), "{q:?}");
        let schema = s.schema();
        assert_eq!(schema.edge_types[0].src_labels, LabelSet::single("A"));
        assert_eq!(schema.edge_types[0].tgt_labels, LabelSet::single("B"));
        // Duplicate ids are still caught across element kinds.
        let out = s
            .ingest(
                vec![(2, Element::ResolvedEdge(rec))],
                ErrorPolicy::Skip,
                &mut q,
                "t",
            )
            .unwrap();
        assert_eq!(out.edges, 0);
        assert!(q.entries()[0].reason.contains("duplicate edge id 5"));
    }

    #[test]
    fn shard_state_snapshot_matches_live_schema() {
        let s = SharedSession::new(quick_config(), 8);
        let mut q = Quarantine::new();
        s.ingest(
            vec![node(1, "A"), node(2, "B"), edge(9, 1, 2)],
            ErrorPolicy::Skip,
            &mut q,
            "t",
        )
        .unwrap();
        let state = s.shard_state().unwrap();
        assert_eq!(state.schema, s.schema());
        assert_eq!(state.node_accums.len(), state.schema.node_types.len());
        // It round-trips through JSON (the wire format).
        let json = serde_json::to_string(&state).unwrap();
        let back: crate::merge::ShardState = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema, state.schema);
    }

    #[test]
    fn strict_policy_rejects_atomically() {
        let s = SharedSession::new(quick_config(), 8);
        let mut q = Quarantine::new();
        s.ingest(vec![node(1, "A")], ErrorPolicy::Strict, &mut q, "t")
            .unwrap();
        let before = s.schema();
        let (before_batches, before_nodes) = (s.batches_processed(), s.nodes_seen());
        let err = s
            .ingest(
                vec![node(2, "B"), node(1, "A")],
                ErrorPolicy::Strict,
                &mut q,
                "t",
            )
            .unwrap_err();
        assert!(matches!(err, IngestError::Rejected(_)));
        assert_eq!(s.schema(), before, "rejected batch mutated the schema");
        assert_eq!(s.batches_processed(), before_batches);
        assert_eq!(s.nodes_seen(), before_nodes, "staged node 2 leaked");
        // The offending line is still reported.
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn history_versions_advance_only_on_change() {
        let s = SharedSession::new(quick_config(), 8);
        let (v, _) = s.version_info();
        assert_eq!(v, 1, "empty schema is version 1");
        let mut q = Quarantine::new();
        s.ingest(vec![node(1, "A")], ErrorPolicy::Skip, &mut q, "t")
            .unwrap();
        let (v2, h2) = s.version_info();
        assert_eq!(v2, 2);
        // An empty batch changes nothing.
        let out = s.ingest(vec![], ErrorPolicy::Skip, &mut q, "t").unwrap();
        assert!(!out.changed);
        assert_eq!(s.version_info(), (v2, h2));
        match s.lookup_version(1) {
            VersionLookup::Found(v) => assert_eq!(v.schema, SchemaGraph::new()),
            other => panic!("expected version 1, got {other:?}"),
        }
        assert_eq!(s.lookup_version(99), VersionLookup::NeverExisted);
    }

    #[test]
    fn export_restore_round_trip_is_bit_identical() {
        let cfg = quick_config();
        let a = SharedSession::new(cfg.clone(), 8);
        let mut q = Quarantine::new();
        a.ingest(
            vec![node(1, "A"), node(2, "B")],
            ErrorPolicy::Skip,
            &mut q,
            "t",
        )
        .unwrap();
        let (ckpt, aux) = a.export().unwrap();
        let json = serde_json::to_string(&aux).unwrap();
        let aux: SessionAux = serde_json::from_str(&json).unwrap();
        let b = SharedSession::restore(cfg, ckpt, aux).unwrap();

        let batch = vec![edge(10, 1, 2), node(3, "A")];
        let out_a = a
            .ingest(batch.clone(), ErrorPolicy::Skip, &mut q, "t")
            .unwrap();
        let out_b = b.ingest(batch, ErrorPolicy::Skip, &mut q, "t").unwrap();
        assert_eq!(out_a.hash, out_b.hash);
        assert_eq!(out_a.version, out_b.version);
        assert_eq!(out_a.batch_index, out_b.batch_index);
        assert_eq!(a.schema(), b.schema());
    }
}
