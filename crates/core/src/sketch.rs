//! Mergeable sketches for the bounded-memory streaming mode.
//!
//! Every summary here is **seeded, bit-deterministic, and mergeable**
//! under the same order-insensitive algebra the distributed merge
//! demands (see DESIGN.md §3i): merges are commutative, associative,
//! and idempotent, so sketched shard states fold through
//! [`crate::merge`] and arrive at the same bits regardless of batch
//! arrival order, shard order, or reduction-tree shape.
//!
//! Three summaries, one shared primitive:
//!
//! - [`DistinctSketch`] — a KMV (k-minimum-values) distinct counter.
//!   Keeps the `k` smallest seeded hashes of the inserted items; below
//!   `k` distinct items the count is exact, above it the k-th smallest
//!   hash estimates the cardinality with relative error ≈ `1/√k`.
//! - [`ValueSample`] — a fixed-size bottom-`k` sample of property
//!   values (stored as value-hash + observed [`DataType`]), used for
//!   sampled data-type inference over a true value sample instead of
//!   the full value universe.
//! - [`FingerprintStore`] — a bounded frequency-aware map for pattern
//!   fingerprints with deterministic lowest-frequency eviction, so a
//!   drifting key universe cannot grow the memoization state without
//!   bound. Pinned entries at or above the frequency floor are never
//!   evicted.
//!
//! Bottom-`k` over a seeded hash is the load-bearing trick: the kept
//! set is a deterministic function of the *set* of inserted items
//! (union-then-keep-k-smallest), which is exactly what makes the merge
//! laws hold where classic reservoir sampling (order-dependent) and
//! additive counters (non-idempotent) fail.

use pg_model::{DataType, PropertyValue, Symbol};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::hash::Hash;

/// Salt mixed into the pipeline seed to derive sketch seeds, so sketch
/// hashing never correlates with the LSH or batch-split streams.
pub const SKETCH_SALT: u64 = 0x5ce7c4;

/// SplitMix64 finalizer: a fast, well-mixed 64-bit permutation.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Seeded hash of one 64-bit item.
#[inline]
pub fn hash_u64(seed: u64, x: u64) -> u64 {
    mix64(x ^ mix64(seed))
}

/// Seeded hash of an ordered pair (endpoint pairs are directional).
#[inline]
pub fn hash_pair(seed: u64, a: u64, b: u64) -> u64 {
    mix64(b ^ mix64(a ^ mix64(seed)))
}

/// Seeded FNV-1a over bytes, finalized through [`mix64`].
#[inline]
pub fn hash_bytes(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64 ^ mix64(seed);
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    mix64(h)
}

/// Deterministic fingerprint of one property value under a property
/// key: two equal `(key, value)` observations hash identically on every
/// shard and every run, so the bottom-`k` sample is a *distinct-value*
/// sample — re-observing a hot value never displaces a rare one.
pub fn value_fingerprint(seed: u64, key: &Symbol, value: &PropertyValue) -> u64 {
    let kh = hash_bytes(seed, key.as_ref().as_bytes());
    match value {
        PropertyValue::Int(i) => hash_pair(kh, 1, *i as u64),
        PropertyValue::Float(f) => hash_pair(kh, 2, f.to_bits()),
        PropertyValue::Bool(b) => hash_pair(kh, 3, *b as u64),
        PropertyValue::Date(d) => hash_pair(
            kh,
            4,
            ((d.year as u64) << 16) | ((d.month as u64) << 8) | d.day as u64,
        ),
        PropertyValue::DateTime(dt) => hash_pair(
            kh,
            5,
            ((dt.date.year as u64) << 40)
                | ((dt.date.month as u64) << 32)
                | ((dt.date.day as u64) << 24)
                | ((dt.hour as u64) << 16)
                | ((dt.minute as u64) << 8)
                | dt.second as u64,
        ),
        PropertyValue::Str(s) => hash_pair(kh, 6, hash_bytes(kh, s.as_bytes())),
    }
}

/// KMV distinct counter: the `k` smallest seeded hashes of the inserted
/// items, kept sorted and distinct.
///
/// Exact below `k` distinct items; above, `estimate()` returns
/// `(k-1) / h_k` scaled to the hash range (the classic KMV estimator)
/// with relative standard error ≈ `1/√k`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistinctSketch {
    k: usize,
    seed: u64,
    /// Sorted ascending, distinct, `len() <= k`.
    hashes: Vec<u64>,
}

impl DistinctSketch {
    /// Empty sketch with capacity `k` (clamped to at least 16).
    pub fn new(k: usize, seed: u64) -> DistinctSketch {
        DistinctSketch {
            k: k.max(16),
            seed,
            hashes: Vec::new(),
        }
    }

    /// Insert one item (idempotent).
    pub fn insert(&mut self, item: u64) {
        self.insert_hash(hash_u64(self.seed, item));
    }

    /// Insert a pre-hashed observation (for pair hashes).
    pub fn insert_hash(&mut self, h: u64) {
        match self.hashes.binary_search(&h) {
            Ok(_) => {}
            Err(pos) => {
                if self.hashes.len() < self.k {
                    self.hashes.insert(pos, h);
                } else if pos < self.k {
                    self.hashes.insert(pos, h);
                    self.hashes.pop();
                }
            }
        }
    }

    /// The sketch's seed (merge partners must agree).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when nothing was ever inserted.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// True once the sketch holds `k` hashes — estimates are
    /// approximate from here on.
    pub fn is_saturated(&self) -> bool {
        self.hashes.len() >= self.k
    }

    /// Estimated distinct count: exact below saturation, KMV estimator
    /// above. Deterministic: pure function of the kept hash set.
    pub fn estimate(&self) -> u64 {
        if !self.is_saturated() {
            return self.hashes.len() as u64;
        }
        let kth = *self.hashes.last().expect("saturated sketch is non-empty");
        // (k-1) / (kth / 2^64): the k-th smallest of n uniform hashes
        // sits near k/n of the range.
        let frac = (kth as f64) / (u64::MAX as f64);
        if frac <= 0.0 {
            return self.hashes.len() as u64;
        }
        ((self.k as f64 - 1.0) / frac).round() as u64
    }

    /// Two-sigma relative error bound of [`estimate`](Self::estimate):
    /// `0` while exact, `≈ 2/√k` once saturated.
    pub fn error_bound(&self) -> f64 {
        if self.is_saturated() {
            2.0 / (self.k as f64).sqrt()
        } else {
            0.0
        }
    }

    /// Merge another sketch: union of kept hashes, truncated back to
    /// the `k` smallest. Commutative, associative, and idempotent —
    /// the result depends only on the union of the inserted item sets.
    pub fn merge(&mut self, other: &DistinctSketch) {
        debug_assert_eq!(self.seed, other.seed, "sketch seeds must agree");
        debug_assert_eq!(self.k, other.k, "sketch sizes must agree");
        let mut merged = Vec::with_capacity(self.k.min(self.hashes.len() + other.hashes.len()));
        let (mut i, mut j) = (0, 0);
        while merged.len() < self.k && (i < self.hashes.len() || j < other.hashes.len()) {
            let next = match (self.hashes.get(i), other.hashes.get(j)) {
                (Some(&a), Some(&b)) => {
                    if a <= b {
                        i += 1;
                        if a == b {
                            j += 1;
                        }
                        a
                    } else {
                        j += 1;
                        b
                    }
                }
                (Some(&a), None) => {
                    i += 1;
                    a
                }
                (None, Some(&b)) => {
                    j += 1;
                    b
                }
                (None, None) => break,
            };
            merged.push(next);
        }
        self.hashes = merged;
    }

    /// Bytes retained (for the memory-pressure gauges).
    pub fn retained_bytes(&self) -> usize {
        self.hashes.capacity() * std::mem::size_of::<u64>() + std::mem::size_of::<Self>()
    }
}

/// Fixed-size seeded bottom-`k` sample of property values for data-type
/// inference: each kept entry is the value's fingerprint hash plus its
/// observed [`DataType`].
///
/// The kept set is the `k` smallest-hashed *distinct* values ever
/// observed, so merge is union-truncate — the same law as
/// [`DistinctSketch`]. Data-type inference joins the sampled types on
/// the type lattice; a rare outlier type survives in the sample iff one
/// of its values hashes into the bottom `k`, which is exactly the
/// "sampling can miss rare outliers" behavior the Figure-8
/// sampling-error metric measures.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValueSample {
    k: usize,
    seed: u64,
    /// Sorted ascending by hash, distinct hashes, `len() <= k`.
    entries: Vec<(u64, DataType)>,
}

impl ValueSample {
    /// Empty sample with capacity `k` (clamped to at least 16).
    pub fn new(k: usize, seed: u64) -> ValueSample {
        ValueSample {
            k: k.max(16),
            seed,
            entries: Vec::new(),
        }
    }

    /// Observe one value of a property.
    pub fn observe(&mut self, key: &Symbol, value: &PropertyValue) {
        let h = value_fingerprint(self.seed, key, value);
        self.observe_hashed(h, DataType::of(value));
    }

    /// Observe a pre-fingerprinted value.
    pub fn observe_hashed(&mut self, h: u64, dtype: DataType) {
        match self.entries.binary_search_by_key(&h, |e| e.0) {
            Ok(_) => {}
            Err(pos) => {
                if self.entries.len() < self.k {
                    self.entries.insert(pos, (h, dtype));
                } else if pos < self.k {
                    self.entries.insert(pos, (h, dtype));
                    self.entries.pop();
                }
            }
        }
    }

    /// Number of sampled distinct values.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lattice join over the sampled value types (`None` when empty) —
    /// the sampled data-type inference of §4.4 computed from a real
    /// value sample instead of a histogram draw. Deterministic.
    pub fn join(&self) -> Option<DataType> {
        DataType::join_all(self.entries.iter().map(|&(_, t)| t))
    }

    /// Merge another sample (union of entries, keep the `k`
    /// smallest-hashed). Commutative, associative, idempotent.
    pub fn merge(&mut self, other: &ValueSample) {
        debug_assert_eq!(self.seed, other.seed, "sample seeds must agree");
        debug_assert_eq!(self.k, other.k, "sample sizes must agree");
        let mut merged = Vec::with_capacity(self.k.min(self.entries.len() + other.entries.len()));
        let (mut i, mut j) = (0, 0);
        while merged.len() < self.k && (i < self.entries.len() || j < other.entries.len()) {
            let next = match (self.entries.get(i), other.entries.get(j)) {
                (Some(&a), Some(&b)) => {
                    if a.0 <= b.0 {
                        i += 1;
                        if a.0 == b.0 {
                            j += 1;
                        }
                        a
                    } else {
                        j += 1;
                        b
                    }
                }
                (Some(&a), None) => {
                    i += 1;
                    a
                }
                (None, Some(&b)) => {
                    j += 1;
                    b
                }
                (None, None) => break,
            };
            merged.push(next);
        }
        self.entries = merged;
    }

    /// Bytes retained.
    pub fn retained_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<(u64, DataType)>()
            + std::mem::size_of::<Self>()
    }
}

/// One entry of a [`FingerprintStore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FpEntry<V> {
    /// The stored payload (e.g. the type id a pattern resolved to).
    pub value: V,
    /// Observation frequency. Merged by **max** (not sum) so merging a
    /// store with itself is a no-op — idempotence over accuracy: the
    /// frequency only ranks eviction candidates, it is never reported
    /// as a count.
    pub freq: u64,
    /// Pinned entries at or above the frequency floor are exempt from
    /// eviction (the type-defining fingerprints of the running schema).
    pub pinned: bool,
}

/// A bounded, frequency-aware fingerprint map with deterministic
/// eviction, for pattern universes that drift over an unbounded stream.
///
/// Inserting past `capacity` evicts the lowest-frequency entries
/// (key-order tie-break, so eviction is a pure function of the entry
/// set). Entries that are `pinned` **and** have `freq >=
/// frequency_floor` are never evicted — a mandatory-key fingerprint
/// seen above the floor survives any churn (pinned by proptest).
///
/// Merge is union with per-entry `max(freq)` / `or(pinned)`, followed
/// by the same deterministic eviction: commutative and idempotent by
/// construction, and associative whenever the union fits the capacity
/// (the proptest regime); above capacity, eviction keeps the result a
/// deterministic function of the operand union.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FingerprintStore<K: Ord, V> {
    capacity: usize,
    frequency_floor: u64,
    entries: BTreeMap<K, FpEntry<V>>,
}

impl<K: Ord + Clone + Hash, V: Clone> FingerprintStore<K, V> {
    /// Empty store. `capacity` is clamped to at least 1.
    pub fn new(capacity: usize, frequency_floor: u64) -> FingerprintStore<K, V> {
        FingerprintStore {
            capacity: capacity.max(1),
            frequency_floor,
            entries: BTreeMap::new(),
        }
    }

    /// Number of stored fingerprints.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured frequency floor.
    pub fn frequency_floor(&self) -> u64 {
        self.frequency_floor
    }

    /// Look up a fingerprint and bump its frequency.
    pub fn touch(&mut self, key: &K) -> Option<&V> {
        self.entries.get_mut(key).map(|e| {
            e.freq = e.freq.saturating_add(1);
            &e.value
        })
    }

    /// Look up without bumping.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.entries.get(key).map(|e| &e.value)
    }

    /// Frequency of a fingerprint (0 when absent).
    pub fn freq(&self, key: &K) -> u64 {
        self.entries.get(key).map(|e| e.freq).unwrap_or(0)
    }

    /// True when the entry exists and is pinned.
    pub fn is_pinned(&self, key: &K) -> bool {
        self.entries.get(key).map(|e| e.pinned).unwrap_or(false)
    }

    /// Record a fingerprint: insert with frequency 1 or bump the
    /// existing frequency; `pinned` is sticky once set. Returns the
    /// keys evicted to stay within capacity (never the recorded key's
    /// own insert unless everything else is protected and it ranks
    /// lowest).
    pub fn record(&mut self, key: K, value: V, pinned: bool) -> Vec<K> {
        let e = self.entries.entry(key).or_insert(FpEntry {
            value,
            freq: 0,
            pinned: false,
        });
        e.freq = e.freq.saturating_add(1);
        e.pinned |= pinned;
        self.evict_to_capacity()
    }

    /// Merge another store: union, `max` frequencies, `or` pins, then
    /// deterministic eviction. On a key collision the present value
    /// wins (stores being merged must agree on payloads for the merge
    /// laws to be meaningful).
    pub fn merge(&mut self, other: &FingerprintStore<K, V>) -> Vec<K> {
        debug_assert_eq!(self.capacity, other.capacity);
        debug_assert_eq!(self.frequency_floor, other.frequency_floor);
        for (k, oe) in &other.entries {
            match self.entries.get_mut(k) {
                Some(e) => {
                    e.freq = e.freq.max(oe.freq);
                    e.pinned |= oe.pinned;
                }
                None => {
                    self.entries.insert(k.clone(), oe.clone());
                }
            }
        }
        self.evict_to_capacity()
    }

    /// Iterate entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &FpEntry<V>)> {
        self.entries.iter()
    }

    /// Evict lowest-frequency unprotected entries until within
    /// capacity. Ties break in key order (BTreeMap iteration order +
    /// stable sort), so the survivor set is a deterministic function of
    /// the entry set.
    fn evict_to_capacity(&mut self) -> Vec<K> {
        if self.entries.len() <= self.capacity {
            return Vec::new();
        }
        let excess = self.entries.len() - self.capacity;
        let mut candidates: Vec<(u64, K)> = self
            .entries
            .iter()
            .filter(|(_, e)| !(e.pinned && e.freq >= self.frequency_floor))
            .map(|(k, e)| (e.freq, k.clone()))
            .collect();
        candidates.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        let victims: Vec<K> = candidates
            .into_iter()
            .take(excess)
            .map(|(_, k)| k)
            .collect();
        for k in &victims {
            self.entries.remove(k);
        }
        victims
    }

    /// Rough retained-bytes estimate for the memory gauges (keys are
    /// charged a flat constant; exact key sizes are not recoverable
    /// generically).
    pub fn estimated_bytes(&self) -> usize {
        self.entries.len() * (std::mem::size_of::<FpEntry<V>>() + 64) + std::mem::size_of::<Self>()
    }
}

// The vendored serde derive does not expand on generic containers, so
// the store's checkpoint encoding is written by hand: an object with
// the two bounds and a key-ordered `[key, value, freq, pinned]` entry
// list (deterministic because BTreeMap iterates in key order).
impl<K: Ord + Serialize, V: Serialize> Serialize for FingerprintStore<K, V> {
    fn to_value(&self) -> serde::Value {
        let entries: Vec<serde::Value> = self
            .entries
            .iter()
            .map(|(k, e)| {
                serde::Value::Array(vec![
                    k.to_value(),
                    e.value.to_value(),
                    serde::Value::U64(e.freq),
                    serde::Value::Bool(e.pinned),
                ])
            })
            .collect();
        serde::Value::Object(vec![
            (
                "capacity".to_string(),
                serde::Value::U64(self.capacity as u64),
            ),
            (
                "frequency_floor".to_string(),
                serde::Value::U64(self.frequency_floor),
            ),
            ("entries".to_string(), serde::Value::Array(entries)),
        ])
    }
}

impl<K: Ord + Deserialize, V: Deserialize> Deserialize for FingerprintStore<K, V> {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected object for FingerprintStore"))?;
        let capacity = usize::from_value(serde::field(obj, "capacity"))
            .map_err(|e| serde::Error::context("FingerprintStore.capacity", e))?;
        let frequency_floor = u64::from_value(serde::field(obj, "frequency_floor"))
            .map_err(|e| serde::Error::context("FingerprintStore.frequency_floor", e))?;
        let raw = serde::field(obj, "entries")
            .as_array()
            .ok_or_else(|| serde::Error::custom("expected array for FingerprintStore.entries"))?;
        let mut entries = BTreeMap::new();
        for item in raw {
            let parts = item
                .as_array()
                .filter(|p| p.len() == 4)
                .ok_or_else(|| serde::Error::custom("malformed FingerprintStore entry"))?;
            let key = K::from_value(&parts[0])
                .map_err(|e| serde::Error::context("FingerprintStore entry key", e))?;
            let entry = FpEntry {
                value: V::from_value(&parts[1])
                    .map_err(|e| serde::Error::context("FingerprintStore entry value", e))?,
                freq: u64::from_value(&parts[2])
                    .map_err(|e| serde::Error::context("FingerprintStore entry freq", e))?,
                pinned: bool::from_value(&parts[3])
                    .map_err(|e| serde::Error::context("FingerprintStore entry pinned", e))?,
            };
            entries.insert(key, entry);
        }
        Ok(FingerprintStore {
            capacity: capacity.max(1),
            frequency_floor,
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_model::sym;

    #[test]
    fn distinct_exact_below_k() {
        let mut s = DistinctSketch::new(64, 7);
        for i in 0..50u64 {
            s.insert(i);
        }
        assert_eq!(s.estimate(), 50);
        // Re-inserting is idempotent.
        for i in 0..50u64 {
            s.insert(i);
        }
        assert_eq!(s.estimate(), 50);
        assert_eq!(s.error_bound(), 0.0);
    }

    #[test]
    fn distinct_estimate_within_bound_above_k() {
        let k = 256;
        let mut s = DistinctSketch::new(k, 42);
        let n = 100_000u64;
        for i in 0..n {
            s.insert(i);
        }
        assert!(s.is_saturated());
        let est = s.estimate() as f64;
        let err = (est - n as f64).abs() / n as f64;
        assert!(
            err <= s.error_bound(),
            "estimate {est} off by {err:.4}, bound {:.4}",
            s.error_bound()
        );
    }

    #[test]
    fn distinct_merge_equals_union_insert() {
        let mut a = DistinctSketch::new(32, 3);
        let mut b = DistinctSketch::new(32, 3);
        let mut both = DistinctSketch::new(32, 3);
        for i in 0..500u64 {
            if i % 2 == 0 {
                a.insert(i);
            }
            if i % 3 == 0 {
                b.insert(i);
            }
            if i % 2 == 0 || i % 3 == 0 {
                both.insert(i);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, both, "merge == union");
        assert_eq!(ab, ba, "commutative");
        let mut aa = a.clone();
        aa.merge(&a);
        assert_eq!(aa, a, "idempotent");
    }

    #[test]
    fn value_sample_joins_types() {
        let mut vs = ValueSample::new(32, 9);
        let key = sym("p");
        vs.observe(&key, &PropertyValue::Int(1));
        vs.observe(&key, &PropertyValue::Int(2));
        assert_eq!(vs.join(), Some(DataType::Int));
        vs.observe(&key, &PropertyValue::Float(0.5));
        assert_eq!(vs.join(), Some(DataType::Float));
        vs.observe(&key, &PropertyValue::Str("x".into()));
        assert_eq!(vs.join(), Some(DataType::Str));
        // Distinct-value semantics: duplicates don't grow the sample.
        let len = vs.len();
        vs.observe(&key, &PropertyValue::Int(1));
        assert_eq!(vs.len(), len);
    }

    #[test]
    fn value_fingerprint_distinguishes_values_and_keys() {
        let (a, b) = (sym("a"), sym("b"));
        let v = PropertyValue::Int(7);
        assert_ne!(value_fingerprint(1, &a, &v), value_fingerprint(1, &b, &v));
        assert_ne!(
            value_fingerprint(1, &a, &PropertyValue::Int(7)),
            value_fingerprint(1, &a, &PropertyValue::Int(8))
        );
        // Int(1) and Bool(true) must not collide via identical payloads.
        assert_ne!(
            value_fingerprint(1, &a, &PropertyValue::Int(1)),
            value_fingerprint(1, &a, &PropertyValue::Bool(true))
        );
        // Deterministic across calls.
        assert_eq!(value_fingerprint(5, &a, &v), value_fingerprint(5, &a, &v));
    }

    #[test]
    fn fingerprint_store_bounds_and_evicts_lowest_freq() {
        let mut fs: FingerprintStore<u64, u64> = FingerprintStore::new(4, 3);
        for k in 0..4u64 {
            // Frequencies 1, 2, 3, 4.
            for _ in 0..=k {
                fs.record(k, k * 10, false);
            }
        }
        assert_eq!(fs.len(), 4);
        let evicted = fs.record(99, 990, false);
        assert_eq!(fs.len(), 4);
        assert_eq!(evicted, vec![0], "lowest-frequency entry evicted");
        assert!(fs.get(&0).is_none());
        assert_eq!(fs.get(&99), Some(&990));
    }

    #[test]
    fn pinned_above_floor_survives_churn() {
        let mut fs: FingerprintStore<u64, u64> = FingerprintStore::new(8, 2);
        // Pinned entry observed above the floor.
        fs.record(7, 70, true);
        fs.record(7, 70, true);
        assert!(fs.freq(&7) >= fs.frequency_floor());
        // Churn far past capacity with higher-frequency entries.
        for k in 100..200u64 {
            for _ in 0..5 {
                fs.record(k, k, false);
            }
        }
        assert_eq!(fs.len(), 8);
        assert_eq!(fs.get(&7), Some(&70), "pinned entry survived");
    }

    #[test]
    fn pinned_below_floor_is_still_evictable() {
        let mut fs: FingerprintStore<u64, u64> = FingerprintStore::new(2, 10);
        fs.record(1, 1, true); // pinned but freq 1 < floor 10
        for k in 2..10u64 {
            for _ in 0..5 {
                fs.record(k, k, false);
            }
        }
        assert!(fs.get(&1).is_none(), "below the floor the pin is advisory");
    }

    #[test]
    fn store_merge_is_union_max() {
        let mut a: FingerprintStore<u64, u64> = FingerprintStore::new(16, 2);
        let mut b: FingerprintStore<u64, u64> = FingerprintStore::new(16, 2);
        for _ in 0..3 {
            a.record(1, 10, false);
        }
        for _ in 0..5 {
            b.record(1, 10, true);
        }
        b.record(2, 20, false);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "commutative");
        assert_eq!(ab.freq(&1), 5, "max, not sum");
        assert!(ab.is_pinned(&1), "pin is sticky");
        let mut aa = a.clone();
        aa.merge(&a);
        assert_eq!(aa, a, "idempotent");
    }
}
