//! # pg-hive
//!
//! PG-HIVE: hybrid incremental schema discovery for property graphs
//! (EDBT 2026). Given a property graph — possibly noisy, partially
//! labeled, or entirely unlabeled — PG-HIVE infers a
//! [`pg_model::SchemaGraph`]: node types, edge types, property data
//! types, mandatory/optional constraints, and edge cardinalities.
//!
//! ## Pipeline (§4, Algorithm 1)
//!
//! 1. **Load** nodes/edges (with resolved endpoint labels) — `pg-store`.
//! 2. **Preprocess** into hybrid feature vectors: a Word2Vec embedding of
//!    the (sorted, concatenated) label set ‖ a binary property-presence
//!    vector ([`features`]).
//! 3. **Cluster** with LSH — Euclidean or MinHash, parameters chosen
//!    adaptively from a sample of the data ([`cluster`], `pg-lsh`).
//! 4. **Extract types** (Algorithm 2): merge labeled clusters by label
//!    set, merge unlabeled clusters into labeled ones by property-set
//!    Jaccard ≥ θ (default 0.9), keep leftovers as ABSTRACT types
//!    ([`extract`]).
//! 5. **Post-process** (optional): mandatory/optional constraints,
//!    property data types (full scan or sampled), and edge cardinalities
//!    ([`constraints`], [`datatypes`], [`cardinality`]).
//! 6. **Serialize** to PG-Schema (STRICT/LOOSE), XSD, or JSON
//!    ([`serialize`]).
//!
//! The whole pipeline runs either on a full graph
//! ([`PgHive::discover_graph`]) or incrementally over batches
//! ([`HiveSession`]), where each batch's clusters are merged monotonically
//! into the running schema (§4.6).
//!
//! ## Quick start
//!
//! ```
//! use pg_hive::{HiveConfig, PgHive};
//! use pg_model::{Edge, LabelSet, Node, NodeId, PropertyGraph};
//!
//! let mut g = PropertyGraph::new();
//! g.add_node(Node::new(1, LabelSet::single("Person")).with_prop("name", "Ada")).unwrap();
//! g.add_node(Node::new(2, LabelSet::single("Person")).with_prop("name", "Bob")).unwrap();
//! g.add_edge(Edge::new(3, NodeId(1), NodeId(2), LabelSet::single("KNOWS"))).unwrap();
//!
//! let result = PgHive::new(HiveConfig::default()).discover_graph(&g);
//! assert_eq!(result.schema.node_types.len(), 1);
//! assert_eq!(result.schema.edge_types.len(), 1);
//! ```

pub mod cardinality;
pub mod checkpoint;
pub mod cluster;
pub mod config;
pub mod constraints;
pub mod datatypes;
pub mod diff;
pub mod extract;
pub mod features;
pub mod fixtures;
pub mod handle;
pub mod incremental;
pub mod merge;
pub mod pipeline;
pub mod refine;
pub mod selectivity;
pub mod serialize;
pub mod sketch;
pub mod state;
pub mod validate;

pub use checkpoint::{CheckpointError, CheckpointStore, ResumeOutcome};
pub use cluster::DedupStats;
pub use config::{
    DatatypeSampling, EmbeddingKind, HiveConfig, LshMethod, LshParams, MergeSimilarity,
    StreamConfig,
};
pub use diff::{apply, diff, EdgeTypeDiff, NodeTypeDiff, PropertyChange, SchemaDiff};
pub use handle::{
    IngestError, IngestOutcome, MergeOutcome, SessionAux, SharedSession, VersionLookup,
};
pub use incremental::{
    AccumMode, BatchTiming, HiveSession, ModeMismatch, SessionCheckpoint, SessionMemoryStats,
};
pub use merge::{
    discover_sharded, merge_schemas, merge_schemas_with, merge_states, schema_to_state, MergeError,
    ShardState, SHARD_SPLIT_SALT,
};
pub use pipeline::{DiscoveryResult, PgHive};
pub use serialize::{
    canonical_form, content_hash, content_hash_hex, SchemaHistory, SchemaMode, SchemaVersion,
};
pub use sketch::{DistinctSketch, FingerprintStore, FpEntry, ValueSample, SKETCH_SALT};
pub use state::{
    DiscoveryState, DtypeHist, EdgeSketch, EdgeTypeAccum, NodeSketch, NodeTypeAccum, SketchParams,
};
pub use validate::{validate, ValidationReport, Violation};
