//! Figure 7: incremental per-batch processing time. Verifies the batch
//! cost stays near-constant (the incremental design's selling point) by
//! benchmarking the first and the last of 10 batches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_bench::{bench_graph, bench_hive_config, BENCH_DATASETS};
use pg_hive::{HiveSession, LshMethod};
use pg_store::split_batches;
use std::hint::black_box;
use std::time::Duration;

fn fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_incremental");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));

    for ds in BENCH_DATASETS {
        let (graph, _) = bench_graph(ds, 0.0, 1.0);
        let batches = split_batches(&graph, 10, 42);

        // Cost of processing batch 1 into an empty schema.
        group.bench_with_input(
            BenchmarkId::new("first_batch", ds),
            &batches,
            |b, batches| {
                b.iter(|| {
                    let mut session = HiveSession::new(bench_hive_config(LshMethod::Elsh));
                    black_box(session.process_graph_batch(&batches[0]));
                })
            },
        );

        // Cost of processing batch 10 into a schema built from batches
        // 1–9 (prepared outside the timed closure).
        group.bench_with_input(
            BenchmarkId::new("last_batch", ds),
            &batches,
            |b, batches| {
                b.iter_batched(
                    || {
                        let mut session = HiveSession::new(bench_hive_config(LshMethod::Elsh));
                        for batch in &batches[..9] {
                            session.process_graph_batch(batch);
                        }
                        session
                    },
                    |mut session| {
                        black_box(session.process_graph_batch(&batches[9]));
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );

        // Full incremental pass vs one-shot, for the recomputation-saved
        // comparison.
        group.bench_with_input(
            BenchmarkId::new("all_batches", ds),
            &batches,
            |b, batches| {
                b.iter(|| {
                    let mut session = HiveSession::new(bench_hive_config(LshMethod::Elsh));
                    for batch in batches {
                        session.process_graph_batch(batch);
                    }
                    black_box(session.schema().type_count())
                })
            },
        );

        // DiscoPG-style memoization: later batches are mostly repeated
        // patterns, so the cache should shrink their cost.
        group.bench_with_input(
            BenchmarkId::new("all_batches_memoized", ds),
            &batches,
            |b, batches| {
                b.iter(|| {
                    let mut cfg = bench_hive_config(LshMethod::Elsh);
                    cfg.memoize = true;
                    let mut session = HiveSession::new(cfg);
                    for batch in batches {
                        session.process_graph_batch(batch);
                    }
                    black_box(session.cache_hits())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
