//! Ablation: Word2Vec vs hashed label embeddings — both the embedding
//! cost and the end-to-end discovery cost. (Accuracy comparison lives in
//! the integration tests; Criterion measures time.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_bench::{bench_graph, bench_hive_config, BENCH_DATASETS};
use pg_embed::{build_sentences, Word2Vec, Word2VecConfig};
use pg_hive::{EmbeddingKind, LshMethod, PgHive};
use std::hint::black_box;
use std::time::Duration;

fn embed_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("embed_ablation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));

    for ds in BENCH_DATASETS {
        let (graph, _) = bench_graph(ds, 0.0, 1.0);
        let (nodes, edges) = pg_store::load(&graph);

        // Training cost alone.
        let sentences = build_sentences(&nodes, &edges);
        group.bench_with_input(
            BenchmarkId::new("word2vec_train", ds),
            &sentences,
            |b, s| {
                let cfg = Word2VecConfig {
                    dim: 8,
                    epochs: 4,
                    max_pairs_per_epoch: 50_000,
                    ..Default::default()
                };
                b.iter(|| black_box(Word2Vec::train(s, &cfg)))
            },
        );

        // End-to-end discovery with each embedder.
        group.bench_with_input(BenchmarkId::new("discover_word2vec", ds), &graph, |b, g| {
            let engine = PgHive::new(bench_hive_config(LshMethod::Elsh));
            b.iter(|| black_box(engine.discover_graph(g)))
        });
        group.bench_with_input(BenchmarkId::new("discover_hashed", ds), &graph, |b, g| {
            let mut cfg = bench_hive_config(LshMethod::Elsh);
            cfg.embedding = EmbeddingKind::Hashed { dim: 8 };
            let engine = PgHive::new(cfg);
            b.iter(|| black_box(engine.discover_graph(g)))
        });
    }
    group.finish();
}

criterion_group!(benches, embed_ablation);
criterion_main!(benches);
