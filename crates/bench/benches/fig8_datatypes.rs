//! Figure 8 companion: the cost side of sampled data-type inference —
//! full-scan vs 10 %-sample post-processing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_bench::{bench_graph, bench_hive_config, BENCH_DATASETS};
use pg_hive::{DatatypeSampling, LshMethod, PgHive};
use std::hint::black_box;
use std::time::Duration;

fn fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_datatypes");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));

    for ds in BENCH_DATASETS {
        let (graph, _) = bench_graph(ds, 0.0, 1.0);

        let mut full_cfg = bench_hive_config(LshMethod::Elsh);
        full_cfg.post_processing = true;
        full_cfg.datatype_sampling = None;
        group.bench_with_input(BenchmarkId::new("full_scan", ds), &graph, |b, g| {
            let engine = PgHive::new(full_cfg.clone());
            b.iter(|| black_box(engine.discover_graph(g)))
        });

        let mut sampled_cfg = full_cfg.clone();
        sampled_cfg.datatype_sampling = Some(DatatypeSampling::default());
        group.bench_with_input(BenchmarkId::new("sampled", ds), &graph, |b, g| {
            let engine = PgHive::new(sampled_cfg.clone());
            b.iter(|| black_box(engine.discover_graph(g)))
        });
    }
    group.finish();
}

criterion_group!(benches, fig8);
criterion_main!(benches);
