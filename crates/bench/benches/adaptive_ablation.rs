//! Ablation: adaptive LSH parameterization vs fixed manual settings.
//! The adaptive path pays a sampling pass (§4.2); this measures that
//! overhead against under- and over-provisioned manual choices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_bench::{bench_graph, bench_hive_config, BENCH_DATASETS};
use pg_hive::{LshMethod, PgHive};
use std::hint::black_box;
use std::time::Duration;

fn adaptive_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive_ablation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));

    for ds in BENCH_DATASETS {
        let (graph, _) = bench_graph(ds, 0.2, 1.0);

        group.bench_with_input(BenchmarkId::new("adaptive", ds), &graph, |b, g| {
            let engine = PgHive::new(bench_hive_config(LshMethod::Elsh));
            b.iter(|| black_box(engine.discover_graph(g)))
        });
        for (name, bucket, tables) in [("manual_small", 0.5, 15), ("manual_large", 4.0, 35)] {
            group.bench_with_input(BenchmarkId::new(name, ds), &graph, |b, g| {
                let cfg = bench_hive_config(LshMethod::Elsh).with_manual_params(bucket, tables);
                let engine = PgHive::new(cfg);
                b.iter(|| black_box(engine.discover_graph(g)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, adaptive_ablation);
criterion_main!(benches);
