//! Ablations around the clustering/merging design:
//!
//! * signature (AND) clustering vs OR-rule union-find clustering on the
//!   same LSH family — the design DESIGN.md settles in favour of
//!   signature grouping;
//! * endpoint-aware vs label-only edge merging.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_bench::{bench_graph, bench_hive_config, BENCH_DATASETS};
use pg_hive::features::FeatureSpace;
use pg_hive::{LshMethod, PgHive};
use pg_lsh::EuclideanLsh;
use pg_store::load;
use std::hint::black_box;
use std::time::Duration;

fn merge_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_ablation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));

    for ds in BENCH_DATASETS {
        let (graph, _) = bench_graph(ds, 0.1, 1.0);
        let (nodes, edges) = load(&graph);
        let cfg = bench_hive_config(LshMethod::Elsh);
        let fs = FeatureSpace::build(&nodes, &edges, &cfg.embedding, 42);
        let vectors: Vec<_> = nodes.iter().map(|n| fs.node_vector(n)).collect();
        let lsh = EuclideanLsh::new(fs.node_dim().max(1), 25, 2.0, 42);

        group.bench_with_input(
            BenchmarkId::new("cluster_signature_and", ds),
            &vectors,
            |b, v| b.iter(|| black_box(lsh.cluster_signature(v))),
        );
        group.bench_with_input(
            BenchmarkId::new("cluster_unionfind_or", ds),
            &vectors,
            |b, v| b.iter(|| black_box(lsh.cluster(v))),
        );

        // Endpoint-aware vs label-only edge merging (full pipeline).
        group.bench_with_input(
            BenchmarkId::new("edges_endpoint_aware", ds),
            &graph,
            |b, g| {
                let engine = PgHive::new(bench_hive_config(LshMethod::Elsh));
                b.iter(|| black_box(engine.discover_graph(g)))
            },
        );
        group.bench_with_input(BenchmarkId::new("edges_label_only", ds), &graph, |b, g| {
            let mut cfg = bench_hive_config(LshMethod::Elsh);
            cfg.edge_endpoint_aware = false;
            let engine = PgHive::new(cfg);
            b.iter(|| black_box(engine.discover_graph(g)))
        });
    }
    group.finish();
}

criterion_group!(benches, merge_ablation);
criterion_main!(benches);
