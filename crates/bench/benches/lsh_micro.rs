//! LSH microbenchmarks: signature computation and clustering throughput
//! for both families, across dimensionality and table count — the §4.7
//! complexity claims (`O(N·T·D)` for ELSH, `O(N·T)` for MinHash) made
//! measurable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pg_lsh::{EuclideanLsh, MinHashLsh, SparseVec};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use std::time::Duration;

fn sparse_points(n: usize, dim: usize, nnz: usize, seed: u64) -> Vec<SparseVec> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let entries: Vec<(u32, f64)> = (0..nnz)
                .map(|_| (rng.gen_range(0..dim as u32), rng.gen::<f64>()))
                .collect();
            SparseVec::new(dim, entries)
        })
        .collect()
}

fn sets(n: usize, universe: u64, size: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..size).map(|_| rng.gen_range(0..universe)).collect())
        .collect()
}

fn lsh_micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("lsh_micro");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    const N: usize = 20_000;
    for tables in [15, 35] {
        let points = sparse_points(N, 512, 16, 1);
        group.throughput(Throughput::Elements(N as u64));
        group.bench_with_input(
            BenchmarkId::new("elsh_cluster_signature", format!("T={tables}")),
            &points,
            |b, pts| {
                let lsh = EuclideanLsh::new(512, tables, 2.0, 3);
                b.iter(|| black_box(lsh.cluster_signature(pts)))
            },
        );

        // The OR merge rule (union-find over per-table collisions) —
        // the other half of the clustering API. Its hot path is the
        // flat item-major signature matrix plus one reused bucket map.
        group.bench_with_input(
            BenchmarkId::new("elsh_cluster_or", format!("T={tables}")),
            &points,
            |b, pts| {
                let lsh = EuclideanLsh::new(512, tables, 2.0, 3);
                b.iter(|| black_box(lsh.cluster(pts)))
            },
        );

        let minhash_sets = sets(N, 1 << 20, 12, 2);
        group.bench_with_input(
            BenchmarkId::new("minhash_cluster_signature", format!("T={tables}")),
            &minhash_sets,
            |b, s| {
                let lsh = MinHashLsh::new(tables, 4);
                b.iter(|| black_box(lsh.cluster_signature(s)))
            },
        );
    }

    // Dimensionality scaling for ELSH (the D in O(N·T·D) — nnz-bound for
    // sparse vectors).
    for nnz in [8, 64] {
        let points = sparse_points(5_000, 1024, nnz, 5);
        group.bench_with_input(
            BenchmarkId::new("elsh_signature_nnz", nnz),
            &points,
            |b, pts| {
                let lsh = EuclideanLsh::new(1024, 25, 2.0, 6);
                b.iter(|| {
                    for p in pts.iter().take(1000) {
                        black_box(lsh.signature(p));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, lsh_micro);
criterion_main!(benches);
