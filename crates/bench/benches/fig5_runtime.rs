//! Figure 5: execution time until type discovery, per dataset × noise ×
//! method. The shape to verify: PG-HIVE flat w.r.t. noise and faster
//! than SchemI; GMM grows with noise.
//!
//! Also reports sequential-vs-parallel scaling of the discovery hot
//! path via the `threads` knob: `PG-HIVE-ELSH-threads{1,N}` benches the
//! same engine at one worker and at full parallelism (the schema is
//! bit-identical either way), and `fig5_thread_scaling` prints the
//! per-stage breakdown from `BatchTiming` with the resulting speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_baselines::{GmmSchema, SchemI};
use pg_bench::{bench_graph, bench_hive_config, BENCH_DATASETS};
use pg_hive::{LshMethod, PgHive};
use std::hint::black_box;
use std::time::Duration;

fn fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_runtime");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));

    for ds in BENCH_DATASETS {
        for noise in [0.0, 0.4] {
            let (graph, _) = bench_graph(ds, noise, 1.0);
            let label = format!("{ds}/noise{:.0}", noise * 100.0);

            group.bench_with_input(BenchmarkId::new("PG-HIVE-ELSH", &label), &graph, |b, g| {
                let engine = PgHive::new(bench_hive_config(LshMethod::Elsh));
                b.iter(|| black_box(engine.discover_graph(g)))
            });
            group.bench_with_input(
                BenchmarkId::new("PG-HIVE-MinHash", &label),
                &graph,
                |b, g| {
                    let engine = PgHive::new(bench_hive_config(LshMethod::MinHash));
                    b.iter(|| black_box(engine.discover_graph(g)))
                },
            );
            // Sequential vs parallel hot path: same config, same output
            // schema, different thread count.
            for threads in [1usize, 0] {
                let name = if threads == 1 {
                    "PG-HIVE-ELSH-threads1"
                } else {
                    "PG-HIVE-ELSH-threadsN"
                };
                group.bench_with_input(BenchmarkId::new(name, &label), &graph, |b, g| {
                    let engine =
                        PgHive::new(bench_hive_config(LshMethod::Elsh).with_threads(threads));
                    b.iter(|| black_box(engine.discover_graph(g)))
                });
            }
            group.bench_with_input(BenchmarkId::new("GMMSchema", &label), &graph, |b, g| {
                let engine = GmmSchema::new();
                b.iter(|| black_box(engine.discover(g)))
            });
            group.bench_with_input(BenchmarkId::new("SchemI", &label), &graph, |b, g| {
                let engine = SchemI::new();
                b.iter(|| black_box(engine.discover(g)))
            });
        }
    }
    group.finish();
}

/// Per-stage thread-scaling report from `BatchTiming`: one sequential
/// and one fully-parallel discovery per dataset, with the stage
/// breakdown and end-to-end speedup. (On a single-core host the ratio
/// is ≈ 1×; with 8 cores the hot path targets ≥ 2×.)
fn fig5_thread_scaling(_c: &mut Criterion) {
    println!("\n== fig5_thread_scaling (per-stage, from BatchTiming) ==");
    for ds in BENCH_DATASETS {
        let (graph, _) = bench_graph(ds, 0.0, 1.0);
        let run = |threads: usize| {
            let engine = PgHive::new(bench_hive_config(LshMethod::Elsh).with_threads(threads));
            let result = engine.discover_graph(&graph);
            result.timings[0]
        };
        let seq = run(1);
        let par = run(0);
        let speedup = seq.total.as_secs_f64() / par.total.as_secs_f64().max(1e-9);
        println!(
            "{ds:<8} threads {}->{}  preprocess {:>10?} -> {:>10?}  cluster {:>10?} -> {:>10?}  \
             extract {:>10?} -> {:>10?}  total {:>10?} -> {:>10?}  speedup {speedup:.2}x",
            seq.threads,
            par.threads,
            seq.preprocess,
            par.preprocess,
            seq.cluster,
            par.cluster,
            seq.extract,
            par.extract,
            seq.total,
            par.total,
        );
    }
}

criterion_group!(benches, fig5, fig5_thread_scaling);
criterion_main!(benches);
