//! Figure 5: execution time until type discovery, per dataset × noise ×
//! method. The shape to verify: PG-HIVE flat w.r.t. noise and faster
//! than SchemI; GMM grows with noise.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_baselines::{GmmSchema, SchemI};
use pg_bench::{bench_graph, bench_hive_config, BENCH_DATASETS};
use pg_hive::{LshMethod, PgHive};
use std::hint::black_box;
use std::time::Duration;

fn fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_runtime");
    group.sample_size(10).measurement_time(Duration::from_secs(4));

    for ds in BENCH_DATASETS {
        for noise in [0.0, 0.4] {
            let (graph, _) = bench_graph(ds, noise, 1.0);
            let label = format!("{ds}/noise{:.0}", noise * 100.0);

            group.bench_with_input(
                BenchmarkId::new("PG-HIVE-ELSH", &label),
                &graph,
                |b, g| {
                    let engine = PgHive::new(bench_hive_config(LshMethod::Elsh));
                    b.iter(|| black_box(engine.discover_graph(g)))
                },
            );
            group.bench_with_input(
                BenchmarkId::new("PG-HIVE-MinHash", &label),
                &graph,
                |b, g| {
                    let engine = PgHive::new(bench_hive_config(LshMethod::MinHash));
                    b.iter(|| black_box(engine.discover_graph(g)))
                },
            );
            group.bench_with_input(BenchmarkId::new("GMMSchema", &label), &graph, |b, g| {
                let engine = GmmSchema::new();
                b.iter(|| black_box(engine.discover(g)))
            });
            group.bench_with_input(BenchmarkId::new("SchemI", &label), &graph, |b, g| {
                let engine = SchemI::new();
                b.iter(|| black_box(engine.discover(g)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig5);
criterion_main!(benches);
