//! JSONL decode microbenchmarks: the zero-copy interned decoder vs the
//! `serde_json` reference path, per line and per document, over the
//! same synthesized corpus `bench_discovery` times end to end.
//!
//! The per-line pairs isolate the decode cost; the document pair adds
//! graph assembly (node/edge vectors, pending-edge resolution) on top,
//! which is the number the `parse_ms` stage in `BENCH_discovery.json`
//! tracks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pg_store::jsonl::{from_jsonl_with_policy, from_jsonl_with_policy_reference, to_jsonl, Element};
use pg_store::{ErrorPolicy, JsonlDecoder};
use pg_synth::{random_schema, synthesize, NoiseProfile, SchemaParams, SynthSpec};
use std::hint::black_box;
use std::time::Duration;

fn corpus(size: usize, seed: u64) -> String {
    let params = SchemaParams {
        node_types: 8,
        edge_types: 6,
        ..Default::default()
    };
    let noise = NoiseProfile {
        unlabeled_fraction: 0.05,
        missing_optional_rate: 0.3,
        ..NoiseProfile::clean()
    };
    let schema = random_schema(&params, seed);
    let spec = SynthSpec::new(schema).sized_for(size).with_noise(noise);
    to_jsonl(&synthesize(&spec, seed).graph)
}

fn jsonl_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("jsonl_decode");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    const SIZE: usize = 50_000;
    let doc = corpus(SIZE, 42);
    let lines: Vec<&str> = doc.lines().filter(|l| !l.trim().is_empty()).collect();
    group.throughput(Throughput::Elements(lines.len() as u64));

    // Per-line decode with a session-lifetime decoder: the symbol pool
    // is warm after the first iteration, so this measures the steady
    // state a long-lived ingest session sees.
    group.bench_with_input(
        BenchmarkId::new("decode_line", "zero_copy"),
        &lines,
        |b, lines| {
            let mut decoder = JsonlDecoder::new();
            b.iter(|| {
                for line in lines {
                    black_box(decoder.decode_element(line).expect("clean corpus"));
                }
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("decode_line", "serde_reference"),
        &lines,
        |b, lines| {
            b.iter(|| {
                for line in lines {
                    black_box(serde_json::from_str::<Element>(line).expect("clean corpus"));
                }
            })
        },
    );

    // Full document load: decode plus graph assembly, the path the
    // `parse_ms` stage in bench_discovery measures.
    group.bench_with_input(
        BenchmarkId::new("document_load", "zero_copy"),
        &doc,
        |b, doc| {
            b.iter(|| {
                black_box(
                    from_jsonl_with_policy(doc, ErrorPolicy::Strict).expect("clean corpus"),
                )
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("document_load", "serde_reference"),
        &doc,
        |b, doc| {
            b.iter(|| {
                black_box(
                    from_jsonl_with_policy_reference(doc, ErrorPolicy::Strict)
                        .expect("clean corpus"),
                )
            })
        },
    );

    group.finish();
}

criterion_group!(benches, jsonl_decode);
criterion_main!(benches);
