//! pg-synth scale sweep: generator throughput at 10k / 100k / 1M
//! elements, plus discovery + STRICT validation on generated corpora at
//! the two smaller scales (the oracle pipeline the CI smoke test runs
//! end to end, measured).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_bench::bench_hive_config;
use pg_hive::{validate, LshMethod, PgHive, SchemaMode};
use pg_synth::{random_schema, synthesize, SchemaParams, SynthSpec};
use std::hint::black_box;
use std::time::Duration;

const SEED: u64 = 42;

fn spec_at(total: usize) -> SynthSpec {
    let schema = random_schema(&SchemaParams::default(), SEED);
    SynthSpec::new(schema).sized_for(total)
}

fn synth_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("synth_scale");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));

    // Generator throughput alone — the 1M point is the one the paper's
    // larger corpora need; the generator is single-threaded by design
    // (bit determinism), so this is the scaling ceiling to watch.
    for total in [10_000usize, 100_000, 1_000_000] {
        let spec = spec_at(total);
        group.bench_with_input(BenchmarkId::new("generate", total), &spec, |b, spec| {
            b.iter(|| black_box(synthesize(spec, SEED).graph.node_count()));
        });
    }

    // Oracle pipeline on generated corpora: discovery, then STRICT
    // validation against the declared schema.
    for total in [10_000usize, 100_000] {
        let spec = spec_at(total);
        let out = synthesize(&spec, SEED);
        group.bench_with_input(
            BenchmarkId::new("discover", total),
            &out.graph,
            |b, graph| {
                b.iter(|| {
                    let result =
                        PgHive::new(bench_hive_config(LshMethod::Elsh)).discover_graph(graph);
                    black_box(result.schema.type_count())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("validate_strict", total),
            &(&out.graph, &spec.schema),
            |b, (graph, schema)| {
                b.iter(|| black_box(validate(graph, schema, SchemaMode::Strict).violations.len()));
            },
        );
    }

    group.finish();
}

criterion_group!(benches, synth_scale);
criterion_main!(benches);
