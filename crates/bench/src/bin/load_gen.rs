//! HTTP load generator for pg-serve: N concurrent clients streaming
//! synthetic JSONL batches into their own live sessions, reporting
//! ingest latency percentiles and row throughput.
//!
//! Against an external server (CI smoke, manual runs):
//!
//! ```text
//! load_gen --addr 127.0.0.1:8686 --clients 2 --batches 5
//! ```
//!
//! Without `--addr` an in-process server is started on an ephemeral
//! port, loaded, and shut down — a self-contained benchmark run.
//!
//! With `--coordinator` the target is a cluster coordinator: batches go
//! through `POST /ingest` (WAL-backed shard routing) and the final hash
//! is read from the merged `GET /schema`. 503 responses are retried
//! honoring the server's `Retry-After` header in both modes.
//!
//! With `--connections N` the generator switches to *swarm* mode: one
//! shared session, N keep-alive connections held open simultaneously
//! (driven by `--clients` threads), each connection ingesting its
//! round-robin share of one deterministic graph in two phases (nodes,
//! then edges). `--verify-hash` re-discovers the same graph offline and
//! fails the run unless the server's schema hash is bit-identical —
//! under load, under backpressure, over N wires, the answer must not
//! change. `--out FILE` writes a machine-readable report
//! (`BENCH_serve.json` convention).

use pg_hive::serialize::content_hash_hex;
use pg_hive::{HiveConfig, PgHive};
use pg_serve::{Client, ClientResponse, Server, ServerConfig};
use pg_store::jsonl::Element;
use pg_synth::{random_schema, synthesize, SchemaParams, SynthSpec};
use serde_json::JsonValue;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

struct Opts {
    addr: Option<SocketAddr>,
    clients: usize,
    batches: usize,
    rows: usize,
    seed: u64,
    coordinator: bool,
    /// Swarm mode: number of simultaneous keep-alive connections
    /// (0 = classic per-client-session mode).
    connections: usize,
    verify_hash: bool,
    out: Option<String>,
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        addr: None,
        clients: 4,
        batches: 20,
        rows: 200,
        seed: 42,
        coordinator: false,
        connections: 0,
        verify_hash: false,
        out: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--coordinator" {
            opts.coordinator = true;
            i += 1;
            continue;
        }
        if args[i] == "--verify-hash" {
            opts.verify_hash = true;
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{} requires a value", args[i]))?;
        match args[i].as_str() {
            "--addr" => {
                opts.addr = Some(value.parse().map_err(|_| format!("bad --addr {value:?}"))?)
            }
            "--clients" => opts.clients = parse_num(value, "--clients")?,
            "--batches" => opts.batches = parse_num(value, "--batches")?,
            "--batch-rows" => opts.rows = parse_num(value, "--batch-rows")?,
            "--seed" => opts.seed = parse_num(value, "--seed")? as u64,
            "--connections" => opts.connections = parse_num(value, "--connections")?,
            "--out" => opts.out = Some(value.clone()),
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 2;
    }
    if opts.coordinator && opts.addr.is_none() {
        return Err("--coordinator requires --addr (an external coordinator)".into());
    }
    if opts.coordinator && opts.connections > 0 {
        return Err("--connections (swarm mode) does not combine with --coordinator".into());
    }
    if opts.verify_hash && opts.connections == 0 {
        return Err("--verify-hash requires --connections (swarm mode)".into());
    }
    if opts.clients == 0 || opts.batches == 0 || opts.rows == 0 {
        return Err("--clients, --batches, and --batch-rows must be at least 1".into());
    }
    Ok(opts)
}

fn parse_num(value: &str, flag: &str) -> Result<usize, String> {
    value
        .parse::<usize>()
        .map_err(|_| format!("{flag} must be an integer, got {value:?}"))
}

/// The JSONL bodies one client will post: nodes first, then edges, cut
/// into `batches` bodies of ~`rows` lines.
fn client_bodies(client_id: usize, opts: &Opts) -> Vec<String> {
    let seed = opts.seed ^ (client_id as u64).wrapping_mul(0x9e3779b97f4a7c15);
    let schema = random_schema(&SchemaParams::default(), seed);
    let target = opts.batches * opts.rows;
    let graph = synthesize(&SynthSpec::new(schema).sized_for(target), seed).graph;
    let mut lines: Vec<String> = graph
        .nodes()
        .map(|n| serde_json::to_string(&Element::Node(n.clone())).unwrap())
        .collect();
    lines.extend(
        graph
            .edges()
            .map(|e| serde_json::to_string(&Element::Edge(e.clone())).unwrap()),
    );
    lines
        .chunks(lines.len().div_ceil(opts.batches).max(1))
        .map(|c| c.join("\n"))
        .collect()
}

struct ClientReport {
    latencies: Vec<Duration>,
    rows: usize,
    errors: usize,
    final_hash: String,
}

/// POST `body`, retrying 503 busy responses. The sleep is the server's
/// own `Retry-After` (delta-seconds) when it sends one, a short default
/// otherwise, so a saturated server is backed off of, not hammered.
fn post_with_retry(
    client: &mut Client,
    path: &str,
    body: &[u8],
) -> std::io::Result<ClientResponse> {
    const ATTEMPTS: usize = 5;
    let mut resp = client.post(path, body)?;
    for _ in 1..ATTEMPTS {
        if resp.status != 503 {
            break;
        }
        let wait = resp
            .header("retry-after")
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map(Duration::from_secs)
            .unwrap_or(Duration::from_millis(250))
            .min(Duration::from_secs(2));
        std::thread::sleep(wait);
        resp = client.post(path, body)?;
    }
    Ok(resp)
}

fn run_client(addr: SocketAddr, client_id: usize, opts: &Opts, go: &Barrier) -> ClientReport {
    let bodies = client_bodies(client_id, opts);
    let session = format!("load-{client_id}");
    let mut client = Client::new(addr);
    // Coordinator mode: batches go through the cluster-wide ingest
    // route — no per-client session exists, and the hash comes from the
    // merged schema afterwards.
    let path = if opts.coordinator {
        "/ingest".to_owned()
    } else {
        let resp = post_with_retry(
            &mut client,
            "/sessions",
            format!("{{\"name\":\"{session}\"}}").as_bytes(),
        )
        .expect("create session");
        assert!(
            resp.status == 201 || resp.status == 409,
            "creating {session}: {}",
            resp.text()
        );
        format!("/sessions/{session}/ingest")
    };
    let mut report = ClientReport {
        latencies: Vec::with_capacity(bodies.len()),
        rows: 0,
        errors: 0,
        final_hash: String::new(),
    };
    go.wait();
    for body in &bodies {
        let rows = body.lines().count();
        let started = Instant::now();
        match post_with_retry(&mut client, &path, body.as_bytes()) {
            Ok(resp) if resp.status == 200 => {
                report.latencies.push(started.elapsed());
                report.rows += rows;
                if let Ok(v) = resp.json() {
                    if let Some(h) = v.get("hash").and_then(|h| h.as_str()) {
                        report.final_hash = h.to_owned();
                    }
                }
            }
            Ok(resp) => {
                report.errors += 1;
                eprintln!("{session}: HTTP {} — {}", resp.status, resp.text());
            }
            Err(e) => {
                report.errors += 1;
                eprintln!("{session}: {e}");
            }
        }
    }
    if opts.coordinator {
        if let Ok(resp) = client.get("/schema") {
            if resp.status == 200 {
                if let Ok(v) = resp.json() {
                    if let Some(h) = v.get("hash").and_then(|h| h.as_str()) {
                        report.final_hash = h.to_owned();
                    }
                }
            }
        }
    }
    report
}

/// What one load run did, in either mode, normalized for the summary
/// printer and the `--out` report.
struct RunOutcome {
    mode: &'static str,
    rows: usize,
    errors: usize,
    latencies: Vec<Duration>,
    wall: Duration,
    /// `(label, hash)` pairs to print — one per session in classic
    /// mode, the single shared session in swarm mode.
    hashes: Vec<(String, String)>,
    /// One-shot offline discovery hash of the exact same graph
    /// (`--verify-hash`), for bit-identity comparison.
    offline_hash: Option<String>,
}

impl RunOutcome {
    /// Swarm bit-identity: true unless `--verify-hash` ran and the
    /// server's schema hash diverged from offline discovery.
    fn hash_ok(&self) -> bool {
        match &self.offline_hash {
            Some(offline) => self.hashes.iter().all(|(_, h)| h == offline),
            None => true,
        }
    }
}

/// Swarm mode: every connection ingests its round-robin share of ONE
/// graph into ONE session, nodes before edges (phase barrier) so no
/// edge ever references a node the server has not met. All
/// `connections` keep-alive connections are open simultaneously —
/// clients pool their connection across requests and both phases.
fn run_swarm(addr: SocketAddr, opts: &Opts) -> RunOutcome {
    let target = opts.connections * opts.batches * opts.rows;
    let schema = random_schema(&SchemaParams::default(), opts.seed);
    let graph = synthesize(
        &SynthSpec::new(schema).sized_for(target),
        opts.seed ^ 0x5eed,
    )
    .graph;
    let node_lines: Vec<String> = graph
        .nodes()
        .map(|n| serde_json::to_string(&Element::Node(n.clone())).unwrap())
        .collect();
    let edge_lines: Vec<String> = graph
        .edges()
        .map(|e| serde_json::to_string(&Element::Edge(e.clone())).unwrap())
        .collect();
    let deal = |lines: &[String]| -> Vec<Vec<String>> {
        let mut buckets: Vec<Vec<String>> = vec![Vec::new(); opts.connections];
        for (i, line) in lines.iter().enumerate() {
            buckets[i % opts.connections].push(line.clone());
        }
        buckets
            .into_iter()
            .map(|mine| {
                let chunk = mine.len().div_ceil(opts.batches).max(1);
                mine.chunks(chunk).map(|c| c.join("\n")).collect()
            })
            .collect()
    };
    let node_bodies = deal(&node_lines);
    let edge_bodies = deal(&edge_lines);

    let mut admin = Client::new(addr);
    let resp = admin
        .post("/sessions", br#"{"name":"swarm"}"#)
        .expect("create swarm session");
    assert!(
        resp.status == 201 || resp.status == 409,
        "creating swarm session: {}",
        resp.text()
    );

    // Deal connections across the driver threads; each connection is
    // its own pooled keep-alive Client.
    let threads = opts.clients.min(opts.connections).max(1);
    // One keep-alive connection plus its node-phase and edge-phase
    // batch bodies.
    type Conn = (Client, Vec<String>, Vec<String>);
    let mut per_thread: Vec<Vec<Conn>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, (nodes, edges)) in node_bodies.into_iter().zip(edge_bodies).enumerate() {
        per_thread[i % threads].push((Client::new(addr), nodes, edges));
    }

    let barrier = Arc::new(Barrier::new(threads));
    let wall = Instant::now();
    let reports: Vec<(Vec<Duration>, usize, usize)> = {
        let handles: Vec<_> = per_thread
            .into_iter()
            .map(|mut conns| {
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut latencies = Vec::new();
                    let (mut rows, mut errors) = (0usize, 0usize);
                    let mut post =
                        |client: &mut Client, body: &str, latencies: &mut Vec<Duration>| {
                            let n = body.lines().count();
                            let started = Instant::now();
                            match client.post_with_retry(
                                "/sessions/swarm/ingest",
                                body.as_bytes(),
                                10,
                            ) {
                                Ok(resp) if resp.status == 200 => {
                                    latencies.push(started.elapsed());
                                    rows += n;
                                }
                                Ok(resp) => {
                                    errors += 1;
                                    eprintln!("swarm: HTTP {} — {}", resp.status, resp.text());
                                }
                                Err(e) => {
                                    errors += 1;
                                    eprintln!("swarm: {e}");
                                }
                            }
                        };
                    barrier.wait();
                    for (client, nodes, _) in &mut conns {
                        for body in nodes.iter() {
                            post(client, body, &mut latencies);
                        }
                    }
                    // Every thread is past its node share before any
                    // edge goes on a wire; the connections stay open.
                    barrier.wait();
                    for (client, _, edges) in &mut conns {
                        for body in edges.iter() {
                            post(client, body, &mut latencies);
                        }
                    }
                    (latencies, rows, errors)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|t| t.join().expect("swarm driver thread"))
            .collect()
    };
    let wall = wall.elapsed();

    let summary = admin
        .get("/sessions/swarm")
        .expect("fetch swarm summary")
        .json()
        .expect("swarm summary JSON");
    let server_hash = summary
        .get("hash")
        .and_then(|h| h.as_str())
        .unwrap_or_default()
        .to_owned();
    let offline_hash = opts.verify_hash.then(|| {
        let offline = PgHive::new(HiveConfig::default()).discover_graph(&graph);
        content_hash_hex(&offline.schema)
    });

    let mut latencies: Vec<Duration> = Vec::new();
    let (mut rows, mut errors) = (0usize, 0usize);
    for (l, r, e) in reports {
        latencies.extend(l);
        rows += r;
        errors += e;
    }
    latencies.sort();
    RunOutcome {
        mode: "swarm",
        rows,
        errors,
        latencies,
        wall,
        hashes: vec![("swarm".to_owned(), server_hash)],
        offline_hash,
    }
}

// The vendored `serde_json` has no `json!` macro; these keep the
// report assembly readable.
fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn report_json(opts: &Opts, outcome: &RunOutcome) -> JsonValue {
    let num = |n: usize| JsonValue::U64(n as u64);
    let float = JsonValue::F64;
    let text = |s: &str| JsonValue::Str(s.to_string());
    let wall_s = outcome.wall.as_secs_f64();
    let mut fields = vec![
        ("benchmark", text("load_gen")),
        ("mode", text(outcome.mode)),
        ("seed", JsonValue::U64(opts.seed)),
        ("connections", num(opts.connections.max(opts.clients))),
        ("driver_threads", num(opts.clients)),
        ("batches", num(opts.batches)),
        ("batch_rows", num(opts.rows)),
        ("rows_ingested", num(outcome.rows)),
        ("wall_s", float(wall_s)),
        ("rows_per_s", float(outcome.rows as f64 / wall_s.max(1e-9))),
        (
            "latency_ms",
            obj(vec![
                ("p50", float(ms(percentile(&outcome.latencies, 0.50)))),
                ("p95", float(ms(percentile(&outcome.latencies, 0.95)))),
                ("p99", float(ms(percentile(&outcome.latencies, 0.99)))),
                (
                    "max",
                    float(ms(outcome.latencies.last().copied().unwrap_or_default())),
                ),
            ]),
        ),
        ("http_errors", num(outcome.errors)),
        (
            "hashes",
            JsonValue::Object(
                outcome
                    .hashes
                    .iter()
                    .map(|(k, v)| (k.clone(), text(v)))
                    .collect(),
            ),
        ),
    ];
    if let Some(offline) = &outcome.offline_hash {
        fields.push(("offline_hash", text(offline)));
        fields.push(("hash_verified", JsonValue::Bool(outcome.hash_ok())));
    }
    obj(fields)
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let mut opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!(
                "load_gen: {e}\nusage: load_gen [--addr ip:port] [--clients N] \
                 [--batches N] [--batch-rows N] [--seed N] [--coordinator] \
                 [--connections N] [--verify-hash] [--out FILE]"
            );
            std::process::exit(2);
        }
    };
    // Thousands of simultaneous sockets need more than the default
    // soft RLIMIT_NOFILE — and the in-process server's accept loop
    // needs headroom too.
    pg_serve::raise_nofile_limit();

    // Either target the given server or bring up our own.
    let mut local: Option<(Arc<AtomicBool>, std::thread::JoinHandle<()>)> = None;
    let addr = match opts.addr {
        Some(addr) => addr,
        None => {
            let flag = Arc::new(AtomicBool::new(false));
            let server = Server::bind(ServerConfig::default(), Arc::clone(&flag))
                .expect("bind in-process server");
            let addr = server.local_addr();
            let handle = std::thread::spawn(move || {
                server.run().expect("in-process server run");
            });
            local = Some((flag, handle));
            addr
        }
    };

    let outcome = if opts.connections > 0 {
        run_swarm(addr, &opts)
    } else {
        let go = Arc::new(Barrier::new(opts.clients));
        let shared = Arc::new(opts);
        let wall = Instant::now();
        let reports: Vec<ClientReport> = {
            let threads: Vec<_> = (0..shared.clients)
                .map(|id| {
                    let go = Arc::clone(&go);
                    let opts = Arc::clone(&shared);
                    std::thread::spawn(move || run_client(addr, id, &opts, &go))
                })
                .collect();
            threads
                .into_iter()
                .map(|t| t.join().expect("client thread"))
                .collect()
        };
        let wall = wall.elapsed();
        let mut latencies: Vec<Duration> =
            reports.iter().flat_map(|r| r.latencies.clone()).collect();
        latencies.sort();
        let outcome = RunOutcome {
            mode: if shared.coordinator {
                "coordinator"
            } else {
                "sessions"
            },
            rows: reports.iter().map(|r| r.rows).sum(),
            errors: reports.iter().map(|r| r.errors).sum(),
            latencies,
            wall,
            hashes: reports
                .iter()
                .enumerate()
                .map(|(id, r)| {
                    let label = if shared.coordinator {
                        format!("client {id} (merged)")
                    } else {
                        format!("load-{id}")
                    };
                    (label, r.final_hash.clone())
                })
                .collect(),
            offline_hash: None,
        };
        opts = Arc::try_unwrap(shared).unwrap_or_else(|_| panic!("opts still shared"));
        outcome
    };

    if opts.connections > 0 {
        println!(
            "pg-serve load_gen: swarm of {} keep-alive connections ({} driver threads) \
             x {} batches x ~{} rows (seed {})",
            opts.connections, opts.clients, opts.batches, opts.rows, opts.seed
        );
    } else {
        println!(
            "pg-serve load_gen: {} clients x {} batches x ~{} rows (seed {})",
            opts.clients, opts.batches, opts.rows, opts.seed
        );
    }
    println!("  target          {addr}");
    println!("  rows ingested   {}", outcome.rows);
    println!("  wall time       {:.2} s", outcome.wall.as_secs_f64());
    println!(
        "  throughput      {:.0} rows/s",
        outcome.rows as f64 / outcome.wall.as_secs_f64().max(1e-9)
    );
    println!(
        "  ingest latency  p50 {:.2} ms   p95 {:.2} ms   p99 {:.2} ms   max {:.2} ms",
        ms(percentile(&outcome.latencies, 0.50)),
        ms(percentile(&outcome.latencies, 0.95)),
        ms(percentile(&outcome.latencies, 0.99)),
        ms(outcome.latencies.last().copied().unwrap_or_default()),
    );
    println!("  http errors     {}", outcome.errors);
    for (label, hash) in &outcome.hashes {
        if opts.coordinator {
            println!("  {label}: merged schema hash {hash}");
        } else {
            println!("  session {label}: final hash {hash}");
        }
    }
    if let Some(offline) = &outcome.offline_hash {
        if outcome.hash_ok() {
            println!("  hash verified   server == offline discovery ({offline})");
        } else {
            eprintln!(
                "  HASH MISMATCH   offline discovery says {offline}, server disagrees — \
                 the serving layer changed the answer"
            );
        }
    }

    if let Some(path) = &opts.out {
        let report = report_json(&opts, &outcome);
        let text = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(path, text + "\n").expect("write load report");
        println!("  report          {path}");
    }

    if let Some((flag, handle)) = local {
        flag.store(true, Ordering::SeqCst);
        handle.join().expect("server thread");
    }
    if outcome.errors > 0 || !outcome.hash_ok() {
        std::process::exit(1);
    }
}
