//! HTTP load generator for pg-serve: N concurrent clients streaming
//! synthetic JSONL batches into their own live sessions, reporting
//! ingest latency percentiles and row throughput.
//!
//! Against an external server (CI smoke, manual runs):
//!
//! ```text
//! load_gen --addr 127.0.0.1:8686 --clients 2 --batches 5
//! ```
//!
//! Without `--addr` an in-process server is started on an ephemeral
//! port, loaded, and shut down — a self-contained benchmark run.
//!
//! With `--coordinator` the target is a cluster coordinator: batches go
//! through `POST /ingest` (WAL-backed shard routing) and the final hash
//! is read from the merged `GET /schema`. 503 responses are retried
//! honoring the server's `Retry-After` header in both modes.

use pg_serve::{Client, ClientResponse, Server, ServerConfig};
use pg_store::jsonl::Element;
use pg_synth::{random_schema, synthesize, SchemaParams, SynthSpec};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

struct Opts {
    addr: Option<SocketAddr>,
    clients: usize,
    batches: usize,
    rows: usize,
    seed: u64,
    coordinator: bool,
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        addr: None,
        clients: 4,
        batches: 20,
        rows: 200,
        seed: 42,
        coordinator: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--coordinator" {
            opts.coordinator = true;
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{} requires a value", args[i]))?;
        match args[i].as_str() {
            "--addr" => {
                opts.addr = Some(value.parse().map_err(|_| format!("bad --addr {value:?}"))?)
            }
            "--clients" => opts.clients = parse_num(value, "--clients")?,
            "--batches" => opts.batches = parse_num(value, "--batches")?,
            "--batch-rows" => opts.rows = parse_num(value, "--batch-rows")?,
            "--seed" => opts.seed = parse_num(value, "--seed")? as u64,
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 2;
    }
    if opts.coordinator && opts.addr.is_none() {
        return Err("--coordinator requires --addr (an external coordinator)".into());
    }
    if opts.clients == 0 || opts.batches == 0 || opts.rows == 0 {
        return Err("--clients, --batches, and --batch-rows must be at least 1".into());
    }
    Ok(opts)
}

fn parse_num(value: &str, flag: &str) -> Result<usize, String> {
    value
        .parse::<usize>()
        .map_err(|_| format!("{flag} must be an integer, got {value:?}"))
}

/// The JSONL bodies one client will post: nodes first, then edges, cut
/// into `batches` bodies of ~`rows` lines.
fn client_bodies(client_id: usize, opts: &Opts) -> Vec<String> {
    let seed = opts.seed ^ (client_id as u64).wrapping_mul(0x9e3779b97f4a7c15);
    let schema = random_schema(&SchemaParams::default(), seed);
    let target = opts.batches * opts.rows;
    let graph = synthesize(&SynthSpec::new(schema).sized_for(target), seed).graph;
    let mut lines: Vec<String> = graph
        .nodes()
        .map(|n| serde_json::to_string(&Element::Node(n.clone())).unwrap())
        .collect();
    lines.extend(
        graph
            .edges()
            .map(|e| serde_json::to_string(&Element::Edge(e.clone())).unwrap()),
    );
    lines
        .chunks(lines.len().div_ceil(opts.batches).max(1))
        .map(|c| c.join("\n"))
        .collect()
}

struct ClientReport {
    latencies: Vec<Duration>,
    rows: usize,
    errors: usize,
    final_hash: String,
}

/// POST `body`, retrying 503 busy responses. The sleep is the server's
/// own `Retry-After` (delta-seconds) when it sends one, a short default
/// otherwise, so a saturated server is backed off of, not hammered.
fn post_with_retry(
    client: &mut Client,
    path: &str,
    body: &[u8],
) -> std::io::Result<ClientResponse> {
    const ATTEMPTS: usize = 5;
    let mut resp = client.post(path, body)?;
    for _ in 1..ATTEMPTS {
        if resp.status != 503 {
            break;
        }
        let wait = resp
            .header("retry-after")
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map(Duration::from_secs)
            .unwrap_or(Duration::from_millis(250))
            .min(Duration::from_secs(2));
        std::thread::sleep(wait);
        resp = client.post(path, body)?;
    }
    Ok(resp)
}

fn run_client(addr: SocketAddr, client_id: usize, opts: &Opts, go: &Barrier) -> ClientReport {
    let bodies = client_bodies(client_id, opts);
    let session = format!("load-{client_id}");
    let mut client = Client::new(addr);
    // Coordinator mode: batches go through the cluster-wide ingest
    // route — no per-client session exists, and the hash comes from the
    // merged schema afterwards.
    let path = if opts.coordinator {
        "/ingest".to_owned()
    } else {
        let resp = post_with_retry(
            &mut client,
            "/sessions",
            format!("{{\"name\":\"{session}\"}}").as_bytes(),
        )
        .expect("create session");
        assert!(
            resp.status == 201 || resp.status == 409,
            "creating {session}: {}",
            resp.text()
        );
        format!("/sessions/{session}/ingest")
    };
    let mut report = ClientReport {
        latencies: Vec::with_capacity(bodies.len()),
        rows: 0,
        errors: 0,
        final_hash: String::new(),
    };
    go.wait();
    for body in &bodies {
        let rows = body.lines().count();
        let started = Instant::now();
        match post_with_retry(&mut client, &path, body.as_bytes()) {
            Ok(resp) if resp.status == 200 => {
                report.latencies.push(started.elapsed());
                report.rows += rows;
                if let Ok(v) = resp.json() {
                    if let Some(h) = v.get("hash").and_then(|h| h.as_str()) {
                        report.final_hash = h.to_owned();
                    }
                }
            }
            Ok(resp) => {
                report.errors += 1;
                eprintln!("{session}: HTTP {} — {}", resp.status, resp.text());
            }
            Err(e) => {
                report.errors += 1;
                eprintln!("{session}: {e}");
            }
        }
    }
    if opts.coordinator {
        if let Ok(resp) = client.get("/schema") {
            if resp.status == 200 {
                if let Ok(v) = resp.json() {
                    if let Some(h) = v.get("hash").and_then(|h| h.as_str()) {
                        report.final_hash = h.to_owned();
                    }
                }
            }
        }
    }
    report
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!(
                "load_gen: {e}\nusage: load_gen [--addr ip:port] [--clients N] \
                 [--batches N] [--batch-rows N] [--seed N] [--coordinator]"
            );
            std::process::exit(2);
        }
    };

    // Either target the given server or bring up our own.
    let mut local: Option<(Arc<AtomicBool>, std::thread::JoinHandle<()>)> = None;
    let addr = match opts.addr {
        Some(addr) => addr,
        None => {
            let flag = Arc::new(AtomicBool::new(false));
            let server = Server::bind(ServerConfig::default(), Arc::clone(&flag))
                .expect("bind in-process server");
            let addr = server.local_addr();
            let handle = std::thread::spawn(move || {
                server.run().expect("in-process server run");
            });
            local = Some((flag, handle));
            addr
        }
    };

    let go = Arc::new(Barrier::new(opts.clients));
    let opts = Arc::new(opts);
    let wall = Instant::now();
    let reports: Vec<ClientReport> = {
        let threads: Vec<_> = (0..opts.clients)
            .map(|id| {
                let go = Arc::clone(&go);
                let opts = Arc::clone(&opts);
                std::thread::spawn(move || run_client(addr, id, &opts, &go))
            })
            .collect();
        threads
            .into_iter()
            .map(|t| t.join().expect("client thread"))
            .collect()
    };
    let wall = wall.elapsed();

    let mut latencies: Vec<Duration> = reports.iter().flat_map(|r| r.latencies.clone()).collect();
    latencies.sort();
    let rows: usize = reports.iter().map(|r| r.rows).sum();
    let errors: usize = reports.iter().map(|r| r.errors).sum();

    println!(
        "pg-serve load_gen: {} clients x {} batches x ~{} rows (seed {})",
        opts.clients, opts.batches, opts.rows, opts.seed
    );
    println!("  target          {addr}");
    println!("  rows ingested   {rows}");
    println!("  wall time       {:.2} s", wall.as_secs_f64());
    println!(
        "  throughput      {:.0} rows/s",
        rows as f64 / wall.as_secs_f64().max(1e-9)
    );
    println!(
        "  ingest latency  p50 {:.2} ms   p95 {:.2} ms   p99 {:.2} ms   max {:.2} ms",
        ms(percentile(&latencies, 0.50)),
        ms(percentile(&latencies, 0.95)),
        ms(percentile(&latencies, 0.99)),
        ms(latencies.last().copied().unwrap_or_default()),
    );
    println!("  http errors     {errors}");
    for (id, r) in reports.iter().enumerate() {
        if opts.coordinator {
            println!("  client {id}: merged schema hash {}", r.final_hash);
        } else {
            println!("  session load-{id}: final hash {}", r.final_hash);
        }
    }

    if let Some((flag, handle)) = local {
        flag.store(true, Ordering::SeqCst);
        handle.join().expect("server thread");
    }
    if errors > 0 {
        std::process::exit(1);
    }
}
