//! Bounded-memory streaming discovery at scale, with a tracked,
//! machine-readable baseline.
//!
//! Feeds a long synthetic stream — produced round by round from
//! `pg_synth::StreamGen`, never materializing a graph — through one
//! sketched (`HiveConfig::stream`) `HiveSession`, and measures what the
//! bounded-memory claim actually promises:
//!
//! * **flat RSS**: resident memory after the last round must not exceed
//!   the plateau established by the first round plus a fixed slack —
//!   the footprint is a function of the schema, not the stream length;
//! * **checkpoint-size invariance**: the serialized checkpoint after
//!   round N is the same size as after round 1 (± framing) — sketches
//!   saturate, they do not grow;
//! * **schema agreement**: the streamed schema matches an exact batch
//!   discovery of one round within the paper's sampling-error bins
//!   (`pg_eval::stream_agreement`).
//!
//! All three are *asserted*, not just reported — CI's `stream` job runs
//! a reduced-scale smoke of this binary and relies on a non-zero exit
//! to flag regressions. The full run covers 100 M elements:
//!
//! ```text
//! bench_stream [--elements 100000000] [--round 1000000] [--seed 42]
//!              [--rss-slack-mb 512] [--agreement 0.90] [--out BENCH_stream.json]
//! ```
//!
//! Each round uses a derived seed and a disjoint id range
//! (`StreamGen::with_id_offset`), and the generator is dropped after
//! draining, so the *harness* is bounded-memory too — the measured RSS
//! is the session's, not an artifact of retaining the corpus.

use pg_eval::stream_agreement;
use pg_hive::{content_hash_hex, EmbeddingKind, HiveConfig, HiveSession, StreamConfig};
use pg_synth::{random_schema, NoiseProfile, SchemaParams, StreamGen, SynthSpec};
use serde_json::JsonValue;
use std::time::Instant;

// The vendored `serde_json` has no `json!` macro; assemble the report
// from the `Value` IR directly.
fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num(n: usize) -> JsonValue {
    JsonValue::U64(n as u64)
}

fn float(x: f64) -> JsonValue {
    JsonValue::F64(x)
}

fn text(s: &str) -> JsonValue {
    JsonValue::Str(s.to_string())
}

struct Opts {
    elements: usize,
    round: usize,
    seed: u64,
    rss_slack_mb: f64,
    agreement: f64,
    out: String,
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        elements: 100_000_000,
        round: 1_000_000,
        seed: 42,
        rss_slack_mb: 512.0,
        agreement: 0.90,
        out: "BENCH_stream.json".into(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{} requires a value", args[i]))?;
        match args[i].as_str() {
            "--elements" => {
                opts.elements = value.parse().map_err(|_| "bad --elements".to_string())?;
            }
            "--round" => {
                opts.round = value.parse().map_err(|_| "bad --round".to_string())?;
                if opts.round == 0 {
                    return Err("--round must be at least 1".into());
                }
            }
            "--seed" => opts.seed = value.parse().map_err(|_| "bad --seed".to_string())?,
            "--rss-slack-mb" => {
                opts.rss_slack_mb = value
                    .parse()
                    .map_err(|_| "bad --rss-slack-mb".to_string())?;
            }
            "--agreement" => {
                opts.agreement = value.parse().map_err(|_| "bad --agreement".to_string())?;
            }
            "--out" => opts.out = value.clone(),
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 2;
    }
    Ok(opts)
}

/// Resident set size in MiB, from `/proc/self/status` (Linux only —
/// this benchmark asserts on it, so it refuses to run elsewhere).
fn rss_mb() -> f64 {
    let status = std::fs::read_to_string("/proc/self/status")
        .expect("bench_stream reads /proc/self/status; run it on Linux");
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: f64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .expect("VmRSS is a number");
            return kb / 1024.0;
        }
    }
    panic!("no VmRSS line in /proc/self/status");
}

/// The sketched streaming configuration under test. Hashed embeddings
/// keep featurization training-free; post-processing runs once at
/// `finish()` (the streaming deployment shape); memoization and dedup
/// are on — in stream mode both are backed by the bounded
/// fingerprint store.
fn stream_config(seed: u64) -> HiveConfig {
    HiveConfig {
        embedding: EmbeddingKind::Hashed { dim: 32 },
        post_processing: false,
        datatype_sampling: Some(Default::default()),
        memoize: true,
        dedup: true,
        stream: Some(StreamConfig::default()),
        ..HiveConfig::default()
    }
    .with_seed(seed)
}

/// The exact twin: identical in everything except the accumulators.
fn exact_config(seed: u64) -> HiveConfig {
    HiveConfig {
        stream: None,
        ..stream_config(seed)
    }
}

/// Deterministic per-round seed (ids never feed the RNG, so rounds are
/// independent replicas under translated ids).
fn round_seed(seed: u64, round: u64) -> u64 {
    seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(round + 1)
}

fn main() {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("bench_stream: {e}");
            std::process::exit(2);
        }
    };

    // Same workload family as bench_discovery: 8 node / 6 edge types
    // with mild noise, so pattern dedup is exercised without making the
    // stream trivially repetitive.
    let params = SchemaParams {
        node_types: 8,
        edge_types: 6,
        ..Default::default()
    };
    let noise = NoiseProfile {
        unlabeled_fraction: 0.05,
        missing_optional_rate: 0.3,
        ..NoiseProfile::clean()
    };
    let schema = random_schema(&params, opts.seed);
    let spec = SynthSpec::new(schema)
        .sized_for(opts.round)
        .with_noise(noise);
    // Upper bound on ids handed out per round; keeps round id ranges
    // disjoint even when edge wiring falls short of its quota.
    let id_span = (spec.schema.node_types.len() * spec.nodes_per_type
        + spec.schema.edge_types.len() * spec.edges_per_type) as u64;
    let rounds = opts.elements.div_ceil(opts.round).max(1);

    eprintln!(
        "== bench_stream: {} elements in {} rounds of ~{} ==",
        opts.elements, rounds, opts.round
    );

    let mut session = HiveSession::new(stream_config(opts.seed));
    let mut round_reports = Vec::new();
    let mut elements_total = 0usize;
    let mut first_round = (0.0f64, 0usize); // (rss_mb, checkpoint_bytes)
    let started = Instant::now();

    for r in 0..rounds as u64 {
        let t0 = Instant::now();
        let gen = StreamGen::new(&spec, round_seed(opts.seed, r)).with_id_offset(r * id_span);
        let mut round_elements = 0usize;
        for chunk in gen {
            round_elements += chunk.len();
            let edges: Vec<pg_store::EdgeRecord> = chunk
                .edges
                .into_iter()
                .map(|se| pg_store::EdgeRecord {
                    edge: se.edge,
                    src_labels: se.src_labels,
                    tgt_labels: se.tgt_labels,
                })
                .collect();
            session.process_batch(&chunk.nodes, &edges);
        }
        elements_total += round_elements;

        let rss = rss_mb();
        let mem = session.memory_stats();
        let checkpoint_bytes = serde_json::to_string(&session.checkpoint())
            .expect("checkpoint serializes")
            .len();
        if r == 0 {
            first_round = (rss, checkpoint_bytes);
        }
        eprintln!(
            "   round {r:3}  {:>9} elements  rss {rss:7.1} MiB  accum {:>8} B  fp {:>5}  ckpt {:>8} B  {:.1}s",
            elements_total,
            mem.accum_bytes,
            mem.fingerprint_entries,
            checkpoint_bytes,
            t0.elapsed().as_secs_f64(),
        );
        round_reports.push(obj(vec![
            ("round", num(r as usize)),
            ("elements_total", num(elements_total)),
            ("rss_mb", float(rss)),
            ("accum_bytes", num(mem.accum_bytes)),
            ("fingerprint_entries", num(mem.fingerprint_entries)),
            ("checkpoint_bytes", num(checkpoint_bytes)),
            ("round_secs", float(t0.elapsed().as_secs_f64())),
        ]));
    }

    let final_rss = rss_mb();
    let final_checkpoint = serde_json::to_string(&session.checkpoint())
        .expect("checkpoint serializes")
        .len();
    let stream_result = session.finish();
    let stream_hash = content_hash_hex(&stream_result.schema);

    // The exact twin: one materialized round, batch-discovered with the
    // same pipeline but exact accumulators.
    eprintln!("   batch twin: synthesizing + discovering round 0 exactly");
    let batch = pg_synth::synthesize(&spec, round_seed(opts.seed, 0));
    let (nodes, edges) = pg_store::load(&batch.graph);
    let mut exact = HiveSession::new(exact_config(opts.seed));
    exact.process_batch(&nodes, &edges);
    let batch_result = exact.finish();
    let batch_hash = content_hash_hex(&batch_result.schema);
    drop(batch);

    let agreement = stream_agreement(&batch_result.schema, &stream_result.schema);
    eprintln!(
        "   agreement: {} matched / {} batch-only / {} stream-only types, \
         {:.1}% of {} properties in bin 0, {} cardinality disagreements",
        agreement.matched_types,
        agreement.batch_only,
        agreement.stream_only,
        agreement.agreement_fraction() * 100.0,
        agreement.property_bins.properties,
        agreement.cardinality_disagreements,
    );
    eprintln!(
        "   rss: first-round plateau {:.1} MiB, final {:.1} MiB (slack {:.0} MiB)",
        first_round.0, final_rss, opts.rss_slack_mb
    );
    eprintln!(
        "   checkpoint: {} B after round 1, {} B after round {rounds}",
        first_round.1, final_checkpoint
    );

    // Invariant 1: flat RSS — the plateau is set by the first round.
    let rss_ok = final_rss <= first_round.0 + opts.rss_slack_mb;
    // Invariant 2: checkpoint size is stream-length independent. Sketches
    // may still be filling during round 1, so allow them to *shrink or
    // saturate* — final ≤ first × 1.25 + 64 KiB of framing slack.
    let ckpt_ok = final_checkpoint as f64 <= first_round.1 as f64 * 1.25 + 65_536.0;
    // Invariant 3: the streamed schema agrees with the exact batch twin
    // within the sampling-error threshold.
    let agree_ok = agreement.within(opts.agreement);

    let report = obj(vec![
        ("benchmark", text("bench_stream")),
        ("seed", JsonValue::U64(opts.seed)),
        ("elements", num(elements_total)),
        ("rounds", num(rounds)),
        ("round_size", num(opts.round)),
        (
            "workload",
            obj(vec![
                ("node_types", num(params.node_types)),
                ("edge_types", num(params.edge_types)),
                ("unlabeled_fraction", float(noise.unlabeled_fraction)),
                ("missing_optional_rate", float(noise.missing_optional_rate)),
                ("embedding", text("hashed-32")),
                ("method", text("elsh-adaptive")),
                ("stream_config", text("default")),
            ]),
        ),
        (
            "memory",
            obj(vec![
                ("first_round_rss_mb", float(first_round.0)),
                ("final_rss_mb", float(final_rss)),
                ("rss_slack_mb", float(opts.rss_slack_mb)),
                ("first_round_checkpoint_bytes", num(first_round.1)),
                ("final_checkpoint_bytes", num(final_checkpoint)),
            ]),
        ),
        (
            "agreement",
            obj(vec![
                ("matched_types", num(agreement.matched_types)),
                ("batch_only", num(agreement.batch_only)),
                ("stream_only", num(agreement.stream_only)),
                (
                    "cardinality_disagreements",
                    num(agreement.cardinality_disagreements),
                ),
                ("properties", num(agreement.property_bins.properties)),
                (
                    "bins",
                    JsonValue::Array(
                        agreement
                            .property_bins
                            .fractions
                            .iter()
                            .map(|f| float(*f))
                            .collect(),
                    ),
                ),
                ("agreement_fraction", float(agreement.agreement_fraction())),
                ("threshold", float(opts.agreement)),
            ]),
        ),
        ("stream_schema_hash", text(&stream_hash)),
        ("batch_schema_hash", text(&batch_hash)),
        ("total_secs", float(started.elapsed().as_secs_f64())),
        (
            "asserts",
            obj(vec![
                ("flat_rss", JsonValue::Bool(rss_ok)),
                ("checkpoint_invariant", JsonValue::Bool(ckpt_ok)),
                ("schema_agreement", JsonValue::Bool(agree_ok)),
            ]),
        ),
    ]);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&opts.out, json + "\n").expect("write benchmark report");
    eprintln!("   wrote {}", opts.out);

    assert!(
        rss_ok,
        "RSS grew with stream length: {:.1} MiB after round 1 vs {final_rss:.1} MiB after round {rounds} (slack {:.0} MiB)",
        first_round.0, opts.rss_slack_mb
    );
    assert!(
        ckpt_ok,
        "checkpoint grew with stream length: {} B after round 1 vs {final_checkpoint} B after round {rounds}",
        first_round.1
    );
    assert!(
        agree_ok,
        "streamed schema disagrees with the exact batch twin: {agreement:?}"
    );
    eprintln!(
        "   OK: flat RSS, invariant checkpoint, schema within sampling error ({:.1}s total)",
        started.elapsed().as_secs_f64()
    );
}
