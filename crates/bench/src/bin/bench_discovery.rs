//! End-to-end discovery benchmark with a tracked, machine-readable
//! baseline.
//!
//! Runs the full PG-HIVE pipeline over seeded `pg-synth` graphs at the
//! configured sizes, for threads {1, all} × dedup {on, off}, and writes
//! `BENCH_discovery.json` at the repo root (or `--out`). Reported per
//! run: the per-stage `BatchTiming` breakdown, the post-processing
//! (`finish`) time, the structural-fingerprint dedup ratio, and the
//! canonical schema content hash.
//!
//! Two invariants are *asserted*, not just reported (CI's `perf-smoke`
//! job relies on this):
//!
//! * the dedup fast path and the naive path produce the **same schema
//!   content hash** at every size and thread count;
//! * the dedup ratio is ≥ 1.
//!
//! Timings are reported without thresholds — regressions are judged by
//! humans diffing the JSON across commits, not by flaky CI gates.
//!
//! ```text
//! bench_discovery [--sizes 100000,1000000] [--seed 42] [--repeat 2] [--out <file>]
//! ```
//!
//! Each configuration is run `--repeat` times and the fastest run is
//! reported — the first pass over a freshly synthesized graph pays
//! page-fault warmup that would otherwise bias whichever configuration
//! happens to run first.

use pg_hive::{content_hash_hex, EmbeddingKind, HiveConfig, HiveSession};
use pg_synth::{random_schema, synthesize, NoiseProfile, SchemaParams, SynthSpec};
use serde_json::JsonValue;
use std::time::Instant;

// The vendored `serde_json` has no `json!` macro, so the report is
// assembled from the `Value` IR directly; these keep the call sites
// readable.
fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num(n: usize) -> JsonValue {
    JsonValue::U64(n as u64)
}

fn float(x: f64) -> JsonValue {
    JsonValue::F64(x)
}

fn text(s: &str) -> JsonValue {
    JsonValue::Str(s.to_string())
}

struct Opts {
    sizes: Vec<usize>,
    seed: u64,
    repeat: usize,
    out: String,
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        sizes: vec![100_000, 1_000_000],
        seed: 42,
        repeat: 2,
        out: "BENCH_discovery.json".into(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{} requires a value", args[i]))?;
        match args[i].as_str() {
            "--sizes" => {
                opts.sizes = value
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .map_err(|_| format!("bad size {s:?}"))
                    })
                    .collect::<Result<_, _>>()?;
                if opts.sizes.is_empty() {
                    return Err("--sizes must name at least one size".into());
                }
            }
            "--seed" => {
                opts.seed = value.parse().map_err(|_| "bad --seed".to_string())?;
            }
            "--repeat" => {
                opts.repeat = value.parse().map_err(|_| "bad --repeat".to_string())?;
                if opts.repeat == 0 {
                    return Err("--repeat must be at least 1".into());
                }
            }
            "--out" => opts.out = value.clone(),
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 2;
    }
    Ok(opts)
}

/// One pipeline configuration under test. Hashed embeddings keep the
/// featurize stage training-free (Word2Vec training time would swamp
/// the hot path this benchmark tracks); post-processing is deferred to
/// `finish()` and timed separately, with sampled datatype inference.
fn config(seed: u64, threads: usize, dedup: bool) -> HiveConfig {
    HiveConfig {
        embedding: EmbeddingKind::Hashed { dim: 32 },
        post_processing: false,
        datatype_sampling: Some(Default::default()),
        threads,
        dedup,
        ..HiveConfig::default()
    }
    .with_seed(seed)
}

struct Run {
    threads_requested: usize,
    threads_resolved: usize,
    dedup: bool,
    timing: pg_hive::BatchTiming,
    finish_ms: f64,
    total_ms: f64,
    hash: String,
}

fn run_once(
    nodes: &[pg_store::NodeRecord],
    edges: &[pg_store::EdgeRecord],
    seed: u64,
    threads: usize,
    dedup: bool,
) -> Run {
    let start = Instant::now();
    let mut session = HiveSession::new(config(seed, threads, dedup));
    let timing = session.process_batch(nodes, edges);
    let t_finish = Instant::now();
    let result = session.finish();
    let finish_ms = ms(t_finish.elapsed());
    let total_ms = ms(start.elapsed());
    Run {
        threads_requested: threads,
        threads_resolved: timing.threads,
        dedup,
        timing,
        finish_ms,
        total_ms,
        hash: content_hash_hex(&result.schema),
    }
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn dedup_json(d: &pg_hive::DedupStats) -> JsonValue {
    obj(vec![
        ("records", num(d.records)),
        ("distinct", num(d.distinct)),
        ("ratio", float(d.ratio())),
    ])
}

fn run_json(r: &Run) -> JsonValue {
    let t = &r.timing;
    obj(vec![
        ("threads_requested", num(r.threads_requested)),
        ("threads_resolved", num(r.threads_resolved)),
        ("dedup", JsonValue::Bool(r.dedup)),
        ("nodes", num(t.nodes)),
        ("edges", num(t.edges)),
        ("node_dedup", dedup_json(&t.node_dedup)),
        ("edge_dedup", dedup_json(&t.edge_dedup)),
        (
            "stages_ms",
            obj(vec![
                ("preprocess", float(ms(t.preprocess))),
                ("cluster", float(ms(t.cluster))),
                ("extract", float(ms(t.extract))),
                ("finish", float(r.finish_ms)),
            ]),
        ),
        ("batch_ms", float(ms(t.total))),
        ("total_ms", float(r.total_ms)),
        ("schema_hash", text(&r.hash)),
    ])
}

fn main() {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("bench_discovery: {e}");
            std::process::exit(2);
        }
    };

    // A realistic-ish synthetic workload: 8 node types / 6 edge types
    // with mild structural noise, so fingerprints are numerous enough to
    // exercise the grouping (optional props toggle per record) while
    // still collapsing by orders of magnitude — the regime the dedup
    // fast path targets.
    let params = SchemaParams {
        node_types: 8,
        edge_types: 6,
        ..Default::default()
    };
    let noise = NoiseProfile {
        unlabeled_fraction: 0.05,
        missing_optional_rate: 0.3,
        ..NoiseProfile::clean()
    };

    let mut size_reports = Vec::new();
    for &size in &opts.sizes {
        eprintln!("== size {size} ==");
        let schema = random_schema(&params, opts.seed);
        let spec = SynthSpec::new(schema).sized_for(size).with_noise(noise);
        let out = synthesize(&spec, opts.seed);
        let (nodes, edges) = pg_store::load(&out.graph);
        eprintln!("   generated {} nodes, {} edges", nodes.len(), edges.len());

        // Parse stage: serialize the graph once, then time the ingest
        // parse over the same bytes through the zero-copy decoder (the
        // default path) and the serde_json reference path. Both decoded
        // graphs must re-serialize to the input byte-for-byte — this is
        // the CI self-check that the zero-copy path is bit-identical.
        let doc = pg_store::jsonl::to_jsonl(&out.graph);
        let records = out.graph.node_count() + out.graph.edge_count();
        let mut parse_ms = f64::INFINITY;
        let mut parse_reference_ms = f64::INFINITY;
        for rep in 0..opts.repeat {
            let t = Instant::now();
            let (g, q) = pg_store::jsonl::from_jsonl_with_policy(&doc, pg_store::ErrorPolicy::Strict)
                .expect("synthesized dump is clean");
            parse_ms = parse_ms.min(ms(t.elapsed()));
            let t = Instant::now();
            let (g_ref, q_ref) =
                pg_store::jsonl::from_jsonl_with_policy_reference(&doc, pg_store::ErrorPolicy::Strict)
                    .expect("synthesized dump is clean");
            parse_reference_ms = parse_reference_ms.min(ms(t.elapsed()));
            if rep == 0 {
                assert_eq!(q.len(), 0);
                assert_eq!(q_ref.len(), 0);
                let round = pg_store::jsonl::to_jsonl(&g);
                assert_eq!(round, doc, "zero-copy parse diverged from input");
                assert_eq!(
                    pg_store::jsonl::to_jsonl(&g_ref),
                    round,
                    "reference parse diverged from zero-copy parse"
                );
            }
        }
        eprintln!(
            "   parse ({} records, {:.1} MiB): {parse_ms:.1} ms zero-copy vs {parse_reference_ms:.1} ms reference ({:.2}x)",
            records,
            doc.len() as f64 / (1024.0 * 1024.0),
            parse_reference_ms / parse_ms,
        );

        // Best-of-`repeat` per configuration: the first pass over a
        // freshly synthesized graph pays page-fault warmup that can
        // exceed the work itself on small machines, so the minimum is
        // the stable statistic. Hashes are asserted across *all* runs.
        let mut runs = Vec::new();
        for threads in [1usize, 0] {
            for dedup in [true, false] {
                let mut best: Option<Run> = None;
                for _ in 0..opts.repeat {
                    let r = run_once(&nodes, &edges, opts.seed, threads, dedup);
                    eprintln!(
                        "   threads={} dedup={}  batch {:8.1} ms  (pre {:.1} / cluster {:.1} / extract {:.1})  finish {:.1} ms  node-ratio {:.0}  hash {}",
                        r.threads_resolved,
                        if dedup { "on " } else { "off" },
                        ms(r.timing.total),
                        ms(r.timing.preprocess),
                        ms(r.timing.cluster),
                        ms(r.timing.extract),
                        r.finish_ms,
                        r.timing.node_dedup.ratio(),
                        &r.hash,
                    );
                    if let Some(b) = &best {
                        assert_eq!(r.hash, b.hash, "schema hash diverged across repeats");
                    }
                    if best.as_ref().is_none_or(|b| r.total_ms < b.total_ms) {
                        best = Some(r);
                    }
                }
                runs.push(best.expect("repeat >= 1"));
            }
        }

        // Invariant 1: every configuration agrees on the schema.
        let hash = runs[0].hash.clone();
        for r in &runs {
            assert_eq!(
                r.hash, hash,
                "schema hash diverged (threads={}, dedup={})",
                r.threads_requested, r.dedup
            );
        }
        // Invariant 2: dedup never inflates the input.
        for r in &runs {
            assert!(r.timing.node_dedup.ratio() >= 1.0);
            assert!(r.timing.edge_dedup.ratio() >= 1.0);
        }

        // Speedup of the fast path vs the naive path, same thread count,
        // over the end-to-end wall clock.
        let total_of = |threads: usize, dedup: bool| -> f64 {
            runs.iter()
                .find(|r| r.threads_requested == threads && r.dedup == dedup)
                .map(|r| r.total_ms)
                .unwrap()
        };
        let speedup_seq = total_of(1, false) / total_of(1, true);
        let speedup_par = total_of(0, false) / total_of(0, true);
        eprintln!(
            "   speedup (dedup off/on): {speedup_seq:.2}x sequential, {speedup_par:.2}x parallel"
        );

        size_reports.push(obj(vec![
            ("size", num(size)),
            ("nodes", num(nodes.len())),
            ("edges", num(edges.len())),
            ("schema_hash", text(&hash)),
            (
                "parse",
                obj(vec![
                    ("parse_ms", float(parse_ms)),
                    ("parse_reference_ms", float(parse_reference_ms)),
                    ("speedup", float(parse_reference_ms / parse_ms)),
                    ("bytes", num(doc.len())),
                    ("records", num(records)),
                ]),
            ),
            (
                "runs",
                JsonValue::Array(runs.iter().map(run_json).collect()),
            ),
            (
                "speedup_end_to_end",
                obj(vec![
                    ("threads_1", float(speedup_seq)),
                    ("threads_all", float(speedup_par)),
                ]),
            ),
        ]));
    }

    let report = obj(vec![
        ("benchmark", text("bench_discovery")),
        ("seed", JsonValue::U64(opts.seed)),
        (
            "workload",
            obj(vec![
                ("node_types", num(params.node_types)),
                ("edge_types", num(params.edge_types)),
                ("unlabeled_fraction", float(noise.unlabeled_fraction)),
                ("missing_optional_rate", float(noise.missing_optional_rate)),
                ("embedding", text("hashed-32")),
                ("method", text("elsh-adaptive")),
            ]),
        ),
        ("sizes", JsonValue::Array(size_reports)),
    ]);
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&opts.out, text + "\n").expect("write benchmark report");
    eprintln!("wrote {}", opts.out);
}
