//! Allocation audit for the ingest path.
//!
//! Counts heap allocations (via a counting `#[global_allocator]`) for
//! the zero-copy JSONL decoder against the `serde_json` reference path,
//! over the same synthesized corpus, and asserts two properties:
//!
//! * the zero-copy decoder stays under a fixed per-record steady-state
//!   allocation ceiling;
//! * it allocates at least `MIN_REDUCTION`× less per record than the
//!   reference path.
//!
//! Two measurements are reported:
//!
//! * **decode-only**: a session-lifetime `JsonlDecoder` re-decoding the
//!   corpus line by line after a warm-up pass (so the symbol pool is
//!   fully populated — this is the steady state a long-lived ingest
//!   session sees), vs `serde_json::from_str::<Element>` per line;
//! * **document load**: `from_jsonl_with_policy` vs the `_reference`
//!   variant, end to end including graph assembly.
//!
//! The counting allocator is gated behind the bench-only `alloc-count`
//! feature so nothing else in the workspace pays for the atomics:
//!
//! ```text
//! cargo run --release -p pg-bench --features alloc-count --bin alloc_audit
//! ```
//!
//! Results land in `results/alloc_audit.json`.

#[cfg(not(feature = "alloc-count"))]
fn main() {
    eprintln!(
        "alloc_audit: built without the counting allocator; rebuild with\n  \
         cargo run --release -p pg-bench --features alloc-count --bin alloc_audit"
    );
}

#[cfg(feature = "alloc-count")]
mod counting {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);

    /// Forwards to the system allocator, counting every allocation and
    /// reallocation. Deallocations are free, so the counters measure
    /// allocator *traffic*, not live bytes.
    pub struct Counting;

    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static GLOBAL: Counting = Counting;

    /// (allocation count, bytes requested) since process start.
    pub fn snapshot() -> (u64, u64) {
        (ALLOCS.load(Ordering::Relaxed), BYTES.load(Ordering::Relaxed))
    }
}

#[cfg(feature = "alloc-count")]
fn main() {
    use pg_store::jsonl::{from_jsonl_with_policy, from_jsonl_with_policy_reference, to_jsonl, Element};
    use pg_store::{ErrorPolicy, JsonlDecoder};
    use pg_synth::{random_schema, synthesize, NoiseProfile, SchemaParams, SynthSpec};

    /// Per-record steady-state allocation ceiling for the zero-copy
    /// decoder. A decoded element still owns its storage (label set,
    /// property map nodes, string values), so the floor is not zero —
    /// but it must stay a small constant independent of line length.
    const DECODE_CEILING: f64 = 8.0;
    /// Required per-record allocation reduction vs the reference path.
    const MIN_REDUCTION: f64 = 10.0;

    const SIZE: usize = 100_000;
    const SEED: u64 = 42;

    // Same workload shape as bench_discovery, so the corpus here is the
    // corpus the timing benchmarks run over.
    let params = SchemaParams {
        node_types: 8,
        edge_types: 6,
        ..Default::default()
    };
    let noise = NoiseProfile {
        unlabeled_fraction: 0.05,
        missing_optional_rate: 0.3,
        ..NoiseProfile::clean()
    };
    let schema = random_schema(&params, SEED);
    let spec = SynthSpec::new(schema).sized_for(SIZE).with_noise(noise);
    let out = synthesize(&spec, SEED);
    let doc = to_jsonl(&out.graph);
    let records = (out.graph.node_count() + out.graph.edge_count()) as f64;
    let lines: Vec<&str> = doc.lines().filter(|l| !l.trim().is_empty()).collect();
    eprintln!(
        "corpus: {} records, {:.1} MiB",
        lines.len(),
        doc.len() as f64 / (1024.0 * 1024.0)
    );

    // --- decode-only, steady state ----------------------------------
    // Warm-up pass populates the decoder's symbol pool; the measured
    // pass then sees the long-lived-session steady state.
    let mut decoder = JsonlDecoder::new();
    for line in &lines {
        decoder.decode_element(line).expect("clean corpus");
    }
    let (a0, b0) = counting::snapshot();
    for line in &lines {
        let elem = decoder.decode_element(line).expect("clean corpus");
        std::hint::black_box(&elem);
    }
    let (a1, b1) = counting::snapshot();
    let decode_allocs = (a1 - a0) as f64 / records;
    let decode_bytes = (b1 - b0) as f64 / records;

    let (a0, b0) = counting::snapshot();
    for line in &lines {
        let elem: Element = serde_json::from_str(line).expect("clean corpus");
        std::hint::black_box(&elem);
    }
    let (a1, b1) = counting::snapshot();
    let decode_ref_allocs = (a1 - a0) as f64 / records;
    let decode_ref_bytes = (b1 - b0) as f64 / records;

    // --- document load, end to end ----------------------------------
    let (a0, b0) = counting::snapshot();
    let (g, _) = from_jsonl_with_policy(&doc, ErrorPolicy::Strict).expect("clean corpus");
    let (a1, b1) = counting::snapshot();
    std::hint::black_box(&g);
    let load_allocs = (a1 - a0) as f64 / records;
    let load_bytes = (b1 - b0) as f64 / records;

    let (a0, b0) = counting::snapshot();
    let (g_ref, _) = from_jsonl_with_policy_reference(&doc, ErrorPolicy::Strict).expect("clean corpus");
    let (a1, b1) = counting::snapshot();
    std::hint::black_box(&g_ref);
    let load_ref_allocs = (a1 - a0) as f64 / records;
    let load_ref_bytes = (b1 - b0) as f64 / records;

    let decode_reduction = decode_ref_allocs / decode_allocs;
    let load_reduction = load_ref_allocs / load_allocs;

    eprintln!("decode-only  per record: {decode_allocs:.2} allocs ({decode_bytes:.0} B) zero-copy vs {decode_ref_allocs:.2} allocs ({decode_ref_bytes:.0} B) reference — {decode_reduction:.1}x fewer");
    eprintln!("document load per record: {load_allocs:.2} allocs ({load_bytes:.0} B) zero-copy vs {load_ref_allocs:.2} allocs ({load_ref_bytes:.0} B) reference — {load_reduction:.1}x fewer");

    let report = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"alloc_audit\",\n",
            "  \"seed\": {seed},\n",
            "  \"records\": {records},\n",
            "  \"bytes\": {bytes},\n",
            "  \"decode_only\": {{\n",
            "    \"allocs_per_record\": {da:.4},\n",
            "    \"bytes_per_record\": {db:.1},\n",
            "    \"reference_allocs_per_record\": {dra:.4},\n",
            "    \"reference_bytes_per_record\": {drb:.1},\n",
            "    \"reduction\": {dred:.2},\n",
            "    \"ceiling\": {ceil:.1}\n",
            "  }},\n",
            "  \"document_load\": {{\n",
            "    \"allocs_per_record\": {la:.4},\n",
            "    \"bytes_per_record\": {lb:.1},\n",
            "    \"reference_allocs_per_record\": {lra:.4},\n",
            "    \"reference_bytes_per_record\": {lrb:.1},\n",
            "    \"reduction\": {lred:.2}\n",
            "  }}\n",
            "}}\n"
        ),
        seed = SEED,
        records = records as u64,
        bytes = doc.len(),
        da = decode_allocs,
        db = decode_bytes,
        dra = decode_ref_allocs,
        drb = decode_ref_bytes,
        dred = decode_reduction,
        ceil = DECODE_CEILING,
        la = load_allocs,
        lb = load_bytes,
        lra = load_ref_allocs,
        lrb = load_ref_bytes,
        lred = load_reduction,
    );
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/alloc_audit.json", &report).expect("write results/alloc_audit.json");
    eprintln!("wrote results/alloc_audit.json");

    assert!(
        decode_allocs <= DECODE_CEILING,
        "zero-copy decode allocates {decode_allocs:.2}/record, ceiling is {DECODE_CEILING}"
    );
    assert!(
        decode_reduction >= MIN_REDUCTION,
        "decode reduction {decode_reduction:.2}x below required {MIN_REDUCTION}x"
    );
    eprintln!("alloc_audit: OK (ceiling {DECODE_CEILING}, reduction >= {MIN_REDUCTION}x)");
}
