//! # pg-bench
//!
//! Criterion benchmarks regenerating the paper's timing results and the
//! design-choice ablations DESIGN.md calls out:
//!
//! * `fig5_runtime` — execution time until type discovery per dataset ×
//!   noise × method (Figure 5).
//! * `fig7_incremental` — per-batch incremental processing time
//!   (Figure 7).
//! * `fig8_datatypes` — full-scan vs sampled data-type inference cost.
//! * `lsh_micro` — ELSH/MinHash signature and clustering throughput.
//! * `embed_ablation` — Word2Vec vs hashed label embeddings.
//! * `adaptive_ablation` — adaptive vs fixed LSH parameters.
//! * `merge_ablation` — signature (AND) vs OR-rule clustering, and
//!   endpoint-aware vs label-only edge merging.
//!
//! Shared helpers live here so every bench prepares data identically.

use pg_datasets::{generate, inject_noise, spec_by_name, GroundTruth, NoiseConfig};
use pg_embed::Word2VecConfig;
use pg_hive::{EmbeddingKind, HiveConfig, LshMethod};
use pg_model::PropertyGraph;

/// Datasets exercised by default in benches: one small/simple, one
/// multi-labeled, one heterogeneous. (Benching all eight at every noise
/// level would take tens of minutes under Criterion's sampling.)
pub const BENCH_DATASETS: [&str; 3] = ["POLE", "MB6", "ICIJ"];

/// Benchmark scale (fraction of the default generator sizes).
pub const BENCH_SCALE: f64 = 0.25;

/// Prepare one noisy benchmark graph.
pub fn bench_graph(
    dataset: &str,
    noise: f64,
    label_availability: f64,
) -> (PropertyGraph, GroundTruth) {
    let spec = spec_by_name(dataset)
        .unwrap_or_else(|| panic!("unknown dataset {dataset}"))
        .scaled(BENCH_SCALE);
    let (mut graph, gt) = generate(&spec, 42);
    inject_noise(
        &mut graph,
        NoiseConfig {
            property_removal: noise,
            label_availability,
            seed: 7,
        },
    );
    (graph, gt)
}

/// The PG-HIVE configuration used in benchmarks (small embedder, no
/// post-processing — matching the "time until type discovery" scope of
/// Figure 5).
pub fn bench_hive_config(method: LshMethod) -> HiveConfig {
    HiveConfig {
        method,
        embedding: EmbeddingKind::Word2Vec(Word2VecConfig {
            dim: 8,
            epochs: 4,
            max_pairs_per_epoch: 50_000,
            ..Default::default()
        }),
        post_processing: false,
        ..Default::default()
    }
}
