//! Metamorphic transforms: graph rewrites that must not change what a
//! schema-discovery run sees, up to renaming.
//!
//! * [`permute_ids`] — relabel element ids by a random permutation and
//!   shuffle insertion order. Discovery output must induce the same
//!   partition (modulo the id map).
//! * [`rename_graph_labels`] / [`rename_schema_labels`] — apply an
//!   injective label renaming. Discovery output must be the same schema
//!   with labels renamed.

use pg_model::{EdgeId, LabelSet, NodeId, PropertyGraph, SchemaGraph};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Permute node and edge ids by a seeded random permutation and shuffle
/// insertion order. Returns the rewritten graph plus the old→new id
/// maps (so ground-truth assignments can follow along via
/// [`crate::TypeAssignment::remapped`]).
pub fn permute_ids(
    graph: &PropertyGraph,
    seed: u64,
) -> (
    PropertyGraph,
    HashMap<NodeId, NodeId>,
    HashMap<EdgeId, EdgeId>,
) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    let node_ids: Vec<NodeId> = graph.nodes().map(|n| n.id).collect();
    let mut node_perm = node_ids.clone();
    node_perm.shuffle(&mut rng);
    let node_map: HashMap<NodeId, NodeId> = node_ids
        .iter()
        .copied()
        .zip(node_perm.iter().copied())
        .collect();

    let edge_ids: Vec<EdgeId> = graph.edges().map(|e| e.id).collect();
    let mut edge_perm = edge_ids.clone();
    edge_perm.shuffle(&mut rng);
    let edge_map: HashMap<EdgeId, EdgeId> = edge_ids
        .iter()
        .copied()
        .zip(edge_perm.iter().copied())
        .collect();

    let mut node_order: Vec<usize> = (0..node_ids.len()).collect();
    node_order.shuffle(&mut rng);
    let mut edge_order: Vec<usize> = (0..edge_ids.len()).collect();
    edge_order.shuffle(&mut rng);

    let nodes: Vec<_> = graph.nodes().collect();
    let edges: Vec<_> = graph.edges().collect();
    let mut out = PropertyGraph::with_capacity(nodes.len(), edges.len());
    for i in node_order {
        let mut n = nodes[i].clone();
        n.id = node_map[&n.id];
        out.add_node(n).expect("a permutation keeps ids unique");
    }
    for i in edge_order {
        let mut e = edges[i].clone();
        e.id = edge_map[&e.id];
        e.src = node_map[&e.src];
        e.tgt = node_map[&e.tgt];
        out.add_edge(e).expect("permuted endpoints exist");
    }
    (out, node_map, edge_map)
}

fn map_labels(ls: &LabelSet, rename: &dyn Fn(&str) -> String) -> LabelSet {
    LabelSet::from_iter(ls.iter().map(|l| rename(l.as_ref())))
}

/// Apply a label renaming to every node and edge. The renaming should
/// be injective on the labels actually used, or distinct types may
/// collapse.
pub fn rename_graph_labels(
    graph: &PropertyGraph,
    rename: &dyn Fn(&str) -> String,
) -> PropertyGraph {
    let mut out = PropertyGraph::with_capacity(graph.node_count(), graph.edge_count());
    for n in graph.nodes() {
        let mut n = n.clone();
        n.labels = map_labels(&n.labels, rename);
        out.add_node(n).expect("ids unchanged by renaming");
    }
    for e in graph.edges() {
        let mut e = e.clone();
        e.labels = map_labels(&e.labels, rename);
        out.add_edge(e).expect("ids unchanged by renaming");
    }
    out
}

/// Apply the same renaming to a schema (type labels and edge endpoint
/// labels), producing the expected discovery output for a renamed graph.
pub fn rename_schema_labels(schema: &SchemaGraph, rename: &dyn Fn(&str) -> String) -> SchemaGraph {
    let mut s = schema.clone();
    for t in &mut s.node_types {
        t.labels = map_labels(&t.labels, rename);
    }
    for t in &mut s.edge_types {
        t.labels = map_labels(&t.labels, rename);
        t.src_labels = map_labels(&t.src_labels, rename);
        t.tgt_labels = map_labels(&t.tgt_labels, rename);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{random_schema, SchemaParams};
    use crate::{synthesize, SynthSpec};
    use std::collections::BTreeSet;

    fn sample() -> crate::SynthOutput {
        let schema = random_schema(&SchemaParams::default(), 11);
        synthesize(&SynthSpec::new(schema), 11)
    }

    #[test]
    fn permutation_is_a_bijection_preserving_structure() {
        let out = sample();
        let (permuted, node_map, edge_map) = permute_ids(&out.graph, 42);
        assert_eq!(permuted.node_count(), out.graph.node_count());
        assert_eq!(permuted.edge_count(), out.graph.edge_count());
        let new_ids: BTreeSet<_> = node_map.values().collect();
        assert_eq!(new_ids.len(), node_map.len(), "node map is injective");
        let new_eids: BTreeSet<_> = edge_map.values().collect();
        assert_eq!(new_eids.len(), edge_map.len(), "edge map is injective");
        for n in out.graph.nodes() {
            let moved = permuted.node(node_map[&n.id]).expect("mapped node exists");
            assert_eq!(moved.labels, n.labels);
            assert_eq!(moved.props, n.props);
        }
        for e in out.graph.edges() {
            let moved = permuted.edge(edge_map[&e.id]).expect("mapped edge exists");
            assert_eq!(moved.src, node_map[&e.src]);
            assert_eq!(moved.tgt, node_map[&e.tgt]);
            assert_eq!(moved.labels, e.labels);
        }
    }

    #[test]
    fn renaming_back_is_identity_on_labels() {
        let out = sample();
        let fwd = |l: &str| format!("X_{l}");
        let back = |l: &str| l.strip_prefix("X_").unwrap_or(l).to_owned();
        let renamed = rename_graph_labels(&out.graph, &fwd);
        let restored = rename_graph_labels(&renamed, &back);
        for (a, b) in out.graph.nodes().zip(restored.nodes()) {
            assert_eq!(a.labels, b.labels);
        }
        for (a, b) in out.graph.edges().zip(restored.edges()) {
            assert_eq!(a.labels, b.labels);
        }
    }

    #[test]
    fn schema_renaming_tracks_graph_renaming() {
        let schema = random_schema(&SchemaParams::default(), 13);
        let fwd = |l: &str| format!("Z{l}");
        let renamed = rename_schema_labels(&schema, &fwd);
        assert_eq!(renamed.node_types.len(), schema.node_types.len());
        for (a, b) in schema.node_types.iter().zip(renamed.node_types.iter()) {
            assert_eq!(a.labels.len(), b.labels.len());
            for l in b.labels.iter() {
                assert!(l.as_ref().starts_with('Z'));
            }
        }
        for (a, b) in schema.edge_types.iter().zip(renamed.edge_types.iter()) {
            assert_eq!(a.src_labels.len(), b.src_labels.len());
            assert_eq!(a.tgt_labels.len(), b.tgt_labels.len());
        }
    }
}
