//! # pg-synth
//!
//! Ground-truth synthetic property graphs, generated *from* a declared
//! [`pg_model::SchemaGraph`].
//!
//! `pg-datasets` builds twins of the paper's evaluation datasets from
//! hand-written specs; this crate closes the opposite loop: start from
//! a schema (hand-written or randomly drawn), emit a
//! [`pg_model::PropertyGraph`] whose every node and edge carries a
//! *known* type assignment, and use that as a correctness oracle —
//!
//! * **discovery** on a noise-free generated graph must recover the
//!   generating schema (F1\* = 1.0 against the known assignment), and
//! * **validation** of the generated graph against the declared schema
//!   must report zero violations, even in STRICT mode.
//!
//! The generator is seeded and single-threaded: for a fixed
//! [`SynthSpec`] and seed the output is bit-identical on every run and
//! every thread-count setting, so oracle failures reproduce from a
//! one-line CLI invocation (`pg-hive synth … --seed N`).
//!
//! ## Knobs
//!
//! * [`NoiseProfile`] — unlabeled-node fraction, missing-optional-
//!   property rate, spurious-label rate, applied on top of the clean
//!   graph (all zero by default; a clean graph is the oracle baseline).
//! * [`SchemaParams`] — shape of randomly drawn ground-truth schemas:
//!   type counts, properties per type, multi-label overlap, per-edge-
//!   type cardinality profiles.
//! * [`ValueModel`] — value distributions per [`pg_model::DataType`]
//!   (integer range, float grid, string cardinality, date window).
//! * Metamorphic transforms ([`transform`]) — id permutation and
//!   injective label renaming, used by the oracle suite to check that
//!   discovery is invariant under both.

pub mod gen;
pub mod profile;
pub mod spec;
pub mod stream;
pub mod transform;

pub use gen::{edge_instance, synthesize, SynthOutput, TypeAssignment};
pub use profile::{NoiseProfile, ValueModel};
pub use spec::{
    edge_type_name, node_type_name, random_schema, CardinalityProfile, SchemaParams, SynthSpec,
};
pub use stream::{StreamChunk, StreamEdge, StreamGen};
pub use transform::{permute_ids, rename_graph_labels, rename_schema_labels};
