//! Generator specifications: what to synthesize, and random
//! ground-truth schemas to synthesize from.

use crate::profile::{NoiseProfile, ValueModel};
use pg_model::{
    sym, Cardinality, DataType, EdgeType, LabelSet, NodeType, Presence, PropertySpec, SchemaGraph,
    TypeId,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A full generation request: the declared ground-truth schema plus
/// sizing, noise, and value-distribution knobs.
#[derive(Debug, Clone)]
pub struct SynthSpec {
    /// The ground truth. Every generated element is an instance of one
    /// of these types.
    pub schema: SchemaGraph,
    /// Instances generated per node type.
    pub nodes_per_type: usize,
    /// Instances requested per edge type (capped by the type's
    /// cardinality bounds and the available endpoints).
    pub edges_per_type: usize,
    /// Noise applied on top of the clean graph.
    pub noise: NoiseProfile,
    /// Value distributions per data type.
    pub values: ValueModel,
}

impl SynthSpec {
    /// A spec with default sizing (30 nodes per type, 40 edges per
    /// type) and no noise.
    pub fn new(schema: SchemaGraph) -> SynthSpec {
        SynthSpec {
            schema,
            nodes_per_type: 30,
            edges_per_type: 40,
            noise: NoiseProfile::clean(),
            values: ValueModel::default(),
        }
    }

    /// Builder-style noise profile.
    pub fn with_noise(mut self, noise: NoiseProfile) -> SynthSpec {
        self.noise = noise;
        self
    }

    /// Size the per-type counts so the clean graph holds roughly
    /// `total_elements` nodes + edges (used by the CLI and the scale
    /// sweeps; the edge count can fall short when cardinality bounds
    /// saturate first).
    pub fn sized_for(mut self, total_elements: usize) -> SynthSpec {
        let nt = self.schema.node_types.len().max(1);
        let et = self.schema.edge_types.len();
        // Split elements half nodes, half edges (all nodes if no edge
        // types are declared).
        let node_share = if et == 0 {
            total_elements
        } else {
            total_elements / 2
        };
        self.nodes_per_type = (node_share / nt).max(1);
        self.edges_per_type = (total_elements - node_share)
            .checked_div(et)
            .map_or(0, |per| per.max(1));
        self
    }
}

/// Shape of a randomly drawn ground-truth schema. The invariants the
/// oracle relies on are enforced by construction:
///
/// * every node type has a unique primary label and a unique mandatory
///   `<primary>_id` INT property, so label sets are pairwise distinct
///   and never subset-related, and property-key sets identify types
///   even after labels are stripped;
/// * every edge type has a unique label and a single source/target
///   node type.
#[derive(Debug, Clone, Copy)]
pub struct SchemaParams {
    /// Number of node types.
    pub node_types: usize,
    /// Number of edge types.
    pub edge_types: usize,
    /// Maximum shared-pool properties added to a node type (on top of
    /// the unique id property).
    pub max_extra_props: usize,
    /// Probability that a node type carries the shared secondary label
    /// (multi-label overlap).
    pub multi_label_overlap: f64,
    /// Probability that a pool property is OPTIONAL rather than
    /// MANDATORY.
    pub optional_rate: f64,
}

impl Default for SchemaParams {
    fn default() -> Self {
        SchemaParams {
            node_types: 4,
            edge_types: 3,
            max_extra_props: 3,
            multi_label_overlap: 0.3,
            optional_rate: 0.4,
        }
    }
}

/// Per-edge-type cardinality profile: the declared `(max_out, max_in)`
/// bounds the generator wires edges within.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CardinalityProfile {
    /// `(1, 1)` — a partial matching.
    OneToOne,
    /// `(3, 1)` — fan-out, unique sources per target.
    FanOut,
    /// `(1, 3)` — fan-in, unique target per source.
    FanIn,
    /// `(3, 3)` — bounded many-to-many.
    ManyToMany,
    /// No declared bound (the generator still keeps fan-out/fan-in
    /// modest so observed cardinalities stay meaningful).
    Unbounded,
}

impl CardinalityProfile {
    /// The declared bound, if any.
    pub fn declared(&self) -> Option<Cardinality> {
        let (max_out, max_in) = match self {
            CardinalityProfile::OneToOne => (1, 1),
            CardinalityProfile::FanOut => (3, 1),
            CardinalityProfile::FanIn => (1, 3),
            CardinalityProfile::ManyToMany => (3, 3),
            CardinalityProfile::Unbounded => return None,
        };
        Some(Cardinality { max_out, max_in })
    }

    fn all() -> [CardinalityProfile; 5] {
        [
            CardinalityProfile::OneToOne,
            CardinalityProfile::FanOut,
            CardinalityProfile::FanIn,
            CardinalityProfile::ManyToMany,
            CardinalityProfile::Unbounded,
        ]
    }
}

const PRIMARY_NAMES: [&str; 8] = [
    "Person", "Org", "Place", "Event", "Device", "Paper", "Account", "Tag",
];
const EDGE_NAMES: [&str; 8] = [
    "KNOWS",
    "WORKS_AT",
    "LOCATED_IN",
    "ATTENDED",
    "OWNS",
    "CITES",
    "FOLLOWS",
    "TAGGED",
];
/// Shared-pool node properties: `(key, datatype)`. Data types are fixed
/// per key so independently drawn types stay mergeable.
const NODE_PROP_POOL: [(&str, DataType); 8] = [
    ("name", DataType::Str),
    ("score", DataType::Float),
    ("active", DataType::Bool),
    ("since", DataType::Date),
    ("updated", DataType::DateTime),
    ("note", DataType::Str),
    ("rank", DataType::Int),
    ("ratio", DataType::Float),
];
const EDGE_PROP_POOL: [(&str, DataType); 3] = [
    ("weight", DataType::Float),
    ("from", DataType::Date),
    ("count", DataType::Int),
];
/// The shared secondary label (multi-label overlap knob).
pub const OVERLAP_LABEL: &str = "Entity";

/// Draw a random ground-truth schema. Deterministic in `(params, seed)`.
pub fn random_schema(params: &SchemaParams, seed: u64) -> SchemaGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut schema = SchemaGraph::new();

    for i in 0..params.node_types.max(1) {
        let primary = format!("{}{i}", PRIMARY_NAMES[i % PRIMARY_NAMES.len()]);
        let mut labels = vec![primary.clone()];
        if rng.gen_bool(params.multi_label_overlap.clamp(0.0, 1.0)) {
            labels.push(OVERLAP_LABEL.to_owned());
        }
        let mut t = NodeType::new(
            TypeId(0),
            LabelSet::from_iter(labels.iter().map(String::as_str)),
            [],
        );
        // The unique, mandatory id property: keeps the type identifiable
        // from its property keys alone and gives every type a non-string
        // mandatory property for the mutation tests to target.
        t.properties.insert(
            sym(&format!("{}_id", primary.to_lowercase())),
            PropertySpec {
                datatype: Some(DataType::Int),
                presence: Some(Presence::Mandatory),
            },
        );
        let extra = rng.gen_range(0..=params.max_extra_props.min(NODE_PROP_POOL.len()));
        let mut pool: Vec<usize> = (0..NODE_PROP_POOL.len()).collect();
        rand::seq::SliceRandom::shuffle(&mut pool[..], &mut rng);
        for &p in pool.iter().take(extra) {
            let (key, dt) = NODE_PROP_POOL[p];
            t.properties.insert(
                sym(key),
                PropertySpec {
                    datatype: Some(dt),
                    presence: Some(if rng.gen_bool(params.optional_rate.clamp(0.0, 1.0)) {
                        Presence::Optional
                    } else {
                        Presence::Mandatory
                    }),
                },
            );
        }
        schema.push_node_type(t);
    }

    for i in 0..params.edge_types {
        let label = format!("{}{i}", EDGE_NAMES[i % EDGE_NAMES.len()]);
        let src = rng.gen_range(0..schema.node_types.len());
        let tgt = rng.gen_range(0..schema.node_types.len());
        let mut t = EdgeType::new(
            TypeId(0),
            LabelSet::single(&label),
            [],
            schema.node_types[src].labels.clone(),
            schema.node_types[tgt].labels.clone(),
        );
        let profiles = CardinalityProfile::all();
        t.cardinality = profiles[rng.gen_range(0..profiles.len())].declared();
        let extra = rng.gen_range(0..=2usize.min(EDGE_PROP_POOL.len()));
        let mut pool: Vec<usize> = (0..EDGE_PROP_POOL.len()).collect();
        rand::seq::SliceRandom::shuffle(&mut pool[..], &mut rng);
        for &p in pool.iter().take(extra) {
            let (key, dt) = EDGE_PROP_POOL[p];
            t.properties.insert(
                sym(key),
                PropertySpec {
                    datatype: Some(dt),
                    presence: Some(if rng.gen_bool(params.optional_rate.clamp(0.0, 1.0)) {
                        Presence::Optional
                    } else {
                        Presence::Mandatory
                    }),
                },
            );
        }
        schema.push_edge_type(t);
    }

    schema
}

/// Ground-truth name of a node type: its sorted labels joined with `&`,
/// or `ABSTRACT[key,…]` for unlabeled types. Distinct types in a
/// [`random_schema`] always get distinct names.
pub fn node_type_name(t: &NodeType) -> String {
    if t.labels.is_empty() {
        let keys: Vec<&str> = t.properties.keys().map(|k| k.as_ref()).collect();
        format!("ABSTRACT[{}]", keys.join(","))
    } else {
        let labels: Vec<&str> = t.labels.iter().map(|l| l.as_ref()).collect();
        labels.join("&")
    }
}

/// Ground-truth name of an edge type: labels plus endpoint labels (two
/// edge types may share a label but differ in endpoints).
pub fn edge_type_name(t: &EdgeType) -> String {
    let join = |ls: &LabelSet| {
        let v: Vec<&str> = ls.iter().map(|l| l.as_ref()).collect();
        v.join("&")
    };
    format!(
        "{}({}->{})",
        join(&t.labels),
        join(&t.src_labels),
        join(&t.tgt_labels)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn random_schema_is_deterministic() {
        let p = SchemaParams::default();
        assert_eq!(random_schema(&p, 7), random_schema(&p, 7));
    }

    #[test]
    fn random_schema_type_keys_are_unique_and_not_subset_related() {
        for seed in 0..30u64 {
            let s = random_schema(&SchemaParams::default(), seed);
            let labels: BTreeSet<String> =
                s.node_types.iter().map(|t| t.labels.to_string()).collect();
            assert_eq!(labels.len(), s.node_types.len(), "seed {seed}");
            for a in &s.node_types {
                for b in &s.node_types {
                    if a.id != b.id {
                        assert!(!a.labels.is_subset_of(&b.labels), "seed {seed}");
                        assert_ne!(a.key_set(), b.key_set(), "seed {seed}");
                    }
                }
            }
            let edge_labels: BTreeSet<String> =
                s.edge_types.iter().map(|t| t.labels.to_string()).collect();
            assert_eq!(edge_labels.len(), s.edge_types.len(), "seed {seed}");
        }
    }

    #[test]
    fn every_type_has_a_mandatory_int_property() {
        let s = random_schema(&SchemaParams::default(), 3);
        for t in &s.node_types {
            assert!(t
                .properties
                .values()
                .any(|p| p.datatype == Some(DataType::Int)
                    && p.presence == Some(Presence::Mandatory)));
        }
    }

    #[test]
    fn sized_for_hits_the_requested_scale() {
        let s = random_schema(&SchemaParams::default(), 1);
        let spec = SynthSpec::new(s).sized_for(10_000);
        let nodes = spec.nodes_per_type * spec.schema.node_types.len();
        let edges = spec.edges_per_type * spec.schema.edge_types.len();
        let total = nodes + edges;
        assert!((8_000..=12_000).contains(&total), "total {total}");
    }
}
