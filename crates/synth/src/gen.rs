//! The generator proper: schema in, property graph + known type
//! assignment out.

use crate::profile::ValueModel;
use crate::spec::SynthSpec;
use pg_model::{Edge, EdgeId, EdgeType, NodeId, Presence, PropertyGraph};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Spurious-label vocabulary used by the `label_noise_rate` knob.
pub const NOISE_LABELS: [&str; 3] = ["Tmp", "Imported", "Draft"];

/// The ground-truth assignment: which declared type generated each
/// element. Type names come from [`node_type_name`] / [`edge_type_name`]
/// and are opaque to scoring — only the partition they induce matters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TypeAssignment {
    /// Generating node type per node.
    pub node_type: HashMap<NodeId, String>,
    /// Generating edge type per edge.
    pub edge_type: HashMap<EdgeId, String>,
}

impl TypeAssignment {
    /// Members of a named node type, sorted by id.
    pub fn nodes_of(&self, name: &str) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .node_type
            .iter()
            .filter(|(_, t)| t.as_str() == name)
            .map(|(id, _)| *id)
            .collect();
        v.sort();
        v
    }

    /// The same assignment under an id permutation (companion to
    /// [`crate::transform::permute_ids`]).
    pub fn remapped(
        &self,
        node_map: &HashMap<NodeId, NodeId>,
        edge_map: &HashMap<EdgeId, EdgeId>,
    ) -> TypeAssignment {
        TypeAssignment {
            node_type: self
                .node_type
                .iter()
                .map(|(id, t)| (node_map[id], t.clone()))
                .collect(),
            edge_type: self
                .edge_type
                .iter()
                .map(|(id, t)| (edge_map[id], t.clone()))
                .collect(),
        }
    }
}

/// A generated graph together with its ground truth.
#[derive(Debug, Clone)]
pub struct SynthOutput {
    /// The generated property graph.
    pub graph: PropertyGraph,
    /// The generating type of every element.
    pub truth: TypeAssignment,
}

/// One conforming instance of an edge type: mandatory properties always
/// present, optional ones drawn at the model's presence rate, values
/// matching the declared data types. Public so mutation tests can grow
/// a graph edge-by-edge without re-running the whole generator.
pub fn edge_instance(
    id: u64,
    et: &EdgeType,
    src: NodeId,
    tgt: NodeId,
    values: &ValueModel,
    rng: &mut ChaCha8Rng,
) -> Edge {
    let mut edge = Edge::new(id, src, tgt, et.labels.clone());
    for (key, ps) in &et.properties {
        let present = match ps.presence {
            Some(Presence::Optional) => rng.gen_bool(values.optional_present_rate.clamp(0.0, 1.0)),
            _ => true,
        };
        if present {
            edge.props
                .insert(key.clone(), values.draw(ps.datatype, rng));
        }
    }
    edge
}

/// Generate a property graph from the spec. Deterministic in
/// `(spec, seed)`: the generator runs single-threaded on one
/// `ChaCha8Rng` stream, so the output is bit-identical regardless of
/// `RAYON_NUM_THREADS` or machine.
///
/// Guarantees for a clean ([`crate::NoiseProfile::is_clean`]) spec:
///
/// * every node/edge STRICT-validates against `spec.schema` — mandatory
///   properties are always present, values match declared data types,
///   endpoints carry the declared labels, and edge wiring never exceeds
///   a declared cardinality bound (distinct out-neighbors per source
///   ≤ `max_out`, distinct in-neighbors per target ≤ `max_in`);
/// * every element's labels identify its generating type exactly, so a
///   label-driven discovery run recovers the ground-truth partition.
///
/// Noise is applied on top: label stripping / spurious labels at node
/// creation, optional-property thinning on nodes and edges, and
/// mandatory-property erosion on nodes
/// ([`crate::NoiseProfile::missing_mandatory_rate`] — the knob that
/// attacks the type discriminator itself). Ground truth always records
/// the *generating* type, noise notwithstanding.
pub fn synthesize(spec: &SynthSpec, seed: u64) -> SynthOutput {
    let schema = &spec.schema;
    let mut graph = PropertyGraph::with_capacity(
        schema.node_types.len() * spec.nodes_per_type,
        schema.edge_types.len() * spec.edges_per_type,
    );
    let mut truth = TypeAssignment::default();
    for chunk in crate::stream::StreamGen::new(spec, seed) {
        for (node, name) in chunk.nodes.into_iter().zip(chunk.node_types) {
            let id = graph.add_node(node).expect("generated node ids are unique");
            truth.node_type.insert(id, name);
        }
        for (se, name) in chunk.edges.into_iter().zip(chunk.edge_types) {
            let id = graph.add_edge(se.edge).expect("wired endpoints exist");
            truth.edge_type.insert(id, name);
        }
    }
    SynthOutput { graph, truth }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{edge_type_name, random_schema, SchemaParams};
    use std::collections::BTreeSet;

    fn spec(seed: u64) -> SynthSpec {
        SynthSpec::new(random_schema(&SchemaParams::default(), seed))
    }

    #[test]
    fn synthesis_is_bit_deterministic() {
        for seed in [0u64, 1, 99] {
            let a = synthesize(&spec(seed), seed);
            let b = synthesize(&spec(seed), seed);
            assert_eq!(
                a.graph.nodes().collect::<Vec<_>>(),
                b.graph.nodes().collect::<Vec<_>>()
            );
            assert_eq!(
                a.graph.edges().collect::<Vec<_>>(),
                b.graph.edges().collect::<Vec<_>>()
            );
            assert_eq!(a.truth, b.truth);
        }
    }

    #[test]
    fn every_element_has_a_ground_truth_type() {
        let out = synthesize(&spec(5), 5);
        assert_eq!(out.graph.node_count(), out.truth.node_type.len());
        assert_eq!(out.graph.edge_count(), out.truth.edge_type.len());
        assert!(out.graph.edge_count() > 0, "schema should wire some edges");
        for n in out.graph.nodes() {
            assert!(out.truth.node_type.contains_key(&n.id));
        }
        for e in out.graph.edges() {
            assert!(out.truth.edge_type.contains_key(&e.id));
        }
    }

    #[test]
    fn clean_graph_labels_match_the_generating_type() {
        let s = spec(7);
        let out = synthesize(&s, 7);
        for nt in &s.schema.node_types {
            let name = crate::spec::node_type_name(nt);
            for id in out.truth.nodes_of(&name) {
                assert_eq!(out.graph.node(id).unwrap().labels, nt.labels);
            }
        }
    }

    #[test]
    fn cardinality_bounds_are_respected() {
        for seed in 0..20u64 {
            let s = spec(seed);
            let out = synthesize(&s, seed);
            for et in &s.schema.edge_types {
                let Some(c) = et.cardinality else { continue };
                let name = edge_type_name(et);
                let mut out_nbrs: HashMap<NodeId, BTreeSet<NodeId>> = HashMap::new();
                let mut in_nbrs: HashMap<NodeId, BTreeSet<NodeId>> = HashMap::new();
                for e in out.graph.edges() {
                    if out.truth.edge_type[&e.id] == name {
                        out_nbrs.entry(e.src).or_default().insert(e.tgt);
                        in_nbrs.entry(e.tgt).or_default().insert(e.src);
                    }
                }
                for nbrs in out_nbrs.values() {
                    assert!(nbrs.len() as u64 <= c.max_out, "seed {seed} type {name}");
                }
                for nbrs in in_nbrs.values() {
                    assert!(nbrs.len() as u64 <= c.max_in, "seed {seed} type {name}");
                }
            }
        }
    }

    #[test]
    fn full_unlabeled_noise_strips_every_label() {
        let s = spec(3).with_noise(crate::NoiseProfile {
            unlabeled_fraction: 1.0,
            ..Default::default()
        });
        let out = synthesize(&s, 3);
        assert!(out.graph.nodes().all(|n| n.labels.is_empty()));
        // Ground truth still knows the generating types.
        assert_eq!(out.graph.node_count(), out.truth.node_type.len());
    }

    #[test]
    fn full_mandatory_erosion_strips_every_mandatory_node_property() {
        let s = spec(6).with_noise(crate::NoiseProfile {
            missing_mandatory_rate: 1.0,
            ..Default::default()
        });
        let out = synthesize(&s, 6);
        for nt in &s.schema.node_types {
            let mandatory: Vec<_> = nt
                .properties
                .iter()
                .filter(|(_, ps)| ps.presence == Some(Presence::Mandatory))
                .map(|(k, _)| k.clone())
                .collect();
            for id in out.truth.nodes_of(&crate::spec::node_type_name(nt)) {
                let node = out.graph.node(id).unwrap();
                for key in &mandatory {
                    assert!(
                        !node.props.contains_key(key),
                        "mandatory {key} survived full erosion on {id:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn label_noise_only_adds_labels() {
        let s = spec(4).with_noise(crate::NoiseProfile {
            label_noise_rate: 0.5,
            ..Default::default()
        });
        let out = synthesize(&s, 4);
        let mut grew = 0;
        for nt in &s.schema.node_types {
            let name = crate::spec::node_type_name(nt);
            for id in out.truth.nodes_of(&name) {
                let labels = &out.graph.node(id).unwrap().labels;
                assert!(nt.labels.is_subset_of(labels));
                if labels.len() > nt.labels.len() {
                    grew += 1;
                }
            }
        }
        assert!(grew > 0, "a 0.5 rate should tag some nodes");
    }
}
