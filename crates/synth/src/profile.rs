//! Noise and value-distribution knobs of the generator.

use pg_model::{DataType, Date, DateTime, PropertyValue};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Graph-level noise applied on top of a clean generated graph. The
/// default (all zeros) is the oracle baseline: a clean graph that
/// STRICT-validates against its declared schema with zero violations.
///
/// Rates are probabilities in `[0, 1]`; anything outside is clamped.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NoiseProfile {
    /// Fraction of nodes whose labels are stripped entirely (the
    /// paper's label-availability axis; exercises the unlabeled-cluster
    /// merge and ABSTRACT-type paths).
    pub unlabeled_fraction: f64,
    /// Probability that an OPTIONAL property is dropped from an
    /// instance *beyond* the baseline presence rate (the paper's
    /// property-removal noise, restricted to optionals so mandatory
    /// constraints stay intact).
    pub missing_optional_rate: f64,
    /// Probability that a labeled node gains one spurious label drawn
    /// from a small noise vocabulary (dirty-ingest simulation; splits
    /// label-set clusters without changing the ground-truth type).
    pub label_noise_rate: f64,
    /// Probability that a MANDATORY property is dropped from an
    /// instance. Unlike the other knobs this one erodes the property
    /// discriminator itself — generated types are identifiable by their
    /// unique mandatory key even with every label stripped, so this is
    /// the knob that actually degrades F1\* (and, by design, breaks
    /// STRICT conformance).
    pub missing_mandatory_rate: f64,
}

impl NoiseProfile {
    /// The noise-free baseline.
    pub fn clean() -> NoiseProfile {
        NoiseProfile::default()
    }

    /// Whether every knob is zero (the graph is exactly the clean one).
    pub fn is_clean(&self) -> bool {
        self.unlabeled_fraction <= 0.0
            && self.missing_optional_rate <= 0.0
            && self.label_noise_rate <= 0.0
            && self.missing_mandatory_rate <= 0.0
    }

    pub(crate) fn clamped(&self) -> NoiseProfile {
        NoiseProfile {
            unlabeled_fraction: self.unlabeled_fraction.clamp(0.0, 1.0),
            missing_optional_rate: self.missing_optional_rate.clamp(0.0, 1.0),
            label_noise_rate: self.label_noise_rate.clamp(0.0, 1.0),
            missing_mandatory_rate: self.missing_mandatory_rate.clamp(0.0, 1.0),
        }
    }
}

/// Value distributions per [`DataType`]. Every generated value is drawn
/// so that serialization round-trips preserve its data type: floats sit
/// on a `k + 0.5` grid (never rendered as integers), strings carry a
/// non-numeric prefix, dates stay inside a valid calendar window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueModel {
    /// Integers are uniform in `[0, int_cardinality)`.
    pub int_cardinality: i64,
    /// Floats are `k + 0.5` for uniform `k` in `[0, float_cardinality)`.
    pub float_cardinality: i64,
    /// Strings are `"s<k>"` for uniform `k` in `[0, str_cardinality)`.
    pub str_cardinality: u64,
    /// Probability that an OPTIONAL property is present on an instance
    /// (before [`NoiseProfile::missing_optional_rate`] thins it).
    pub optional_present_rate: f64,
}

impl Default for ValueModel {
    fn default() -> Self {
        ValueModel {
            int_cardinality: 1_000_000,
            float_cardinality: 10_000,
            str_cardinality: 100_000,
            optional_present_rate: 0.7,
        }
    }
}

impl ValueModel {
    /// Draw one value of the given data type. `None` draws a string
    /// (the lattice top among concrete values).
    pub fn draw(&self, dt: Option<DataType>, rng: &mut ChaCha8Rng) -> PropertyValue {
        match dt.unwrap_or(DataType::Str) {
            DataType::Int => PropertyValue::Int(rng.gen_range(0..self.int_cardinality.max(1))),
            DataType::Float => {
                PropertyValue::Float(rng.gen_range(0..self.float_cardinality.max(1)) as f64 + 0.5)
            }
            DataType::Bool => PropertyValue::Bool(rng.gen_range(0..2) == 1),
            DataType::Date => PropertyValue::Date(
                Date::new(
                    rng.gen_range(1990..2030),
                    rng.gen_range(1..13),
                    rng.gen_range(1..29),
                )
                .expect("generated date is always valid"),
            ),
            DataType::DateTime => {
                let date = Date::new(
                    rng.gen_range(1990..2030),
                    rng.gen_range(1..13),
                    rng.gen_range(1..29),
                )
                .expect("generated date is always valid");
                PropertyValue::DateTime(
                    DateTime::new(
                        date,
                        rng.gen_range(0..24),
                        rng.gen_range(0..60),
                        rng.gen_range(0..60),
                    )
                    .expect("generated time is always valid"),
                )
            }
            DataType::Str => PropertyValue::Str(format!(
                "s{}",
                rng.gen_range(0..self.str_cardinality.max(1))
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn drawn_values_have_the_requested_datatype() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let m = ValueModel::default();
        for dt in [
            DataType::Int,
            DataType::Float,
            DataType::Bool,
            DataType::Date,
            DataType::DateTime,
            DataType::Str,
        ] {
            for _ in 0..50 {
                let v = m.draw(Some(dt), &mut rng);
                assert_eq!(DataType::of(&v), dt);
                assert!(dt.admits(&v));
            }
        }
    }

    #[test]
    fn drawn_values_round_trip_through_text() {
        // CSV serialization renders values and re-infers their type;
        // the distributions are designed so that round trip is lossless
        // type-wise (floats never look like ints, strings never look
        // like numbers).
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let m = ValueModel::default();
        for dt in [
            DataType::Int,
            DataType::Float,
            DataType::Date,
            DataType::DateTime,
            DataType::Str,
        ] {
            for _ in 0..50 {
                let v = m.draw(Some(dt), &mut rng);
                let back = PropertyValue::infer(&v.render());
                assert_eq!(DataType::of(&back), dt, "{v:?} -> {back:?}");
            }
        }
    }

    #[test]
    fn clean_profile_is_clean() {
        assert!(NoiseProfile::clean().is_clean());
        assert!(!NoiseProfile {
            unlabeled_fraction: 0.1,
            ..NoiseProfile::clean()
        }
        .is_clean());
    }
}
