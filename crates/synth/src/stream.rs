//! Iterator-based streaming generator: the exact generation sequence of
//! [`crate::synthesize`], made resumable so a consumer can drain the
//! corpus in fixed-size chunks without materializing the whole graph.
//!
//! [`crate::synthesize`] is *implemented on top of* [`StreamGen`], so
//! the chunked and one-shot outputs are bit-identical for the same
//! `(spec, seed)` by construction — the RNG is the single sequential
//! `ChaCha8Rng` stream both paths share, and chunk boundaries never
//! touch it. A content-hash regression test pins this equivalence.
//!
//! Memory: the generator retains the per-type member id lists and the
//! actual (post-noise) label set of every node — needed to wire edges
//! and resolve endpoint labels — plus the wiring state of the edge type
//! currently being emitted. It never holds a [`pg_model::PropertyGraph`].
//! Large streams are produced in *rounds*: independent `StreamGen`s
//! with derived seeds and disjoint [`StreamGen::with_id_offset`] ranges,
//! each dropped after draining, so resident memory is bounded by one
//! round regardless of total stream length.

use crate::gen::{edge_instance, NOISE_LABELS};
use crate::profile::NoiseProfile;
use crate::spec::{edge_type_name, node_type_name, SynthSpec};
use pg_model::{Edge, EdgeType, LabelSet, Node, NodeId, NodeType, Presence, SchemaGraph};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{HashMap, HashSet};

/// An edge with both endpoint label sets resolved at generation time —
/// the same pairing `pg_store::load` derives from a materialized graph,
/// so a discovery session can ingest stream chunks directly.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamEdge {
    /// The edge itself.
    pub edge: Edge,
    /// Actual (post-noise) labels of the source node.
    pub src_labels: LabelSet,
    /// Actual (post-noise) labels of the target node.
    pub tgt_labels: LabelSet,
}

/// One deterministic batch of the stream. Nodes always precede edges
/// globally (the generator finishes the node phase before wiring), so
/// concatenating chunks in order reproduces the one-shot element order.
#[derive(Debug, Clone, Default)]
pub struct StreamChunk {
    /// 0-based chunk index.
    pub index: usize,
    /// Nodes in generation order.
    pub nodes: Vec<Node>,
    /// Ground-truth generating type per node (parallel to `nodes`).
    pub node_types: Vec<String>,
    /// Edges in generation order, endpoint labels resolved.
    pub edges: Vec<StreamEdge>,
    /// Ground-truth generating type per edge (parallel to `edges`).
    pub edge_types: Vec<String>,
}

impl StreamChunk {
    /// Elements in this chunk.
    pub fn len(&self) -> usize {
        self.nodes.len() + self.edges.len()
    }

    /// Whether the chunk carries no elements.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.edges.is_empty()
    }
}

/// One conforming node instance: the per-node generation step of
/// [`crate::synthesize`], factored out so the streaming and one-shot
/// paths share one copy of the RNG-draw sequence.
fn node_instance(
    nt: &NodeType,
    spec: &SynthSpec,
    noise: &NoiseProfile,
    id: u64,
    rng: &mut ChaCha8Rng,
) -> Node {
    let mut node = Node::new(id, nt.labels.clone());
    for (key, ps) in &nt.properties {
        let present = match ps.presence {
            Some(Presence::Optional) => {
                rng.gen_bool(spec.values.optional_present_rate.clamp(0.0, 1.0))
                    && !rng.gen_bool(noise.missing_optional_rate)
            }
            _ => !rng.gen_bool(noise.missing_mandatory_rate),
        };
        if present {
            node.props
                .insert(key.clone(), spec.values.draw(ps.datatype, rng));
        }
    }
    if !node.labels.is_empty() {
        if rng.gen_bool(noise.unlabeled_fraction) {
            node.labels = LabelSet::empty();
        } else if rng.gen_bool(noise.label_noise_rate) {
            let extra = NOISE_LABELS[rng.gen_range(0..NOISE_LABELS.len())];
            node.labels = node.labels.union(&LabelSet::single(extra));
        }
    }
    node
}

/// Instances of the node types whose members can serve as an endpoint
/// declared as `want`: exact label-set match first (the by-construction
/// case for [`crate::random_schema`]), otherwise any type carrying at
/// least the wanted labels.
fn endpoint_members(schema: &SchemaGraph, members: &[Vec<NodeId>], want: &LabelSet) -> Vec<NodeId> {
    let mut out = Vec::new();
    for (i, nt) in schema.node_types.iter().enumerate() {
        if nt.labels == *want {
            out.extend_from_slice(&members[i]);
        }
    }
    if out.is_empty() && !want.is_empty() {
        for (i, nt) in schema.node_types.iter().enumerate() {
            if want.is_subset_of(&nt.labels) {
                out.extend_from_slice(&members[i]);
            }
        }
    }
    out
}

/// Resumable capacity-aware wiring of one edge type: the `'rounds` loop
/// of the one-shot generator unrolled into explicit state, one emitted
/// edge per [`Wiring::next_edge`] call. Each round hands every source at
/// most one new distinct target, scanning targets from a rotating offset
/// so in-capacity is consumed evenly; distinct out-neighbors per source
/// ≤ `max_out`, distinct in-neighbors per target ≤ `max_in`.
struct Wiring {
    srcs: Vec<NodeId>,
    tgts: Vec<NodeId>,
    max_in: usize,
    /// `max_out.min(tgts.len())` — the round count of the one-shot loop.
    rounds: usize,
    out_nbrs: HashMap<NodeId, HashSet<NodeId>>,
    in_deg: HashMap<NodeId, usize>,
    /// Next-open skip pointers over `tgts` positions (cyclic,
    /// path-compressed): `jump[p]` resolves to the first position ≥ p
    /// (mod n) whose target still has in-capacity. Saturated positions
    /// are spliced out lazily, so a scan visits only open targets —
    /// without this the rotating scan re-walks every saturated target
    /// once per source per round, which is O(srcs × tgts) on types
    /// whose in-capacity fills (the dominant cost at ≥100k nodes).
    /// The scan still visits open positions in the exact cyclic order
    /// of the naive loop, so the selected targets — and therefore the
    /// generated stream — are bit-identical.
    jump: Vec<u32>,
    /// Targets with `in_deg < max_in` remaining.
    open: usize,
    made: usize,
    round: usize,
    src_i: usize,
    progressed: bool,
}

impl Wiring {
    fn new(srcs: Vec<NodeId>, tgts: Vec<NodeId>, max_out: usize, max_in: usize) -> Wiring {
        let rounds = max_out.min(tgts.len());
        let open = tgts.len();
        Wiring {
            jump: (0..tgts.len() as u32).collect(),
            open,
            srcs,
            tgts,
            max_in,
            rounds,
            out_nbrs: HashMap::new(),
            in_deg: HashMap::new(),
            made: 0,
            round: 0,
            src_i: 0,
            progressed: false,
        }
    }

    /// First open position at or after `p` (cyclically), with path
    /// compression. Must not be called with zero open targets.
    fn find_open(&mut self, p: usize) -> usize {
        let n = self.jump.len();
        let mut p = p % n;
        // Follow pointers, remembering the chain for compression.
        let mut chain = Vec::new();
        while self.jump[p] as usize != p {
            chain.push(p);
            p = self.jump[p] as usize % n;
        }
        for q in chain {
            self.jump[q] = p as u32;
        }
        p
    }

    /// Splice position `p` out of the open cycle (its target saturated).
    fn saturate(&mut self, p: usize) {
        let n = self.jump.len();
        self.jump[p] = ((p + 1) % n) as u32;
        self.open -= 1;
    }

    /// The next wired edge, or `None` when this type is exhausted
    /// (quota met, every round spent, or a full round made no progress).
    /// RNG draws happen in exactly the order of the one-shot loop: only
    /// when a `(src, tgt)` slot is actually wired.
    fn next_edge(
        &mut self,
        et: &EdgeType,
        spec: &SynthSpec,
        noise: &NoiseProfile,
        id: u64,
        rng: &mut ChaCha8Rng,
    ) -> Option<Edge> {
        loop {
            if self.round >= self.rounds {
                return None;
            }
            while self.src_i < self.srcs.len() {
                if self.made >= spec.edges_per_type {
                    return None;
                }
                // Every target saturated: no source in this or any later
                // round can wire anything, which is exactly the naive
                // loop's no-progress exit — minus the full rescan.
                if self.open == 0 {
                    return None;
                }
                let i = self.src_i;
                self.src_i += 1;
                let s = self.srcs[i];
                let start = (i + self.round) % self.tgts.len();
                // One cycle over the *open* positions from `start`, in
                // the same order the naive scan visits them.
                let first = self.find_open(start);
                let mut p = first;
                loop {
                    let t = self.tgts[p];
                    if t != s && !self.out_nbrs.get(&s).is_some_and(|n| n.contains(&t)) {
                        let mut edge = edge_instance(id, et, s, t, &spec.values, rng);
                        if noise.missing_optional_rate > 0.0 {
                            let optional: Vec<_> = et
                                .properties
                                .iter()
                                .filter(|(_, ps)| ps.presence == Some(Presence::Optional))
                                .map(|(k, _)| k.clone())
                                .collect();
                            for key in optional {
                                if edge.props.contains_key(&key)
                                    && rng.gen_bool(noise.missing_optional_rate)
                                {
                                    edge.props.remove(&key);
                                }
                            }
                        }
                        self.out_nbrs.entry(s).or_default().insert(t);
                        let deg = self.in_deg.entry(t).or_default();
                        *deg += 1;
                        if *deg >= self.max_in {
                            self.saturate(p);
                        }
                        self.made += 1;
                        self.progressed = true;
                        return Some(edge);
                    }
                    p = self.find_open(p + 1);
                    if p == first {
                        break;
                    }
                }
            }
            if !self.progressed {
                return None;
            }
            self.round += 1;
            self.src_i = 0;
            self.progressed = false;
        }
    }
}

/// One generated element, before chunking.
enum Emitted {
    Node(Node, String),
    Edge(StreamEdge, String),
}

/// The streaming generator: an `Iterator` over [`StreamChunk`]s that
/// replays the exact `(spec, seed)` generation of [`crate::synthesize`].
///
/// ```
/// use pg_synth::{random_schema, SchemaParams, StreamGen, SynthSpec};
/// let spec = SynthSpec::new(random_schema(&SchemaParams::default(), 7));
/// let total: usize = StreamGen::new(&spec, 7)
///     .with_chunk_size(100)
///     .map(|c| c.len())
///     .sum();
/// let one_shot = pg_synth::synthesize(&spec, 7);
/// assert_eq!(total, one_shot.graph.node_count() + one_shot.graph.edge_count());
/// ```
pub struct StreamGen<'a> {
    spec: &'a SynthSpec,
    noise: NoiseProfile,
    rng: ChaCha8Rng,
    chunk_size: usize,
    id_offset: u64,
    /// Ids handed out so far, relative to `id_offset`.
    next_rel: u64,
    node_type_i: usize,
    node_made: usize,
    /// Member ids per node type, for endpoint selection.
    members: Vec<Vec<NodeId>>,
    /// Actual (post-noise) labels by relative node id, for resolving
    /// [`StreamEdge`] endpoint labels.
    labels: Vec<LabelSet>,
    edge_type_i: usize,
    wiring: Option<Wiring>,
    chunks_emitted: usize,
    done: bool,
}

impl<'a> StreamGen<'a> {
    /// Default elements per chunk (nodes + edges).
    pub const DEFAULT_CHUNK_SIZE: usize = 65_536;

    /// A generator replaying the `(spec, seed)` stream from the start.
    pub fn new(spec: &'a SynthSpec, seed: u64) -> StreamGen<'a> {
        StreamGen {
            noise: spec.noise.clamped(),
            rng: ChaCha8Rng::seed_from_u64(seed),
            chunk_size: Self::DEFAULT_CHUNK_SIZE,
            id_offset: 0,
            next_rel: 0,
            node_type_i: 0,
            node_made: 0,
            members: vec![Vec::new(); spec.schema.node_types.len()],
            labels: Vec::new(),
            edge_type_i: 0,
            wiring: None,
            chunks_emitted: 0,
            done: false,
            spec,
        }
    }

    /// Elements per chunk (clamped to ≥ 1). The chunking never touches
    /// the RNG, so any chunk size yields the same concatenated stream.
    pub fn with_chunk_size(mut self, n: usize) -> StreamGen<'a> {
        self.chunk_size = n.max(1);
        self
    }

    /// Shift every generated id (nodes, edges, endpoints) by a constant.
    /// Ids never feed the RNG, so an offset run emits the same elements
    /// under translated ids — this is how multi-round benches keep
    /// per-round id ranges disjoint.
    pub fn with_id_offset(mut self, offset: u64) -> StreamGen<'a> {
        debug_assert_eq!(self.next_rel, 0, "set the offset before draining");
        self.id_offset = offset;
        self
    }

    fn labels_of(&self, id: NodeId) -> LabelSet {
        self.labels[(id.0 - self.id_offset) as usize].clone()
    }

    /// Generate the next element, advancing phase state as needed.
    fn step(&mut self) -> Option<Emitted> {
        let schema = &self.spec.schema;
        while self.node_type_i < schema.node_types.len() {
            if self.node_made < self.spec.nodes_per_type {
                let nt = &schema.node_types[self.node_type_i];
                let id = self.id_offset + self.next_rel;
                self.next_rel += 1;
                self.node_made += 1;
                let node = node_instance(nt, self.spec, &self.noise, id, &mut self.rng);
                self.labels.push(node.labels.clone());
                self.members[self.node_type_i].push(node.id);
                return Some(Emitted::Node(node, node_type_name(nt)));
            }
            self.node_type_i += 1;
            self.node_made = 0;
        }
        loop {
            if let Some(w) = self.wiring.as_mut() {
                let et = &schema.edge_types[self.edge_type_i];
                let id = self.id_offset + self.next_rel;
                if let Some(edge) = w.next_edge(et, self.spec, &self.noise, id, &mut self.rng) {
                    self.next_rel += 1;
                    let src_labels = self.labels_of(edge.src);
                    let tgt_labels = self.labels_of(edge.tgt);
                    return Some(Emitted::Edge(
                        StreamEdge {
                            edge,
                            src_labels,
                            tgt_labels,
                        },
                        edge_type_name(et),
                    ));
                }
                self.wiring = None;
                self.edge_type_i += 1;
            }
            if self.edge_type_i >= schema.edge_types.len() {
                return None;
            }
            let et = &schema.edge_types[self.edge_type_i];
            let mut srcs = endpoint_members(schema, &self.members, &et.src_labels);
            let mut tgts = endpoint_members(schema, &self.members, &et.tgt_labels);
            if srcs.is_empty() || tgts.is_empty() {
                self.edge_type_i += 1;
                continue;
            }
            srcs.shuffle(&mut self.rng);
            tgts.shuffle(&mut self.rng);
            let (max_out, max_in) = match et.cardinality {
                Some(c) => (c.max_out as usize, c.max_in as usize),
                None => (usize::MAX, usize::MAX),
            };
            self.wiring = Some(Wiring::new(srcs, tgts, max_out, max_in));
        }
    }
}

impl Iterator for StreamGen<'_> {
    type Item = StreamChunk;

    fn next(&mut self) -> Option<StreamChunk> {
        if self.done {
            return None;
        }
        let mut chunk = StreamChunk {
            index: self.chunks_emitted,
            ..StreamChunk::default()
        };
        while chunk.len() < self.chunk_size {
            match self.step() {
                Some(Emitted::Node(n, t)) => {
                    chunk.nodes.push(n);
                    chunk.node_types.push(t);
                }
                Some(Emitted::Edge(e, t)) => {
                    chunk.edges.push(e);
                    chunk.edge_types.push(t);
                }
                None => {
                    self.done = true;
                    break;
                }
            }
        }
        if chunk.is_empty() {
            None
        } else {
            self.chunks_emitted += 1;
            Some(chunk)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{random_schema, SchemaParams};
    use crate::synthesize;

    fn spec(seed: u64) -> SynthSpec {
        SynthSpec::new(random_schema(&SchemaParams::default(), seed))
    }

    #[test]
    fn chunked_stream_matches_one_shot_bit_for_bit() {
        for seed in [0u64, 3, 17] {
            let s = spec(seed);
            let one_shot = synthesize(&s, seed);
            let mut nodes = Vec::new();
            let mut edges = Vec::new();
            for chunk in StreamGen::new(&s, seed).with_chunk_size(7) {
                nodes.extend(chunk.nodes);
                edges.extend(chunk.edges.into_iter().map(|e| e.edge));
            }
            assert_eq!(
                nodes,
                one_shot.graph.nodes().cloned().collect::<Vec<_>>(),
                "seed {seed}"
            );
            assert_eq!(
                edges,
                one_shot.graph.edges().cloned().collect::<Vec<_>>(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn chunk_size_never_changes_the_stream() {
        let s = spec(9);
        let drain = |cs: usize| -> (Vec<Node>, Vec<StreamEdge>) {
            let mut n = Vec::new();
            let mut e = Vec::new();
            for c in StreamGen::new(&s, 9).with_chunk_size(cs) {
                n.extend(c.nodes);
                e.extend(c.edges);
            }
            (n, e)
        };
        let small = drain(1);
        let big = drain(usize::MAX);
        assert_eq!(small, big);
    }

    #[test]
    fn truth_assignment_matches_one_shot() {
        let s = spec(5);
        let one_shot = synthesize(&s, 5);
        for chunk in StreamGen::new(&s, 5).with_chunk_size(13) {
            for (node, name) in chunk.nodes.iter().zip(&chunk.node_types) {
                assert_eq!(one_shot.truth.node_type.get(&node.id), Some(name));
            }
            for (se, name) in chunk.edges.iter().zip(&chunk.edge_types) {
                assert_eq!(one_shot.truth.edge_type.get(&se.edge.id), Some(name));
            }
        }
    }

    #[test]
    fn id_offset_translates_ids_without_touching_values() {
        let s = spec(2);
        let base: Vec<StreamChunk> = StreamGen::new(&s, 2).with_chunk_size(50).collect();
        let off: Vec<StreamChunk> = StreamGen::new(&s, 2)
            .with_chunk_size(50)
            .with_id_offset(1_000_000)
            .collect();
        assert_eq!(base.len(), off.len());
        for (b, o) in base.iter().zip(&off) {
            for (nb, no) in b.nodes.iter().zip(&o.nodes) {
                assert_eq!(no.id.0, nb.id.0 + 1_000_000);
                assert_eq!(no.labels, nb.labels);
                assert_eq!(no.props, nb.props);
            }
            for (eb, eo) in b.edges.iter().zip(&o.edges) {
                assert_eq!(eo.edge.id.0, eb.edge.id.0 + 1_000_000);
                assert_eq!(eo.edge.src.0, eb.edge.src.0 + 1_000_000);
                assert_eq!(eo.edge.tgt.0, eb.edge.tgt.0 + 1_000_000);
                assert_eq!(eo.edge.props, eb.edge.props);
                assert_eq!(eo.src_labels, eb.src_labels);
                assert_eq!(eo.tgt_labels, eb.tgt_labels);
            }
        }
    }

    #[test]
    fn stream_edge_labels_match_generated_nodes() {
        let s = spec(11).with_noise(crate::NoiseProfile {
            unlabeled_fraction: 0.3,
            ..Default::default()
        });
        let one_shot = synthesize(&s, 11);
        for chunk in StreamGen::new(&s, 11) {
            for se in &chunk.edges {
                let src = one_shot.graph.node(se.edge.src).unwrap();
                let tgt = one_shot.graph.node(se.edge.tgt).unwrap();
                assert_eq!(
                    se.src_labels, src.labels,
                    "post-noise labels, not type labels"
                );
                assert_eq!(se.tgt_labels, tgt.labels);
            }
        }
    }
}
