//! Command implementations. Each returns the text it would print so the
//! logic is unit-testable; the binary writes it to stdout or `--out`.

use crate::opts::{CliError, Command, GraphInput, OutputFormat};
use pg_datasets::{generate, inject_noise, spec_by_name, NoiseConfig};
use pg_hive::{
    diff, merge_states, schema_to_state, serialize, validate, CheckpointStore, DatatypeSampling,
    DiscoveryResult, HiveConfig, HiveSession, LshMethod, PgHive, SchemaMode, SessionCheckpoint,
    ShardState, SHARD_SPLIT_SALT,
};
use pg_model::{GraphStats, PropertyGraph, SchemaGraph};
use pg_store::{split_batches, ErrorPolicy, Quarantine};
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Salt for the deterministic batch split of incremental `discover`
/// runs. Must never change: `--resume` re-derives the identical batch
/// sequence from the input file and the seed, then skips the batches a
/// checkpoint already covers.
const BATCH_SPLIT_SALT: u64 = 0xba7c4;

/// Execute a parsed command; returns the report/serialization text.
pub fn run(cmd: &Command) -> Result<String, CliError> {
    match cmd {
        Command::Discover {
            input,
            format,
            method,
            theta,
            seed,
            threads,
            no_post,
            no_dedup,
            merge_similarity,
            refine,
            sample_datatypes,
            out,
            batches,
            on_error,
            checkpoint_dir,
            checkpoint_every,
            checkpoint_keep,
            resume,
            kill_after_batch,
            shard,
            state_out,
            stream,
        } => {
            let (graph, quarantine) = read_graph_with_policy(input, *on_error)?;
            let config = HiveConfig {
                stream: stream.then(pg_hive::StreamConfig::default),
                threads: *threads,
                method: if method == "minhash" {
                    LshMethod::MinHash
                } else {
                    LshMethod::Elsh
                },
                post_processing: !no_post,
                dedup: !no_dedup,
                datatype_sampling: sample_datatypes.then(DatatypeSampling::default),
                merge_similarity: if merge_similarity == "weighted" {
                    pg_hive::MergeSimilarity::WeightedJaccard
                } else {
                    pg_hive::MergeSimilarity::BinaryJaccard
                },
                ..HiveConfig::default()
            }
            .with_theta(*theta)
            .with_seed(*seed);

            let incremental =
                *batches > 1 || checkpoint_dir.is_some() || kill_after_batch.is_some();
            let (mut result, mut notes) = if incremental {
                let opts = IncrementalOpts {
                    batches: *batches,
                    checkpoint_dir: checkpoint_dir.as_deref(),
                    checkpoint_every: *checkpoint_every,
                    checkpoint_keep: *checkpoint_keep,
                    resume: *resume,
                    kill_after_batch: *kill_after_batch,
                };
                discover_incremental(&graph, config, &opts)?
            } else if let Some((index, n)) = shard {
                // One shard of the same deterministic partition
                // `discover_sharded` uses: the full graph is loaded so
                // edge endpoint labels resolve, then only shard i is
                // discovered. `pg-hive merge` over all n shard states
                // reproduces the single-node schema bit-identically.
                let batch = split_batches(&graph, *n, seed ^ SHARD_SPLIT_SALT)
                    .into_iter()
                    .nth(*index)
                    .expect("shard index < n, by parse validation");
                let result = PgHive::new(config).discover(&batch.nodes, &batch.edges);
                let notes = format!(
                    "shard {index}/{n}: {} nodes, {} edges\n",
                    batch.nodes.len(),
                    batch.edges.len()
                );
                (result, notes)
            } else {
                (PgHive::new(config).discover_graph(&graph), String::new())
            };
            if *refine {
                pg_hive::refine::refine_abstract_types(
                    &mut result.state,
                    &graph,
                    pg_hive::refine::RefineConfig::default(),
                );
                if !no_post {
                    pg_hive::constraints::infer_property_constraints(&mut result.state);
                    pg_hive::datatypes::infer_datatypes(&mut result.state, None, *seed);
                    pg_hive::cardinality::compute_cardinalities(&mut result.state);
                }
                result.schema = result.state.schema.clone();
            }
            if !quarantine.is_empty() {
                notes.push_str(&quarantine.summary());
            }
            if let Some(path) = state_out {
                let state = ShardState::from_state(&result.state);
                let json = serde_json::to_string(&state)
                    .map_err(|e| CliError::Failed(format!("serializing state: {e}")))?;
                fs::write(path, json)
                    .map_err(|e| CliError::Failed(format!("writing {path:?}: {e}")))?;
                let _ = writeln!(notes, "state -> {}", path.display());
            }
            let text = match format {
                OutputFormat::PgSchemaStrict => {
                    serialize::to_pg_schema(&result.schema, SchemaMode::Strict)
                }
                OutputFormat::PgSchemaLoose => {
                    serialize::to_pg_schema(&result.schema, SchemaMode::Loose)
                }
                OutputFormat::Xsd => serialize::to_xsd(&result.schema),
                OutputFormat::Json => serialize::to_json(&result.schema),
            };
            if let Some(path) = out {
                fs::write(path, &text)
                    .map_err(|e| CliError::Failed(format!("writing {path:?}: {e}")))?;
                Ok(format!(
                    "{notes}discovered {} node types, {} edge types -> {}\n",
                    result.schema.node_types.len(),
                    result.schema.edge_types.len(),
                    path.display()
                ))
            } else {
                // Keep stdout machine-parseable (it carries the schema):
                // diagnostics go to stderr.
                if !notes.is_empty() {
                    eprint!("{notes}");
                }
                Ok(text)
            }
        }

        Command::Validate {
            schema,
            input,
            mode,
        } => {
            let graph = read_graph(input)?;
            let schema = read_schema(schema)?;
            let mode = match mode.as_str() {
                "strict" => SchemaMode::Strict,
                "loose" => SchemaMode::Loose,
                other => return Err(CliError::Usage(format!("unknown mode {other:?}"))),
            };
            let report = validate(&graph, &schema, mode);
            let mut text = String::new();
            let _ = writeln!(
                text,
                "checked {} nodes, {} edges: {}",
                report.nodes_checked,
                report.edges_checked,
                if report.is_valid() {
                    "VALID".to_owned()
                } else {
                    format!("{} violations", report.violations.len())
                }
            );
            for v in report.violations.iter().take(50) {
                let _ = writeln!(text, "  {v:?}");
            }
            if report.violations.len() > 50 {
                let _ = writeln!(text, "  … and {} more", report.violations.len() - 50);
            }
            Ok(text)
        }

        Command::Diff { old, new } => {
            let old = read_schema(old)?;
            let new = read_schema(new)?;
            Ok(diff(&old, &new).to_string())
        }

        Command::Stats { input } => {
            let graph = read_graph(input)?;
            Ok(format!("{}\n", GraphStats::of(&graph)))
        }

        Command::Generate {
            dataset,
            out_dir,
            scale,
            seed,
            noise,
            label_availability,
            jsonl,
        } => {
            let spec = spec_by_name(dataset)
                .ok_or_else(|| CliError::Usage(format!("unknown dataset {dataset:?}")))?
                .scaled(*scale);
            let (mut graph, _) = generate(&spec, *seed);
            if *noise > 0.0 || *label_availability < 1.0 {
                inject_noise(
                    &mut graph,
                    NoiseConfig {
                        property_removal: *noise,
                        label_availability: *label_availability,
                        seed: seed ^ 0xabcdef,
                    },
                );
            }
            fs::create_dir_all(out_dir)
                .map_err(|e| CliError::Failed(format!("creating {out_dir:?}: {e}")))?;
            let written = if *jsonl {
                let path = out_dir.join("graph.jsonl");
                fs::write(&path, pg_store::jsonl::to_jsonl(&graph))
                    .map_err(|e| CliError::Failed(e.to_string()))?;
                vec![path]
            } else {
                let nodes = out_dir.join("nodes.csv");
                let edges = out_dir.join("edges.csv");
                fs::write(&nodes, pg_store::csv::nodes_to_csv(&graph))
                    .map_err(|e| CliError::Failed(e.to_string()))?;
                fs::write(&edges, pg_store::csv::edges_to_csv(&graph))
                    .map_err(|e| CliError::Failed(e.to_string()))?;
                vec![nodes, edges]
            };
            let mut text = format!(
                "generated {} ({} nodes, {} edges):\n",
                spec.name,
                graph.node_count(),
                graph.edge_count()
            );
            for p in written {
                let _ = writeln!(text, "  {}", p.display());
            }
            Ok(text)
        }

        Command::Synth {
            schema,
            types,
            out_dir,
            size,
            seed,
            unlabeled,
            missing_optional,
            label_noise,
            missing_mandatory,
            jsonl,
            stream_chunks,
        } => {
            let truth_schema = match schema {
                Some(path) => read_schema(path)?,
                None => pg_synth::random_schema(
                    &pg_synth::SchemaParams {
                        node_types: *types,
                        edge_types: (*types * 3 / 4).max(1),
                        ..Default::default()
                    },
                    *seed,
                ),
            };
            let spec = pg_synth::SynthSpec::new(truth_schema)
                .sized_for(*size)
                .with_noise(pg_synth::NoiseProfile {
                    unlabeled_fraction: *unlabeled,
                    missing_optional_rate: *missing_optional,
                    label_noise_rate: *label_noise,
                    missing_mandatory_rate: *missing_mandatory,
                });
            fs::create_dir_all(out_dir)
                .map_err(|e| CliError::Failed(format!("creating {out_dir:?}: {e}")))?;
            if let Some(chunks) = stream_chunks {
                // Streamed emission: drain the iterator generator in
                // ~`chunks` fixed-size batches, appending as we go. The
                // chunking never touches the generator RNG, so the
                // concatenated output is bit-identical to the one-shot
                // run (and truth rows arrive already id-sorted: nodes
                // precede edges globally, ids ascend within each kind).
                use std::io::Write as _;
                let estimated = spec.schema.node_types.len() * spec.nodes_per_type
                    + spec.schema.edge_types.len() * spec.edges_per_type;
                let chunk_size = (estimated / chunks).max(1);
                let graph_path = out_dir.join("graph.jsonl");
                let types_path = out_dir.join("truth-types.csv");
                let io_err = |e: std::io::Error| CliError::Failed(e.to_string());
                let mut graph_out =
                    std::io::BufWriter::new(fs::File::create(&graph_path).map_err(io_err)?);
                let mut types_out =
                    std::io::BufWriter::new(fs::File::create(&types_path).map_err(io_err)?);
                writeln!(types_out, "kind,id,type").map_err(io_err)?;
                let (mut node_count, mut edge_count) = (0usize, 0usize);
                for chunk in pg_synth::StreamGen::new(&spec, *seed).with_chunk_size(chunk_size) {
                    for (node, name) in chunk.nodes.into_iter().zip(chunk.node_types) {
                        let id = node.id.0;
                        let line = serde_json::to_string(&pg_store::jsonl::Element::Node(node))
                            .map_err(|e| CliError::Failed(e.to_string()))?;
                        writeln!(graph_out, "{line}").map_err(io_err)?;
                        writeln!(types_out, "node,{id},{name}").map_err(io_err)?;
                        node_count += 1;
                    }
                    for (se, name) in chunk.edges.into_iter().zip(chunk.edge_types) {
                        let id = se.edge.id.0;
                        let line = serde_json::to_string(&pg_store::jsonl::Element::Edge(se.edge))
                            .map_err(|e| CliError::Failed(e.to_string()))?;
                        writeln!(graph_out, "{line}").map_err(io_err)?;
                        writeln!(types_out, "edge,{id},{name}").map_err(io_err)?;
                        edge_count += 1;
                    }
                }
                graph_out.flush().map_err(io_err)?;
                types_out.flush().map_err(io_err)?;
                let schema_path = out_dir.join("truth-schema.json");
                fs::write(&schema_path, serialize::to_json(&spec.schema))
                    .map_err(|e| CliError::Failed(e.to_string()))?;
                let mut text = format!(
                    "synthesized {node_count} nodes, {edge_count} edges from {} node types, \
                     {} edge types (seed {seed}, streamed in ~{chunks} chunks):\n",
                    spec.schema.node_types.len(),
                    spec.schema.edge_types.len(),
                );
                for p in [graph_path, schema_path, types_path] {
                    let _ = writeln!(text, "  {}", p.display());
                }
                return Ok(text);
            }
            let out = pg_synth::synthesize(&spec, *seed);
            let mut written = if *jsonl {
                let path = out_dir.join("graph.jsonl");
                fs::write(&path, pg_store::jsonl::to_jsonl(&out.graph))
                    .map_err(|e| CliError::Failed(e.to_string()))?;
                vec![path]
            } else {
                let nodes = out_dir.join("nodes.csv");
                let edges = out_dir.join("edges.csv");
                fs::write(&nodes, pg_store::csv::nodes_to_csv(&out.graph))
                    .map_err(|e| CliError::Failed(e.to_string()))?;
                fs::write(&edges, pg_store::csv::edges_to_csv(&out.graph))
                    .map_err(|e| CliError::Failed(e.to_string()))?;
                vec![nodes, edges]
            };
            // The declared ground truth, in the same JSON the validate
            // and diff commands read back.
            let schema_path = out_dir.join("truth-schema.json");
            fs::write(&schema_path, serialize::to_json(&spec.schema))
                .map_err(|e| CliError::Failed(e.to_string()))?;
            written.push(schema_path);
            // The per-element type assignment, sorted for determinism.
            let types_path = out_dir.join("truth-types.csv");
            let mut lines = vec!["kind,id,type".to_owned()];
            let mut node_rows: Vec<_> = out.truth.node_type.iter().collect();
            node_rows.sort();
            lines.extend(node_rows.iter().map(|(id, t)| format!("node,{},{t}", id.0)));
            let mut edge_rows: Vec<_> = out.truth.edge_type.iter().collect();
            edge_rows.sort();
            lines.extend(edge_rows.iter().map(|(id, t)| format!("edge,{},{t}", id.0)));
            fs::write(&types_path, lines.join("\n") + "\n")
                .map_err(|e| CliError::Failed(e.to_string()))?;
            written.push(types_path);

            let mut text = format!(
                "synthesized {} nodes, {} edges from {} node types, {} edge types (seed {seed}):\n",
                out.graph.node_count(),
                out.graph.edge_count(),
                spec.schema.node_types.len(),
                spec.schema.edge_types.len(),
            );
            for p in written {
                let _ = writeln!(text, "  {}", p.display());
            }
            Ok(text)
        }

        Command::Serve {
            addr,
            state_dir,
            workers,
            queue,
            max_body_mb,
            transport,
            max_connections,
            idle_timeout_ms,
            session_queue,
            cluster,
            cluster_wal_dir,
            cluster_session,
            heartbeat_ms,
            checkpoint_every,
            checkpoint_keep,
        } => {
            let addr: std::net::SocketAddr = addr
                .parse()
                .map_err(|_| CliError::Usage(format!("--addr {addr:?} is not ip:port")))?;
            let transport = match transport.as_deref() {
                Some("epoll") => pg_serve::Transport::Epoll,
                Some("threaded") => pg_serve::Transport::Threaded,
                // opts.rs rejects anything else; None defers to the
                // PG_SERVE_TRANSPORT env var / platform default.
                _ => pg_serve::Transport::from_env(),
            };
            let cluster = if cluster.is_empty() {
                None
            } else {
                let mut cc = pg_serve::ClusterConfig {
                    shards: cluster.clone(),
                    session: cluster_session.clone(),
                    heartbeat: std::time::Duration::from_millis(*heartbeat_ms),
                    ..pg_serve::ClusterConfig::default()
                };
                // The coordinator's checkpoint cadence governs the shard
                // sessions it creates, and through them how aggressively
                // the per-shard WALs are trimmed.
                cc.spec.checkpoint_every = *checkpoint_every;
                if let Some(dir) = cluster_wal_dir {
                    cc.wal_dir = dir.clone();
                }
                Some(cc)
            };
            let config = pg_serve::ServerConfig {
                addr,
                workers: *workers,
                queue: *queue,
                max_body: max_body_mb * 1024 * 1024,
                state_dir: state_dir.clone(),
                checkpoint_every: *checkpoint_every,
                checkpoint_keep: *checkpoint_keep,
                transport,
                max_connections: *max_connections,
                idle_timeout: std::time::Duration::from_millis(*idle_timeout_ms),
                session_queue: *session_queue,
                cluster,
                ..pg_serve::ServerConfig::default()
            };
            let flag = pg_serve::shutdown_flag();
            pg_serve::install_signal_handlers(&flag);
            let server = pg_serve::Server::bind(config, flag)
                .map_err(|e| CliError::Failed(format!("binding {addr}: {e}")))?;
            // Announce the resolved address before blocking so scripts
            // (and the e2e tests) can discover an ephemeral port.
            println!("listening on {}", server.local_addr());
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            let summary = server
                .run()
                .map_err(|e| CliError::Failed(format!("serving: {e}")))?;
            if !summary.persist_failures.is_empty() {
                return Err(CliError::State(format!(
                    "final checkpoint failed for {} session(s): {}",
                    summary.persist_failures.len(),
                    summary
                        .persist_failures
                        .iter()
                        .map(|(n, e)| format!("{n}: {e}"))
                        .collect::<Vec<_>>()
                        .join("; ")
                )));
            }
            Ok(format!(
                "shut down cleanly: {} connection(s) served, {} session(s) persisted\n",
                summary.connections, summary.sessions_persisted
            ))
        }

        Command::Hash { schema } => {
            let schema = read_schema(schema)?;
            Ok(format!("{}\n", serialize::content_hash_hex(&schema)))
        }

        Command::Merge { inputs, out } => {
            #[derive(Clone, Copy, PartialEq, Debug)]
            enum Kind {
                State,
                Schema,
            }
            let mut states = Vec::with_capacity(inputs.len());
            let mut kind: Option<Kind> = None;
            for path in inputs {
                let text = fs::read_to_string(path)
                    .map_err(|e| CliError::Input(format!("reading {path:?}: {e}")))?;
                // Shard-state JSON (schema + accumulators) merges
                // exactly; bare schema JSON merges pessimistically.
                let (state, this) = match serde_json::from_str::<ShardState>(&text) {
                    Ok(ss) => (ss.into_state(), Kind::State),
                    Err(_) => match serde_json::from_str::<SchemaGraph>(&text) {
                        Ok(schema) => (schema_to_state(&schema), Kind::Schema),
                        Err(e) => {
                            return Err(CliError::Input(format!(
                                "{path:?} is neither shard-state nor schema JSON: {e}"
                            )))
                        }
                    },
                };
                match kind {
                    None => kind = Some(this),
                    Some(k) if k != this => {
                        return Err(CliError::Usage(
                            "cannot mix shard-state and bare-schema inputs in one merge \
                             (their statistics are not comparable); re-run discover with \
                             --state-out to export shard states"
                                .into(),
                        ))
                    }
                    Some(_) => {}
                }
                states.push(state);
            }
            let merged = merge_states(&states, &HiveConfig::default())
                .map_err(|e| CliError::Usage(e.to_string()))?;
            let text = serialize::to_json(&merged.schema);
            if let Some(path) = out {
                fs::write(path, &text)
                    .map_err(|e| CliError::Failed(format!("writing {path:?}: {e}")))?;
                Ok(format!(
                    "merged {} input(s) -> {} node types, {} edge types -> {}\n",
                    inputs.len(),
                    merged.schema.node_types.len(),
                    merged.schema.edge_types.len(),
                    path.display()
                ))
            } else {
                Ok(text)
            }
        }
    }
}

/// Knobs of the incremental (batched / checkpointed) discover path.
struct IncrementalOpts<'a> {
    batches: usize,
    checkpoint_dir: Option<&'a Path>,
    checkpoint_every: usize,
    checkpoint_keep: usize,
    resume: bool,
    kill_after_batch: Option<usize>,
}

/// Run discovery as an incremental session over a deterministic batch
/// split, with optional durable checkpoints, crash resume, and a panic
/// boundary that writes an emergency checkpoint before reporting a
/// state error. Returns the result plus human-readable status notes
/// (resume provenance, corrupt checkpoints skipped).
fn discover_incremental(
    graph: &PropertyGraph,
    config: HiveConfig,
    opts: &IncrementalOpts<'_>,
) -> Result<(DiscoveryResult, String), CliError> {
    let store = opts
        .checkpoint_dir
        .map(|d| CheckpointStore::open(d).map(|s| s.with_retention(opts.checkpoint_keep)))
        .transpose()
        .map_err(|e| CliError::State(e.to_string()))?;
    let batch_list = split_batches(graph, opts.batches, config.seed ^ BATCH_SPLIT_SALT);
    let mut notes = String::new();

    let (mut session, start_batch) = match (&store, opts.resume) {
        (Some(store), true) => {
            let outcome = store.resume().map_err(|e| CliError::State(e.to_string()))?;
            for (path, why) in &outcome.skipped {
                let _ = writeln!(
                    notes,
                    "skipped corrupt checkpoint {}: {why}",
                    path.display()
                );
            }
            match (outcome.checkpoint, outcome.path) {
                (Some(ckpt), Some(path)) => {
                    let start = ckpt.batches_processed;
                    if start > batch_list.len() {
                        return Err(CliError::State(format!(
                            "checkpoint {} covers {start} batches but the input splits \
                             into only {} — wrong input file or --batches value?",
                            path.display(),
                            batch_list.len()
                        )));
                    }
                    let _ = writeln!(
                        notes,
                        "resumed from {} at batch {start}/{}",
                        path.display(),
                        batch_list.len()
                    );
                    let session = HiveSession::restore(config, ckpt)
                        .map_err(|e| CliError::State(e.to_string()))?;
                    (session, start)
                }
                _ => {
                    let _ = writeln!(notes, "no checkpoint found; starting fresh");
                    (HiveSession::new(config), 0)
                }
            }
        }
        _ => (HiveSession::new(config), 0),
    };

    // The panic boundary: a panic anywhere in batch processing must not
    // lose the session — the last completed batch's state is written as
    // an emergency checkpoint before the error surfaces.
    let mut last_checkpoint: Option<SessionCheckpoint> = None;
    let mut completed = start_batch;
    let outcome =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| -> Result<(), CliError> {
            for (i, batch) in batch_list.iter().enumerate().skip(start_batch) {
                session.process_graph_batch(batch);
                completed = i + 1;
                if let Some(store) = &store {
                    let ckpt = session.checkpoint();
                    if (i + 1) % opts.checkpoint_every == 0 || i + 1 == batch_list.len() {
                        store
                            .save(&ckpt)
                            .map_err(|e| CliError::State(e.to_string()))?;
                    }
                    last_checkpoint = Some(ckpt);
                }
                if opts.kill_after_batch == Some(i + 1) {
                    panic!("fault injection: --kill-after-batch {}", i + 1);
                }
            }
            Ok(())
        }));
    match outcome {
        Ok(Ok(())) => {}
        Ok(Err(e)) => return Err(e),
        Err(_) => {
            let mut msg = format!(
                "panic during batch processing ({completed} of {} batches completed)",
                batch_list.len()
            );
            if let (Some(store), Some(ckpt)) = (&store, &last_checkpoint) {
                match store.save(ckpt) {
                    Ok(path) => {
                        let _ = write!(msg, "; emergency checkpoint -> {}", path.display());
                    }
                    Err(e) => {
                        let _ = write!(msg, "; emergency checkpoint failed: {e}");
                    }
                }
            }
            return Err(CliError::State(msg));
        }
    }
    Ok((session.finish(), notes))
}

fn read_graph(input: &GraphInput) -> Result<PropertyGraph, CliError> {
    read_graph_with_policy(input, ErrorPolicy::Strict).map(|(g, _)| g)
}

/// Read a graph from CSV or JSONL under an error policy. Malformed
/// lines land in the returned [`Quarantine`] (empty under `Strict`,
/// which fails fast instead).
fn read_graph_with_policy(
    input: &GraphInput,
    policy: ErrorPolicy,
) -> Result<(PropertyGraph, Quarantine), CliError> {
    if let Some(jsonl) = &input.jsonl {
        let text = fs::read_to_string(jsonl)
            .map_err(|e| CliError::Input(format!("reading {jsonl:?}: {e}")))?;
        return pg_store::jsonl::from_jsonl_with_policy(&text, policy)
            .map_err(|e| CliError::Input(format!("parsing {jsonl:?}: {e}")));
    }
    let (Some(nodes_path), Some(edges_path)) = (&input.nodes, &input.edges) else {
        return Err(CliError::Usage(
            "provide either --nodes with --edges, or --jsonl".into(),
        ));
    };
    let nodes = fs::read_to_string(nodes_path)
        .map_err(|e| CliError::Input(format!("reading {nodes_path:?}: {e}")))?;
    let edges = fs::read_to_string(edges_path)
        .map_err(|e| CliError::Input(format!("reading {edges_path:?}: {e}")))?;
    pg_store::csv::graph_from_csv_with_policy(&nodes, &edges, policy)
        .map_err(|e| CliError::Input(e.to_string()))
}

fn read_schema(path: &Path) -> Result<SchemaGraph, CliError> {
    let text =
        fs::read_to_string(path).map_err(|e| CliError::Input(format!("reading {path:?}: {e}")))?;
    serde_json::from_str(&text)
        .map_err(|e| CliError::Input(format!("parsing schema {path:?}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::parse;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pg-hive-cli-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn argv(a: &[&str]) -> Vec<String> {
        a.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn generate_then_discover_then_validate_round_trip() {
        let dir = tmpdir("roundtrip");
        let dir_s = dir.to_str().unwrap();

        // 1. Generate a small POLE twin.
        let out = run(&parse(&argv(&[
            "generate",
            "--dataset",
            "POLE",
            "--out-dir",
            dir_s,
            "--scale",
            "0.05",
        ]))
        .unwrap())
        .unwrap();
        assert!(out.contains("generated POLE"));
        let nodes = dir.join("nodes.csv");
        let edges = dir.join("edges.csv");
        assert!(nodes.exists() && edges.exists());

        // 2. Discover its schema to JSON.
        let schema_path = dir.join("schema.json");
        let out = run(&parse(&argv(&[
            "discover",
            "--nodes",
            nodes.to_str().unwrap(),
            "--edges",
            edges.to_str().unwrap(),
            "--format",
            "json",
            "--out",
            schema_path.to_str().unwrap(),
        ]))
        .unwrap())
        .unwrap();
        assert!(out.contains("node types"));
        assert!(schema_path.exists());

        // 3. Validate the same data against the discovered schema.
        let out = run(&parse(&argv(&[
            "validate",
            "--schema",
            schema_path.to_str().unwrap(),
            "--nodes",
            nodes.to_str().unwrap(),
            "--edges",
            edges.to_str().unwrap(),
            "--mode",
            "strict",
        ]))
        .unwrap())
        .unwrap();
        assert!(out.contains("VALID"), "{out}");

        // 4. Diff the schema against itself.
        let out = run(&parse(&argv(&[
            "diff",
            "--old",
            schema_path.to_str().unwrap(),
            "--new",
            schema_path.to_str().unwrap(),
        ]))
        .unwrap())
        .unwrap();
        assert!(out.contains("identical"));

        // 5. Stats.
        let out = run(&parse(&argv(&[
            "stats",
            "--nodes",
            nodes.to_str().unwrap(),
            "--edges",
            edges.to_str().unwrap(),
        ]))
        .unwrap())
        .unwrap();
        assert!(out.contains("nodes"));

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn discover_emits_each_format() {
        let dir = tmpdir("formats");
        let dir_s = dir.to_str().unwrap();
        run(&parse(&argv(&[
            "generate",
            "--dataset",
            "POLE",
            "--out-dir",
            dir_s,
            "--scale",
            "0.05",
            "--jsonl",
        ]))
        .unwrap())
        .unwrap();
        let jsonl = dir.join("graph.jsonl");
        for (fmt, marker) in [
            ("pg-schema-strict", "STRICT"),
            ("pg-schema-loose", "LOOSE"),
            ("xsd", "<?xml"),
            ("json", "node_types"),
        ] {
            let out = run(&parse(&argv(&[
                "discover",
                "--jsonl",
                jsonl.to_str().unwrap(),
                "--format",
                fmt,
            ]))
            .unwrap())
            .unwrap();
            assert!(out.contains(marker), "format {fmt}: {out:.80}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn noisy_generation_strips_labels() {
        let dir = tmpdir("noisy");
        run(&parse(&argv(&[
            "generate",
            "--dataset",
            "MB6",
            "--out-dir",
            dir.to_str().unwrap(),
            "--scale",
            "0.05",
            "--label-availability",
            "0.0",
            "--jsonl",
        ]))
        .unwrap())
        .unwrap();
        let graph =
            pg_store::jsonl::from_jsonl(&fs::read_to_string(dir.join("graph.jsonl")).unwrap())
                .unwrap();
        assert!(graph.nodes().all(|n| n.labels.is_empty()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn synth_discover_validate_round_trip() {
        let dir = tmpdir("synthtrip");
        let dir_s = dir.to_str().unwrap();

        // 1. Synthesize a clean ground-truth corpus.
        let out = run(&parse(&argv(&[
            "synth",
            "--out-dir",
            dir_s,
            "--types",
            "4",
            "--size",
            "600",
            "--seed",
            "11",
        ]))
        .unwrap())
        .unwrap();
        assert!(out.contains("synthesized"), "{out}");
        let nodes = dir.join("nodes.csv");
        let edges = dir.join("edges.csv");
        let truth_schema = dir.join("truth-schema.json");
        assert!(nodes.exists() && edges.exists() && truth_schema.exists());
        assert!(dir.join("truth-types.csv").exists());

        // 2. The clean corpus STRICT-validates against its declared
        // ground truth — the oracle baseline, via the CLI end to end.
        let out = run(&parse(&argv(&[
            "validate",
            "--schema",
            truth_schema.to_str().unwrap(),
            "--nodes",
            nodes.to_str().unwrap(),
            "--edges",
            edges.to_str().unwrap(),
            "--mode",
            "strict",
        ]))
        .unwrap())
        .unwrap();
        assert!(out.contains("VALID"), "{out}");

        // 3. Discovery on the corpus, diffed against the ground truth:
        // every declared type must be recovered (label sets match).
        let discovered = dir.join("discovered.json");
        run(&parse(&argv(&[
            "discover",
            "--nodes",
            nodes.to_str().unwrap(),
            "--edges",
            edges.to_str().unwrap(),
            "--format",
            "json",
            "--out",
            discovered.to_str().unwrap(),
        ]))
        .unwrap())
        .unwrap();
        let diff_out = run(&parse(&argv(&[
            "diff",
            "--old",
            truth_schema.to_str().unwrap(),
            "--new",
            discovered.to_str().unwrap(),
        ]))
        .unwrap())
        .unwrap();
        assert!(
            !diff_out.contains("- node type"),
            "discovery lost a declared node type:\n{diff_out}"
        );

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn synth_is_deterministic_across_runs() {
        let a = tmpdir("synthdet-a");
        let b = tmpdir("synthdet-b");
        for dir in [&a, &b] {
            run(&parse(&argv(&[
                "synth",
                "--out-dir",
                dir.to_str().unwrap(),
                "--size",
                "400",
                "--seed",
                "3",
                "--unlabeled",
                "0.2",
                "--jsonl",
            ]))
            .unwrap())
            .unwrap();
        }
        for file in ["graph.jsonl", "truth-schema.json", "truth-types.csv"] {
            assert_eq!(
                fs::read_to_string(a.join(file)).unwrap(),
                fs::read_to_string(b.join(file)).unwrap(),
                "{file} differs between identical runs"
            );
        }
        let _ = fs::remove_dir_all(&a);
        let _ = fs::remove_dir_all(&b);
    }

    #[test]
    fn sharded_discover_then_merge_matches_single_node_hash() {
        let dir = tmpdir("shardmerge");
        let dir_s = dir.to_str().unwrap();
        run(&parse(&argv(&[
            "synth",
            "--out-dir",
            dir_s,
            "--types",
            "4",
            "--size",
            "800",
            "--seed",
            "5",
        ]))
        .unwrap())
        .unwrap();
        let nodes = dir.join("nodes.csv");
        let edges = dir.join("edges.csv");

        // Single-node baseline.
        let single = dir.join("single.json");
        run(&parse(&argv(&[
            "discover",
            "--nodes",
            nodes.to_str().unwrap(),
            "--edges",
            edges.to_str().unwrap(),
            "--format",
            "json",
            "--out",
            single.to_str().unwrap(),
        ]))
        .unwrap())
        .unwrap();
        let single_hash =
            run(&parse(&argv(&["hash", "--schema", single.to_str().unwrap()])).unwrap()).unwrap();

        // Three independent per-shard runs, states exported.
        let mut state_files = Vec::new();
        for i in 0..3 {
            let state = dir.join(format!("state-{i}.json"));
            let out = run(&parse(&argv(&[
                "discover",
                "--nodes",
                nodes.to_str().unwrap(),
                "--edges",
                edges.to_str().unwrap(),
                "--shard",
                &format!("{i}/3"),
                "--state-out",
                state.to_str().unwrap(),
                "--format",
                "json",
                "--out",
                dir.join(format!("shard-{i}.json")).to_str().unwrap(),
            ]))
            .unwrap())
            .unwrap();
            assert!(out.contains(&format!("shard {i}/3")), "{out}");
            assert!(state.exists());
            state_files.push(state);
        }

        // Merge the shard states; the canonical hash must equal the
        // single-node run's.
        let merged = dir.join("merged.json");
        let mut merge_args = vec!["merge".to_owned()];
        merge_args.extend(state_files.iter().map(|p| p.to_str().unwrap().to_owned()));
        merge_args.extend(["--out".to_owned(), merged.to_str().unwrap().to_owned()]);
        let out = run(&parse(&merge_args).unwrap()).unwrap();
        assert!(out.contains("merged 3 input(s)"), "{out}");
        let merged_hash =
            run(&parse(&argv(&["hash", "--schema", merged.to_str().unwrap()])).unwrap()).unwrap();
        assert_eq!(
            merged_hash, single_hash,
            "sharded discover + merge must reproduce the single-node hash"
        );

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_rejects_mixed_and_malformed_inputs() {
        let dir = tmpdir("mergeneg");
        let dir_s = dir.to_str().unwrap();
        run(&parse(&argv(&[
            "synth",
            "--out-dir",
            dir_s,
            "--types",
            "3",
            "--size",
            "300",
            "--seed",
            "2",
        ]))
        .unwrap())
        .unwrap();
        let schema_file = dir.join("truth-schema.json");
        let state_file = dir.join("state.json");
        run(&parse(&argv(&[
            "discover",
            "--nodes",
            dir.join("nodes.csv").to_str().unwrap(),
            "--edges",
            dir.join("edges.csv").to_str().unwrap(),
            "--state-out",
            state_file.to_str().unwrap(),
        ]))
        .unwrap())
        .unwrap();

        // Bare schemas merge with themselves (pessimistic algebra).
        let merged = dir.join("schemas-merged.json");
        run(&parse(&argv(&[
            "merge",
            schema_file.to_str().unwrap(),
            schema_file.to_str().unwrap(),
            "--out",
            merged.to_str().unwrap(),
        ]))
        .unwrap())
        .unwrap();
        assert!(read_schema(&merged).is_ok());

        // Mixing kinds is a usage error (exit code 2).
        let err = run(&parse(&argv(&[
            "merge",
            schema_file.to_str().unwrap(),
            state_file.to_str().unwrap(),
        ]))
        .unwrap())
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        assert_eq!(err.exit_code(), 2);

        // Malformed JSON is an input error (exit code 3).
        let junk = dir.join("junk.json");
        fs::write(&junk, "{not json").unwrap();
        let err = run(&parse(&argv(&["merge", junk.to_str().unwrap()])).unwrap()).unwrap_err();
        assert!(matches!(err, CliError::Input(_)), "{err}");
        assert_eq!(err.exit_code(), 3);

        // A missing file is also an input error, not a panic.
        let err = run(&parse(&argv(&["merge", "/nonexistent/state.json"])).unwrap()).unwrap_err();
        assert!(matches!(err, CliError::Input(_)));

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_files_fail_cleanly() {
        let err = run(&parse(&argv(&["stats", "--jsonl", "/nonexistent/file.jsonl"])).unwrap())
            .unwrap_err();
        assert!(matches!(err, CliError::Input(_)));
        assert_eq!(err.exit_code(), 3);
        let err = run(&parse(&argv(&[
            "generate",
            "--dataset",
            "NOPE",
            "--out-dir",
            "/tmp/x",
        ]))
        .unwrap())
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }
}
