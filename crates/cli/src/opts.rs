//! Argument parsing for the CLI (hand-rolled: the workspace avoids
//! heavyweight dependencies; see DESIGN.md).

use std::fmt;
use std::path::PathBuf;

/// CLI-level errors. Each variant maps to a distinct process exit code
/// (see [`CliError::exit_code`]) so scripts can tell bad *input* (fix
/// the data, rerun) from bad *state* (inspect the checkpoint directory)
/// apart without parsing stderr.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Bad invocation (unknown flag, missing value, …). Exit code 2.
    Usage(String),
    /// The input data could not be read or parsed (missing file,
    /// malformed CSV/JSONL line, strict-mode quarantine trip). Exit
    /// code 3.
    Input(String),
    /// Session state is damaged or unrecoverable (corrupt checkpoints,
    /// checkpoint I/O failure, panic during batch processing). Exit
    /// code 4.
    State(String),
    /// Any other runtime failure (e.g. writing the output file). Exit
    /// code 1.
    Failed(String),
}

impl CliError {
    /// The process exit code for this error class.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Failed(_) => 1,
            CliError::Usage(_) => 2,
            CliError::Input(_) => 3,
            CliError::State(_) => 4,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}\n\n{USAGE}"),
            CliError::Input(m) => write!(f, "input error: {m}"),
            CliError::State(m) => write!(f, "state error: {m}"),
            CliError::Failed(m) => write!(f, "error: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Top-level usage text.
pub const USAGE: &str = "\
pg-hive <command> [options]

Commands:
  discover  --nodes <csv> --edges <csv> | --jsonl <file>
            [--format pg-schema-strict|pg-schema-loose|xsd|json]
            [--method elsh|minhash] [--theta <f>] [--seed <n>]
            [--merge-similarity binary|weighted] [--refine]
            [--threads <n>] (0 = all cores, 1 = sequential; same schema)
            [--no-dedup] (disable the structural-fingerprint dedup fast
              path; the schema is bit-identical either way)
            [--no-post] [--sample-datatypes] [--out <file>]
            [--batches <k>] (split input into k incremental batches)
            [--on-error strict|skip|cap:<n>] (malformed input lines:
              fail fast, quarantine and continue, or tolerate up to n)
            [--checkpoint-dir <dir>] [--checkpoint-every <n>]
            [--checkpoint-keep <k>] [--resume]
            (durable checkpoints: save session state every n batches,
             keep the last k; --resume continues from the newest valid
             checkpoint after a crash)
            [--shard <i>/<n>] (discover only shard i of a deterministic
              n-way partition of the input — run once per shard, then
              unify the shards with `pg-hive merge`)
            [--state-out <file>] (also write the full discovery state —
              schema + accumulators — as shard-state JSON, the exact
              exchange format `pg-hive merge` consumes)
            [--stream] (bounded-memory streaming mode: per-type
              statistics live in fixed-size mergeable sketches, so
              session and checkpoint size are independent of stream
              length; cardinalities and sampled datatypes become
              estimates within documented error bounds)

Exit codes: 0 ok, 1 failure, 2 usage, 3 bad input data, 4 bad session
state (corrupt checkpoints, crash during batch processing).
  validate  --schema <json> (--nodes <csv> --edges <csv> | --jsonl <file>)
            [--mode strict|loose]
  diff      --old <schema.json> --new <schema.json>
  stats     --nodes <csv> --edges <csv> | --jsonl <file>
  generate  --dataset <name> --out-dir <dir> [--scale <f>] [--seed <n>]
            [--noise <f>] [--label-availability <f>] [--jsonl]
  synth     --out-dir <dir> [--schema <json> | --types <n>] [--size <n>]
            [--seed <n>] [--unlabeled <f>] [--missing-optional <f>]
            [--label-noise <f>] [--missing-mandatory <f>] [--jsonl]
            (ground-truth corpus: generate a graph *from* a declared
             schema — given by --schema or drawn randomly with --types
             node types — plus truth-schema.json and truth-types.csv;
             bit-deterministic for a fixed seed)
            [--stream-chunks <n>] (emit the corpus in n streamed
              chunks through the iterator generator; the concatenated
              output is bit-identical to the one-shot run)
  serve     [--addr <ip:port>] [--state-dir <dir>] [--workers <n>]
            [--queue <n>] [--max-body-mb <n>] [--checkpoint-every <n>]
            [--checkpoint-keep <k>]
            (HTTP server hosting live discovery sessions; with
             --state-dir sessions checkpoint on cadence and at graceful
             shutdown (SIGINT/SIGTERM) and a restart resumes them
             bit-identically; --addr with port 0 picks a free port,
             printed as \"listening on <ip:port>\" at startup)
            [--cluster <url,url,...>] (run as a cluster coordinator:
              route POST /ingest across these pg-serve shard instances
              behind a per-shard write-ahead log and answer GET /schema
              by merging live shard states — degraded but available
              while shards are down)
            [--cluster-wal-dir <dir>] [--cluster-session <name>]
            [--heartbeat-ms <n>] (coordinator shard-health probe cadence)
  hash      --schema <json>
            (print the canonical schema content hash — the same value
             the server reports and embeds in ETags)
  merge     <state.json|schema.json>... [--out <file>]
            (unify per-shard discovery results into one canonical
             schema, bit-identical regardless of input order.
             Shard-state JSON (from discover --state-out) merges
             exactly: constraints, data types, and cardinalities are
             recomputed from the merged accumulators. Bare schema JSON
             merges pessimistically: one-sided keys demote to OPTIONAL
             and declared cardinalities fold as maxima. Inputs must be
             all one kind)
";

/// Where to read a graph from.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GraphInput {
    /// Node CSV path (paired with `edges`).
    pub nodes: Option<PathBuf>,
    /// Edge CSV path.
    pub edges: Option<PathBuf>,
    /// JSON-lines path (alternative to the CSV pair).
    pub jsonl: Option<PathBuf>,
}

impl GraphInput {
    fn validate(&self) -> Result<(), CliError> {
        match (&self.nodes, &self.edges, &self.jsonl) {
            (Some(_), Some(_), None) | (None, None, Some(_)) => Ok(()),
            _ => Err(CliError::Usage(
                "provide either --nodes with --edges, or --jsonl".into(),
            )),
        }
    }
}

/// Output format for `discover`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// PG-Schema STRICT declaration.
    #[default]
    PgSchemaStrict,
    /// PG-Schema LOOSE declaration.
    PgSchemaLoose,
    /// XML Schema.
    Xsd,
    /// JSON (round-trippable).
    Json,
}

/// A parsed CLI command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Discover a schema.
    Discover {
        /// Graph source.
        input: GraphInput,
        /// Output format.
        format: OutputFormat,
        /// LSH family name ("elsh"/"minhash").
        method: String,
        /// Jaccard threshold θ.
        theta: f64,
        /// Seed.
        seed: u64,
        /// Worker threads (0 = available parallelism, 1 = sequential;
        /// the discovered schema is identical either way).
        threads: usize,
        /// Skip post-processing.
        no_post: bool,
        /// Disable the structural-fingerprint dedup fast path.
        no_dedup: bool,
        /// "binary" or "weighted" unlabeled-cluster merging.
        merge_similarity: String,
        /// Run the context-refinement pass on ABSTRACT types.
        refine: bool,
        /// Use sampled data-type inference.
        sample_datatypes: bool,
        /// Output path (stdout if None).
        out: Option<PathBuf>,
        /// Split the input into this many incremental batches (1 =
        /// classic one-shot discovery).
        batches: usize,
        /// Policy for malformed input lines.
        on_error: pg_store::ErrorPolicy,
        /// Directory for durable checkpoints (None = no persistence).
        checkpoint_dir: Option<PathBuf>,
        /// Checkpoint every N batches.
        checkpoint_every: usize,
        /// Retain the last K checkpoints.
        checkpoint_keep: usize,
        /// Resume from the newest valid checkpoint in `checkpoint_dir`.
        resume: bool,
        /// Fault injection for tests/CI: panic after this many batches
        /// have been processed (exercises the panic boundary and the
        /// emergency checkpoint). Hidden from USAGE on purpose.
        kill_after_batch: Option<usize>,
        /// Discover only shard `i` of a deterministic `n`-way partition
        /// (`(i, n)` with `i < n`); None = the whole input.
        shard: Option<(usize, usize)>,
        /// Also write the discovery state (schema + accumulators) as
        /// shard-state JSON — the input format of `pg-hive merge`.
        state_out: Option<PathBuf>,
        /// Bounded-memory streaming mode: swap per-type statistics
        /// onto fixed-size mergeable sketches.
        stream: bool,
    },
    /// Validate a graph against a schema.
    Validate {
        /// Path to the schema JSON.
        schema: PathBuf,
        /// Graph source.
        input: GraphInput,
        /// "strict" or "loose".
        mode: String,
    },
    /// Diff two schemas.
    Diff {
        /// Older schema JSON.
        old: PathBuf,
        /// Newer schema JSON.
        new: PathBuf,
    },
    /// Graph statistics.
    Stats {
        /// Graph source.
        input: GraphInput,
    },
    /// Generate a benchmark dataset.
    Generate {
        /// Catalog dataset name.
        dataset: String,
        /// Output directory.
        out_dir: PathBuf,
        /// Scale multiplier.
        scale: f64,
        /// Seed.
        seed: u64,
        /// Property-removal noise.
        noise: f64,
        /// Label availability.
        label_availability: f64,
        /// Emit JSON-lines instead of CSV.
        jsonl: bool,
    },
    /// Generate a ground-truth synthetic corpus (pg-synth).
    Synth {
        /// Declared schema JSON (None = draw a random ground truth).
        schema: Option<PathBuf>,
        /// Node-type count for the random ground truth (ignored with
        /// `--schema`).
        types: usize,
        /// Output directory.
        out_dir: PathBuf,
        /// Total element budget (nodes + edges) of the clean graph.
        size: usize,
        /// Seed (generation is bit-deterministic given schema + seed).
        seed: u64,
        /// Unlabeled-node fraction.
        unlabeled: f64,
        /// Missing-optional-property rate.
        missing_optional: f64,
        /// Spurious-label rate.
        label_noise: f64,
        /// Missing-MANDATORY-property rate (erodes the property
        /// discriminator; the graph stops STRICT-conforming).
        missing_mandatory: f64,
        /// Emit JSON-lines instead of CSV.
        jsonl: bool,
        /// Emit the corpus through the streaming generator in this
        /// many chunks (None = materialize the graph in one shot).
        stream_chunks: Option<usize>,
    },
    /// Run the pg-serve HTTP server.
    Serve {
        /// Listen address (`ip:port`; port 0 = ephemeral).
        addr: String,
        /// Durable session state directory (None = in-memory only).
        state_dir: Option<PathBuf>,
        /// Worker threads.
        workers: usize,
        /// Accept-queue depth before 503s start.
        queue: usize,
        /// Largest accepted request body, in MiB.
        max_body_mb: usize,
        /// Default batches between cadence checkpoints.
        checkpoint_every: u64,
        /// Checkpoints retained per session.
        checkpoint_keep: usize,
        /// Transport to serve on (None = `PG_SERVE_TRANSPORT` env or
        /// the platform-native choice: epoll on Linux).
        transport: Option<String>,
        /// Concurrent-connection ceiling (epoll transport).
        max_connections: usize,
        /// Keep-alive idle timeout between requests, in milliseconds.
        idle_timeout_ms: u64,
        /// Per-session pending-ingest depth before 503 backpressure.
        session_queue: usize,
        /// Shard URLs to coordinate (empty = ordinary single node).
        cluster: Vec<String>,
        /// Coordinator WAL directory (None = the default
        /// `pg-cluster-wal`).
        cluster_wal_dir: Option<PathBuf>,
        /// Name of the cluster session on every shard.
        cluster_session: String,
        /// Shard health-probe cadence in milliseconds.
        heartbeat_ms: u64,
    },
    /// Print the canonical content hash of a schema JSON file.
    Hash {
        /// Path to the schema JSON.
        schema: PathBuf,
    },
    /// Merge per-shard discovery results into one canonical schema.
    Merge {
        /// Input files: all shard-state JSON or all schema JSON.
        inputs: Vec<PathBuf>,
        /// Merged schema output path (stdout if None).
        out: Option<PathBuf>,
    },
}

/// Parse argv (without the program name).
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let cmd = it
        .next()
        .ok_or_else(|| CliError::Usage("missing command".into()))?;
    let rest: Vec<&String> = it.collect();

    let mut flags: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    let mut switches: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut i = 0;
    let boolean_flags = [
        "--no-post",
        "--no-dedup",
        "--sample-datatypes",
        "--jsonl-out",
        "--refine",
        "--resume",
        "--stream",
    ];
    let mut positionals: Vec<String> = Vec::new();
    while i < rest.len() {
        let flag = rest[i].as_str();
        if !flag.starts_with("--") {
            // Only `merge` takes positional operands (its input files).
            if cmd == "merge" {
                positionals.push(flag.to_owned());
                i += 1;
                continue;
            }
            return Err(CliError::Usage(format!("unexpected argument {flag:?}")));
        }
        if boolean_flags.contains(&flag)
            || (flag == "--jsonl" && (cmd == "generate" || cmd == "synth"))
        {
            switches.insert(flag.to_owned());
            i += 1;
        } else {
            let value = rest
                .get(i + 1)
                .ok_or_else(|| CliError::Usage(format!("{flag} requires a value")))?;
            flags.insert(flag.to_owned(), (*value).clone());
            i += 2;
        }
    }

    let path = |name: &str| -> Option<PathBuf> { flags.get(name).map(PathBuf::from) };
    let input = || -> Result<GraphInput, CliError> {
        let g = GraphInput {
            nodes: path("--nodes"),
            edges: path("--edges"),
            jsonl: path("--jsonl"),
        };
        g.validate()?;
        Ok(g)
    };
    let f64_flag = |name: &str, default: f64| -> Result<f64, CliError> {
        flags
            .get(name)
            .map(|v| {
                v.parse::<f64>()
                    .map_err(|_| CliError::Usage(format!("{name} must be a number")))
            })
            .unwrap_or(Ok(default))
    };
    let u64_flag = |name: &str, default: u64| -> Result<u64, CliError> {
        flags
            .get(name)
            .map(|v| {
                v.parse::<u64>()
                    .map_err(|_| CliError::Usage(format!("{name} must be an integer")))
            })
            .unwrap_or(Ok(default))
    };

    match cmd.as_str() {
        "discover" => {
            let format = match flags.get("--format").map(String::as_str) {
                None | Some("pg-schema-strict") => OutputFormat::PgSchemaStrict,
                Some("pg-schema-loose") => OutputFormat::PgSchemaLoose,
                Some("xsd") => OutputFormat::Xsd,
                Some("json") => OutputFormat::Json,
                Some(other) => return Err(CliError::Usage(format!("unknown format {other:?}"))),
            };
            let method = flags
                .get("--method")
                .cloned()
                .unwrap_or_else(|| "elsh".into());
            if method != "elsh" && method != "minhash" {
                return Err(CliError::Usage(format!("unknown method {method:?}")));
            }
            let merge_similarity = flags
                .get("--merge-similarity")
                .cloned()
                .unwrap_or_else(|| "binary".into());
            if merge_similarity != "binary" && merge_similarity != "weighted" {
                return Err(CliError::Usage(format!(
                    "unknown merge similarity {merge_similarity:?}"
                )));
            }
            let on_error = match flags.get("--on-error").map(String::as_str) {
                None | Some("strict") => pg_store::ErrorPolicy::Strict,
                Some("skip") => pg_store::ErrorPolicy::Skip,
                Some(other) => match other.strip_prefix("cap:").and_then(|n| n.parse().ok()) {
                    Some(n) => pg_store::ErrorPolicy::Cap(n),
                    None => {
                        return Err(CliError::Usage(format!(
                            "unknown error policy {other:?} (strict, skip, or cap:<n>)"
                        )))
                    }
                },
            };
            let batches = u64_flag("--batches", 1)? as usize;
            if batches == 0 {
                return Err(CliError::Usage("--batches must be at least 1".into()));
            }
            let checkpoint_every = u64_flag("--checkpoint-every", 1)? as usize;
            if checkpoint_every == 0 {
                return Err(CliError::Usage(
                    "--checkpoint-every must be at least 1".into(),
                ));
            }
            let checkpoint_dir = path("--checkpoint-dir");
            let resume = switches.contains("--resume");
            if resume && checkpoint_dir.is_none() {
                return Err(CliError::Usage("--resume requires --checkpoint-dir".into()));
            }
            let shard = flags
                .get("--shard")
                .map(|v| -> Result<(usize, usize), CliError> {
                    let err = || {
                        CliError::Usage(format!("--shard must be <i>/<n> with i < n, got {v:?}"))
                    };
                    let (i, n) = v.split_once('/').ok_or_else(err)?;
                    let i = i.parse::<usize>().map_err(|_| err())?;
                    let n = n.parse::<usize>().map_err(|_| err())?;
                    if n == 0 || i >= n {
                        return Err(err());
                    }
                    Ok((i, n))
                })
                .transpose()?;
            if shard.is_some() && (batches > 1 || checkpoint_dir.is_some()) {
                return Err(CliError::Usage(
                    "--shard is one shard of one batch; it cannot combine with \
                     --batches or checkpointing"
                        .into(),
                ));
            }
            Ok(Command::Discover {
                input: input()?,
                format,
                method,
                theta: f64_flag("--theta", 0.9)?,
                seed: u64_flag("--seed", 42)?,
                threads: u64_flag("--threads", 0)? as usize,
                no_post: switches.contains("--no-post"),
                no_dedup: switches.contains("--no-dedup"),
                merge_similarity,
                refine: switches.contains("--refine"),
                sample_datatypes: switches.contains("--sample-datatypes"),
                out: path("--out"),
                batches,
                on_error,
                checkpoint_dir,
                checkpoint_every,
                checkpoint_keep: u64_flag("--checkpoint-keep", 3)?.max(1) as usize,
                resume,
                kill_after_batch: flags
                    .get("--kill-after-batch")
                    .map(|v| {
                        v.parse::<usize>().map_err(|_| {
                            CliError::Usage("--kill-after-batch must be an integer".into())
                        })
                    })
                    .transpose()?,
                shard,
                state_out: path("--state-out"),
                stream: switches.contains("--stream"),
            })
        }
        "validate" => Ok(Command::Validate {
            schema: path("--schema")
                .ok_or_else(|| CliError::Usage("--schema is required".into()))?,
            input: input()?,
            mode: flags
                .get("--mode")
                .cloned()
                .unwrap_or_else(|| "strict".into()),
        }),
        "diff" => Ok(Command::Diff {
            old: path("--old").ok_or_else(|| CliError::Usage("--old is required".into()))?,
            new: path("--new").ok_or_else(|| CliError::Usage("--new is required".into()))?,
        }),
        "stats" => Ok(Command::Stats { input: input()? }),
        "generate" => Ok(Command::Generate {
            dataset: flags
                .get("--dataset")
                .cloned()
                .ok_or_else(|| CliError::Usage("--dataset is required".into()))?,
            out_dir: path("--out-dir")
                .ok_or_else(|| CliError::Usage("--out-dir is required".into()))?,
            scale: f64_flag("--scale", 1.0)?,
            seed: u64_flag("--seed", 42)?,
            noise: f64_flag("--noise", 0.0)?,
            label_availability: f64_flag("--label-availability", 1.0)?,
            jsonl: switches.contains("--jsonl"),
        }),
        "synth" => {
            let schema = path("--schema");
            if schema.is_some() && flags.contains_key("--types") {
                return Err(CliError::Usage(
                    "--schema and --types are mutually exclusive".into(),
                ));
            }
            let types = u64_flag("--types", 4)? as usize;
            if types == 0 {
                return Err(CliError::Usage("--types must be at least 1".into()));
            }
            let size = u64_flag("--size", 1_000)? as usize;
            if size == 0 {
                return Err(CliError::Usage("--size must be at least 1".into()));
            }
            for rate in [
                "--unlabeled",
                "--missing-optional",
                "--label-noise",
                "--missing-mandatory",
            ] {
                let v = f64_flag(rate, 0.0)?;
                if !(0.0..=1.0).contains(&v) {
                    return Err(CliError::Usage(format!("{rate} must be in [0, 1]")));
                }
            }
            if flags.contains_key("--stream-chunks") && !switches.contains("--jsonl") {
                return Err(CliError::Usage(
                    "--stream-chunks requires --jsonl (CSV headers depend on the \
                     whole corpus; JSONL chunks concatenate bit-identically)"
                        .into(),
                ));
            }
            Ok(Command::Synth {
                schema,
                types,
                out_dir: path("--out-dir")
                    .ok_or_else(|| CliError::Usage("--out-dir is required".into()))?,
                size,
                seed: u64_flag("--seed", 42)?,
                unlabeled: f64_flag("--unlabeled", 0.0)?,
                missing_optional: f64_flag("--missing-optional", 0.0)?,
                label_noise: f64_flag("--label-noise", 0.0)?,
                missing_mandatory: f64_flag("--missing-mandatory", 0.0)?,
                jsonl: switches.contains("--jsonl"),
                stream_chunks: flags
                    .get("--stream-chunks")
                    .map(|v| match v.parse::<usize>() {
                        Ok(n) if n > 0 => Ok(n),
                        _ => Err(CliError::Usage(
                            "--stream-chunks must be a positive integer".into(),
                        )),
                    })
                    .transpose()?,
            })
        }
        "serve" => {
            let checkpoint_every = u64_flag("--checkpoint-every", 8)?;
            if checkpoint_every == 0 {
                return Err(CliError::Usage(
                    "--checkpoint-every must be at least 1".into(),
                ));
            }
            let max_body_mb = u64_flag("--max-body-mb", 64)? as usize;
            if max_body_mb == 0 {
                return Err(CliError::Usage("--max-body-mb must be at least 1".into()));
            }
            let cluster: Vec<String> = flags
                .get("--cluster")
                .map(|v| {
                    v.split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(str::to_owned)
                        .collect()
                })
                .unwrap_or_default();
            if flags.contains_key("--cluster") && cluster.is_empty() {
                return Err(CliError::Usage(
                    "--cluster needs at least one shard URL".into(),
                ));
            }
            let cluster_wal_dir = path("--cluster-wal-dir");
            let cluster_session = flags
                .get("--cluster-session")
                .cloned()
                .unwrap_or_else(|| "cluster".into());
            let heartbeat_ms = u64_flag("--heartbeat-ms", 500)?;
            if heartbeat_ms == 0 {
                return Err(CliError::Usage("--heartbeat-ms must be at least 1".into()));
            }
            let transport = flags.get("--transport").cloned();
            if let Some(t) = &transport {
                if t != "epoll" && t != "threaded" {
                    return Err(CliError::Usage(format!(
                        "--transport must be \"epoll\" or \"threaded\", got {t:?}"
                    )));
                }
            }
            let idle_timeout_ms = u64_flag("--idle-timeout-ms", 60_000)?;
            if idle_timeout_ms == 0 {
                return Err(CliError::Usage(
                    "--idle-timeout-ms must be at least 1".into(),
                ));
            }
            if cluster.is_empty()
                && (cluster_wal_dir.is_some() || flags.contains_key("--cluster-session"))
            {
                return Err(CliError::Usage(
                    "--cluster-wal-dir/--cluster-session only apply with --cluster".into(),
                ));
            }
            Ok(Command::Serve {
                addr: flags
                    .get("--addr")
                    .cloned()
                    .unwrap_or_else(|| "127.0.0.1:8686".into()),
                state_dir: path("--state-dir"),
                workers: u64_flag("--workers", 4)?.max(1) as usize,
                queue: u64_flag("--queue", 64)?.max(1) as usize,
                max_body_mb,
                checkpoint_every,
                checkpoint_keep: u64_flag("--checkpoint-keep", 4)?.max(1) as usize,
                transport,
                max_connections: u64_flag("--max-connections", 10_240)?.max(1) as usize,
                idle_timeout_ms,
                session_queue: u64_flag("--session-queue", 64)?.max(1) as usize,
                cluster,
                cluster_wal_dir,
                cluster_session,
                heartbeat_ms,
            })
        }
        "hash" => Ok(Command::Hash {
            schema: path("--schema")
                .ok_or_else(|| CliError::Usage("--schema is required".into()))?,
        }),
        "merge" => {
            if positionals.is_empty() {
                return Err(CliError::Usage(
                    "merge requires at least one shard-state or schema JSON file".into(),
                ));
            }
            Ok(Command::Merge {
                inputs: positionals.iter().map(PathBuf::from).collect(),
                out: path("--out"),
            })
        }
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(a: &[&str]) -> Vec<String> {
        a.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parse_discover_defaults() {
        let c = parse(&args(&["discover", "--jsonl", "g.jsonl"])).unwrap();
        match c {
            Command::Discover {
                format,
                method,
                theta,
                no_post,
                no_dedup,
                ..
            } => {
                assert_eq!(format, OutputFormat::PgSchemaStrict);
                assert_eq!(method, "elsh");
                assert_eq!(theta, 0.9);
                assert!(!no_post);
                assert!(!no_dedup, "dedup fast path is on by default");
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parse_no_dedup_switch() {
        let c = parse(&args(&["discover", "--jsonl", "g.jsonl", "--no-dedup"])).unwrap();
        match c {
            Command::Discover { no_dedup, .. } => assert!(no_dedup),
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parse_discover_full() {
        let c = parse(&args(&[
            "discover",
            "--nodes",
            "n.csv",
            "--edges",
            "e.csv",
            "--format",
            "xsd",
            "--method",
            "minhash",
            "--theta",
            "0.8",
            "--seed",
            "7",
            "--threads",
            "4",
            "--no-post",
            "--sample-datatypes",
            "--out",
            "schema.xsd",
        ]))
        .unwrap();
        match c {
            Command::Discover {
                input,
                format,
                method,
                theta,
                seed,
                threads,
                no_post,
                sample_datatypes,
                out,
                ..
            } => {
                assert_eq!(input.nodes, Some(PathBuf::from("n.csv")));
                assert_eq!(format, OutputFormat::Xsd);
                assert_eq!(method, "minhash");
                assert_eq!(theta, 0.8);
                assert_eq!(seed, 7);
                assert_eq!(threads, 4);
                assert!(no_post && sample_datatypes);
                assert_eq!(out, Some(PathBuf::from("schema.xsd")));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn threads_defaults_to_all_cores() {
        let c = parse(&args(&["discover", "--jsonl", "g.jsonl"])).unwrap();
        match c {
            Command::Discover { threads, .. } => assert_eq!(threads, 0),
            other => panic!("wrong command {other:?}"),
        }
        assert!(matches!(
            parse(&args(&["discover", "--jsonl", "g", "--threads", "x"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parse_discover_extensions() {
        let c = parse(&args(&[
            "discover",
            "--jsonl",
            "g.jsonl",
            "--merge-similarity",
            "weighted",
            "--refine",
        ]))
        .unwrap();
        match c {
            Command::Discover {
                merge_similarity,
                refine,
                ..
            } => {
                assert_eq!(merge_similarity, "weighted");
                assert!(refine);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(matches!(
            parse(&args(&[
                "discover",
                "--jsonl",
                "g",
                "--merge-similarity",
                "cosine"
            ])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn input_requires_pair_or_jsonl() {
        assert!(matches!(
            parse(&args(&["discover", "--nodes", "n.csv"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&args(&["stats", "--jsonl", "g.jsonl", "--nodes", "n.csv"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn unknown_bits_are_rejected() {
        assert!(matches!(
            parse(&args(&["frobnicate"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&args(&["discover", "--jsonl", "g", "--format", "yaml"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&args(&["discover", "--jsonl", "g", "--method", "simhash"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(parse(&args(&[])), Err(CliError::Usage(_))));
    }

    #[test]
    fn parse_generate() {
        let c = parse(&args(&[
            "generate",
            "--dataset",
            "POLE",
            "--out-dir",
            "/tmp/x",
            "--scale",
            "0.5",
            "--noise",
            "0.2",
            "--label-availability",
            "0.5",
            "--jsonl",
        ]))
        .unwrap();
        match c {
            Command::Generate {
                dataset,
                scale,
                noise,
                label_availability,
                jsonl,
                ..
            } => {
                assert_eq!(dataset, "POLE");
                assert_eq!(scale, 0.5);
                assert_eq!(noise, 0.2);
                assert_eq!(label_availability, 0.5);
                assert!(jsonl);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parse_synth() {
        let c = parse(&args(&[
            "synth",
            "--out-dir",
            "/tmp/x",
            "--types",
            "6",
            "--size",
            "5000",
            "--seed",
            "9",
            "--unlabeled",
            "0.2",
            "--missing-optional",
            "0.1",
            "--missing-mandatory",
            "0.05",
            "--jsonl",
        ]))
        .unwrap();
        match c {
            Command::Synth {
                schema,
                types,
                size,
                seed,
                unlabeled,
                missing_optional,
                label_noise,
                missing_mandatory,
                jsonl,
                ..
            } => {
                assert_eq!(schema, None);
                assert_eq!(types, 6);
                assert_eq!(size, 5000);
                assert_eq!(seed, 9);
                assert_eq!(unlabeled, 0.2);
                assert_eq!(missing_optional, 0.1);
                assert_eq!(label_noise, 0.0);
                assert_eq!(missing_mandatory, 0.05);
                assert!(jsonl);
            }
            other => panic!("wrong command {other:?}"),
        }
        // --schema excludes --types; rates must be probabilities.
        for bad in [
            vec![
                "synth",
                "--out-dir",
                "/tmp/x",
                "--schema",
                "s.json",
                "--types",
                "3",
            ],
            vec!["synth", "--out-dir", "/tmp/x", "--unlabeled", "1.5"],
            vec![
                "synth",
                "--out-dir",
                "/tmp/x",
                "--missing-mandatory",
                "-0.1",
            ],
            vec!["synth", "--out-dir", "/tmp/x", "--types", "0"],
            vec!["synth", "--out-dir", "/tmp/x", "--size", "0"],
            vec!["synth"],
        ] {
            assert!(
                matches!(parse(&args(&bad)), Err(CliError::Usage(_))),
                "{bad:?} should be a usage error"
            );
        }
    }

    #[test]
    fn parse_discover_robustness_flags() {
        let c = parse(&args(&[
            "discover",
            "--jsonl",
            "g.jsonl",
            "--batches",
            "8",
            "--on-error",
            "skip",
            "--checkpoint-dir",
            "/tmp/ckpt",
            "--checkpoint-every",
            "2",
            "--checkpoint-keep",
            "5",
            "--resume",
        ]))
        .unwrap();
        match c {
            Command::Discover {
                batches,
                on_error,
                checkpoint_dir,
                checkpoint_every,
                checkpoint_keep,
                resume,
                kill_after_batch,
                ..
            } => {
                assert_eq!(batches, 8);
                assert_eq!(on_error, pg_store::ErrorPolicy::Skip);
                assert_eq!(checkpoint_dir, Some(PathBuf::from("/tmp/ckpt")));
                assert_eq!(checkpoint_every, 2);
                assert_eq!(checkpoint_keep, 5);
                assert!(resume);
                assert_eq!(kill_after_batch, None);
            }
            other => panic!("wrong command {other:?}"),
        }
        // Defaults: one batch, strict, no persistence.
        match parse(&args(&["discover", "--jsonl", "g.jsonl"])).unwrap() {
            Command::Discover {
                batches,
                on_error,
                checkpoint_dir,
                resume,
                ..
            } => {
                assert_eq!(batches, 1);
                assert_eq!(on_error, pg_store::ErrorPolicy::Strict);
                assert_eq!(checkpoint_dir, None);
                assert!(!resume);
            }
            other => panic!("wrong command {other:?}"),
        }
        // Cap policy.
        match parse(&args(&["discover", "--jsonl", "g", "--on-error", "cap:7"])).unwrap() {
            Command::Discover { on_error, .. } => {
                assert_eq!(on_error, pg_store::ErrorPolicy::Cap(7));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn robustness_flag_misuse_is_rejected() {
        for bad in [
            vec!["discover", "--jsonl", "g", "--on-error", "ignore"],
            vec!["discover", "--jsonl", "g", "--on-error", "cap:x"],
            vec!["discover", "--jsonl", "g", "--batches", "0"],
            vec!["discover", "--jsonl", "g", "--checkpoint-every", "0"],
            vec!["discover", "--jsonl", "g", "--resume"],
            vec!["discover", "--jsonl", "g", "--kill-after-batch", "soon"],
        ] {
            assert!(
                matches!(parse(&args(&bad)), Err(CliError::Usage(_))),
                "{bad:?} should be a usage error"
            );
        }
    }

    #[test]
    fn parse_serve_and_hash() {
        match parse(&args(&["serve"])).unwrap() {
            Command::Serve {
                addr,
                state_dir,
                workers,
                queue,
                max_body_mb,
                checkpoint_every,
                checkpoint_keep,
                transport,
                max_connections,
                idle_timeout_ms,
                session_queue,
                cluster,
                cluster_wal_dir,
                cluster_session,
                heartbeat_ms,
            } => {
                assert_eq!(addr, "127.0.0.1:8686");
                assert_eq!(state_dir, None);
                assert_eq!(workers, 4);
                assert_eq!(queue, 64);
                assert_eq!(max_body_mb, 64);
                assert_eq!(checkpoint_every, 8);
                assert_eq!(checkpoint_keep, 4);
                assert_eq!(transport, None, "env/native transport by default");
                assert_eq!(max_connections, 10_240);
                assert_eq!(idle_timeout_ms, 60_000);
                assert_eq!(session_queue, 64);
                assert!(cluster.is_empty(), "single-node by default");
                assert_eq!(cluster_wal_dir, None);
                assert_eq!(cluster_session, "cluster");
                assert_eq!(heartbeat_ms, 500);
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse(&args(&[
            "serve",
            "--addr",
            "0.0.0.0:0",
            "--state-dir",
            "/tmp/sessions",
            "--workers",
            "2",
            "--max-body-mb",
            "8",
        ]))
        .unwrap()
        {
            Command::Serve {
                addr,
                state_dir,
                workers,
                max_body_mb,
                ..
            } => {
                assert_eq!(addr, "0.0.0.0:0");
                assert_eq!(state_dir, Some(PathBuf::from("/tmp/sessions")));
                assert_eq!(workers, 2);
                assert_eq!(max_body_mb, 8);
            }
            other => panic!("wrong command {other:?}"),
        }
        for bad in [
            vec!["serve", "--checkpoint-every", "0"],
            vec!["serve", "--max-body-mb", "0"],
            vec!["serve", "--workers", "x"],
            vec!["serve", "--transport", "io_uring"],
            vec!["serve", "--idle-timeout-ms", "0"],
            vec!["hash"],
        ] {
            assert!(
                matches!(parse(&args(&bad)), Err(CliError::Usage(_))),
                "{bad:?} should be a usage error"
            );
        }
        match parse(&args(&["hash", "--schema", "s.json"])).unwrap() {
            Command::Hash { schema } => assert_eq!(schema, PathBuf::from("s.json")),
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parse_serve_transport_flags() {
        match parse(&args(&[
            "serve",
            "--transport",
            "threaded",
            "--max-connections",
            "2000",
            "--idle-timeout-ms",
            "5000",
            "--session-queue",
            "8",
        ]))
        .unwrap()
        {
            Command::Serve {
                transport,
                max_connections,
                idle_timeout_ms,
                session_queue,
                ..
            } => {
                assert_eq!(transport.as_deref(), Some("threaded"));
                assert_eq!(max_connections, 2000);
                assert_eq!(idle_timeout_ms, 5000);
                assert_eq!(session_queue, 8);
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse(&args(&["serve", "--transport", "epoll"])).unwrap() {
            Command::Serve { transport, .. } => assert_eq!(transport.as_deref(), Some("epoll")),
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parse_serve_cluster_flags() {
        match parse(&args(&[
            "serve",
            "--cluster",
            "127.0.0.1:7001, http://127.0.0.1:7002/",
            "--cluster-wal-dir",
            "/tmp/wal",
            "--cluster-session",
            "ring",
            "--heartbeat-ms",
            "250",
        ]))
        .unwrap()
        {
            Command::Serve {
                cluster,
                cluster_wal_dir,
                cluster_session,
                heartbeat_ms,
                ..
            } => {
                assert_eq!(cluster, vec!["127.0.0.1:7001", "http://127.0.0.1:7002/"]);
                assert_eq!(cluster_wal_dir, Some(PathBuf::from("/tmp/wal")));
                assert_eq!(cluster_session, "ring");
                assert_eq!(heartbeat_ms, 250);
            }
            other => panic!("wrong command {other:?}"),
        }
        for bad in [
            vec!["serve", "--cluster", " , "],
            vec!["serve", "--heartbeat-ms", "0"],
            vec!["serve", "--cluster-wal-dir", "/tmp/wal"],
            vec!["serve", "--cluster-session", "ring"],
        ] {
            assert!(
                matches!(parse(&args(&bad)), Err(CliError::Usage(_))),
                "{bad:?} should be a usage error"
            );
        }
    }

    #[test]
    fn parse_shard_and_state_out() {
        match parse(&args(&[
            "discover",
            "--jsonl",
            "g.jsonl",
            "--shard",
            "2/4",
            "--state-out",
            "s.json",
        ]))
        .unwrap()
        {
            Command::Discover {
                shard, state_out, ..
            } => {
                assert_eq!(shard, Some((2, 4)));
                assert_eq!(state_out, Some(PathBuf::from("s.json")));
            }
            other => panic!("wrong command {other:?}"),
        }
        // Defaults: no sharding, no state dump.
        match parse(&args(&["discover", "--jsonl", "g.jsonl"])).unwrap() {
            Command::Discover {
                shard, state_out, ..
            } => {
                assert_eq!(shard, None);
                assert_eq!(state_out, None);
            }
            other => panic!("wrong command {other:?}"),
        }
        for bad in [
            vec!["discover", "--jsonl", "g", "--shard", "4"],
            vec!["discover", "--jsonl", "g", "--shard", "4/4"],
            vec!["discover", "--jsonl", "g", "--shard", "0/0"],
            vec!["discover", "--jsonl", "g", "--shard", "a/b"],
            vec![
                "discover",
                "--jsonl",
                "g",
                "--shard",
                "1/4",
                "--batches",
                "2",
            ],
            vec![
                "discover",
                "--jsonl",
                "g",
                "--shard",
                "1/4",
                "--checkpoint-dir",
                "/tmp/c",
            ],
        ] {
            assert!(
                matches!(parse(&args(&bad)), Err(CliError::Usage(_))),
                "{bad:?} should be a usage error"
            );
        }
    }

    #[test]
    fn parse_stream_flags() {
        match parse(&args(&["discover", "--jsonl", "g.jsonl", "--stream"])).unwrap() {
            Command::Discover { stream, .. } => assert!(stream),
            other => panic!("wrong command {other:?}"),
        }
        match parse(&args(&["discover", "--jsonl", "g.jsonl"])).unwrap() {
            Command::Discover { stream, .. } => assert!(!stream, "exact mode by default"),
            other => panic!("wrong command {other:?}"),
        }
        match parse(&args(&[
            "synth",
            "--out-dir",
            "/tmp/x",
            "--jsonl",
            "--stream-chunks",
            "8",
        ]))
        .unwrap()
        {
            Command::Synth { stream_chunks, .. } => assert_eq!(stream_chunks, Some(8)),
            other => panic!("wrong command {other:?}"),
        }
        match parse(&args(&["synth", "--out-dir", "/tmp/x"])).unwrap() {
            Command::Synth { stream_chunks, .. } => assert_eq!(stream_chunks, None),
            other => panic!("wrong command {other:?}"),
        }
        for bad in [
            // Chunked emission is JSONL-only.
            vec!["synth", "--out-dir", "/tmp/x", "--stream-chunks", "8"],
            vec![
                "synth",
                "--out-dir",
                "/tmp/x",
                "--jsonl",
                "--stream-chunks",
                "0",
            ],
            vec![
                "synth",
                "--out-dir",
                "/tmp/x",
                "--jsonl",
                "--stream-chunks",
                "many",
            ],
        ] {
            assert!(
                matches!(parse(&args(&bad)), Err(CliError::Usage(_))),
                "{bad:?} should be a usage error"
            );
        }
    }

    #[test]
    fn parse_merge() {
        match parse(&args(&["merge", "a.json", "b.json", "--out", "m.json"])).unwrap() {
            Command::Merge { inputs, out } => {
                assert_eq!(
                    inputs,
                    vec![PathBuf::from("a.json"), PathBuf::from("b.json")]
                );
                assert_eq!(out, Some(PathBuf::from("m.json")));
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse(&args(&["merge", "solo.json"])).unwrap() {
            Command::Merge { inputs, out } => {
                assert_eq!(inputs.len(), 1);
                assert_eq!(out, None);
            }
            other => panic!("wrong command {other:?}"),
        }
        // No inputs → usage error; positionals stay merge-only.
        assert!(matches!(parse(&args(&["merge"])), Err(CliError::Usage(_))));
        assert!(matches!(
            parse(&args(&["merge", "--out", "m.json"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&args(&["hash", "stray.json", "--schema", "s.json"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn error_classes_map_to_distinct_exit_codes() {
        assert_eq!(CliError::Failed("x".into()).exit_code(), 1);
        assert_eq!(CliError::Usage("x".into()).exit_code(), 2);
        assert_eq!(CliError::Input("x".into()).exit_code(), 3);
        assert_eq!(CliError::State("x".into()).exit_code(), 4);
    }

    #[test]
    fn parse_validate_and_diff() {
        assert!(parse(&args(&[
            "validate", "--schema", "s.json", "--jsonl", "g.jsonl", "--mode", "loose"
        ]))
        .is_ok());
        assert!(parse(&args(&["diff", "--old", "a.json", "--new", "b.json"])).is_ok());
        assert!(matches!(
            parse(&args(&["diff", "--old", "a.json"])),
            Err(CliError::Usage(_))
        ));
    }
}
