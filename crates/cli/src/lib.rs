//! # pg-hive-cli
//!
//! Command-line interface to PG-HIVE. Subcommands:
//!
//! * `discover` — read a graph (CSV pair or JSON-lines), discover its
//!   schema, emit PG-Schema (STRICT/LOOSE), XSD, or JSON.
//! * `validate` — check a graph against a previously exported schema.
//! * `diff` — structural diff of two exported schemas.
//! * `stats` — Table 2-style statistics of a graph.
//! * `generate` — materialize one of the benchmark dataset twins to
//!   disk, optionally with noise.
//!
//! The command logic lives in this library so it is unit-testable; the
//! binary is a thin wrapper.

pub mod commands;
pub mod opts;

pub use commands::run;
pub use opts::{CliError, Command};
