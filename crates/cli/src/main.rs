//! The `pg-hive` binary: a thin wrapper over the command library.

use pg_hive_cli::opts::{parse, USAGE};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--help") || args.is_empty() {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match parse(&args).and_then(|cmd| pg_hive_cli::run(&cmd)) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            // Distinct exit codes per error class: 1 failure, 2 usage,
            // 3 bad input data, 4 bad session state (see opts::CliError).
            ExitCode::from(e.exit_code())
        }
    }
}
