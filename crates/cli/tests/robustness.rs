//! End-to-end robustness tests driven through the command layer
//! (`parse` + `run`), covering the ISSUE 2 CLI contracts: `--on-error`
//! strict/skip behaviour, kill-and-resume through the panic boundary,
//! and degenerate inputs (zero nodes, zero edges, quarantined
//! endpoints) flowing through full discovery.

use pg_hive_cli::opts::{parse, CliError};
use pg_hive_cli::run;
use std::fs;
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("pg-hive-robustness-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn argv(a: &[&str]) -> Vec<String> {
    a.iter().map(|s| (*s).to_owned()).collect()
}

/// A CSV pair with three malformed lines: a node with a non-numeric id
/// (line 3), a node row with the wrong width (line 4), and an edge
/// whose target only existed on a quarantined row (line 3).
fn write_dirty_csvs(dir: &std::path::Path) -> (PathBuf, PathBuf) {
    let nodes = dir.join("nodes.csv");
    let edges = dir.join("edges.csv");
    fs::write(
        &nodes,
        "id,labels,name\n1,Person,Ada\nbogus,Person,Broken\n3,Person\n4,Person,Bob\n",
    )
    .unwrap();
    fs::write(&edges, "id,src,tgt,labels\n10,1,4,KNOWS\n11,1,3,KNOWS\n").unwrap();
    (nodes, edges)
}

#[test]
fn strict_mode_fails_fast_on_dirty_input() {
    let dir = tmpdir("strict");
    let (nodes, edges) = write_dirty_csvs(&dir);
    let err = run(&parse(&argv(&[
        "discover",
        "--nodes",
        nodes.to_str().unwrap(),
        "--edges",
        edges.to_str().unwrap(),
    ]))
    .unwrap())
    .unwrap_err();
    assert!(matches!(err, CliError::Input(_)), "{err:?}");
    assert_eq!(err.exit_code(), 3);
    let msg = err.to_string();
    assert!(msg.contains("nodes.csv line 3"), "{msg}");
    assert!(msg.contains("bad node id"), "{msg}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn skip_mode_quarantines_and_discovery_proceeds() {
    let dir = tmpdir("skip");
    let (nodes, edges) = write_dirty_csvs(&dir);
    let out_path = dir.join("schema.json");
    // With --out, the returned text is the status line prefixed by the
    // quarantine summary (without --out the summary goes to stderr so
    // stdout stays machine-parseable).
    let text = run(&parse(&argv(&[
        "discover",
        "--nodes",
        nodes.to_str().unwrap(),
        "--edges",
        edges.to_str().unwrap(),
        "--on-error",
        "skip",
        "--format",
        "json",
        "--out",
        out_path.to_str().unwrap(),
    ]))
    .unwrap())
    .unwrap();
    assert!(text.contains("quarantined 3 malformed lines"), "{text}");
    assert!(text.contains("nodes.csv:3"), "{text}");
    assert!(text.contains("nodes.csv:4"), "{text}");
    // The edge whose endpoint was quarantined is itself quarantined —
    // it never reaches discovery as a dangling reference.
    assert!(text.contains("edges.csv:3"), "{text}");
    assert!(text.contains("discovered"), "{text}");
    // The surviving rows (nodes 1 and 4, edge 10) still make a schema.
    let schema = fs::read_to_string(&out_path).unwrap();
    assert!(schema.contains("Person"), "{schema}");
    assert!(schema.contains("KNOWS"), "{schema}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn cap_policy_aborts_beyond_budget_through_cli() {
    let dir = tmpdir("cap");
    let (nodes, edges) = write_dirty_csvs(&dir);
    let err = run(&parse(&argv(&[
        "discover",
        "--nodes",
        nodes.to_str().unwrap(),
        "--edges",
        edges.to_str().unwrap(),
        "--on-error",
        "cap:1",
    ]))
    .unwrap())
    .unwrap_err();
    assert_eq!(err.exit_code(), 3);
    assert!(err.to_string().contains("cap of 1"), "{err}");
    let _ = fs::remove_dir_all(&dir);
}

/// The full crash drill, entirely through `run()`: discover in batches,
/// kill mid-run via the fault-injection flag (exit class 4, emergency
/// checkpoint written), resume, and end with a byte-identical schema to
/// the uninterrupted run.
#[test]
fn kill_then_resume_reproduces_the_uninterrupted_schema() {
    let dir = tmpdir("killresume");
    let dir_s = dir.to_str().unwrap();
    run(&parse(&argv(&[
        "generate",
        "--dataset",
        "POLE",
        "--out-dir",
        dir_s,
        "--scale",
        "0.05",
        "--jsonl",
    ]))
    .unwrap())
    .unwrap();
    let jsonl = dir.join("graph.jsonl");
    let jsonl_s = jsonl.to_str().unwrap();
    let ckpt_dir = dir.join("ckpt");

    // Reference: the same batched run, never interrupted.
    let full_path = dir.join("full.json");
    run(&parse(&argv(&[
        "discover",
        "--jsonl",
        jsonl_s,
        "--batches",
        "4",
        "--format",
        "json",
        "--out",
        full_path.to_str().unwrap(),
    ]))
    .unwrap())
    .unwrap();

    // The crashing run. --checkpoint-every 4 means no periodic
    // checkpoint has fired by batch 2: only the emergency checkpoint
    // written by the panic boundary preserves the session.
    let err = run(&parse(&argv(&[
        "discover",
        "--jsonl",
        jsonl_s,
        "--batches",
        "4",
        "--checkpoint-dir",
        ckpt_dir.to_str().unwrap(),
        "--checkpoint-every",
        "4",
        "--kill-after-batch",
        "2",
    ]))
    .unwrap())
    .unwrap_err();
    assert!(matches!(err, CliError::State(_)), "{err:?}");
    assert_eq!(err.exit_code(), 4);
    let msg = err.to_string();
    assert!(msg.contains("2 of 4 batches completed"), "{msg}");
    assert!(msg.contains("emergency checkpoint ->"), "{msg}");

    // Resume and finish.
    let resumed_path = dir.join("resumed.json");
    let text = run(&parse(&argv(&[
        "discover",
        "--jsonl",
        jsonl_s,
        "--batches",
        "4",
        "--checkpoint-dir",
        ckpt_dir.to_str().unwrap(),
        "--resume",
        "--format",
        "json",
        "--out",
        resumed_path.to_str().unwrap(),
    ]))
    .unwrap())
    .unwrap();
    assert!(text.contains("resumed from"), "{text}");
    assert!(text.contains("at batch 2/4"), "{text}");

    let full = fs::read_to_string(&full_path).unwrap();
    let resumed = fs::read_to_string(&resumed_path).unwrap();
    assert_eq!(full, resumed, "resumed schema differs from uninterrupted");
    let _ = fs::remove_dir_all(&dir);
}

/// Retention floor: `--checkpoint-keep 1` holds even through the
/// emergency write (exactly one file survives the crash), and when a
/// *newer* checkpoint file is garbage (a torn write), `--resume` skips
/// it and still resumes from the emergency checkpoint — finishing with
/// the uninterrupted run's byte-identical schema.
#[test]
fn keep_one_survives_crash_and_corrupt_newest() {
    let dir = tmpdir("keepone");
    let dir_s = dir.to_str().unwrap();
    run(&parse(&argv(&[
        "generate",
        "--dataset",
        "POLE",
        "--out-dir",
        dir_s,
        "--scale",
        "0.05",
        "--jsonl",
    ]))
    .unwrap())
    .unwrap();
    let jsonl = dir.join("graph.jsonl");
    let jsonl_s = jsonl.to_str().unwrap();
    let ckpt_dir = dir.join("ckpt");

    let full_path = dir.join("full.json");
    run(&parse(&argv(&[
        "discover",
        "--jsonl",
        jsonl_s,
        "--batches",
        "4",
        "--format",
        "json",
        "--out",
        full_path.to_str().unwrap(),
    ]))
    .unwrap())
    .unwrap();

    // Crash at batch 2 with per-batch checkpoints but retention 1: the
    // periodic checkpoints are pruned as they rotate, and the emergency
    // write prunes the last periodic one behind itself.
    let err = run(&parse(&argv(&[
        "discover",
        "--jsonl",
        jsonl_s,
        "--batches",
        "4",
        "--checkpoint-dir",
        ckpt_dir.to_str().unwrap(),
        "--checkpoint-every",
        "1",
        "--checkpoint-keep",
        "1",
        "--kill-after-batch",
        "2",
    ]))
    .unwrap())
    .unwrap_err();
    assert_eq!(err.exit_code(), 4);
    assert!(err.to_string().contains("emergency checkpoint ->"), "{err}");

    let survivors: Vec<_> = fs::read_dir(&ckpt_dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("ckpt-") && n.ends_with(".pghive"))
        .collect();
    assert_eq!(
        survivors.len(),
        1,
        "retention 1 must leave exactly the emergency checkpoint: {survivors:?}"
    );

    // A garbage file with a higher sequence number shadows the good one.
    fs::write(ckpt_dir.join("ckpt-00000099.pghive"), b"torn write").unwrap();

    let resumed_path = dir.join("resumed.json");
    let text = run(&parse(&argv(&[
        "discover",
        "--jsonl",
        jsonl_s,
        "--batches",
        "4",
        "--checkpoint-dir",
        ckpt_dir.to_str().unwrap(),
        "--checkpoint-keep",
        "1",
        "--resume",
        "--format",
        "json",
        "--out",
        resumed_path.to_str().unwrap(),
    ]))
    .unwrap())
    .unwrap();
    assert!(text.contains("skipped corrupt checkpoint"), "{text}");
    assert!(text.contains("ckpt-00000099"), "{text}");
    assert!(
        text.contains(&format!(
            "resumed from {}",
            ckpt_dir.join(&survivors[0]).display()
        )),
        "{text}"
    );
    assert!(text.contains("at batch 2/4"), "{text}");

    let full = fs::read_to_string(&full_path).unwrap();
    let resumed = fs::read_to_string(&resumed_path).unwrap();
    assert_eq!(full, resumed, "resumed schema differs from uninterrupted");
    let _ = fs::remove_dir_all(&dir);
}

/// `--resume` from a directory holding only corrupt checkpoint files is
/// a state error (exit code 4) naming every file it tried — NOT a
/// silent fresh start, which would quietly recompute and mask the loss.
#[test]
fn resume_from_only_corrupt_checkpoints_is_a_state_error() {
    let dir = tmpdir("allcorrupt");
    fs::write(dir.join("nodes.csv"), "id,labels\n1,P\n2,P\n").unwrap();
    fs::write(dir.join("edges.csv"), "id,src,tgt,labels\n9,1,2,R\n").unwrap();
    let ckpt_dir = dir.join("ckpt");
    fs::create_dir_all(&ckpt_dir).unwrap();
    fs::write(ckpt_dir.join("ckpt-00000000.pghive"), b"not a checkpoint").unwrap();
    fs::write(
        ckpt_dir.join("ckpt-00000001.pghive"),
        b"PGHIVE-CKPT but truncated",
    )
    .unwrap();

    let err = run(&parse(&argv(&[
        "discover",
        "--nodes",
        dir.join("nodes.csv").to_str().unwrap(),
        "--edges",
        dir.join("edges.csv").to_str().unwrap(),
        "--batches",
        "2",
        "--checkpoint-dir",
        ckpt_dir.to_str().unwrap(),
        "--resume",
    ]))
    .unwrap())
    .unwrap_err();
    assert!(matches!(err, CliError::State(_)), "{err:?}");
    assert_eq!(err.exit_code(), 4);
    let msg = err.to_string();
    assert!(msg.contains("no valid checkpoint found; tried 2"), "{msg}");
    assert!(msg.contains("ckpt-00000000.pghive"), "{msg}");
    assert!(msg.contains("ckpt-00000001.pghive"), "{msg}");
    let _ = fs::remove_dir_all(&dir);
}

/// `--resume` on an empty checkpoint directory is a fresh start, not an
/// error.
#[test]
fn resume_with_no_checkpoints_starts_fresh() {
    let dir = tmpdir("freshresume");
    fs::write(dir.join("nodes.csv"), "id,labels\n1,P\n2,P\n").unwrap();
    fs::write(dir.join("edges.csv"), "id,src,tgt,labels\n9,1,2,R\n").unwrap();
    let out_path = dir.join("schema.json");
    let text = run(&parse(&argv(&[
        "discover",
        "--nodes",
        dir.join("nodes.csv").to_str().unwrap(),
        "--edges",
        dir.join("edges.csv").to_str().unwrap(),
        "--batches",
        "2",
        "--checkpoint-dir",
        dir.join("ckpt").to_str().unwrap(),
        "--resume",
        "--out",
        out_path.to_str().unwrap(),
    ]))
    .unwrap())
    .unwrap();
    assert!(
        text.contains("no checkpoint found; starting fresh"),
        "{text}"
    );
    assert!(out_path.exists());
    let _ = fs::remove_dir_all(&dir);
}

/// Zero-node and zero-edge graphs flow through the full discover
/// pipeline — one-shot and batched (which feeds empty batches through
/// the session) — without errors.
#[test]
fn degenerate_graphs_discover_cleanly() {
    let dir = tmpdir("degenerate");
    let empty_nodes = dir.join("empty_nodes.csv");
    let empty_edges = dir.join("empty_edges.csv");
    fs::write(&empty_nodes, "id,labels\n").unwrap();
    fs::write(&empty_edges, "id,src,tgt,labels\n").unwrap();

    // Zero nodes, zero edges: one-shot and batched.
    for batches in ["1", "3"] {
        let out = run(&parse(&argv(&[
            "discover",
            "--nodes",
            empty_nodes.to_str().unwrap(),
            "--edges",
            empty_edges.to_str().unwrap(),
            "--format",
            "json",
            "--batches",
            batches,
        ]))
        .unwrap())
        .unwrap();
        let schema: pg_model::SchemaGraph = serde_json::from_str(&out).unwrap();
        assert!(schema.node_types.is_empty(), "batches={batches}");
        assert!(schema.edge_types.is_empty(), "batches={batches}");
    }

    // Nodes but zero edges.
    let some_nodes = dir.join("some_nodes.csv");
    fs::write(&some_nodes, "id,labels,name\n1,Person,Ada\n2,Person,Bob\n").unwrap();
    let out = run(&parse(&argv(&[
        "discover",
        "--nodes",
        some_nodes.to_str().unwrap(),
        "--edges",
        empty_edges.to_str().unwrap(),
        "--format",
        "json",
        "--batches",
        "2",
    ]))
    .unwrap())
    .unwrap();
    let schema: pg_model::SchemaGraph = serde_json::from_str(&out).unwrap();
    assert_eq!(schema.node_types.len(), 1, "{out}");
    assert!(schema.edge_types.is_empty(), "{out}");
    assert!(out.contains("Person"), "{out}");

    // stats on the empty pair also stays calm.
    let out = run(&parse(&argv(&[
        "stats",
        "--nodes",
        empty_nodes.to_str().unwrap(),
        "--edges",
        empty_edges.to_str().unwrap(),
    ]))
    .unwrap())
    .unwrap();
    assert!(out.contains("0"), "{out}");
    let _ = fs::remove_dir_all(&dir);
}

/// A checkpoint records which accumulator family produced it; resuming
/// it under the other family would silently mix exact and sketched
/// statistics, so both cross-mode directions must die with the typed
/// state error (exit class 4) while same-mode resume still works.
#[test]
fn cross_mode_resume_is_a_state_error() {
    let dir = tmpdir("crossmode");
    let dir_s = dir.to_str().unwrap();
    run(&parse(&argv(&[
        "generate",
        "--dataset",
        "POLE",
        "--out-dir",
        dir_s,
        "--scale",
        "0.05",
        "--jsonl",
    ]))
    .unwrap())
    .unwrap();
    let jsonl = dir.join("graph.jsonl");
    let jsonl_s = jsonl.to_str().unwrap();

    let base = |ckpt: &str| {
        vec![
            "discover".to_owned(),
            "--jsonl".to_owned(),
            jsonl_s.to_owned(),
            "--batches".to_owned(),
            "4".to_owned(),
            "--checkpoint-dir".to_owned(),
            dir.join(ckpt).to_str().unwrap().to_owned(),
        ]
    };

    // Exact run leaves exact checkpoints; `--resume --stream` refuses.
    run(&parse(&base("exact-ckpt")).unwrap()).unwrap();
    let mut args = base("exact-ckpt");
    args.extend(["--resume".to_owned(), "--stream".to_owned()]);
    let err = run(&parse(&args).unwrap()).unwrap_err();
    assert!(matches!(err, CliError::State(_)), "{err:?}");
    assert_eq!(err.exit_code(), 4);
    assert!(err.to_string().contains("exact"), "{err}");
    assert!(err.to_string().contains("sketch"), "{err}");

    // Sketched run leaves sketched checkpoints; plain `--resume` refuses...
    let mut args = base("stream-ckpt");
    args.push("--stream".to_owned());
    run(&parse(&args).unwrap()).unwrap();
    let mut args = base("stream-ckpt");
    args.push("--resume".to_owned());
    let err = run(&parse(&args).unwrap()).unwrap_err();
    assert!(matches!(err, CliError::State(_)), "{err:?}");
    assert_eq!(err.exit_code(), 4);

    // ...while resuming in the matching mode succeeds.
    let mut args = base("stream-ckpt");
    args.extend(["--resume".to_owned(), "--stream".to_owned()]);
    run(&parse(&args).unwrap()).unwrap();
    let _ = fs::remove_dir_all(&dir);
}
