//! End-to-end `pg-hive serve` test against the real binary: start a
//! durable server, push half a graph, SIGINT it mid-stream, restart,
//! push the rest, and require the final schema content hash to equal
//! offline one-shot discovery — the acceptance bar for the serving
//! layer. Also exercises `pg-hive hash` on the served schema JSON.

#![cfg(unix)]

use pg_hive::serialize::content_hash_hex;
use pg_hive::{HiveConfig, PgHive};
use pg_serve::Client;
use pg_store::jsonl::Element;
use pg_synth::{random_schema, synthesize, SchemaParams, SynthSpec};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pg-hive-serve-e2e-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A `pg-hive serve` child process plus the address it announced.
struct ServeProc {
    child: Child,
    addr: SocketAddr,
}

fn spawn_server(state_dir: &std::path::Path) -> ServeProc {
    let mut child = Command::new(env!("CARGO_BIN_EXE_pg-hive"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--state-dir",
            state_dir.to_str().unwrap(),
            "--checkpoint-every",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn pg-hive serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read startup line");
    let addr: SocketAddr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected startup line {line:?}"))
        .parse()
        .expect("parse announced address");
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while reader.read_line(&mut sink).is_ok_and(|n| n > 0) {
            sink.clear();
        }
    });
    ServeProc { child, addr }
}

fn sigint(child: &Child) {
    let status = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("run kill");
    assert!(status.success(), "kill -INT failed");
}

fn ingest_ok(client: &mut Client, path: &str, body: &str) {
    let resp = client.post(path, body.as_bytes()).expect("ingest");
    assert_eq!(resp.status, 200, "{}", resp.text());
}

#[test]
fn sigint_mid_stream_then_restart_matches_offline_discovery() {
    let state = tmpdir("state");

    // The workload: a synthetic graph whose offline one-shot schema is
    // the ground truth the served sessions must reproduce bit-for-bit.
    let truth = random_schema(&SchemaParams::default(), 5);
    let graph = synthesize(&SynthSpec::new(truth).sized_for(200), 55).graph;
    let offline = PgHive::new(HiveConfig::default()).discover_graph(&graph);
    let expected = content_hash_hex(&offline.schema);

    let node_lines: Vec<String> = graph
        .nodes()
        .map(|n| serde_json::to_string(&Element::Node(n.clone())).unwrap())
        .collect();
    let edge_lines: Vec<String> = graph
        .edges()
        .map(|e| serde_json::to_string(&Element::Edge(e.clone())).unwrap())
        .collect();
    let node_batches: Vec<String> = node_lines.chunks(25).map(|c| c.join("\n")).collect();
    assert!(
        node_batches.len() >= 2,
        "need batches on both sides of the restart"
    );
    let split = node_batches.len() / 2;

    // Phase 1: create the session, push the first half of the node
    // batches, then SIGINT the server between batches.
    let server = spawn_server(&state);
    let mut client = Client::new(server.addr);
    let resp = client
        .post("/sessions", br#"{"name":"e2e"}"#)
        .expect("create session");
    assert_eq!(resp.status, 201, "{}", resp.text());
    for body in &node_batches[..split] {
        ingest_ok(&mut client, "/sessions/e2e/ingest", body);
    }
    drop(client);
    sigint(&server.child);
    let status = {
        let mut child = server.child;
        child.wait().expect("wait for server")
    };
    assert!(
        status.success(),
        "graceful SIGINT shutdown must exit 0, got {status:?}"
    );

    // Phase 2: a fresh process resumes the session from the state dir;
    // push the remaining nodes, then the edges.
    let server = spawn_server(&state);
    let mut client = Client::new(server.addr);
    let summary = client
        .get("/sessions/e2e")
        .expect("session summary")
        .json()
        .expect("summary JSON");
    assert_eq!(
        summary.get("batches"),
        Some(&serde::Value::U64(split as u64)),
        "restart lost batches: {summary:?}"
    );
    for body in &node_batches[split..] {
        ingest_ok(&mut client, "/sessions/e2e/ingest", body);
    }
    ingest_ok(&mut client, "/sessions/e2e/ingest", &edge_lines.join("\n"));

    let summary = client
        .get("/sessions/e2e")
        .expect("session summary")
        .json()
        .expect("summary JSON");
    let served_hash = summary
        .get("hash")
        .and_then(|h| h.as_str())
        .expect("hash in summary")
        .to_owned();
    assert_eq!(
        served_hash, expected,
        "schema served after SIGINT + restart diverged from offline discovery"
    );

    // `pg-hive hash` agrees: feed it the schema JSON the server returns.
    let resp = client
        .get("/sessions/e2e/schema")
        .expect("fetch schema JSON");
    assert_eq!(resp.status, 200);
    let schema_path = state.join("served-schema.json");
    std::fs::write(&schema_path, &resp.body).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_pg-hive"))
        .args(["hash", "--schema", schema_path.to_str().unwrap()])
        .output()
        .expect("run pg-hive hash");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).trim(),
        expected,
        "hash subcommand disagrees with the served hash"
    );

    drop(client);
    sigint(&server.child);
    let mut child = server.child;
    assert!(child.wait().expect("wait").success());
    let _ = std::fs::remove_dir_all(&state);
}
