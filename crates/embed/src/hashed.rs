//! Training-free hashed embeddings: each token maps to a deterministic
//! pseudo-random unit vector.
//!
//! In high dimension, independent random unit vectors are nearly
//! orthogonal with high probability, so distinct label sets are well
//! separated — which is the property PG-HIVE's clustering needs. Unlike
//! Word2Vec, hashed embeddings carry no co-occurrence semantics; the
//! `embed_ablation` benchmark quantifies the difference.

use crate::word2vec::unit_from_hash;
use crate::LabelEmbedder;

/// Deterministic hashed embedder.
#[derive(Debug, Clone)]
pub struct HashedEmbedder {
    dim: usize,
    seed: u64,
}

impl HashedEmbedder {
    /// Create an embedder with the given dimensionality and seed.
    pub fn new(dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        HashedEmbedder { dim, seed }
    }
}

impl LabelEmbedder for HashedEmbedder {
    fn dim(&self) -> usize {
        self.dim
    }

    fn embed_token(&self, token: &str) -> Vec<f64> {
        // FNV-1a over the token bytes, mixed with the seed.
        let mut h: u64 = 0xcbf29ce484222325 ^ self.seed;
        for b in token.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        unit_from_hash(h, self.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_unit_norm() {
        let e = HashedEmbedder::new(8, 42);
        let a = e.embed_token("Person");
        assert_eq!(a, e.embed_token("Person"));
        let norm: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn distinct_tokens_are_separated() {
        let e = HashedEmbedder::new(16, 7);
        let a = e.embed_token("Person");
        let b = e.embed_token("Organization");
        let cos: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!(cos.abs() < 0.9, "near-orthogonal expected, got {cos}");
    }

    #[test]
    fn seed_changes_embedding() {
        let a = HashedEmbedder::new(8, 1).embed_token("X");
        let b = HashedEmbedder::new(8, 2).embed_token("X");
        assert_ne!(a, b);
    }

    #[test]
    fn none_embeds_to_zero() {
        let e = HashedEmbedder::new(4, 0);
        assert_eq!(e.embed_opt(None), vec![0.0; 4]);
    }
}
