//! Label-corpus construction (§4.1).
//!
//! Sentences are short sequences of canonical label tokens:
//!
//! * each edge yields `[src-token, edge-token, tgt-token]` (tokens for
//!   unlabeled endpoints/edges are skipped — they embed as zero vectors
//!   and must not influence training);
//! * each labeled node yields a unigram sentence, which registers its
//!   token in the vocabulary even if the node is isolated.

use pg_model::LabelSet;
use pg_store::{EdgeRecord, NodeRecord};

/// Build the training corpus from loaded records.
pub fn build_sentences(nodes: &[NodeRecord], edges: &[EdgeRecord]) -> Vec<Vec<String>> {
    let mut sentences = Vec::with_capacity(nodes.len() + edges.len());
    for n in nodes {
        if let Some(tok) = n.labels.canonical_token() {
            sentences.push(vec![tok]);
        }
    }
    for e in edges {
        let sent: Vec<String> = [
            token_of(&e.src_labels),
            token_of(&e.edge.labels),
            token_of(&e.tgt_labels),
        ]
        .into_iter()
        .flatten()
        .collect();
        if !sent.is_empty() {
            sentences.push(sent);
        }
    }
    sentences
}

fn token_of(labels: &LabelSet) -> Option<String> {
    labels.canonical_token()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_model::{Edge, LabelSet, Node, NodeId};

    #[test]
    fn corpus_shapes() {
        let nodes = vec![
            Node::new(1, LabelSet::single("Person")),
            Node::new(2, LabelSet::empty()),
            Node::new(3, LabelSet::from_iter(["Student", "Person"])),
        ];
        let edges = vec![EdgeRecord {
            edge: Edge::new(9, NodeId(1), NodeId(3), LabelSet::single("KNOWS")),
            src_labels: LabelSet::single("Person"),
            tgt_labels: LabelSet::from_iter(["Person", "Student"]),
        }];
        let s = build_sentences(&nodes, &edges);
        // Unlabeled node contributes nothing.
        assert_eq!(s.len(), 3);
        assert_eq!(s[0], vec!["Person".to_string()]);
        assert_eq!(s[1], vec!["Person|Student".to_string()]);
        assert_eq!(
            s[2],
            vec![
                "Person".to_string(),
                "KNOWS".to_string(),
                "Person|Student".to_string()
            ]
        );
    }

    #[test]
    fn fully_unlabeled_edge_is_skipped() {
        let edges = vec![EdgeRecord {
            edge: Edge::new(1, NodeId(1), NodeId(2), LabelSet::empty()),
            src_labels: LabelSet::empty(),
            tgt_labels: LabelSet::empty(),
        }];
        assert!(build_sentences(&[], &edges).is_empty());
    }
}
