//! Skip-gram Word2Vec with negative sampling, from scratch.
//!
//! This is a faithful, small-scale implementation of Mikolov et al.'s
//! SGNS objective, adequate for PG-HIVE's setting: the vocabulary is the
//! set of canonical label tokens (tens to low thousands of entries), and
//! the corpus is the label co-occurrence structure of the graph. Training
//! is deterministic given the seed.
//!
//! Output vectors are L2-normalized so that the ELSH distance scale is
//! controlled: identical tokens have distance 0; distinct tokens have
//! distance in `(0, 2]`.

use crate::LabelEmbedder;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct Word2VecConfig {
    /// Embedding dimensionality `d` (the paper's running example uses 5;
    /// we default to 8).
    pub dim: usize,
    /// Number of passes over the corpus.
    pub epochs: usize,
    /// Initial learning rate, linearly decayed to 10 % over training.
    pub learning_rate: f64,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Context window (sentences are ≤ 3 tokens, so 2 covers them fully).
    pub window: usize,
    /// RNG seed; training is deterministic given this.
    pub seed: u64,
    /// Cap on training pairs per epoch; large corpora are subsampled
    /// (labels repeat heavily, so a subsample preserves the distribution).
    pub max_pairs_per_epoch: usize,
    /// Identity blending weight λ: each trained vector is re-normalized
    /// from `w + λ·h(token)` where `h` is a deterministic per-token unit
    /// vector. Skip-gram places labels with identical contexts (e.g.
    /// CALLER/CALLED, both occurring between the same endpoint types)
    /// arbitrarily close together, but PG-HIVE's featurization needs
    /// *distinct label sets to stay separated* (§4.1: the representation
    /// "prevents semantically different nodes, or edges, from being
    /// merged due to their same structure"). λ = 1 guarantees a distance
    /// floor of ≈1 between distinct tokens while preserving the semantic
    /// gradient; λ = 0 is pure SGNS.
    pub identity_blend: f64,
}

impl Default for Word2VecConfig {
    fn default() -> Self {
        Word2VecConfig {
            dim: 8,
            epochs: 12,
            learning_rate: 0.05,
            negatives: 5,
            window: 2,
            seed: 0x9e3779b97f4a7c15,
            max_pairs_per_epoch: 200_000,
            identity_blend: 1.0,
        }
    }
}

/// A trained Word2Vec model over label tokens.
#[derive(Debug, Clone)]
pub struct Word2Vec {
    dim: usize,
    index: HashMap<String, usize>,
    /// Row-major `vocab × dim` input embeddings (L2-normalized).
    vectors: Vec<f64>,
    /// Deterministic seed reused for out-of-vocabulary fallbacks.
    oov_seed: u64,
}

impl Word2Vec {
    /// Train on a corpus of token sentences.
    ///
    /// An empty corpus produces an empty model where every token falls
    /// back to the deterministic OOV embedding.
    pub fn train(sentences: &[Vec<String>], cfg: &Word2VecConfig) -> Word2Vec {
        assert!(cfg.dim > 0, "embedding dimension must be positive");
        let mut index: HashMap<String, usize> = HashMap::new();
        let mut counts: Vec<usize> = Vec::new();
        for s in sentences {
            for tok in s {
                match index.get(tok) {
                    Some(&i) => counts[i] += 1,
                    None => {
                        index.insert(tok.clone(), counts.len());
                        counts.push(1);
                    }
                }
            }
        }
        let vocab = counts.len();
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

        // Xavier-ish init for input vectors, zeros for output vectors.
        let mut input: Vec<f64> = (0..vocab * cfg.dim)
            .map(|_| (rng.gen::<f64>() - 0.5) / cfg.dim as f64)
            .collect();
        let mut output: Vec<f64> = vec![0.0; vocab * cfg.dim];

        // Unigram^0.75 negative-sampling table.
        let neg_table = build_negative_table(&counts);

        // Collect the positive pairs once (corpus is small after dedup of
        // repeated sentences would bias counts, so keep multiplicity).
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for s in sentences {
            let idxs: Vec<usize> = s.iter().map(|t| index[t]).collect();
            for (i, &center) in idxs.iter().enumerate() {
                let lo = i.saturating_sub(cfg.window);
                let hi = (i + cfg.window + 1).min(idxs.len());
                for (j, &ctx) in idxs.iter().enumerate().take(hi).skip(lo) {
                    if i != j && center != ctx {
                        pairs.push((center, ctx));
                    }
                }
            }
        }

        if vocab > 0 && !pairs.is_empty() {
            let per_epoch = pairs.len().min(cfg.max_pairs_per_epoch);
            let total_steps = (cfg.epochs * per_epoch).max(1);
            let mut step = 0usize;
            for _epoch in 0..cfg.epochs {
                for _ in 0..per_epoch {
                    let &(center, ctx) = &pairs[rng.gen_range(0..pairs.len())];
                    let lr = cfg.learning_rate * (1.0 - 0.9 * step as f64 / total_steps as f64);
                    sgns_step(
                        &mut input,
                        &mut output,
                        cfg.dim,
                        center,
                        ctx,
                        &neg_table,
                        cfg.negatives,
                        lr,
                        &mut rng,
                    );
                    step += 1;
                }
            }
        }

        // Normalize rows, blend in the per-token identity direction, and
        // re-normalize. A numerically-zero row falls back to the pure
        // identity vector.
        let mut token_of_row: Vec<&String> = vec![&EMPTY_STRING; vocab];
        for (tok, &i) in &index {
            token_of_row[i] = tok;
        }
        for row in 0..vocab {
            let v = &mut input[row * cfg.dim..(row + 1) * cfg.dim];
            let ident = unit_from_hash(hash_token(token_of_row[row]) ^ cfg.seed, cfg.dim);
            let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 1e-12 {
                for (x, h) in v.iter_mut().zip(&ident) {
                    *x = *x / norm + cfg.identity_blend * h;
                }
                let n2 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
                if n2 > 1e-12 {
                    v.iter_mut().for_each(|x| *x /= n2);
                } else {
                    v.copy_from_slice(&ident);
                }
            } else {
                v.copy_from_slice(&ident);
            }
        }

        Word2Vec {
            dim: cfg.dim,
            index,
            vectors: input,
            oov_seed: cfg.seed,
        }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.index.len()
    }

    /// Whether the token was observed in training.
    pub fn contains(&self, token: &str) -> bool {
        self.index.contains_key(token)
    }

    /// Cosine similarity between two tokens (via OOV fallback if needed).
    pub fn cosine(&self, a: &str, b: &str) -> f64 {
        let va = self.embed_token(a);
        let vb = self.embed_token(b);
        va.iter().zip(&vb).map(|(x, y)| x * y).sum()
    }
}

impl LabelEmbedder for Word2Vec {
    fn dim(&self) -> usize {
        self.dim
    }

    fn embed_token(&self, token: &str) -> Vec<f64> {
        match self.index.get(token) {
            Some(&i) => self.vectors[i * self.dim..(i + 1) * self.dim].to_vec(),
            None => unit_from_hash(hash_token(token) ^ self.oov_seed, self.dim),
        }
    }
}

static EMPTY_STRING: String = String::new();

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// One SGNS gradient step for the pair `(center, ctx)`.
#[allow(clippy::too_many_arguments)]
fn sgns_step(
    input: &mut [f64],
    output: &mut [f64],
    dim: usize,
    center: usize,
    ctx: usize,
    neg_table: &[usize],
    negatives: usize,
    lr: f64,
    rng: &mut ChaCha8Rng,
) {
    let mut grad_center = vec![0.0; dim];
    {
        // Positive sample.
        let (vi, vo) = (center * dim, ctx * dim);
        let dot: f64 = (0..dim).map(|k| input[vi + k] * output[vo + k]).sum();
        let g = (sigmoid(dot) - 1.0) * lr;
        for k in 0..dim {
            grad_center[k] += g * output[vo + k];
            output[vo + k] -= g * input[vi + k];
        }
    }
    for _ in 0..negatives {
        let neg = neg_table[rng.gen_range(0..neg_table.len())];
        if neg == ctx {
            continue;
        }
        let (vi, vo) = (center * dim, neg * dim);
        let dot: f64 = (0..dim).map(|k| input[vi + k] * output[vo + k]).sum();
        let g = sigmoid(dot) * lr;
        for k in 0..dim {
            grad_center[k] += g * output[vo + k];
            output[vo + k] -= g * input[vi + k];
        }
    }
    let vi = center * dim;
    for k in 0..dim {
        input[vi + k] -= grad_center[k];
    }
}

/// Unigram^0.75 sampling table (size-bounded).
fn build_negative_table(counts: &[usize]) -> Vec<usize> {
    const TABLE: usize = 10_000;
    if counts.is_empty() {
        return vec![0];
    }
    let weights: Vec<f64> = counts.iter().map(|&c| (c as f64).powf(0.75)).collect();
    let total: f64 = weights.iter().sum();
    let mut table = Vec::with_capacity(TABLE);
    for (i, w) in weights.iter().enumerate() {
        let n = ((w / total) * TABLE as f64).ceil() as usize;
        table.extend(std::iter::repeat_n(i, n.max(1)));
    }
    table
}

fn hash_token(token: &str) -> u64 {
    // FNV-1a, stable across runs (std's Hash is not guaranteed stable).
    let mut h: u64 = 0xcbf29ce484222325;
    for b in token.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Deterministic pseudo-random unit vector from a hash seed.
pub(crate) fn unit_from_hash(seed: u64, dim: usize) -> Vec<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    loop {
        let v: Vec<f64> = (0..dim).map(|_| rng.gen::<f64>() - 0.5).collect();
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 1e-9 {
            return v.into_iter().map(|x| x / norm).collect();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_corpus() -> Vec<Vec<String>> {
        // Two communities: Person-KNOWS-Person and Gene-BINDS-Protein.
        let mut s = Vec::new();
        for _ in 0..50 {
            s.push(vec!["Person".into(), "KNOWS".into(), "Person".into()]);
            s.push(vec!["Person".into(), "WORKS_AT".into(), "Org".into()]);
            s.push(vec!["Gene".into(), "BINDS".into(), "Protein".into()]);
        }
        s
    }

    #[test]
    fn training_is_deterministic() {
        let corpus = toy_corpus();
        let cfg = Word2VecConfig {
            epochs: 3,
            ..Default::default()
        };
        let a = Word2Vec::train(&corpus, &cfg);
        let b = Word2Vec::train(&corpus, &cfg);
        assert_eq!(a.embed_token("Person"), b.embed_token("Person"));
    }

    #[test]
    fn vectors_are_unit_norm() {
        let m = Word2Vec::train(&toy_corpus(), &Word2VecConfig::default());
        for tok in ["Person", "KNOWS", "Gene"] {
            let v = m.embed_token(tok);
            let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9, "{tok} norm {norm}");
        }
    }

    #[test]
    fn distributionally_similar_tokens_are_closer() {
        // Skip-gram places tokens with shared *contexts* nearby: KNOWS and
        // WORKS_AT both occur next to Person, while BINDS occurs next to
        // Gene/Protein only. Identity blending is disabled so the pure
        // SGNS geometry is visible.
        let m = Word2Vec::train(
            &toy_corpus(),
            &Word2VecConfig {
                identity_blend: 0.0,
                ..Default::default()
            },
        );
        let close = m.cosine("KNOWS", "WORKS_AT");
        let far = m.cosine("KNOWS", "BINDS");
        assert!(
            close > far,
            "expected cosine(KNOWS,WORKS_AT)={close} > cosine(KNOWS,BINDS)={far}"
        );
    }

    #[test]
    fn oov_is_deterministic_and_unit() {
        let m = Word2Vec::train(&toy_corpus(), &Word2VecConfig::default());
        let a = m.embed_token("NeverSeen");
        let b = m.embed_token("NeverSeen");
        assert_eq!(a, b);
        let norm: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
        assert_ne!(a, m.embed_token("AlsoNeverSeen"));
    }

    #[test]
    fn empty_corpus_still_embeds() {
        let m = Word2Vec::train(&[], &Word2VecConfig::default());
        assert_eq!(m.vocab_size(), 0);
        let v = m.embed_token("anything");
        assert_eq!(v.len(), 8);
    }

    #[test]
    fn embed_opt_zero_for_unlabeled() {
        let m = Word2Vec::train(&toy_corpus(), &Word2VecConfig::default());
        assert_eq!(m.embed_opt(None), vec![0.0; 8]);
        assert_ne!(m.embed_opt(Some("Person")), vec![0.0; 8]);
    }
}
