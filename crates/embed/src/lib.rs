//! # pg-embed
//!
//! Label embeddings for PG-HIVE's hybrid feature vectors (§4.1).
//!
//! The paper trains a Word2Vec model on the node and edge labels observed
//! in the dataset "to ensure consistent semantic embeddings across
//! identical label sets". This crate implements:
//!
//! * [`word2vec::Word2Vec`] — skip-gram with negative sampling, trained
//!   from scratch on the label corpus.
//! * [`corpus`] — corpus construction: each edge contributes a 3-token
//!   sentence `(src-labels, edge-label, tgt-labels)` where a multi-label
//!   set becomes a single token (its sorted concatenation), and each node
//!   contributes its token to the vocabulary.
//! * [`hashed::HashedEmbedder`] — a training-free deterministic fallback
//!   that maps each token to a pseudo-random unit vector. It satisfies
//!   the two properties PG-HIVE actually relies on (identical sets map to
//!   identical vectors; distinct sets are well separated in expectation),
//!   and serves as the ablation baseline.
//!
//! Both embedders implement [`LabelEmbedder`]; missing labels map to the
//! zero vector, per the paper.

pub mod corpus;
pub mod hashed;
pub mod word2vec;

pub use corpus::build_sentences;
pub use hashed::HashedEmbedder;
pub use word2vec::{Word2Vec, Word2VecConfig};

/// Anything that can embed a canonical label token into `R^d`.
pub trait LabelEmbedder: Send + Sync {
    /// Embedding dimensionality `d`.
    fn dim(&self) -> usize;

    /// Embed a canonical token. Unknown tokens receive a deterministic
    /// out-of-vocabulary embedding (implementation-specific) so that two
    /// occurrences of the same unseen token still coincide.
    fn embed_token(&self, token: &str) -> Vec<f64>;

    /// Embed an optional token: `None` (no labels) maps to the zero
    /// vector, as §4.1 prescribes for unlabeled elements.
    fn embed_opt(&self, token: Option<&str>) -> Vec<f64> {
        match token {
            Some(t) => self.embed_token(t),
            None => vec![0.0; self.dim()],
        }
    }
}
