//! Property-based tests for the embedding substrate.

use pg_embed::{HashedEmbedder, LabelEmbedder, Word2Vec, Word2VecConfig};
use proptest::prelude::*;

fn quick_cfg(dim: usize, seed: u64) -> Word2VecConfig {
    Word2VecConfig {
        dim,
        epochs: 1,
        max_pairs_per_epoch: 1_000,
        seed,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn trained_vectors_are_unit_norm(
        sentences in prop::collection::vec(
            prop::collection::vec("[A-Z][a-z]{0,5}", 1..4), 1..30),
        dim in 2usize..16,
        seed in 0u64..1000,
    ) {
        let m = Word2Vec::train(&sentences, &quick_cfg(dim, seed));
        for s in &sentences {
            for tok in s {
                let v = m.embed_token(tok);
                prop_assert_eq!(v.len(), dim);
                let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
                prop_assert!((norm - 1.0).abs() < 1e-9, "norm {norm}");
            }
        }
    }

    #[test]
    fn identical_tokens_embed_identically(
        token in "[A-Za-z|]{1,12}",
        dim in 2usize..16,
        seed in 0u64..1000,
    ) {
        let corpus = vec![vec![token.clone()]];
        let m = Word2Vec::train(&corpus, &quick_cfg(dim, seed));
        prop_assert_eq!(m.embed_token(&token), m.embed_token(&token));
        let h = HashedEmbedder::new(dim, seed);
        prop_assert_eq!(h.embed_token(&token), h.embed_token(&token));
    }

    #[test]
    fn distinct_tokens_are_separated(
        a in "[A-Z][a-z]{1,8}",
        b in "[A-Z][a-z]{1,8}",
        seed in 0u64..1000,
    ) {
        prop_assume!(a != b);
        // Identity blending guarantees a distance floor even for tokens
        // the trainer cannot distinguish (e.g. identical contexts).
        let corpus = vec![vec![a.clone(), b.clone()]; 5];
        let m = Word2Vec::train(&corpus, &quick_cfg(8, seed));
        let va = m.embed_token(&a);
        let vb = m.embed_token(&b);
        let d: f64 = va.iter().zip(&vb).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
        prop_assert!(d > 0.3, "tokens {a:?}/{b:?} too close: {d}");
    }

    #[test]
    fn embed_opt_none_is_zero(dim in 1usize..16, seed in 0u64..1000) {
        let h = HashedEmbedder::new(dim, seed);
        prop_assert_eq!(h.embed_opt(None), vec![0.0; dim]);
        let m = Word2Vec::train(&[], &quick_cfg(dim, seed));
        prop_assert_eq!(m.embed_opt(None), vec![0.0; dim]);
    }
}
