//! Live-session API behaviour: lifecycle, conditional schema fetches,
//! version diffs, validation, durable restart, and response-path fault
//! injection.

use pg_serve::{handle_connection, Ctx, Limits, Metrics, Registry, RegistryConfig, ServerConfig};
use pg_store::{FaultKind, FaultyWriter};
use std::io::{self, Read, Write};
use std::sync::{Arc, Mutex};

mod util;
use util::{edge_line, node_line, scratch_dir, TestServer};

fn err_code(resp: &pg_serve::ClientResponse) -> String {
    resp.json()
        .ok()
        .and_then(|v| {
            v.get("error")
                .and_then(|e| e.get("code"))
                .and_then(|c| c.as_str())
                .map(str::to_owned)
        })
        .unwrap_or_default()
}

#[test]
fn session_lifecycle_create_conflict_list_delete() {
    let server = TestServer::start(ServerConfig::default());
    let mut client = server.client();

    let resp = client.post("/sessions", br#"{"name":"alpha"}"#).unwrap();
    assert_eq!(resp.status, 201, "{}", resp.text());
    let v = resp.json().unwrap();
    assert_eq!(v.get("name").and_then(|n| n.as_str()), Some("alpha"));
    assert_eq!(v.get("durable"), Some(&serde::Value::Bool(false)));
    assert_eq!(v.get("batches"), Some(&serde::Value::U64(0)));

    let resp = client.post("/sessions", br#"{"name":"alpha"}"#).unwrap();
    assert_eq!(resp.status, 409);
    assert_eq!(err_code(&resp), "session_exists");

    let resp = client
        .post("/sessions", br#"{"name":"bad name!"}"#)
        .unwrap();
    assert_eq!(resp.status, 400);
    assert_eq!(err_code(&resp), "invalid_name");

    let resp = client
        .post("/sessions", br#"{"name":"b","theta":2.5}"#)
        .unwrap();
    assert_eq!(resp.status, 400);
    assert_eq!(err_code(&resp), "invalid_spec");

    let resp = client.get("/sessions").unwrap();
    let names: Vec<String> = resp
        .json()
        .unwrap()
        .get("sessions")
        .and_then(|s| s.as_array().map(<[serde::Value]>::to_vec))
        .unwrap_or_default()
        .iter()
        .filter_map(|s| s.get("name").and_then(|n| n.as_str()).map(str::to_owned))
        .collect();
    assert_eq!(names, ["alpha"]);

    assert_eq!(client.delete("/sessions/alpha").unwrap().status, 204);
    assert_eq!(client.delete("/sessions/alpha").unwrap().status, 404);
    assert_eq!(client.get("/sessions/alpha").unwrap().status, 404);
}

#[test]
fn schema_etag_enables_304_roundtrips() {
    let server = TestServer::start(ServerConfig::default());
    let mut client = server.client();
    client.post("/sessions", br#"{"name":"etag"}"#).unwrap();
    let body = format!(
        "{}\n{}\n{}",
        node_line(1, "Person", r#""age":{"Int":30}"#),
        node_line(2, "Person", r#""age":{"Int":41}"#),
        edge_line(10, 1, 2, "KNOWS"),
    );
    let resp = client
        .post("/sessions/etag/ingest", body.as_bytes())
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let ingest = resp.json().unwrap();
    assert_eq!(ingest.get("changed"), Some(&serde::Value::Bool(true)));
    let hash = ingest
        .get("hash")
        .and_then(|h| h.as_str())
        .expect("hash in ingest response")
        .to_owned();

    let resp = client.get("/sessions/etag/schema").unwrap();
    assert_eq!(resp.status, 200);
    let etag = resp.header("etag").expect("ETag header").to_owned();
    assert!(etag.contains(&hash), "ETag {etag} should embed hash {hash}");
    let version = resp.header("x-schema-version").unwrap().to_owned();
    assert!(resp.text().contains("Person"), "{}", resp.text());

    // Same tag → 304 with no body; a stale tag → fresh 200.
    let resp = client
        .get_with_headers("/sessions/etag/schema", &[("If-None-Match", &etag)])
        .unwrap();
    assert_eq!(resp.status, 304);
    assert!(resp.body.is_empty());
    assert_eq!(resp.header("etag"), Some(etag.as_str()));

    let resp = client
        .get_with_headers("/sessions/etag/schema", &[("If-None-Match", "\"old\"")])
        .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("x-schema-version"), Some(version.as_str()));

    // The tag is format-qualified: a PG-Schema render is different
    // content, so the JSON tag must not suppress it.
    let resp = client
        .get_with_headers(
            "/sessions/etag/schema?format=loose",
            &[("If-None-Match", &etag)],
        )
        .unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.text().contains("GRAPH TYPE"), "{}", resp.text());

    let resp = client.get("/sessions/etag/schema?format=nope").unwrap();
    assert_eq!(resp.status, 400);
    assert_eq!(err_code(&resp), "unknown_format");
}

#[test]
fn diff_covers_missing_bad_evicted_and_live_versions() {
    let server = TestServer::start(ServerConfig::default());
    let mut client = server.client();
    client
        .post("/sessions", br#"{"name":"d","history_retain":2}"#)
        .unwrap();

    // Version 1 is the empty schema at creation; three schema-changing
    // batches advance to version 4, and retain 2 keeps only {3, 4}.
    for (i, label) in ["A", "B", "C"].iter().enumerate() {
        let resp = client
            .post(
                "/sessions/d/ingest",
                node_line(i as u64 + 1, label, "").as_bytes(),
            )
            .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        assert_eq!(
            resp.json().unwrap().get("changed"),
            Some(&serde::Value::Bool(true)),
            "batch {i} should extend the schema"
        );
    }

    let resp = client.get("/sessions/d/diff").unwrap();
    assert_eq!(resp.status, 400);
    assert_eq!(err_code(&resp), "missing_from");

    let resp = client.get("/sessions/d/diff?from=x").unwrap();
    assert_eq!(resp.status, 400);
    assert_eq!(err_code(&resp), "bad_from");

    let resp = client.get("/sessions/d/diff?from=99").unwrap();
    assert_eq!(resp.status, 404);
    assert_eq!(err_code(&resp), "unknown_version");

    let resp = client.get("/sessions/d/diff?from=1").unwrap();
    assert_eq!(resp.status, 410, "{}", resp.text());
    assert_eq!(err_code(&resp), "version_evicted");

    let resp = client.get("/sessions/d/diff?from=3").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let v = resp.json().unwrap();
    assert_eq!(v.get("from"), Some(&serde::Value::U64(3)));
    assert_eq!(v.get("to"), Some(&serde::Value::U64(4)));
    assert_eq!(v.get("identical"), Some(&serde::Value::Bool(false)));
    assert_eq!(v.get("pure_extension"), Some(&serde::Value::Bool(true)));

    let resp = client.get("/sessions/d/diff?from=4").unwrap();
    let v = resp.json().unwrap();
    assert_eq!(v.get("identical"), Some(&serde::Value::Bool(true)));
}

#[test]
fn validate_reports_modes_violations_and_quarantine() {
    let server = TestServer::start(ServerConfig::default());
    let mut client = server.client();
    client.post("/sessions", br#"{"name":"v"}"#).unwrap();
    let body = format!(
        "{}\n{}",
        node_line(1, "Person", r#""age":{"Int":30}"#),
        node_line(2, "Person", r#""age":{"Int":41}"#),
    );
    client.post("/sessions/v/ingest", body.as_bytes()).unwrap();

    // A conforming subgraph passes LOOSE.
    let resp = client
        .post(
            "/sessions/v/validate",
            node_line(7, "Person", r#""age":{"Int":9}"#).as_bytes(),
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let v = resp.json().unwrap();
    assert_eq!(v.get("valid"), Some(&serde::Value::Bool(true)));
    assert_eq!(v.get("mode").and_then(|m| m.as_str()), Some("loose"));
    assert_eq!(v.get("nodes_checked"), Some(&serde::Value::U64(1)));

    // An unseen label is a violation; a dirty line is quarantined, not
    // a request failure.
    let body = format!("{}\nnot json at all", node_line(8, "Martian", ""));
    let resp = client
        .post("/sessions/v/validate?mode=strict", body.as_bytes())
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let v = resp.json().unwrap();
    assert_eq!(v.get("valid"), Some(&serde::Value::Bool(false)));
    assert_eq!(v.get("mode").and_then(|m| m.as_str()), Some("strict"));
    let count = match v.get("violation_count") {
        Some(serde::Value::U64(n)) => *n,
        other => panic!("violation_count: {other:?}"),
    };
    assert!(count >= 1, "{v:?}");
    assert_eq!(v.get("quarantined"), Some(&serde::Value::U64(1)));

    let resp = client
        .post("/sessions/v/validate?mode=psychic", b"")
        .unwrap();
    assert_eq!(resp.status, 400);
    assert_eq!(err_code(&resp), "unknown_mode");
}

#[test]
fn graceful_stop_persists_and_restart_resumes_bit_identically() {
    let dir = scratch_dir("resume");
    let config = ServerConfig {
        state_dir: Some(dir.clone()),
        // Large cadence: only the shutdown checkpoint may persist, so
        // this test proves the drain path, not the cadence path.
        checkpoint_every: 1000,
        ..ServerConfig::default()
    };
    let server = TestServer::start(config.clone());
    let mut client = server.client();
    let resp = client.post("/sessions", br#"{"name":"durable"}"#).unwrap();
    assert_eq!(resp.status, 201, "{}", resp.text());
    assert_eq!(
        resp.json().unwrap().get("durable"),
        Some(&serde::Value::Bool(true))
    );
    for i in 0..3u64 {
        let body = format!(
            "{}\n{}",
            node_line(i * 2 + 1, "N", r#""w":{"Int":5}"#),
            node_line(i * 2 + 2, "M", ""),
        );
        let resp = client
            .post("/sessions/durable/ingest", body.as_bytes())
            .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
    }
    let before = client.get("/sessions/durable").unwrap().json().unwrap();
    drop(client);
    let summary = server.stop();
    assert!(
        summary.persist_failures.is_empty(),
        "{:?}",
        summary.persist_failures
    );
    assert_eq!(summary.sessions_persisted, 1);

    // A fresh process (new server, same state dir) resumes the session
    // with the same batch numbering and content hash.
    let server = TestServer::start(config);
    let mut client = server.client();
    let after = client.get("/sessions/durable").unwrap().json().unwrap();
    for field in ["batches", "nodes", "edges", "version", "hash"] {
        assert_eq!(
            after.get(field),
            before.get(field),
            "{field} drifted across restart"
        );
    }
    // And it is live, not a read-only fossil.
    let resp = client
        .post(
            "/sessions/durable/ingest",
            node_line(100, "N", r#""w":{"Int":1}"#).as_bytes(),
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let _ = std::fs::remove_dir_all(&dir);
}

/// An in-memory connection: reads serve a canned request, writes land
/// in a shared buffer the test can inspect after the server thread is
/// done with the stream.
struct Duplex {
    input: io::Cursor<Vec<u8>>,
    output: Arc<Mutex<Vec<u8>>>,
}

impl Duplex {
    fn new(request: Vec<u8>) -> (Duplex, Arc<Mutex<Vec<u8>>>) {
        let output = Arc::new(Mutex::new(Vec::new()));
        (
            Duplex {
                input: io::Cursor::new(request),
                output: Arc::clone(&output),
            },
            output,
        )
    }
}

impl Read for Duplex {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.input.read(buf)
    }
}

impl Write for Duplex {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.output.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn raw_post(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

#[test]
fn response_write_fault_does_not_poison_the_session() {
    let (registry, warnings) = Registry::open(RegistryConfig::default());
    assert!(warnings.is_empty());
    let ctx = Ctx {
        registry: Arc::new(registry),
        metrics: Arc::new(Metrics::new()),
        cluster: None,
        shutdown: Arc::new(std::sync::atomic::AtomicBool::new(false)),
    };
    let limits = Limits {
        max_body: 1024 * 1024,
    };
    ctx.registry
        .create("frail", pg_serve::SessionSpec::default())
        .expect("create session");

    // The ingest is applied, then the connection dies 20 bytes into the
    // response — the client never learns the outcome.
    let batch = node_line(1, "A", r#""k":{"Int":1}"#);
    let (duplex, out) = Duplex::new(raw_post("/sessions/frail/ingest", &batch));
    handle_connection(
        FaultyWriter::new(duplex, 20, FaultKind::Error),
        &ctx,
        limits,
    );
    let partial = out.lock().unwrap().clone();
    assert!(partial.len() <= 20, "fault did not clip the response");

    // The session itself is intact: the batch landed exactly once and
    // the next request on a healthy connection behaves normally.
    let live = ctx.registry.get("frail").expect("session still registered");
    assert_eq!(live.handle().batches_processed(), 1);
    assert!(live.handle().broken().is_none());

    let (duplex, out) = Duplex::new(raw_post("/sessions/frail/ingest", &node_line(2, "B", "")));
    handle_connection(duplex, &ctx, limits);
    let raw = out.lock().unwrap().clone();
    let resp = pg_serve::client::read_response(&mut &raw[..]).expect("parse response");
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&raw));
    assert_eq!(live.handle().batches_processed(), 2);
}

/// A `"mode":"stream"` session runs the whole live-session surface on
/// bounded-memory accumulators: ingest works, the spec round-trips in
/// the summary, and `/metrics` exposes the per-session memory gauges
/// the operator uses to confirm the bound is holding.
#[test]
fn stream_mode_session_is_bounded_and_observable() {
    let server = TestServer::start(ServerConfig::default());
    let mut client = server.client();

    let resp = client
        .post("/sessions", br#"{"name":"sk","mode":"stream"}"#)
        .unwrap();
    assert_eq!(resp.status, 201, "{}", resp.text());

    // An unknown accumulator mode is an invalid spec, not a default.
    let resp = client
        .post("/sessions", br#"{"name":"bad","mode":"approx"}"#)
        .unwrap();
    assert_eq!(resp.status, 400);
    assert_eq!(err_code(&resp), "invalid_spec");

    let body = format!(
        "{}\n{}\n{}",
        node_line(1, "Person", r#""age":{"Int":30}"#),
        node_line(2, "Person", r#""age":{"Int":41}"#),
        edge_line(10, 1, 2, "KNOWS"),
    );
    let resp = client.post("/sessions/sk/ingest", body.as_bytes()).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());

    let resp = client.get("/sessions/sk/schema").unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.text().contains("Person"), "{}", resp.text());

    // The mode survives in the summary's spec echo.
    let resp = client.get("/sessions/sk").unwrap();
    let v = resp.json().unwrap();
    let mode = v
        .get("spec")
        .and_then(|s| s.get("mode"))
        .and_then(|m| m.as_str())
        .map(str::to_owned);
    assert_eq!(mode.as_deref(), Some("stream"));

    // The memory gauges are present and live.
    let metrics = client.get("/metrics").unwrap().text();
    let gauge = |name: &str| -> u64 {
        metrics
            .lines()
            .find(|l| l.starts_with(&format!("{name}{{session=\"sk\"}}")))
            .and_then(|l| l.split_whitespace().last())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("{name} gauge missing for session sk:\n{metrics}"))
    };
    assert!(gauge("pg_serve_session_accum_bytes") > 0);
    let _ = gauge("pg_serve_session_fingerprint_entries");
}
