//! HTTP protocol-level tests against a real listening server: malformed
//! requests, size limits, unknown routes, truncated bodies, and
//! keep-alive — everything a misbehaving client can throw at the wire.

use pg_serve::client::read_response;
use pg_serve::ServerConfig;
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;

mod util;
use util::{node_line, TestServer};

/// Send raw bytes on a fresh connection, return everything the server
/// answers before closing.
fn raw_exchange(server: &TestServer, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    stream.write_all(bytes).expect("send");
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read response");
    out
}

#[test]
fn malformed_request_lines_get_400() {
    let server = TestServer::start(ServerConfig::default());
    for raw in [
        "GET\r\n\r\n",
        "GET / HTTP/1.1 junk\r\n\r\n",
        "FETCH / SPDY/9\r\n\r\n",
        "GET / HTTP/1.1\r\nno-colon-header\r\n\r\n",
    ] {
        let resp = raw_exchange(&server, raw.as_bytes());
        assert!(
            resp.starts_with("HTTP/1.1 400 "),
            "{raw:?} answered {resp:?}"
        );
        assert!(resp.contains("\"code\":\"bad_request\""), "{resp}");
    }
}

#[test]
fn oversized_bodies_get_413_without_reading_them() {
    let server = TestServer::start(ServerConfig {
        max_body: 1024,
        ..ServerConfig::default()
    });
    // Declare 1 MiB but send none of it: the server must answer from
    // the header alone.
    let resp = raw_exchange(
        &server,
        b"POST /sessions/s/ingest HTTP/1.1\r\nContent-Length: 1048576\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 413 "), "{resp}");
    assert!(resp.contains("payload_too_large"), "{resp}");
}

/// Regression: a 413 used to leave the declared body unread on the
/// wire, so the next "request" on the connection parsed from the
/// middle of the rejected body. A bounded oversize must now be drained
/// and the connection stays aligned for keep-alive reuse.
#[test]
fn oversized_body_within_drain_cap_keeps_the_connection_usable() {
    let server = TestServer::start(ServerConfig {
        max_body: 1024,
        ..ServerConfig::default()
    });
    let stream = TcpStream::connect(server.addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // 4 KiB body: over max_body, under the drain cap. Send all of it.
    let body = vec![b'z'; 4096];
    let mut wire = format!(
        "POST /sessions/s/ingest HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    wire.extend_from_slice(&body);
    (&stream).write_all(&wire).expect("send oversized");
    let resp = read_response(&mut reader).expect("413 response");
    assert_eq!(resp.status, 413, "{}", resp.text());
    assert_ne!(
        resp.header("connection"),
        Some("close"),
        "bounded oversize must keep the connection"
    );

    // The very next request on the same connection parses cleanly —
    // proof the rejected body was consumed, not left on the wire.
    (&stream)
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("follow-up");
    let resp = read_response(&mut reader).expect("follow-up response");
    assert_eq!(resp.status, 200, "{}", resp.text());
}

/// Past the drain cap, reading the rejected body would cost more than
/// a re-dial: the 413 carries `Connection: close` and the server hangs
/// up instead of draining megabytes.
#[test]
fn oversized_body_beyond_drain_cap_closes_the_connection() {
    let server = TestServer::start(ServerConfig {
        max_body: 1024,
        ..ServerConfig::default()
    });
    let stream = TcpStream::connect(server.addr).expect("connect");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    (&stream)
        .write_all(
            b"POST /sessions/s/ingest HTTP/1.1\r\nHost: t\r\nContent-Length: 1048576\r\n\r\n",
        )
        .expect("send head");
    let resp = read_response(&mut reader).expect("413 response");
    assert_eq!(resp.status, 413, "{}", resp.text());
    assert_eq!(resp.header("connection"), Some("close"));
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("eof");
    assert!(rest.is_empty(), "server wrote after Connection: close");
}

#[test]
fn unknown_routes_get_404_and_wrong_methods_405() {
    let server = TestServer::start(ServerConfig::default());
    let mut client = server.client();
    let resp = client.get("/no/such/route").unwrap();
    assert_eq!(resp.status, 404);
    let err = resp.json().unwrap();
    assert_eq!(
        err.get("error")
            .and_then(|e| e.get("code"))
            .and_then(|c| c.as_str()),
        Some("not_found")
    );

    let resp = client.post("/healthz", b"").unwrap();
    assert_eq!(resp.status, 405);
    assert_eq!(resp.header("allow"), Some("GET"));
}

#[test]
fn chunked_transfer_encoding_gets_501() {
    let server = TestServer::start(ServerConfig::default());
    let resp = raw_exchange(
        &server,
        b"POST /sessions HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 501 "), "{resp}");
}

#[test]
fn truncated_jsonl_mid_body_is_quarantined_not_500() {
    let server = TestServer::start(ServerConfig::default());
    let mut client = server.client();
    let resp = client.post("/sessions", br#"{"name":"trunc"}"#).unwrap();
    assert_eq!(resp.status, 201, "{}", resp.text());

    // A complete line followed by a record cut mid-JSON: the
    // Content-Length is honest (the *stream* is fine), the payload
    // just ends in the middle of a record — exactly what a producer
    // crash leaves behind.
    let body = format!(
        "{}\n{{\"kind\":\"node\",\"id\":2,\"lab",
        node_line(1, "A", "")
    );
    let resp = client
        .post("/sessions/trunc/ingest", body.as_bytes())
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let v = resp.json().unwrap();
    assert_eq!(v.get("nodes"), Some(&serde::Value::U64(1)));
    assert_eq!(v.get("quarantined"), Some(&serde::Value::U64(1)));
    let reason = v
        .get("quarantine")
        .and_then(|q| q.as_array())
        .and_then(|a| a.first())
        .and_then(|e| e.get("reason"))
        .and_then(|r| r.as_str())
        .unwrap_or_default()
        .to_owned();
    assert!(
        !reason.is_empty(),
        "quarantine entry must explain itself: {v:?}"
    );

    // The session survived and keeps accepting work.
    let resp = client
        .post("/sessions/trunc/ingest", node_line(3, "B", "").as_bytes())
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
}

#[test]
fn keep_alive_serves_many_requests_per_connection() {
    let server = TestServer::start(ServerConfig::default());
    let stream = TcpStream::connect(server.addr).expect("connect");
    let mut reader = BufReader::new(stream);
    for i in 0..5 {
        reader
            .get_mut()
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("send");
        let resp = read_response(&mut reader).expect("response");
        assert_eq!(resp.status, 200, "request {i}");
        assert_eq!(resp.header("connection"), Some("keep-alive"), "request {i}");
    }
    // An explicit close is honored.
    reader
        .get_mut()
        .write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        .expect("send");
    let resp = read_response(&mut reader).expect("response");
    assert_eq!(resp.header("connection"), Some("close"));
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("eof");
    assert!(rest.is_empty(), "server wrote after Connection: close");
}

#[test]
fn metrics_report_requests_by_route_pattern() {
    let server = TestServer::start(ServerConfig::default());
    let mut client = server.client();
    client.post("/sessions", br#"{"name":"m1"}"#).unwrap();
    client.get("/sessions/m1").unwrap();
    client.get("/sessions/nope").unwrap();
    let text = client.get("/metrics").unwrap().text();
    assert!(
        text.contains("pg_serve_requests_total{route=\"/sessions\",status=\"201\"} 1"),
        "{text}"
    );
    // Both the hit and the 404 land under the same pattern label.
    assert!(
        text.contains("pg_serve_requests_total{route=\"/sessions/{id}\",status=\"200\"} 1"),
        "{text}"
    );
    assert!(
        text.contains("pg_serve_requests_total{route=\"/sessions/{id}\",status=\"404\"} 1"),
        "{text}"
    );
    assert!(text.contains("pg_serve_session_batches_total{session=\"m1\"} 0"));
}
