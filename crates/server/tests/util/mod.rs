//! Shared helpers for the pg-serve integration suites.
//!
//! Each test binary compiles this module independently and uses a
//! different subset of it.
#![allow(dead_code)]

use pg_serve::{Client, Metrics, Registry, RunSummary, Server, ServerConfig};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A server running on a background thread, stopped (gracefully) on
/// drop or via [`TestServer::stop`].
pub struct TestServer {
    pub addr: SocketAddr,
    /// Direct handle on the server's session registry — lets tests
    /// hold ingest permits to provoke backpressure deterministically.
    pub registry: Arc<Registry>,
    /// Direct handle on the server's metrics counters.
    pub metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<std::io::Result<RunSummary>>>,
}

impl TestServer {
    pub fn start(config: ServerConfig) -> TestServer {
        TestServer::try_start(config).expect("bind test server")
    }

    pub fn try_start(config: ServerConfig) -> std::io::Result<TestServer> {
        let shutdown = Arc::new(AtomicBool::new(false));
        let server = Server::bind(config, Arc::clone(&shutdown))?;
        let addr = server.local_addr();
        let registry = server.registry();
        let metrics = server.metrics();
        let thread = std::thread::spawn(move || server.run());
        Ok(TestServer {
            addr,
            registry,
            metrics,
            shutdown,
            thread: Some(thread),
        })
    }

    /// Start on a fixed address, retrying while the port shakes off the
    /// previous occupant (restart-on-same-port scenarios).
    pub fn start_rebinding(config: ServerConfig, deadline: std::time::Duration) -> TestServer {
        let started = std::time::Instant::now();
        loop {
            match TestServer::try_start(config.clone()) {
                Ok(s) => return s,
                Err(e) if started.elapsed() < deadline => {
                    let _ = e;
                    std::thread::sleep(std::time::Duration::from_millis(100));
                }
                Err(e) => panic!("rebinding {}: {e}", config.addr),
            }
        }
    }

    pub fn client(&self) -> Client {
        Client::new(self.addr)
    }

    /// Graceful shutdown; returns what the run did.
    pub fn stop(mut self) -> RunSummary {
        self.shutdown.store(true, Ordering::SeqCst);
        self.thread
            .take()
            .expect("server thread present")
            .join()
            .expect("server thread join")
            .expect("server run")
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// A unique scratch directory under the target tmpdir.
pub fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pg-serve-test-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// JSONL line for a node.
pub fn node_line(id: u64, label: &str, props: &str) -> String {
    format!("{{\"kind\":\"node\",\"id\":{id},\"labels\":[\"{label}\"],\"props\":{{{props}}}}}")
}

/// JSONL line for an edge.
pub fn edge_line(id: u64, src: u64, tgt: u64, label: &str) -> String {
    format!(
        "{{\"kind\":\"edge\",\"id\":{id},\"src\":{src},\"tgt\":{tgt},\"labels\":[\"{label}\"],\"props\":{{}}}}"
    )
}
