//! Shared helpers for the pg-serve integration suites.
//!
//! Each test binary compiles this module independently and uses a
//! different subset of it.
#![allow(dead_code)]

use pg_serve::{Client, RunSummary, Server, ServerConfig};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A server running on a background thread, stopped (gracefully) on
/// drop or via [`TestServer::stop`].
pub struct TestServer {
    pub addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<std::io::Result<RunSummary>>>,
}

impl TestServer {
    pub fn start(config: ServerConfig) -> TestServer {
        let shutdown = Arc::new(AtomicBool::new(false));
        let server = Server::bind(config, Arc::clone(&shutdown)).expect("bind test server");
        let addr = server.local_addr();
        let thread = std::thread::spawn(move || server.run());
        TestServer {
            addr,
            shutdown,
            thread: Some(thread),
        }
    }

    pub fn client(&self) -> Client {
        Client::new(self.addr)
    }

    /// Graceful shutdown; returns what the run did.
    pub fn stop(mut self) -> RunSummary {
        self.shutdown.store(true, Ordering::SeqCst);
        self.thread
            .take()
            .expect("server thread present")
            .join()
            .expect("server thread join")
            .expect("server run")
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// A unique scratch directory under the target tmpdir.
pub fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pg-serve-test-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// JSONL line for a node.
pub fn node_line(id: u64, label: &str, props: &str) -> String {
    format!("{{\"kind\":\"node\",\"id\":{id},\"labels\":[\"{label}\"],\"props\":{{{props}}}}}")
}

/// JSONL line for an edge.
pub fn edge_line(id: u64, src: u64, tgt: u64, label: &str) -> String {
    format!(
        "{{\"kind\":\"edge\",\"id\":{id},\"src\":{src},\"tgt\":{tgt},\"labels\":[\"{label}\"],\"props\":{{}}}}"
    )
}
