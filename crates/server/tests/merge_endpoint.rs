//! `POST /sessions/{id}/merge`: folding per-shard discovery states into
//! a live session — happy path, input validation, ETag movement, and
//! durable restart of merged state.

use pg_hive::{HiveConfig, PgHive, ShardState};
use pg_model::{LabelSet, Node, PropertyGraph, SchemaGraph};
use pg_serve::ServerConfig;

mod util;
use util::{node_line, scratch_dir, TestServer};

fn err_code(resp: &pg_serve::ClientResponse) -> String {
    resp.json()
        .ok()
        .and_then(|v| {
            v.get("error")
                .and_then(|e| e.get("code"))
                .and_then(|c| c.as_str())
                .map(str::to_owned)
        })
        .unwrap_or_default()
}

/// A shard state discovered offline, exactly as `pg-hive discover
/// --state-out` would produce: `n` Org nodes with a mandatory `url`.
fn org_shard_state(n: u64) -> String {
    labeled_shard_state("Org", n)
}

/// A shard state of `n` nodes labeled `label` with a mandatory `url`.
fn labeled_shard_state(label: &str, n: u64) -> String {
    let mut g = PropertyGraph::new();
    for i in 0..n {
        g.add_node(Node::new(i, LabelSet::single(label)).with_prop("url", i as i64))
            .unwrap();
    }
    let result = PgHive::new(HiveConfig::default()).discover_graph(&g);
    serde_json::to_string(&ShardState::from_state(&result.state)).unwrap()
}

#[test]
fn merge_folds_shard_state_and_moves_the_etag() {
    let server = TestServer::start(ServerConfig::default());
    let mut client = server.client();
    client.post("/sessions", br#"{"name":"m"}"#).unwrap();
    let resp = client
        .post(
            "/sessions/m/ingest",
            node_line(1, "Person", r#""age":{"Int":30}"#).as_bytes(),
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());

    let before = client.get("/sessions/m/schema").unwrap();
    let etag_before = before.header("etag").expect("ETag header").to_owned();

    let resp = client
        .post("/sessions/m/merge", org_shard_state(4).as_bytes())
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let v = resp.json().unwrap();
    assert_eq!(v.get("input").and_then(|i| i.as_str()), Some("shard_state"));
    assert_eq!(v.get("changed"), Some(&serde::Value::Bool(true)));
    assert_eq!(v.get("node_types"), Some(&serde::Value::U64(2)));

    // The merged type is served, and the ETag moved: a cached Person-only
    // schema must not survive the merge.
    let after = client.get("/sessions/m/schema").unwrap();
    let etag_after = after.header("etag").expect("ETag header").to_owned();
    assert_ne!(etag_before, etag_after);
    assert!(after.text().contains("Org"), "{}", after.text());
    assert!(after.text().contains("Person"), "{}", after.text());
    let resp = client
        .get_with_headers("/sessions/m/schema", &[("If-None-Match", &etag_before)])
        .unwrap();
    assert_eq!(resp.status, 200, "stale tag must refetch after a merge");

    // A bare schema (no accumulators) merges under the pessimistic
    // algebra; the empty schema is the merge identity.
    let empty = serde_json::to_string(&SchemaGraph::new()).unwrap();
    let resp = client.post("/sessions/m/merge", empty.as_bytes()).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let v = resp.json().unwrap();
    assert_eq!(v.get("input").and_then(|i| i.as_str()), Some("schema"));
    assert_eq!(v.get("changed"), Some(&serde::Value::Bool(false)));
}

#[test]
fn merge_rejects_malformed_bodies_and_unknown_sessions() {
    let server = TestServer::start(ServerConfig::default());
    let mut client = server.client();

    let resp = client
        .post("/sessions/ghost/merge", org_shard_state(2).as_bytes())
        .unwrap();
    assert_eq!(resp.status, 404);
    assert_eq!(err_code(&resp), "unknown_session");

    client.post("/sessions", br#"{"name":"m"}"#).unwrap();
    let resp = client.post("/sessions/m/merge", b"{not json").unwrap();
    assert_eq!(resp.status, 400, "{}", resp.text());
    assert_eq!(err_code(&resp), "bad_merge_input");

    // Valid JSON that is neither a shard state nor a schema.
    let resp = client.post("/sessions/m/merge", br#"{"foo":1}"#).unwrap();
    assert_eq!(resp.status, 400);
    assert_eq!(err_code(&resp), "bad_merge_input");

    let resp = client.post("/sessions/m/merge", &[0xff, 0xfe]).unwrap();
    assert_eq!(resp.status, 400);
    assert_eq!(err_code(&resp), "bad_request");

    // Rejected merges leave the session untouched.
    let resp = client.get("/sessions/m").unwrap();
    let v = resp.json().unwrap();
    assert_eq!(v.get("version"), Some(&serde::Value::U64(1)));
}

#[test]
fn concurrent_merges_serialize_to_a_deterministic_hash() {
    // Eight clients slam distinct shard states into one session at
    // once. Merges must serialize — every request succeeds, the version
    // counter advances once per merge — and the final schema must equal
    // the same states folded sequentially, in any order, on a second
    // server: the accumulator algebra is commutative, so interleaving
    // cannot change the outcome.
    let states: Vec<String> = (0..8)
        .map(|i| labeled_shard_state(&format!("Type{i}"), 3 + i))
        .collect();

    let server = TestServer::start(ServerConfig::default());
    let mut client = server.client();
    let resp = client.post("/sessions", br#"{"name":"cc"}"#).unwrap();
    assert_eq!(resp.status, 201, "{}", resp.text());
    let go = std::sync::Barrier::new(states.len());
    std::thread::scope(|scope| {
        for state in &states {
            let mut client = server.client();
            let go = &go;
            scope.spawn(move || {
                go.wait();
                let resp = client.post("/sessions/cc/merge", state.as_bytes()).unwrap();
                assert_eq!(resp.status, 200, "{}", resp.text());
            });
        }
    });
    let summary = client.get("/sessions/cc").unwrap().json().unwrap();
    // Version 1 is the freshly created empty session; every merge
    // introduces a new type, so each must bump the version exactly once.
    assert_eq!(
        summary.get("version"),
        Some(&serde::Value::U64(states.len() as u64 + 1)),
        "each merge must land exactly once"
    );
    let concurrent_hash = summary.get("hash").cloned();

    // Reference: the same states merged one at a time, reversed.
    let server = TestServer::start(ServerConfig::default());
    let mut client = server.client();
    client.post("/sessions", br#"{"name":"seq"}"#).unwrap();
    for state in states.iter().rev() {
        let resp = client
            .post("/sessions/seq/merge", state.as_bytes())
            .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
    }
    let reference = client.get("/sessions/seq").unwrap().json().unwrap();
    assert_eq!(
        concurrent_hash,
        reference.get("hash").cloned(),
        "concurrent and sequential merge orders must converge"
    );
    assert!(concurrent_hash.is_some());
}

#[test]
fn merged_state_survives_checkpoint_and_restart_bit_identically() {
    let dir = scratch_dir("merge-resume");
    let config = ServerConfig {
        state_dir: Some(dir.clone()),
        // Only the shutdown checkpoint persists, proving merged state
        // flows through the export path, not just the cadence path.
        checkpoint_every: 1000,
        ..ServerConfig::default()
    };
    let server = TestServer::start(config.clone());
    let mut client = server.client();
    let resp = client.post("/sessions", br#"{"name":"dm"}"#).unwrap();
    assert_eq!(resp.status, 201, "{}", resp.text());
    client
        .post(
            "/sessions/dm/ingest",
            node_line(1, "Person", r#""age":{"Int":30}"#).as_bytes(),
        )
        .unwrap();
    let resp = client
        .post("/sessions/dm/merge", org_shard_state(4).as_bytes())
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());

    let before = client.get("/sessions/dm").unwrap().json().unwrap();
    let schema_before = client.get("/sessions/dm/schema").unwrap().text();
    drop(client);
    let summary = server.stop();
    assert!(
        summary.persist_failures.is_empty(),
        "{:?}",
        summary.persist_failures
    );

    let server = TestServer::start(config);
    let mut client = server.client();
    let after = client.get("/sessions/dm").unwrap().json().unwrap();
    for field in ["batches", "nodes", "edges", "version", "hash"] {
        assert_eq!(
            after.get(field),
            before.get(field),
            "{field} drifted across restart"
        );
    }
    assert_eq!(
        client.get("/sessions/dm/schema").unwrap().text(),
        schema_before,
        "merged schema drifted across restart"
    );
    // The resumed session keeps accepting merges.
    let resp = client
        .post("/sessions/dm/merge", org_shard_state(4).as_bytes())
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let _ = std::fs::remove_dir_all(&dir);
}
