//! Protocol and concurrency battery for the event-driven serving
//! layer.
//!
//! Three layers of proof:
//!
//! 1. **Parser chunk-invariance** (proptest): the incremental
//!    [`HeadParser`] fed any partition of a byte stream — down to one
//!    byte at a time — produces exactly the head (or exactly the
//!    error) that one-shot parsing produces. This is the property that
//!    lets the epoll reactor suspend a parse across `EAGAIN` without a
//!    dedicated "resumable" code path ever diverging from the blocking
//!    one.
//! 2. **Wire-level protocol conduct** against a live server on both
//!    transports: requests split across many TCP writes, pipelined
//!    requests answered in order, slowloris connections killed by the
//!    timeout wheel, mid-body disconnects that must not poison the
//!    session.
//! 3. **Streaming-ingest semantics**: a body large enough to stream in
//!    bounded slices yields the same canonical schema hash as offline
//!    one-shot discovery, and per-session backpressure surfaces as
//!    503 + `Retry-After` without ever dropping an acknowledged batch.

use pg_hive::serialize::content_hash_hex;
use pg_hive::{HiveConfig, PgHive};
use pg_serve::client::read_response;
use pg_serve::http::HttpError;
use pg_serve::{HeadParser, RequestHead, ServerConfig, Transport};
use pg_store::jsonl::Element;
use pg_synth::{random_schema, synthesize, SchemaParams, SynthSpec};
use proptest::prelude::*;
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

mod util;
use util::TestServer;

fn config(transport: Transport) -> ServerConfig {
    ServerConfig {
        transport,
        ..ServerConfig::default()
    }
}

/// Feed `bytes` to a fresh parser as one slice. Returns the head plus
/// how many bytes the parser consumed, or the error.
fn parse_one_shot(bytes: &[u8]) -> Result<(Option<RequestHead>, usize), HttpError> {
    let mut p = HeadParser::new();
    let (consumed, head) = p.feed(bytes)?;
    Ok((head, consumed))
}

/// Feed `bytes` split at `cuts` (sorted offsets), chunk by chunk.
fn parse_chunked(bytes: &[u8], cuts: &[usize]) -> Result<(Option<RequestHead>, usize), HttpError> {
    let mut p = HeadParser::new();
    let mut consumed_total = 0;
    let mut start = 0;
    let bounds: Vec<usize> = cuts.iter().copied().chain([bytes.len()]).collect();
    for end in bounds {
        let chunk = &bytes[start..end];
        start = end;
        let (consumed, head) = p.feed(chunk)?;
        consumed_total += consumed;
        if let Some(h) = head {
            return Ok((Some(h), consumed_total));
        }
        // An incomplete parse must consume every byte it was given —
        // nothing buffers outside the parser.
        assert_eq!(consumed, chunk.len(), "incomplete parse left bytes behind");
    }
    Ok((None, consumed_total))
}

fn same_head(a: &RequestHead, b: &RequestHead) {
    assert_eq!(a.method, b.method);
    assert_eq!(a.path, b.path);
    assert_eq!(a.query, b.query);
    assert_eq!(a.headers, b.headers);
    assert_eq!(a.content_length, b.content_length);
    assert_eq!(a.keep_alive, b.keep_alive);
}

/// Error identity down to the variant (messages included for the
/// variants that carry one — they must not depend on chunking either).
fn same_error(a: &HttpError, b: &HttpError) {
    match (a, b) {
        (HttpError::BadRequest(ma), HttpError::BadRequest(mb)) => assert_eq!(ma, mb),
        (HttpError::UriTooLong, HttpError::UriTooLong) => {}
        (HttpError::HeaderTooLarge, HttpError::HeaderTooLarge) => {}
        (
            HttpError::PayloadTooLarge {
                limit: la,
                declared: da,
            },
            HttpError::PayloadTooLarge {
                limit: lb,
                declared: db,
            },
        ) => {
            assert_eq!(la, lb);
            assert_eq!(da, db);
        }
        (HttpError::NotImplemented(ma), HttpError::NotImplemented(mb)) => assert_eq!(ma, mb),
        (x, y) => panic!("divergent errors: {x:?} vs {y:?}"),
    }
}

/// A well-formed request (head + body bytes) with plausible variety.
fn valid_request() -> impl Strategy<Value = Vec<u8>> {
    (
        prop::sample::select(vec!["GET", "POST", "DELETE", "put"]),
        prop::collection::vec("[a-z0-9_]{1,12}", 1..4),
        prop::option::of(("[a-z]{1,6}", "[a-z0-9]{0,8}")),
        prop::collection::vec(("X-[A-Za-z]{1,14}", "[ -~]{0,24}"), 0..4),
        0usize..200,
        any::<bool>(),
    )
        .prop_map(
            |(method, segs, query, extra_headers, body_len, keep_alive)| {
                let mut target = format!("/{}", segs.join("/"));
                if let Some((k, v)) = &query {
                    target.push_str(&format!("?{k}={v}"));
                }
                let mut req = format!("{method} {target} HTTP/1.1\r\nHost: x\r\n");
                for (name, value) in &extra_headers {
                    req.push_str(&format!("{name}: {value}\r\n"));
                }
                if body_len > 0 {
                    req.push_str(&format!("Content-Length: {body_len}\r\n"));
                }
                if !keep_alive {
                    req.push_str("Connection: close\r\n");
                }
                req.push_str("\r\n");
                let mut bytes = req.into_bytes();
                bytes.extend(std::iter::repeat_n(b'x', body_len));
                bytes
            },
        )
}

/// Sorted unique cut offsets inside `len` bytes.
fn cuts_for(len: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..len.max(1), 0..24).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any chunk partition of a valid request parses to the identical
    /// head, consuming the identical byte count.
    #[test]
    fn head_parser_is_chunk_invariant(req in valid_request(), seed in any::<u64>()) {
        let cuts: Vec<usize> = (0..req.len())
            .filter(|i| (seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(*i as u32)) & 7 == 0)
            .collect();
        let (head_a, used_a) = parse_one_shot(&req).expect("valid request parses");
        let (head_b, used_b) = parse_chunked(&req, &cuts).expect("valid request parses chunked");
        let (head_a, head_b) = (head_a.expect("complete"), head_b.expect("complete"));
        same_head(&head_a, &head_b);
        prop_assert_eq!(used_a, used_b);
        // Byte-at-a-time — the most hostile partition of all.
        let every: Vec<usize> = (1..req.len()).collect();
        let (head_c, used_c) = parse_chunked(&req, &every).expect("byte-at-a-time parses");
        same_head(&head_a, &head_c.expect("complete"));
        prop_assert_eq!(used_a, used_c);
    }

    /// Arbitrary bytes — mostly garbage — fed under arbitrary
    /// partitions: the parser never panics, never loops, and reaches
    /// exactly the verdict (head, error, or still-incomplete) that
    /// one-shot parsing reaches.
    #[test]
    fn malformed_bytes_parse_identically_under_any_partition(
        bytes in prop::collection::vec(any::<u8>(), 0..300),
        cuts in cuts_for(300),
    ) {
        let cuts: Vec<usize> = cuts.into_iter().filter(|c| *c < bytes.len()).collect();
        let one = parse_one_shot(&bytes);
        let chunked = parse_chunked(&bytes, &cuts);
        match (one, chunked) {
            (Ok((None, a)), Ok((None, b))) => prop_assert_eq!(a, b),
            (Ok((Some(ha), a)), Ok((Some(hb), b))) => {
                same_head(&ha, &hb);
                prop_assert_eq!(a, b);
            }
            (Err(ea), Err(eb)) => same_error(&ea, &eb),
            (x, y) => {
                let x = x.map(|(h, n)| (h.is_some(), n));
                let y = y.map(|(h, n)| (h.is_some(), n));
                prop_assert!(false, "verdicts diverged: {:?} vs {:?}", x, y);
            }
        }
    }
}

/// Read exactly one HTTP response off a raw stream.
fn one_response(reader: &mut BufReader<TcpStream>) -> pg_serve::ClientResponse {
    read_response(reader).expect("response")
}

/// A request head is split across many small TCP writes with pauses:
/// the server must reassemble and answer normally. Exercises the
/// parser-resume path on the reactor and plain blocking reads on the
/// threaded transport.
fn split_writes_roundtrip(transport: Transport) {
    let server = TestServer::start(config(transport));
    let stream = TcpStream::connect(server.addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let body = br#"{"name":"split"}"#;
    let head = format!(
        "POST /sessions HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    let mut wire = head.into_bytes();
    wire.extend_from_slice(body);
    for chunk in wire.chunks(7) {
        (&stream).write_all(chunk).expect("write chunk");
        std::thread::sleep(Duration::from_millis(2));
    }
    let resp = one_response(&mut reader);
    assert_eq!(resp.status, 201, "{}", resp.text());

    // The connection stays usable for a follow-up request.
    (&stream)
        .write_all(b"GET /sessions/split HTTP/1.1\r\nHost: x\r\n\r\n")
        .expect("second request");
    let resp = one_response(&mut reader);
    assert_eq!(resp.status, 200, "{}", resp.text());
}

#[test]
fn split_writes_reassemble_on_epoll() {
    split_writes_roundtrip(Transport::Epoll);
}

#[test]
fn split_writes_reassemble_on_threaded() {
    split_writes_roundtrip(Transport::Threaded);
}

/// Several requests written back-to-back in one TCP segment must be
/// answered in order on the same connection.
fn pipelined_requests(transport: Transport) {
    let server = TestServer::start(config(transport));
    let mut admin = server.client();
    let resp = admin.post("/sessions", br#"{"name":"pipe"}"#).unwrap();
    assert_eq!(resp.status, 201);

    let stream = TcpStream::connect(server.addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let line = util::node_line(1, "A", r#""x":{"Int":1}"#);
    let mut wire = Vec::new();
    wire.extend_from_slice(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
    wire.extend_from_slice(
        format!(
            "POST /sessions/pipe/ingest HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{line}",
            line.len()
        )
        .as_bytes(),
    );
    wire.extend_from_slice(b"GET /sessions/pipe HTTP/1.1\r\nHost: x\r\n\r\n");
    wire.extend_from_slice(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
    (&stream).write_all(&wire).expect("pipelined write");

    let healthz = one_response(&mut reader);
    assert_eq!(healthz.status, 200);
    let ingest = one_response(&mut reader);
    assert_eq!(ingest.status, 200, "{}", ingest.text());
    let v = ingest.json().expect("ingest JSON");
    assert_eq!(v.get("nodes"), Some(&serde::Value::U64(1)));
    let summary = one_response(&mut reader);
    assert_eq!(summary.status, 200);
    assert!(summary.text().contains("\"pipe\""), "{}", summary.text());
    let metrics = one_response(&mut reader);
    assert_eq!(metrics.status, 200);
}

#[test]
fn pipelined_requests_answered_in_order_on_epoll() {
    pipelined_requests(Transport::Epoll);
}

#[test]
fn pipelined_requests_answered_in_order_on_threaded() {
    pipelined_requests(Transport::Threaded);
}

/// A connection that trickles a partial request head and then stalls
/// must be killed by the reactor's timer wheel, and counted.
#[test]
fn slowloris_connections_are_killed_by_the_timeout() {
    let server = TestServer::start(ServerConfig {
        read_timeout: Duration::from_millis(200),
        idle_timeout: Duration::from_millis(400),
        ..config(Transport::Epoll)
    });
    let stream = TcpStream::connect(server.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // A started-but-stalled request head: the *read* timeout applies.
    (&stream).write_all(b"GET /heal").expect("partial head");
    let started = Instant::now();
    let mut buf = [0u8; 256];
    let n = (&stream).read(&mut buf).expect("server closes, not us");
    assert_eq!(n, 0, "expected EOF, got {:?}", &buf[..n]);
    assert!(
        started.elapsed() < Duration::from_secs(8),
        "kill took {:?}",
        started.elapsed()
    );
    let rendered = server.metrics.render(&[]);
    let count: u64 = rendered
        .lines()
        .find_map(|l| l.strip_prefix("pg_serve_idle_timeouts_total "))
        .expect("idle timeout counter rendered")
        .trim()
        .parse()
        .expect("counter parses");
    assert!(count >= 1, "slowloris kill not counted:\n{rendered}");
}

/// An idle keep-alive connection (complete exchange, then silence) is
/// closed by the idle timeout rather than held forever.
#[test]
fn idle_keepalive_connections_are_reaped() {
    let server = TestServer::start(ServerConfig {
        read_timeout: Duration::from_millis(400),
        idle_timeout: Duration::from_millis(200),
        ..config(Transport::Epoll)
    });
    let stream = TcpStream::connect(server.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    (&stream)
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    let resp = one_response(&mut reader);
    assert_eq!(resp.status, 200);
    // Now say nothing. The server hangs up on us.
    let mut buf = [0u8; 16];
    let n = reader.read(&mut buf).expect("server closes");
    assert_eq!(n, 0, "expected EOF after idling");
}

/// Dropping a connection mid-body — including mid-*streaming*-body —
/// must leave the session usable: the next client ingests normally and
/// the discovery state answers queries.
#[test]
fn mid_body_disconnect_leaves_the_session_unpoisoned() {
    let server = TestServer::start(ServerConfig {
        stream_threshold: 1024,
        slice_bytes: 1024,
        read_timeout: Duration::from_millis(300),
        ..config(Transport::Epoll)
    });
    let mut admin = server.client();
    let resp = admin.post("/sessions", br#"{"name":"cut"}"#).unwrap();
    assert_eq!(resp.status, 201);

    // Buffered-path abort: small declared body, half sent, then drop.
    {
        let stream = TcpStream::connect(server.addr).expect("connect");
        (&stream)
            .write_all(
                b"POST /sessions/cut/ingest HTTP/1.1\r\nHost: x\r\nContent-Length: 100\r\n\r\nhalf",
            )
            .unwrap();
        drop(stream);
    }
    // Streaming-path abort: large declared body, a few complete lines
    // plus a torn line, then drop. Whatever full slices landed are
    // applied; the tear itself must not wedge the session.
    {
        let stream = TcpStream::connect(server.addr).expect("connect");
        let lines: String = (0..40)
            .map(|i| util::node_line(i, "A", r#""x":{"Int":1}"#) + "\n")
            .collect();
        let head = format!(
            "POST /sessions/cut/ingest HTTP/1.1\r\nHost: x\r\nContent-Length: 1000000\r\n\r\n{lines}{{\"kind\":\"nod"
        );
        (&stream).write_all(head.as_bytes()).unwrap();
        std::thread::sleep(Duration::from_millis(150));
        drop(stream);
    }

    // The session still ingests and answers.
    let line = util::node_line(999, "B", r#""y":{"Int":2}"#);
    let resp = admin
        .post("/sessions/cut/ingest", line.as_bytes())
        .expect("post after disconnects");
    assert_eq!(resp.status, 200, "{}", resp.text());
    let resp = admin.get("/sessions/cut/schema").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
}

/// Build the full JSONL serialization of a synthetic graph, nodes
/// before edges (so no forward references), as one newline-joined body,
/// plus the offline one-shot discovery hash of the same graph.
fn graph_body_and_offline_hash(seed: u64, size: usize) -> (String, String) {
    let schema = random_schema(&SchemaParams::default(), seed);
    let graph = synthesize(&SynthSpec::new(schema).sized_for(size), seed ^ 0x5eed).graph;
    let offline = PgHive::new(HiveConfig::default()).discover_graph(&graph);
    let expected = content_hash_hex(&offline.schema);
    let mut lines: Vec<String> = graph
        .nodes()
        .map(|n| serde_json::to_string(&Element::Node(n.clone())).expect("node"))
        .collect();
    lines.extend(
        graph
            .edges()
            .map(|e| serde_json::to_string(&Element::Edge(e.clone())).expect("edge")),
    );
    (lines.join("\n"), expected)
}

/// One large body streamed to the session in bounded slices must
/// produce exactly the schema hash of offline one-shot discovery.
#[test]
fn streamed_ingest_is_bit_identical_to_offline_discovery() {
    let (body, expected) = graph_body_and_offline_hash(7, 600);
    let server = TestServer::start(ServerConfig {
        stream_threshold: 4096,
        slice_bytes: 4096,
        ..config(Transport::Epoll)
    });
    assert!(
        body.len() > 4 * 4096,
        "body too small to exercise multiple slices"
    );
    let mut client = server.client();
    let resp = client.post("/sessions", br#"{"name":"stream"}"#).unwrap();
    assert_eq!(resp.status, 201);
    let resp = client
        .post("/sessions/stream/ingest", body.as_bytes())
        .expect("streamed ingest");
    assert_eq!(resp.status, 200, "{}", resp.text());
    let v = resp.json().expect("ingest JSON");
    let slices = match v.get("slices") {
        Some(serde::Value::U64(n)) => *n,
        other => panic!("streamed response missing slices: {other:?}"),
    };
    assert!(slices >= 2, "body should have been cut, got {slices} slice");
    assert_eq!(v.get("quarantined"), Some(&serde::Value::U64(0)), "{v:?}");

    let summary = client.get("/sessions/stream").unwrap().json().unwrap();
    let hash = summary.get("hash").and_then(|h| h.as_str()).unwrap();
    assert_eq!(hash, expected, "streamed schema diverged from offline");

    // The same body buffered whole (threshold above the body size, on
    // the same server it would stream — so use an atomic-batch marker)
    // agrees too: slicing is invisible in the result.
    let resp = client.post("/sessions", br#"{"name":"whole"}"#).unwrap();
    assert_eq!(resp.status, 201);
    let resp = client
        .request(
            "POST",
            "/sessions/whole/ingest",
            &[("X-Atomic-Batch", "1")],
            body.as_bytes(),
        )
        .expect("buffered ingest");
    assert_eq!(resp.status, 200, "{}", resp.text());
    let v = resp.json().expect("ingest JSON");
    assert!(v.get("slices").is_none(), "atomic batch must not slice");
    let summary = client.get("/sessions/whole").unwrap().json().unwrap();
    let hash = summary.get("hash").and_then(|h| h.as_str()).unwrap();
    assert_eq!(hash, expected, "buffered schema diverged from offline");
}

/// A full per-session ingest queue answers 503 with a parseable
/// `Retry-After`, recovers once permits free up, and loses none of the
/// batches it acknowledged.
fn backpressure_roundtrip(transport: Transport) {
    let (body, expected) = graph_body_and_offline_hash(11, 240);
    let server = TestServer::start(ServerConfig {
        session_queue: 2,
        ..config(transport)
    });
    let mut client = server.client();
    let resp = client.post("/sessions", br#"{"name":"bp"}"#).unwrap();
    assert_eq!(resp.status, 201);

    // Hold every permit the session has, exactly as in-flight ingests
    // would.
    let live = server.registry.get("bp").expect("session registered");
    let permits: Vec<_> = std::iter::from_fn(|| live.try_ingest_permit())
        .take(8)
        .collect();
    assert_eq!(permits.len(), 2, "session_queue=2 grants two permits");

    let resp = client
        .post("/sessions/bp/ingest", body.as_bytes())
        .expect("busy post");
    assert_eq!(resp.status, 503, "{}", resp.text());
    let retry_after: u64 = resp
        .header("retry-after")
        .expect("Retry-After on 503")
        .trim()
        .parse()
        .expect("delta-seconds Retry-After");
    assert!(retry_after >= 1);
    assert!(resp.text().contains("session_busy"), "{}", resp.text());

    // A rejected batch is *not* applied.
    let summary = client.get("/sessions/bp").unwrap().json().unwrap();
    assert_eq!(
        summary.get("batches"),
        Some(&serde::Value::U64(0)),
        "{summary:?}"
    );

    // Free the queue on a delay; a retrying client rides it out.
    let unblock = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        drop(permits);
    });
    let resp = client
        .post_with_retry("/sessions/bp/ingest", body.as_bytes(), 10)
        .expect("retrying post");
    unblock.join().unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());

    // Everything that was acknowledged — exactly one batch — is in the
    // discovery state: hash equals offline one-shot discovery.
    let summary = client.get("/sessions/bp").unwrap().json().unwrap();
    let hash = summary.get("hash").and_then(|h| h.as_str()).unwrap();
    assert_eq!(hash, expected, "acked batch lost or mangled");

    let rendered = server.metrics.render(&[]);
    let rejections: u64 = rendered
        .lines()
        .find_map(|l| l.strip_prefix("pg_serve_session_busy_rejections_total "))
        .expect("session busy counter rendered")
        .trim()
        .parse()
        .unwrap();
    assert!(rejections >= 1, "backpressure not counted:\n{rendered}");
}

#[test]
fn backpressure_503_recovers_without_losing_batches_on_epoll() {
    backpressure_roundtrip(Transport::Epoll);
}

#[test]
fn backpressure_503_recovers_without_losing_batches_on_threaded() {
    backpressure_roundtrip(Transport::Threaded);
}

/// Streaming admission takes a permit too: with the queue held, a
/// would-stream body is refused up front with 503 and the connection
/// closed (nothing was consumed, so the client can simply re-dial).
#[test]
fn streaming_admission_respects_backpressure() {
    let server = TestServer::start(ServerConfig {
        session_queue: 1,
        stream_threshold: 1024,
        slice_bytes: 1024,
        ..config(Transport::Epoll)
    });
    let mut client = server.client();
    let resp = client.post("/sessions", br#"{"name":"sbp"}"#).unwrap();
    assert_eq!(resp.status, 201);
    let live = server.registry.get("sbp").expect("session registered");
    let permit = live.try_ingest_permit().expect("only permit");

    let big: String = (0..200)
        .map(|i| util::node_line(i, "A", r#""x":{"Int":1}"#) + "\n")
        .collect();
    let resp = client
        .post("/sessions/sbp/ingest", big.as_bytes())
        .expect("rejected stream");
    assert_eq!(resp.status, 503, "{}", resp.text());
    assert!(resp.header("retry-after").is_some());

    drop(permit);
    let resp = client
        .post_with_retry("/sessions/sbp/ingest", big.as_bytes(), 5)
        .expect("retried stream");
    assert_eq!(resp.status, 200, "{}", resp.text());
}

/// Connections over the admission cap are refused with 503 and a
/// `Retry-After`, and the metric counts them.
#[test]
fn connection_limit_rejects_excess_connections() {
    let server = TestServer::start(ServerConfig {
        max_connections: 4,
        ..config(Transport::Epoll)
    });
    // Saturate the admission slots with idle keep-alive connections.
    let mut held = Vec::new();
    for _ in 0..4 {
        let stream = TcpStream::connect(server.addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        (&stream)
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let resp = one_response(&mut reader);
        assert_eq!(resp.status, 200);
        held.push(stream);
    }
    // The next connection must be turned away at the door.
    let stream = TcpStream::connect(server.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let resp = read_response(&mut reader).expect("rejection response");
    assert_eq!(resp.status, 503, "{}", resp.text());
    assert!(resp.header("retry-after").is_some());
    drop(held);

    let rendered = server.metrics.render(&[]);
    let count: u64 = rendered
        .lines()
        .find_map(|l| l.strip_prefix("pg_serve_connection_limit_rejections_total "))
        .expect("limit counter rendered")
        .trim()
        .parse()
        .unwrap();
    assert!(count >= 1);
}
