//! Cluster-mode fault injection, end to end: three shard servers behind
//! a coordinator. A deterministic JSONL stream goes through the
//! coordinator while one shard is killed mid-stream; reads must stay
//! available (HTTP 200, `degraded: true`), acks must stay durable, and
//! after the shard restarts on the same port — empty, as after
//! `kill -9` — WAL replay must converge the merged cluster schema to
//! the exact content hash single-node discovery produces for the same
//! stream.

use pg_serve::{Client, ClusterConfig, ServerConfig, ShardClientConfig};
use std::time::{Duration, Instant};

mod util;
use util::{edge_line, node_line, scratch_dir, TestServer};

/// One deterministic JSONL batch: a mix of three node types and two
/// edge types, plus (in batch 2) a duplicate node and a dangling edge
/// the coordinator must police exactly like a single node would.
fn batch(b: u64) -> String {
    let mut lines = Vec::new();
    for i in 0..24u64 {
        let id = 100 * b + i;
        let (label, props) = match i % 3 {
            0 => ("Person", format!(r#""age":{{"Int":{}}}"#, 20 + i)),
            1 => ("Org", format!(r#""url":{{"Int":{id}}}"#)),
            _ => ("Place", format!(r#""lat":{{"Int":{i}}}"#)),
        };
        let props = if i % 6 == 0 {
            format!(r#"{props},"email":{{"Int":{id}}}"#)
        } else {
            props
        };
        lines.push(node_line(id, label, &props));
    }
    for i in 0..12u64 {
        let id = 50_000 + 100 * b + i;
        let src = 100 * b + (i % 24);
        let tgt = 100 * b + ((i * 7 + 3) % 24);
        let label = if i % 2 == 0 { "KNOWS" } else { "WORKS_AT" };
        lines.push(edge_line(id, src, tgt, label));
    }
    if b == 2 {
        lines.push(node_line(200, "Person", r#""age":{"Int":1}"#));
        lines.push(edge_line(99_999, 0, 999_999, "KNOWS"));
    }
    lines.join("\n")
}

/// The content hash a single pg-serve session reports after ingesting
/// batches `0..n` of the stream.
fn single_node_hash(n: u64) -> String {
    let solo = TestServer::start(ServerConfig::default());
    let mut client = solo.client();
    let resp = client.post("/sessions", br#"{"name":"solo"}"#).unwrap();
    assert_eq!(resp.status, 201, "{}", resp.text());
    for b in 0..n {
        let resp = client
            .post("/sessions/solo/ingest", batch(b).as_bytes())
            .unwrap();
        assert_eq!(resp.status, 200, "batch {b}: {}", resp.text());
    }
    let summary = client.get("/sessions/solo").unwrap().json().unwrap();
    summary
        .get("hash")
        .and_then(|h| h.as_str())
        .expect("session summary carries a hash")
        .to_owned()
}

fn shard_config(addr: std::net::SocketAddr) -> ServerConfig {
    ServerConfig {
        addr,
        // Short read timeout so a dying shard's keep-alive workers
        // drain quickly instead of pinning the port.
        read_timeout: Duration::from_millis(250),
        ..ServerConfig::default()
    }
}

fn coordinator_config(shards: &[String], wal_dir: std::path::PathBuf) -> ServerConfig {
    ServerConfig {
        cluster: Some(ClusterConfig {
            shards: shards.to_vec(),
            wal_dir,
            heartbeat: Duration::from_millis(100),
            failure_threshold: 2,
            breaker_open_ms: 300,
            client: ShardClientConfig {
                connect_timeout: Duration::from_millis(300),
                io_timeout: Duration::from_secs(2),
                max_retries: 1,
                backoff_base_ms: 10,
                backoff_cap_ms: 100,
            },
            ..ClusterConfig::default()
        }),
        ..ServerConfig::default()
    }
}

fn get_json(client: &mut Client, path: &str) -> serde::Value {
    let resp = client.get(path).unwrap();
    assert_eq!(resp.status, 200, "{path}: {}", resp.text());
    resp.json().unwrap()
}

#[test]
fn kill_recover_replay_converges_to_the_single_node_hash() {
    const BATCHES: u64 = 6;
    let expected = single_node_hash(BATCHES);

    let shards: Vec<TestServer> = (0..3)
        .map(|_| TestServer::start(shard_config("127.0.0.1:0".parse().unwrap())))
        .collect();
    let shard_urls: Vec<String> = shards.iter().map(|s| s.addr.to_string()).collect();
    let wal_dir = scratch_dir("cluster-e2e-wal");
    let coordinator = TestServer::start(coordinator_config(&shard_urls, wal_dir.clone()));
    let mut client = coordinator.client();

    // Healthy phase: the first batches flow through every shard.
    for b in 0..2 {
        let v = get_json(&mut client, "/cluster/health");
        let _ = v;
        let resp = client.post("/ingest", batch(b).as_bytes()).unwrap();
        assert_eq!(resp.status, 200, "batch {b}: {}", resp.text());
        let v = resp.json().unwrap();
        assert_eq!(v.get("durable"), Some(&serde::Value::Bool(true)));
    }
    // A read now caches every shard's state for later degraded reads.
    let view = get_json(&mut client, "/schema");
    assert_eq!(view.get("degraded"), Some(&serde::Value::Bool(false)));

    // Kill shard 1: no state dir, so its sessions die with it — the
    // in-process stand-in for `kill -9`.
    let victim_addr = shards[1].addr;
    let mut shards = shards;
    let victim = shards.remove(1);
    drop(victim);

    // Mid-outage ingest: acks must keep coming (WAL-durable), and the
    // quarantine-carrying batch must report single-node semantics.
    for b in 2..BATCHES {
        let resp = client.post("/ingest", batch(b).as_bytes()).unwrap();
        assert_eq!(resp.status, 200, "batch {b}: {}", resp.text());
        let v = resp.json().unwrap();
        assert_eq!(v.get("durable"), Some(&serde::Value::Bool(true)));
        if b == 2 {
            assert_eq!(
                v.get("quarantined"),
                Some(&serde::Value::U64(2)),
                "duplicate node + dangling edge: {}",
                resp.text()
            );
        }
    }

    // Mid-outage read: 200 + degraded, never a 500.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let view = get_json(&mut client, "/schema");
        if view.get("degraded") == Some(&serde::Value::Bool(true)) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "schema reads never went degraded during the outage"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    let health = get_json(&mut client, "/cluster/health");
    assert_eq!(
        health.get("status").and_then(|v| v.as_str()),
        Some("degraded"),
        "{health:?}"
    );

    // Recovery: restart the shard on its old port, empty. The
    // coordinator's heartbeat must notice, recreate the cluster
    // session, and replay the shard's whole WAL.
    let revived = TestServer::start_rebinding(shard_config(victim_addr), Duration::from_secs(10));
    assert_eq!(revived.addr, victim_addr);
    shards.push(revived);

    let deadline = Instant::now() + Duration::from_secs(20);
    let final_hash = loop {
        let view = get_json(&mut client, "/schema");
        let degraded = view.get("degraded") == Some(&serde::Value::Bool(true));
        let hash = view
            .get("hash")
            .and_then(|h| h.as_str())
            .unwrap_or_default()
            .to_owned();
        if !degraded && hash == expected {
            break hash;
        }
        assert!(
            Instant::now() < deadline,
            "no convergence: degraded={degraded}, hash={hash}, expected={expected}"
        );
        std::thread::sleep(Duration::from_millis(150));
    };
    assert_eq!(final_hash, expected);

    // The replay is visible in the metrics, and health is green again.
    let resp = client.get("/metrics").unwrap();
    let metrics = resp.text();
    let replayed: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("pg_cluster_wal_replayed_records_total "))
        .and_then(|v| v.trim().parse().ok())
        .expect("replay counter present");
    assert!(replayed > 0, "recovery must have replayed WAL records");
    let health = get_json(&mut client, "/cluster/health");
    assert_eq!(
        health.get("status").and_then(|v| v.as_str()),
        Some("ok"),
        "{health:?}"
    );

    let _ = std::fs::remove_dir_all(&wal_dir);
}

#[test]
fn idle_cluster_heals_a_shard_killed_after_the_stream_ended() {
    // The nastier timing: the shard dies AFTER the whole stream is
    // delivered, and no further ingest ever arrives. Recovery must be
    // driven entirely by the heartbeat — it has to notice the restarted
    // shard's durable batch count regressed below the delivered
    // watermark and replay the WAL unprompted. (A watermark cached from
    // before the kill says "nothing pending"; trusting it silently
    // drops the shard's whole share of the data from every read.)
    const BATCHES: u64 = 4;
    let expected = single_node_hash(BATCHES);

    let shards: Vec<TestServer> = (0..3)
        .map(|_| TestServer::start(shard_config("127.0.0.1:0".parse().unwrap())))
        .collect();
    let shard_urls: Vec<String> = shards.iter().map(|s| s.addr.to_string()).collect();
    let wal_dir = scratch_dir("cluster-e2e-idle-wal");
    let coordinator = TestServer::start(coordinator_config(&shard_urls, wal_dir.clone()));
    let mut client = coordinator.client();

    for b in 0..BATCHES {
        let resp = client.post("/ingest", batch(b).as_bytes()).unwrap();
        assert_eq!(resp.status, 200, "batch {b}: {}", resp.text());
    }
    let view = get_json(&mut client, "/schema");
    assert_eq!(view.get("hash").and_then(|h| h.as_str()), Some(&*expected));

    // Only now kill a shard, and restart it empty on the same port.
    let victim_addr = shards[0].addr;
    let mut shards = shards;
    let victim = shards.remove(0);
    drop(victim);
    let revived = TestServer::start_rebinding(shard_config(victim_addr), Duration::from_secs(10));
    shards.push(revived);

    // No ingest from here on: the heartbeat alone must re-deliver.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let view = get_json(&mut client, "/schema");
        let degraded = view.get("degraded") == Some(&serde::Value::Bool(true));
        let hash = view
            .get("hash")
            .and_then(|h| h.as_str())
            .unwrap_or_default();
        if !degraded && hash == expected {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "idle recovery never converged: degraded={degraded}, hash={hash}, expected={expected}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    let _ = std::fs::remove_dir_all(&wal_dir);
}

#[test]
fn wiping_a_durable_shards_state_dir_is_flagged_as_permanent_loss() {
    // A durable shard lets the coordinator trim its WAL below the
    // shard's checkpoint — from then on the shard's state dir is part
    // of the cluster's data. Restarting such a shard with a wiped
    // state dir loses the trimmed prefix for good. The coordinator
    // cannot get it back, but it must say so: schema reads stay
    // degraded and health reports the shard as `data_loss` with the
    // missing record count, instead of converging to a silently wrong
    // hash with `degraded: false`.
    let state_dir = scratch_dir("cluster-e2e-wipe-state");
    let durable_shard = |addr: std::net::SocketAddr| ServerConfig {
        state_dir: Some(state_dir.clone()),
        checkpoint_every: 1,
        ..shard_config(addr)
    };
    let shard = TestServer::start(durable_shard("127.0.0.1:0".parse().unwrap()));
    let addr = shard.addr;
    let wal_dir = scratch_dir("cluster-e2e-wipe-wal");
    let mut config = coordinator_config(&[addr.to_string()], wal_dir.clone());
    if let Some(c) = config.cluster.as_mut() {
        c.spec.checkpoint_every = 1;
    }
    let coordinator = TestServer::start(config);
    let mut client = coordinator.client();

    for b in 0..4 {
        let resp = client.post("/ingest", batch(b).as_bytes()).unwrap();
        assert_eq!(resp.status, 200, "batch {b}: {}", resp.text());
    }

    // Wait for a heartbeat to trim the WAL against the shard's durable
    // checkpoint. Every batch above was acked, so the log started out
    // non-empty; once the first retained record climbs above seq 0 —
    // or the log empties entirely (checkpoint lag zero) — the prefix
    // is gone from disk.
    let wal_path = wal_dir.join("shard-00.wal");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let bytes = std::fs::read(&wal_path).unwrap_or_default();
        let trimmed = bytes.is_empty()
            || String::from_utf8_lossy(&bytes)
                .lines()
                .next()
                .and_then(|l| l.split(' ').find_map(|p| p.strip_prefix("seq=")))
                .and_then(|v| v.parse::<u64>().ok())
                .is_some_and(|s| s > 0);
        if trimmed {
            break;
        }
        assert!(Instant::now() < deadline, "WAL was never trimmed");
        std::thread::sleep(Duration::from_millis(100));
    }

    // The operator error: kill the shard AND wipe its state dir, then
    // restart it on the old port.
    drop(shard);
    std::fs::remove_dir_all(&state_dir).unwrap();
    let revived = TestServer::start_rebinding(durable_shard(addr), Duration::from_secs(10));

    // The coordinator replays what the WAL still holds, but the
    // trimmed prefix is unrecoverable — and that must be visible.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let health = get_json(&mut client, "/cluster/health");
        let row = health
            .get("shards")
            .and_then(|s| s.as_array())
            .and_then(|s| s.first())
            .expect("one shard row");
        let lost = row
            .get("lost_records")
            .and_then(|v| match v {
                serde::Value::U64(n) => Some(*n),
                _ => None,
            })
            .unwrap_or(0);
        if lost > 0 {
            assert_eq!(
                row.get("status").and_then(|v| v.as_str()),
                Some("data_loss"),
                "{health:?}"
            );
            assert_eq!(
                health.get("status").and_then(|v| v.as_str()),
                Some("degraded"),
                "{health:?}"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "loss was never reported: {health:?}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    let view = get_json(&mut client, "/schema");
    assert_eq!(
        view.get("degraded"),
        Some(&serde::Value::Bool(true)),
        "an irrecoverably partial view must never read as complete"
    );

    // Life goes on after the loss: new ingest lands at WAL seqs above
    // the lost prefix while the wiped shard numbers its batches from
    // zero again. Watermarks are tracked in WAL seq space, with the
    // shard's batch numbering lagging by the lost offset — the shard's
    // durable batch count plus the lost prefix must equal the delivered
    // watermark and the backlog must drain. If delivery conflated the
    // two numberings, the fresh records would be re-sent every
    // heartbeat (inflating the shard's quarantine) and the backlog
    // would never read as drained.
    let resp = client.post("/ingest", batch(4).as_bytes()).unwrap();
    assert_eq!(resp.status, 200, "post-recovery ingest: {}", resp.text());
    let row_u64 = |row: &serde::Value, key: &str| -> u64 {
        row.get(key)
            .and_then(|v| match v {
                serde::Value::U64(n) => Some(*n),
                _ => None,
            })
            .unwrap_or(0)
    };
    let mut shard_client = revived.client();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let health = get_json(&mut client, "/cluster/health");
        let row = health
            .get("shards")
            .and_then(|s| s.as_array())
            .and_then(|s| s.first())
            .expect("one shard row")
            .clone();
        let batches = {
            let resp = shard_client.get("/sessions/cluster").unwrap();
            if resp.status == 200 {
                row_u64(&resp.json().unwrap(), "batches")
            } else {
                0
            }
        };
        if batches > 0
            && row_u64(&row, "wal_pending") == 0
            && batches + row_u64(&row, "lost_records") == row_u64(&row, "delivered")
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "seq-space watermark invariant never settled: \
             shard batches={batches}, row={row:?}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    let metrics = coordinator.client().get("/metrics").unwrap().text();
    assert!(
        metrics.contains("pg_cluster_shard_lost_records"),
        "loss gauge missing from /metrics"
    );

    drop(revived);
    let _ = std::fs::remove_dir_all(&wal_dir);
    let _ = std::fs::remove_dir_all(&state_dir);
}

#[test]
fn coordinator_restart_replays_its_own_wal() {
    // The coordinator itself dying mid-delivery must not lose acked
    // batches either: its WALs are on disk, and a fresh coordinator
    // process replays them to the shards it never delivered to.
    let shard = TestServer::start(shard_config("127.0.0.1:0".parse().unwrap()));
    let shard_urls = vec![shard.addr.to_string()];
    let wal_dir = scratch_dir("cluster-e2e-coord-wal");

    // First coordinator: shard is up but we never let delivery finish —
    // point the coordinator at a dead port so every batch parks in the
    // WAL, acked but undelivered.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let first = TestServer::start(coordinator_config(
        std::slice::from_ref(&dead),
        wal_dir.clone(),
    ));
    let mut client = first.client();
    for b in 0..3 {
        let resp = client.post("/ingest", batch(b).as_bytes()).unwrap();
        assert_eq!(resp.status, 200, "batch {b}: {}", resp.text());
    }
    drop(client);
    drop(first);

    // Second coordinator: same WAL dir, now pointing at the live shard
    // (in production: the shard came back under its old address). The
    // heartbeat replays everything the first coordinator acked.
    let second = TestServer::start(coordinator_config(&shard_urls, wal_dir.clone()));
    let mut client = second.client();
    let expected = single_node_hash(3);
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let view = get_json(&mut client, "/schema");
        let degraded = view.get("degraded") == Some(&serde::Value::Bool(true));
        let hash = view
            .get("hash")
            .and_then(|h| h.as_str())
            .unwrap_or_default();
        if !degraded && hash == expected {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no convergence after coordinator restart: degraded={degraded}, \
             hash={hash}, expected={expected}"
        );
        std::thread::sleep(Duration::from_millis(150));
    }
    let _ = std::fs::remove_dir_all(&wal_dir);
}
