//! End-to-end bit-identity: a graph split into batches and pushed by
//! several *concurrent* HTTP clients must yield exactly the schema the
//! offline pipeline discovers in one shot — same canonical content
//! hash, regardless of how the batches interleave on the wire.
//!
//! This is the server-side counterpart of `crates/core/tests/`
//! `equivalence.rs`: structural equality does not survive batching
//! (cluster ids depend on arrival order), but the canonical content
//! hash erases exactly those incidental differences.

use pg_hive::serialize::content_hash_hex;
use pg_hive::{HiveConfig, PgHive};
use pg_serve::ServerConfig;
use pg_store::jsonl::Element;
use pg_synth::{random_schema, synthesize, SchemaParams, SynthSpec};
use proptest::prelude::*;
use std::sync::{Arc, Barrier};

mod util;
use util::TestServer;

/// One JSONL body per client per phase: round-robin the lines across
/// `clients` buckets, then cut each bucket into `batches` bodies.
fn deal(lines: &[String], clients: usize, batches: usize) -> Vec<Vec<String>> {
    let mut per_client: Vec<Vec<String>> = vec![Vec::new(); clients];
    for (i, line) in lines.iter().enumerate() {
        per_client[i % clients].push(line.clone());
    }
    per_client
        .into_iter()
        .map(|mine| {
            let chunk = mine.len().div_ceil(batches).max(1);
            mine.chunks(chunk).map(|c| c.join("\n")).collect()
        })
        .collect()
}

fn ingest_concurrently(server: &TestServer, session: &str, bodies: Vec<Vec<String>>) {
    let barrier = Arc::new(Barrier::new(bodies.len()));
    let threads: Vec<_> = bodies
        .into_iter()
        .map(|mine| {
            let mut client = server.client();
            let path = format!("/sessions/{session}/ingest");
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for body in mine {
                    let resp = client.post(&path, body.as_bytes()).expect("ingest");
                    assert_eq!(resp.status, 200, "{}", resp.text());
                    let v = resp.json().expect("ingest response JSON");
                    assert_eq!(
                        v.get("quarantined"),
                        Some(&serde::Value::U64(0)),
                        "clean synthetic data must not quarantine: {v:?}"
                    );
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
}

fn concurrent_ingest_matches_offline(seed: u64, clients: usize, batches: usize) {
    let schema = random_schema(&SchemaParams::default(), seed);
    let graph = synthesize(&SynthSpec::new(schema).sized_for(240), seed ^ 0x5eed).graph;

    // Ground truth: one-shot offline discovery with the same (default)
    // configuration the server gives new sessions.
    let offline = PgHive::new(HiveConfig::default()).discover_graph(&graph);
    let expected = content_hash_hex(&offline.schema);

    // Nodes and edges serialize to independent line sets; edges go in a
    // second phase so no batch ever references a node the server has
    // not met (which would quarantine it and change the input).
    let node_lines: Vec<String> = graph
        .nodes()
        .map(|n| serde_json::to_string(&Element::Node(n.clone())).expect("serialize node"))
        .collect();
    let edge_lines: Vec<String> = graph
        .edges()
        .map(|e| serde_json::to_string(&Element::Edge(e.clone())).expect("serialize edge"))
        .collect();

    let server = TestServer::start(ServerConfig::default());
    let mut admin = server.client();
    let resp = admin.post("/sessions", br#"{"name":"equiv"}"#).unwrap();
    assert_eq!(resp.status, 201, "{}", resp.text());

    ingest_concurrently(&server, "equiv", deal(&node_lines, clients, batches));
    if !edge_lines.is_empty() {
        ingest_concurrently(&server, "equiv", deal(&edge_lines, clients, batches));
    }

    let summary = admin.get("/sessions/equiv").unwrap().json().unwrap();
    let server_hash = summary
        .get("hash")
        .and_then(|h| h.as_str())
        .expect("hash in summary")
        .to_owned();
    assert_eq!(
        server_hash, expected,
        "HTTP-batched schema diverged from one-shot discovery (seed {seed}, \
         {clients} clients × {batches} batches)"
    );

    // The schema endpoint agrees with itself: the ETag embeds the same
    // hash the summary reported.
    let resp = admin.get("/sessions/equiv/schema").unwrap();
    assert_eq!(resp.status, 200);
    let etag = resp.header("etag").expect("ETag").to_owned();
    assert!(etag.contains(&expected), "ETag {etag} vs hash {expected}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn concurrent_http_ingest_is_bit_identical_to_offline_discovery(
        seed in 0u64..10_000,
        batches in 1usize..4,
    ) {
        concurrent_ingest_matches_offline(seed, 4, batches);
    }
}

/// A pinned non-random instance of the same property, so plain
/// `cargo test` exercises the four-client path even if proptest is
/// filtered out.
#[test]
fn four_clients_seed_42() {
    concurrent_ingest_matches_offline(42, 4, 2);
}

/// The 10k-connections claim, scaled to a test: 1024 keep-alive
/// connections held open simultaneously against the epoll reactor,
/// each ingesting its share of the graph, interleaved by 8 driver
/// threads. The discovered schema must still be bit-identical to
/// one-shot offline discovery, and the server must actually have held
/// all the connections at once (worker-pool transports cannot — each
/// parked keep-alive connection would pin a thread, which is the
/// reason the reactor exists).
#[test]
fn thousand_keepalive_connections_interleave_without_divergence() {
    const CONNS: usize = 1024;
    const THREADS: usize = 8;
    pg_serve::raise_nofile_limit();

    let schema = random_schema(&SchemaParams::default(), 77);
    let graph = synthesize(&SynthSpec::new(schema).sized_for(1200), 77 ^ 0x5eed).graph;
    let offline = PgHive::new(HiveConfig::default()).discover_graph(&graph);
    let expected = content_hash_hex(&offline.schema);

    let node_lines: Vec<String> = graph
        .nodes()
        .map(|n| serde_json::to_string(&Element::Node(n.clone())).expect("serialize node"))
        .collect();
    let edge_lines: Vec<String> = graph
        .edges()
        .map(|e| serde_json::to_string(&Element::Edge(e.clone())).expect("serialize edge"))
        .collect();
    // One bucket per connection; many buckets are tiny or empty — an
    // empty batch must be as harmless over 1024 wires as over 4.
    let deal_into = |lines: &[String]| -> Vec<String> {
        let mut buckets = vec![Vec::new(); CONNS];
        for (i, line) in lines.iter().enumerate() {
            buckets[i % CONNS].push(line.clone());
        }
        buckets.into_iter().map(|b| b.join("\n")).collect()
    };
    let node_bodies = deal_into(&node_lines);
    let edge_bodies = deal_into(&edge_lines);

    // The reactor transport, explicitly: a worker-pool transport would
    // wedge with 1024 parked connections and 4 workers.
    let server = TestServer::start(ServerConfig {
        transport: pg_serve::Transport::Epoll,
        ..ServerConfig::default()
    });
    let mut admin = server.client();
    let resp = admin.post("/sessions", br#"{"name":"swarm"}"#).unwrap();
    assert_eq!(resp.status, 201, "{}", resp.text());

    // Open every connection up front and keep each alive for the whole
    // run: clients pool their connection across requests.
    let mut clients: Vec<Vec<pg_serve::Client>> = (0..THREADS).map(|_| Vec::new()).collect();
    for i in 0..CONNS {
        clients[i % THREADS].push(server.client());
    }
    let mut per_thread_bodies: Vec<Vec<(usize, String, String)>> =
        (0..THREADS).map(|_| Vec::new()).collect();
    for i in 0..CONNS {
        per_thread_bodies[i % THREADS].push((i, node_bodies[i].clone(), edge_bodies[i].clone()));
    }

    // The main thread participates in every barrier so it can observe
    // the connection gauge at the moment all 1024 are provably open.
    let barrier = Arc::new(Barrier::new(THREADS + 1));
    let threads: Vec<_> = clients
        .into_iter()
        .zip(per_thread_bodies)
        .map(|(mut mine, bodies)| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                // Phase 1: every connection opens and ingests its node
                // share, staying open afterwards.
                barrier.wait();
                for (client, (i, nodes, _)) in mine.iter_mut().zip(&bodies) {
                    let resp = client
                        .post_with_retry("/sessions/swarm/ingest", nodes.as_bytes(), 10)
                        .unwrap_or_else(|e| panic!("conn {i} nodes: {e}"));
                    assert_eq!(resp.status, 200, "conn {i}: {}", resp.text());
                }
                // Phase 2 (all threads past phase 1, so every node is
                // known before any edge): the same — still-open —
                // connections ingest the edge share.
                barrier.wait();
                for (client, (i, _, edges)) in mine.iter_mut().zip(&bodies) {
                    let resp = client
                        .post_with_retry("/sessions/swarm/ingest", edges.as_bytes(), 10)
                        .unwrap_or_else(|e| panic!("conn {i} edges: {e}"));
                    assert_eq!(resp.status, 200, "conn {i}: {}", resp.text());
                    let v = resp.json().expect("ingest JSON");
                    assert_eq!(
                        v.get("quarantined"),
                        Some(&serde::Value::U64(0)),
                        "conn {i}: {v:?}"
                    );
                }
                // Hold connections until every thread is done with both
                // phases, so the peak is genuinely CONNS simultaneous.
                barrier.wait();
            })
        })
        .collect();
    barrier.wait(); // start
    barrier.wait(); // phase 1 complete: every connection has opened
                    // All 1024 keep-alive connections are simultaneously open right
                    // now — every thread is at (or headed into) phase 2 and nothing
                    // has hung up.
    assert!(
        server.metrics.open_connections() >= CONNS as u64,
        "peak connections {} < {CONNS}",
        server.metrics.open_connections()
    );
    barrier.wait(); // release the swarm to hang up
    for t in threads {
        t.join().expect("driver thread");
    }

    let summary = admin.get("/sessions/swarm").unwrap().json().unwrap();
    let server_hash = summary
        .get("hash")
        .and_then(|h| h.as_str())
        .expect("hash in summary");
    assert_eq!(
        server_hash, expected,
        "1024-connection interleaved ingest diverged from one-shot discovery"
    );
}
