//! End-to-end bit-identity: a graph split into batches and pushed by
//! several *concurrent* HTTP clients must yield exactly the schema the
//! offline pipeline discovers in one shot — same canonical content
//! hash, regardless of how the batches interleave on the wire.
//!
//! This is the server-side counterpart of `crates/core/tests/`
//! `equivalence.rs`: structural equality does not survive batching
//! (cluster ids depend on arrival order), but the canonical content
//! hash erases exactly those incidental differences.

use pg_hive::serialize::content_hash_hex;
use pg_hive::{HiveConfig, PgHive};
use pg_serve::ServerConfig;
use pg_store::jsonl::Element;
use pg_synth::{random_schema, synthesize, SchemaParams, SynthSpec};
use proptest::prelude::*;
use std::sync::{Arc, Barrier};

mod util;
use util::TestServer;

/// One JSONL body per client per phase: round-robin the lines across
/// `clients` buckets, then cut each bucket into `batches` bodies.
fn deal(lines: &[String], clients: usize, batches: usize) -> Vec<Vec<String>> {
    let mut per_client: Vec<Vec<String>> = vec![Vec::new(); clients];
    for (i, line) in lines.iter().enumerate() {
        per_client[i % clients].push(line.clone());
    }
    per_client
        .into_iter()
        .map(|mine| {
            let chunk = mine.len().div_ceil(batches).max(1);
            mine.chunks(chunk).map(|c| c.join("\n")).collect()
        })
        .collect()
}

fn ingest_concurrently(server: &TestServer, session: &str, bodies: Vec<Vec<String>>) {
    let barrier = Arc::new(Barrier::new(bodies.len()));
    let threads: Vec<_> = bodies
        .into_iter()
        .map(|mine| {
            let mut client = server.client();
            let path = format!("/sessions/{session}/ingest");
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for body in mine {
                    let resp = client.post(&path, body.as_bytes()).expect("ingest");
                    assert_eq!(resp.status, 200, "{}", resp.text());
                    let v = resp.json().expect("ingest response JSON");
                    assert_eq!(
                        v.get("quarantined"),
                        Some(&serde::Value::U64(0)),
                        "clean synthetic data must not quarantine: {v:?}"
                    );
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
}

fn concurrent_ingest_matches_offline(seed: u64, clients: usize, batches: usize) {
    let schema = random_schema(&SchemaParams::default(), seed);
    let graph = synthesize(&SynthSpec::new(schema).sized_for(240), seed ^ 0x5eed).graph;

    // Ground truth: one-shot offline discovery with the same (default)
    // configuration the server gives new sessions.
    let offline = PgHive::new(HiveConfig::default()).discover_graph(&graph);
    let expected = content_hash_hex(&offline.schema);

    // Nodes and edges serialize to independent line sets; edges go in a
    // second phase so no batch ever references a node the server has
    // not met (which would quarantine it and change the input).
    let node_lines: Vec<String> = graph
        .nodes()
        .map(|n| serde_json::to_string(&Element::Node(n.clone())).expect("serialize node"))
        .collect();
    let edge_lines: Vec<String> = graph
        .edges()
        .map(|e| serde_json::to_string(&Element::Edge(e.clone())).expect("serialize edge"))
        .collect();

    let server = TestServer::start(ServerConfig::default());
    let mut admin = server.client();
    let resp = admin.post("/sessions", br#"{"name":"equiv"}"#).unwrap();
    assert_eq!(resp.status, 201, "{}", resp.text());

    ingest_concurrently(&server, "equiv", deal(&node_lines, clients, batches));
    if !edge_lines.is_empty() {
        ingest_concurrently(&server, "equiv", deal(&edge_lines, clients, batches));
    }

    let summary = admin.get("/sessions/equiv").unwrap().json().unwrap();
    let server_hash = summary
        .get("hash")
        .and_then(|h| h.as_str())
        .expect("hash in summary")
        .to_owned();
    assert_eq!(
        server_hash, expected,
        "HTTP-batched schema diverged from one-shot discovery (seed {seed}, \
         {clients} clients × {batches} batches)"
    );

    // The schema endpoint agrees with itself: the ETag embeds the same
    // hash the summary reported.
    let resp = admin.get("/sessions/equiv/schema").unwrap();
    assert_eq!(resp.status, 200);
    let etag = resp.header("etag").expect("ETag").to_owned();
    assert!(etag.contains(&expected), "ETag {etag} vs hash {expected}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn concurrent_http_ingest_is_bit_identical_to_offline_discovery(
        seed in 0u64..10_000,
        batches in 1usize..4,
    ) {
        concurrent_ingest_matches_offline(seed, 4, batches);
    }
}

/// A pinned non-random instance of the same property, so plain
/// `cargo test` exercises the four-client path even if proptest is
/// filtered out.
#[test]
fn four_clients_seed_42() {
    concurrent_ingest_matches_offline(42, 4, 2);
}
