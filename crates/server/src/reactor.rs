//! The event-driven transport: one reactor thread multiplexing every
//! connection over raw epoll, with CPU-bound work (routing, parsing,
//! incremental discovery) on the bounded worker pool.
//!
//! ## Shape
//!
//! The reactor owns a slab of [`Conn`] state machines keyed by
//! generation-tagged tokens (`idx | gen << 32`), so a completion for a
//! connection that died and whose slot was reused is discarded instead
//! of corrupting its successor. Level-triggered epoll with interest
//! toggling does the flow control: `EPOLLIN` is dropped while a request
//! is dispatched (pipelined bytes wait in the kernel buffer — bounded
//! memory per connection) and `EPOLLOUT` is armed only while response
//! bytes are queued.
//!
//! Workers never touch sockets. They run the routed handler (or one
//! ingest slice), then push a [`Completion`] down an mpsc channel and
//! poke the wake pipe — a nonblocking `UnixStream` pair the reactor
//! polls like any other fd. The same pipe is registered with the signal
//! handler so SIGINT interrupts `epoll_wait` immediately (glibc's
//! `signal()` means SA_RESTART, so without it shutdown would wait for
//! the next tick).
//!
//! Timeouts ride a coarse timer wheel (lazy deletion: entries are
//! re-validated against the connection's *actual* deadline when their
//! slot comes up, and rescheduled if the connection made progress).
//! Mid-request stalls get [`ServerConfig::read_timeout`] (slowloris
//! cutoff); idle keep-alive connections get the much longer
//! [`ServerConfig::idle_timeout`].
//!
//! [`ServerConfig::read_timeout`]: crate::ServerConfig::read_timeout
//! [`ServerConfig::idle_timeout`]: crate::ServerConfig::idle_timeout

use crate::conn::{Conn, ConnState, IngestStream};
use crate::http::{self, HeadParser, HttpError, Limits, RequestHead, Response};
use crate::pool::Pool;
use crate::registry::{IngestFailure, IngestPermit, IngestReport, LiveSession};
use crate::router::{self, Ctx};
use crate::shutdown;
use crate::Server;
use pg_store::ErrorPolicy;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

mod sys {
    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    /// Matches the kernel ABI: packed on x86-64, natural elsewhere.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn close(fd: i32) -> i32;
    }
}

/// epoll_wait timeout: bounds timer-wheel latency and (as a backstop)
/// shutdown-flag latency if the wake pipe is somehow full.
const TICK_MS: i32 = 50;
/// Timer wheel slot width.
const WHEEL_GRANULARITY: Duration = Duration::from_millis(100);
/// Timer wheel slots (horizon = slots × granularity; longer deadlines
/// hop: they re-validate and reschedule when their slot comes up).
const WHEEL_SLOTS: usize = 64;
/// Per-drive read budget, so one firehose connection cannot starve the
/// rest of the event loop.
const READ_BUDGET: usize = 256 * 1024;

const DATA_LISTENER: u64 = u64::MAX;
const DATA_WAKER: u64 = u64::MAX - 1;

fn token(idx: usize, gen: u32) -> u64 {
    idx as u64 | (u64::from(gen) << 32)
}

fn untoken(token: u64) -> (usize, u32) {
    ((token & 0xffff_ffff) as usize, (token >> 32) as u32)
}

/// Thin RAII epoll handle.
struct Epoll {
    fd: i32,
}

impl Epoll {
    fn new() -> io::Result<Epoll> {
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: i32, events: u32, data: u64) -> io::Result<()> {
        let mut ev = sys::EpollEvent { events, data };
        let rc = unsafe { sys::epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    fn add(&self, fd: i32, events: u32, data: u64) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, events, data)
    }

    fn modify(&self, fd: i32, events: u32, data: u64) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, events, data)
    }

    fn del(&self, fd: i32) -> io::Result<()> {
        // A dummy event keeps pre-2.6.9 kernel semantics happy.
        self.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0)
    }

    fn wait(&self, events: &mut [sys::EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let rc = unsafe {
            sys::epoll_wait(
                self.fd,
                events.as_mut_ptr(),
                events.len() as i32,
                timeout_ms,
            )
        };
        if rc < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        Ok(rc as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.fd);
        }
    }
}

/// Wake-pipe write half, cloned into every worker job. A full pipe is
/// fine — one pending byte is enough to wake the reactor, which drains
/// the completion channel exhaustively.
pub(crate) struct Waker(UnixStream);

impl Waker {
    fn wake(&self) {
        let _ = (&self.0).write(&[1u8]);
    }
}

/// What a worker hands back to the reactor.
pub(crate) enum Completion {
    /// A fully-buffered request was routed; here is the serialized
    /// response (metrics were recorded on the worker).
    Response {
        token: u64,
        bytes: Vec<u8>,
        keep_alive: bool,
    },
    /// One streaming-ingest slice was applied (or refused). Boxed: the
    /// report dwarfs the `Response` variant and completions sit in a
    /// channel.
    Slice {
        token: u64,
        result: Box<Result<IngestReport, IngestFailure>>,
    },
}

/// Generation-tagged connection slab. Slot reuse bumps the generation,
/// so tokens baked into in-flight pool jobs and timer entries can never
/// resolve to a different connection.
struct Slab {
    entries: Vec<Entry>,
    free: Vec<usize>,
    live: usize,
}

struct Entry {
    gen: u32,
    conn: Option<Conn>,
}

impl Slab {
    fn new() -> Slab {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    fn insert(&mut self, conn: Conn) -> (usize, u32) {
        self.live += 1;
        match self.free.pop() {
            Some(idx) => {
                let entry = &mut self.entries[idx];
                entry.conn = Some(conn);
                (idx, entry.gen)
            }
            None => {
                self.entries.push(Entry {
                    gen: 0,
                    conn: Some(conn),
                });
                (self.entries.len() - 1, 0)
            }
        }
    }

    fn get_mut(&mut self, idx: usize, gen: u32) -> Option<&mut Conn> {
        let entry = self.entries.get_mut(idx)?;
        if entry.gen != gen {
            return None;
        }
        entry.conn.as_mut()
    }

    fn remove(&mut self, idx: usize, gen: u32) -> Option<Conn> {
        let entry = self.entries.get_mut(idx)?;
        if entry.gen != gen {
            return None;
        }
        let conn = entry.conn.take()?;
        entry.gen = entry.gen.wrapping_add(1);
        self.free.push(idx);
        self.live -= 1;
        Some(conn)
    }

    fn tokens(&self) -> Vec<u64> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.conn.is_some())
            .map(|(i, e)| token(i, e.gen))
            .collect()
    }
}

/// Coarse hashed timer wheel with lazy deletion: at most one queued
/// entry per connection (`Conn::timer_queued`); when an entry's slot
/// comes up the connection's *current* deadline decides kill vs
/// reschedule.
struct TimerWheel {
    slots: Vec<Vec<u64>>,
    cursor: usize,
    last_tick: Instant,
}

impl TimerWheel {
    fn new(now: Instant) -> TimerWheel {
        TimerWheel {
            slots: vec![Vec::new(); WHEEL_SLOTS],
            cursor: 0,
            last_tick: now,
        }
    }

    fn schedule(&mut self, token: u64, deadline: Instant, now: Instant) {
        let delta = deadline.saturating_duration_since(now);
        let ticks = (delta.as_millis() / WHEEL_GRANULARITY.as_millis()) as usize + 1;
        let slot = (self.cursor + ticks.min(WHEEL_SLOTS - 1)) % WHEEL_SLOTS;
        self.slots[slot].push(token);
    }

    fn advance(&mut self, now: Instant, due: &mut Vec<u64>) {
        while now.duration_since(self.last_tick) >= WHEEL_GRANULARITY {
            self.last_tick += WHEEL_GRANULARITY;
            self.cursor = (self.cursor + 1) % WHEEL_SLOTS;
            due.append(&mut self.slots[self.cursor]);
        }
    }
}

/// Reactor knobs copied out of [`crate::ServerConfig`].
struct Tunables {
    max_connections: usize,
    queue: usize,
    read_timeout: Duration,
    idle_timeout: Duration,
    stream_threshold: usize,
    slice_bytes: usize,
}

/// Everything the per-connection state transitions need besides the
/// connection itself. Split from the slab/wheel so a borrowed `Conn`
/// and the services can coexist.
struct Services {
    epoll: Epoll,
    ctx: Arc<Ctx>,
    shutdown: Arc<AtomicBool>,
    limits: Limits,
    cfg: Tunables,
    pool: Pool,
    tx: Sender<Completion>,
    waker: Arc<Waker>,
}

/// Serve the bound listener with the epoll transport until shutdown;
/// returns total connections accepted. Called from [`Server::run`].
pub(crate) fn serve(server: &Server) -> io::Result<u64> {
    let epoll = Epoll::new()?;
    epoll.add(server.listener.as_raw_fd(), sys::EPOLLIN, DATA_LISTENER)?;
    let (wake_tx, wake_rx) = UnixStream::pair()?;
    wake_tx.set_nonblocking(true)?;
    wake_rx.set_nonblocking(true)?;
    epoll.add(wake_rx.as_raw_fd(), sys::EPOLLIN, DATA_WAKER)?;
    shutdown::register_signal_wake_fd(wake_tx.as_raw_fd());
    let (tx, rx) = std::sync::mpsc::channel();
    let mut reactor = Reactor {
        svc: Services {
            epoll,
            ctx: Arc::clone(&server.ctx),
            shutdown: Arc::clone(&server.shutdown),
            limits: Limits {
                max_body: server.config.max_body,
            },
            cfg: Tunables {
                max_connections: server.config.max_connections.max(1),
                queue: server.config.queue.max(1),
                read_timeout: server.config.read_timeout,
                idle_timeout: server.config.idle_timeout,
                stream_threshold: server.config.stream_threshold,
                slice_bytes: server.config.slice_bytes.max(1),
            },
            pool: Pool::new(server.config.workers, server.config.queue),
            tx,
            waker: Arc::new(Waker(wake_tx)),
        },
        slab: Slab::new(),
        wheel: TimerWheel::new(Instant::now()),
        rx,
        wake_rx,
        starved: Vec::new(),
        connections: 0,
        draining: false,
    };
    let result = reactor.event_loop(&server.listener);
    shutdown::clear_signal_wake_fd();
    // Count every surviving connection closed so the gauge returns to
    // zero, then drain the pool (drops any now-orphaned completions).
    for t in reactor.slab.tokens() {
        let (idx, gen) = untoken(t);
        reactor.close(idx, gen);
    }
    let Reactor { svc, .. } = reactor;
    svc.pool.shutdown();
    result
}

struct Reactor {
    svc: Services,
    slab: Slab,
    wheel: TimerWheel,
    rx: Receiver<Completion>,
    wake_rx: UnixStream,
    /// Streaming connections with a slice due while the pool was full;
    /// re-driven each loop iteration until the pool has room.
    starved: Vec<u64>,
    connections: u64,
    draining: bool,
}

impl Reactor {
    fn event_loop(&mut self, listener: &TcpListener) -> io::Result<u64> {
        let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; 1024];
        let mut drain_deadline = Instant::now();
        loop {
            let now = Instant::now();
            if !self.draining && self.svc.shutdown.load(Ordering::SeqCst) {
                self.draining = true;
                drain_deadline = now + self.svc.cfg.read_timeout + Duration::from_secs(3);
                let _ = self.svc.epoll.del(listener.as_raw_fd());
                self.begin_drain();
            }
            if self.draining && (self.slab.live == 0 || now >= drain_deadline) {
                break;
            }
            let n = self.svc.epoll.wait(&mut events, TICK_MS)?;
            let mut accept_ready = false;
            for ev in events.iter().take(n) {
                // Copy out of the (possibly packed) kernel struct.
                let data = ev.data;
                let bits = ev.events;
                match data {
                    DATA_LISTENER => accept_ready = true,
                    DATA_WAKER => self.drain_waker(),
                    t => {
                        let (idx, gen) = untoken(t);
                        let readable = bits & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0;
                        let fatal = bits & sys::EPOLLERR != 0;
                        self.drive(idx, gen, readable, fatal);
                    }
                }
            }
            while let Ok(completion) = self.rx.try_recv() {
                self.handle_completion(completion);
            }
            if !self.starved.is_empty() {
                let starved = std::mem::take(&mut self.starved);
                for t in starved {
                    let (idx, gen) = untoken(t);
                    self.drive(idx, gen, false, false);
                }
            }
            if accept_ready && !self.draining {
                self.accept_loop(listener);
            }
            self.expire_timers();
        }
        Ok(self.connections)
    }

    fn accept_loop(&mut self, listener: &TcpListener) {
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    self.connections += 1;
                    self.svc.ctx.metrics.connection_opened();
                    if self.slab.live >= self.svc.cfg.max_connections {
                        self.svc.ctx.metrics.connection_limit_rejection();
                        self.reject(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        self.svc.ctx.metrics.connection_closed();
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let now = Instant::now();
                    let (idx, gen) = self.slab.insert(Conn::new(stream, now));
                    let t = token(idx, gen);
                    let fd = {
                        let conn = self.slab.get_mut(idx, gen).expect("just inserted");
                        conn.interest = sys::EPOLLIN | sys::EPOLLRDHUP;
                        conn.timer_queued = true;
                        conn.stream.as_raw_fd()
                    };
                    if self
                        .svc
                        .epoll
                        .add(fd, sys::EPOLLIN | sys::EPOLLRDHUP, t)
                        .is_err()
                    {
                        self.slab.remove(idx, gen);
                        self.svc.ctx.metrics.connection_closed();
                        continue;
                    }
                    self.wheel.schedule(t, now + self.svc.cfg.idle_timeout, now);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // Transient per-connection accept errors (ECONNABORTED,
                // EMFILE, ...) must not kill the server.
                Err(_) => break,
            }
        }
    }

    /// Over the connection limit: best-effort 503 and drop. The socket
    /// is still blocking here; the response fits any socket buffer.
    fn reject(&self, mut stream: TcpStream) {
        let resp = Response::error(
            503,
            "too_many_connections",
            "connection limit reached; retry with backoff",
        )
        .with_header("Retry-After", "1");
        let _ = stream.set_nodelay(true);
        let _ = stream.write_all(&resp.to_bytes(false));
        self.svc.ctx.metrics.connection_closed();
    }

    fn drain_waker(&mut self) {
        let mut buf = [0u8; 256];
        loop {
            match (&self.wake_rx).read(&mut buf) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    /// Run one connection's state machine: read what's there, process
    /// until blocked, flush, resync epoll interest and its timer.
    fn drive(&mut self, idx: usize, gen: u32, readable: bool, fatal: bool) {
        let now = Instant::now();
        let svc = &self.svc;
        let Some(conn) = self.slab.get_mut(idx, gen) else {
            return;
        };
        let verdict = step(conn, svc, token(idx, gen), now, readable, fatal);
        match verdict {
            Verdict::Close => self.close(idx, gen),
            Verdict::Keep => {
                conn.compact();
                let interest = desired_interest(conn, svc.cfg.slice_bytes);
                if interest != conn.interest {
                    conn.interest = interest;
                    let fd = conn.stream.as_raw_fd();
                    let _ = svc.epoll.modify(fd, interest, token(idx, gen));
                }
                let hungry = stream_hungry(conn, svc.cfg.slice_bytes);
                if !conn.timer_queued {
                    conn.timer_queued = true;
                    let deadline = deadline_of(conn, &svc.cfg);
                    self.wheel.schedule(token(idx, gen), deadline, now);
                }
                if hungry {
                    self.starved.push(token(idx, gen));
                }
            }
        }
    }

    fn handle_completion(&mut self, completion: Completion) {
        let now = Instant::now();
        match completion {
            Completion::Response {
                token: t,
                bytes,
                keep_alive,
            } => {
                let (idx, gen) = untoken(t);
                let Some(conn) = self.slab.get_mut(idx, gen) else {
                    return;
                };
                conn.out.extend(bytes);
                conn.state = if keep_alive {
                    ConnState::Head(HeadParser::new())
                } else {
                    ConnState::Closing
                };
                conn.last_progress = now;
                self.drive(idx, gen, false, false);
            }
            Completion::Slice { token: t, result } => {
                let (idx, gen) = untoken(t);
                let Some(conn) = self.slab.get_mut(idx, gen) else {
                    return;
                };
                conn.last_progress = now;
                if let ConnState::Streaming(stream) = &mut conn.state {
                    match *result {
                        Ok(report) => stream.absorb(report),
                        Err(failure) => stream.fail(router::ingest_failure_response(&failure)),
                    }
                }
                self.drive(idx, gen, false, false);
            }
        }
    }

    fn expire_timers(&mut self) {
        let now = Instant::now();
        let mut due = Vec::new();
        self.wheel.advance(now, &mut due);
        for t in due {
            let (idx, gen) = untoken(t);
            let mut kill = false;
            {
                let Some(conn) = self.slab.get_mut(idx, gen) else {
                    continue;
                };
                conn.timer_queued = false;
                let deadline = deadline_of(conn, &self.svc.cfg);
                if now >= deadline {
                    kill = true;
                } else {
                    conn.timer_queued = true;
                    self.wheel.schedule(t, deadline, now);
                }
            }
            if kill {
                self.svc.ctx.metrics.idle_timeout();
                self.close(idx, gen);
            }
        }
    }

    /// Shutdown began: close idle keep-alive connections immediately.
    /// Busy ones answer their in-flight request with `Connection:
    /// close` (workers consult the shutdown flag) and mid-parse ones
    /// run into `read_timeout`, all inside the drain grace window.
    fn begin_drain(&mut self) {
        for t in self.slab.tokens() {
            let (idx, gen) = untoken(t);
            let idle = match self.slab.get_mut(idx, gen) {
                Some(conn) => {
                    conn.out_done()
                        && conn.pending_input() == 0
                        && matches!(&conn.state, ConnState::Head(p) if !p.started())
                }
                None => false,
            };
            if idle {
                self.close(idx, gen);
            }
        }
    }

    fn close(&mut self, idx: usize, gen: u32) {
        if let Some(conn) = self.slab.remove(idx, gen) {
            let _ = self.svc.epoll.del(conn.stream.as_raw_fd());
            self.svc.ctx.metrics.connection_closed();
            // Dropping the Conn closes the fd and releases any held
            // ingest permit.
        }
    }
}

enum Verdict {
    Keep,
    Close,
}

enum Flow {
    Continue,
    Blocked,
    Close,
}

fn step(
    conn: &mut Conn,
    svc: &Services,
    t: u64,
    now: Instant,
    readable: bool,
    fatal: bool,
) -> Verdict {
    if fatal {
        return Verdict::Close;
    }
    if readable && read_into(conn, now, svc.cfg.slice_bytes).is_err() {
        return Verdict::Close;
    }
    loop {
        match process_once(conn, svc, t, now) {
            Flow::Continue => {}
            Flow::Blocked => break,
            Flow::Close => return Verdict::Close,
        }
    }
    if flush(conn, now).is_err() {
        return Verdict::Close;
    }
    if conn.out_done() {
        if matches!(conn.state, ConnState::Closing) {
            return Verdict::Close;
        }
        // Peer half-closed at a clean request boundary and the last
        // response just flushed: nothing more can happen on this
        // connection, so close it now rather than at the idle timeout.
        if conn.read_closed && conn.pending_input() == 0 {
            if let ConnState::Head(parser) = &conn.state {
                if !parser.started() {
                    return Verdict::Close;
                }
            }
        }
    }
    Verdict::Keep
}

/// Pull whatever the socket has (bounded by [`READ_BUDGET`]) into the
/// connection buffer.
fn read_into(conn: &mut Conn, now: Instant, slice_bytes: usize) -> io::Result<()> {
    let mut scratch = [0u8; 16 * 1024];
    let mut total = 0usize;
    while conn.wants_read(slice_bytes) && total < READ_BUDGET {
        match conn.stream.read(&mut scratch) {
            Ok(0) => {
                conn.read_closed = true;
                conn.last_progress = now;
                break;
            }
            Ok(n) => {
                conn.buf.extend_from_slice(&scratch[..n]);
                conn.last_progress = now;
                total += n;
                if n < scratch.len() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    // Even with reads paused we must notice EOF/RST promptly, or a
    // disconnected streaming client would linger to its timeout.
    if total == 0 && !conn.wants_read(slice_bytes) && !conn.read_closed {
        match conn.stream.read(&mut scratch[..1]) {
            Ok(0) => {
                conn.read_closed = true;
                conn.last_progress = now;
            }
            Ok(_) => conn.buf.extend_from_slice(&scratch[..1]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Write queued response bytes until the socket pushes back.
fn flush(conn: &mut Conn, now: Instant) -> io::Result<()> {
    while !conn.out.is_empty() {
        let (front, _) = conn.out.as_slices();
        match conn.stream.write(front) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => {
                conn.out.drain(..n);
                conn.last_progress = now;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// One state transition. Returns `Continue` when it advanced (call
/// again: there may be pipelined input behind it), `Blocked` when it
/// needs more input or an outstanding completion.
fn process_once(conn: &mut Conn, svc: &Services, t: u64, now: Instant) -> Flow {
    // Take the state out so transitions can consume it; every arm
    // reassigns before returning (InFlight is the placeholder).
    let state = std::mem::replace(&mut conn.state, ConnState::InFlight);
    match state {
        ConnState::Head(mut parser) => {
            if conn.pending_input() == 0 {
                if conn.read_closed {
                    match parser.eof_error() {
                        // Clean close at a request boundary.
                        HttpError::Eof => {
                            conn.state = ConnState::Head(parser);
                            if conn.out_done() {
                                Flow::Close
                            } else {
                                Flow::Blocked
                            }
                        }
                        e => error_response(conn, svc, &e),
                    }
                } else {
                    conn.state = ConnState::Head(parser);
                    Flow::Blocked
                }
            } else {
                let feed = parser.feed(&conn.buf[conn.pos..]);
                match feed {
                    Ok((used, Some(head))) => {
                        conn.pos += used;
                        admit(conn, svc, head, now)
                    }
                    Ok((used, None)) => {
                        conn.pos += used;
                        if conn.read_closed {
                            let e = parser.eof_error();
                            error_response(conn, svc, &e)
                        } else {
                            conn.state = ConnState::Head(parser);
                            Flow::Blocked
                        }
                    }
                    Err(e) => error_response(conn, svc, &e),
                }
            }
        }
        ConnState::BufferedBody { head, mut body } => {
            let avail = conn.pending_input();
            let need = head.content_length - body.len();
            let take = need.min(avail);
            body.extend_from_slice(&conn.buf[conn.pos..conn.pos + take]);
            conn.pos += take;
            if body.len() == head.content_length {
                dispatch_buffered(conn, svc, *head, body, t)
            } else if conn.read_closed {
                error_response(
                    conn,
                    svc,
                    &HttpError::BadRequest("unexpected end of stream".into()),
                )
            } else {
                conn.state = ConnState::BufferedBody { head, body };
                Flow::Blocked
            }
        }
        ConnState::Streaming(mut stream) => {
            let taken = stream.consume(&conn.buf[conn.pos..]);
            conn.pos += taken;
            if let Some(resp) = stream.failed.take() {
                // A slice failed; there is no clean boundary mid-body,
                // so answer and close. The permit drops with `stream`.
                svc.ctx
                    .metrics
                    .record(INGEST_ROUTE, resp.status, stream.started.elapsed());
                conn.queue_response(&resp, false);
                return Flow::Continue;
            }
            if conn.read_closed && stream.remaining > 0 {
                // Mid-body disconnect: already-applied slices stand
                // (same as a torn TCP stream against the threaded
                // transport); the session stays healthy and the permit
                // is released on drop.
                return Flow::Close;
            }
            if !stream.inflight {
                if let Some((chunk, offset)) = stream.take_slice(svc.cfg.slice_bytes) {
                    dispatch_slice(&mut stream, svc, chunk, offset, t);
                }
            }
            if stream.is_complete() {
                let resp = stream.success_response();
                let keep = stream.keep_alive && !svc.shutdown.load(Ordering::SeqCst);
                svc.ctx
                    .metrics
                    .record(INGEST_ROUTE, resp.status, stream.started.elapsed());
                conn.queue_response(&resp, keep);
                Flow::Continue
            } else {
                conn.state = ConnState::Streaming(stream);
                Flow::Blocked
            }
        }
        ConnState::Draining { mut remaining } => {
            let take = remaining.min(conn.pending_input());
            conn.pos += take;
            remaining -= take;
            if remaining == 0 {
                conn.state = ConnState::Head(HeadParser::new());
                Flow::Continue
            } else if conn.read_closed {
                Flow::Close
            } else {
                conn.state = ConnState::Draining { remaining };
                Flow::Blocked
            }
        }
        ConnState::InFlight => {
            conn.state = ConnState::InFlight;
            Flow::Blocked
        }
        ConnState::Closing => {
            conn.state = ConnState::Closing;
            Flow::Blocked
        }
    }
}

/// Route label shared with `router::dispatch` for the streaming path.
const INGEST_ROUTE: &str = "/sessions/{id}/ingest";

/// A head is parsed: enforce the body limit, then choose buffered
/// dispatch or streaming ingest.
fn admit(conn: &mut Conn, svc: &Services, head: RequestHead, now: Instant) -> Flow {
    if head.content_length > svc.limits.max_body {
        let e = HttpError::PayloadTooLarge {
            limit: svc.limits.max_body,
            declared: head.content_length,
        };
        let resp = e.to_response().expect("413 always has a response");
        svc.ctx
            .metrics
            .record("<parse-error>", resp.status, Duration::ZERO);
        if head.content_length <= http::DRAIN_CAP && head.keep_alive {
            // Answer first (the client may never send the body), then
            // swallow the declared bytes so keep-alive resumes at a
            // clean request boundary.
            conn.queue_response(&resp, true);
            conn.state = ConnState::Draining {
                remaining: head.content_length,
            };
        } else {
            conn.queue_response(&resp, false);
        }
        return Flow::Continue;
    }
    match stream_admission(&head, svc) {
        Some(Ok((session, permit))) => {
            conn.state =
                ConnState::Streaming(Box::new(IngestStream::new(session, permit, &head, now)));
            Flow::Continue
        }
        Some(Err(resp)) => {
            // Session queue full and the body is too big to buffer or
            // drain: answer and close.
            svc.ctx
                .metrics
                .record(INGEST_ROUTE, resp.status, Duration::ZERO);
            conn.queue_response(&resp, false);
            Flow::Continue
        }
        None => {
            conn.state = ConnState::BufferedBody {
                head: Box::new(head),
                body: Vec::new(),
            };
            Flow::Continue
        }
    }
}

/// Streaming eligibility: a large session ingest under the Skip policy
/// with no atomicity demand. Strict/Cap bodies stay buffered because
/// their "nothing was applied" abort semantics need the whole batch;
/// `X-Atomic-Batch` lets callers (the cluster shard client, whose WAL
/// sequence numbers must match shard batch indexes 1:1) force a single
/// batch regardless of size.
fn stream_admission(
    head: &RequestHead,
    svc: &Services,
) -> Option<Result<(Arc<LiveSession>, IngestPermit), Response>> {
    if head.method != "POST" || head.content_length < svc.cfg.stream_threshold {
        return None;
    }
    if head.header("x-atomic-batch").is_some() {
        return None;
    }
    let mut segments = head.path.split('/').filter(|s| !s.is_empty());
    let name = match (
        segments.next(),
        segments.next(),
        segments.next(),
        segments.next(),
    ) {
        (Some("sessions"), Some(name), Some("ingest"), None) => name,
        _ => return None,
    };
    let session = svc.ctx.registry.get(name)?;
    if !matches!(session.spec().policy(), Ok(ErrorPolicy::Skip)) {
        return None;
    }
    match session.try_ingest_permit() {
        Some(permit) => Some(Ok((session, permit))),
        None => {
            svc.ctx.metrics.session_busy_rejection();
            Some(Err(router::session_busy_response()))
        }
    }
}

/// Ship a fully-buffered request to the worker pool. The worker routes
/// it, records metrics, serializes the response, and wakes the reactor
/// with a [`Completion::Response`].
fn dispatch_buffered(
    conn: &mut Conn,
    svc: &Services,
    head: RequestHead,
    body: Vec<u8>,
    t: u64,
) -> Flow {
    // Single-enqueuer invariant: only the reactor thread submits jobs,
    // so between this check and try_execute the queue can only shrink.
    if svc.pool.queued() >= svc.cfg.queue {
        svc.ctx.metrics.busy_rejection();
        let resp = server_busy_response();
        // The body is fully consumed, so keep-alive stays safe.
        conn.queue_response(&resp, head.keep_alive);
        return Flow::Continue;
    }
    let req = head.into_request(body);
    let ctx = Arc::clone(&svc.ctx);
    let tx = svc.tx.clone();
    let waker = Arc::clone(&svc.waker);
    let submitted = svc.pool.try_execute(Box::new(move || {
        let started = Instant::now();
        let (route, resp) = router::dispatch(&req, &ctx);
        ctx.metrics.record(route, resp.status, started.elapsed());
        let keep = req.keep_alive && !ctx.shutdown.load(Ordering::SeqCst);
        let _ = tx.send(Completion::Response {
            token: t,
            bytes: resp.to_bytes(keep),
            keep_alive: keep,
        });
        waker.wake();
    }));
    match submitted {
        Ok(()) => {
            conn.state = ConnState::InFlight;
            Flow::Blocked
        }
        Err(_busy) => {
            // Unreachable given the single-enqueuer check; degrade the
            // same way the accept path does.
            svc.ctx.metrics.busy_rejection();
            let resp = server_busy_response();
            conn.queue_response(&resp, false);
            Flow::Continue
        }
    }
}

/// Ship one ingest slice to the pool; if it is full, put the lines back
/// and let the starved-retry loop try again (order is preserved — only
/// one slice per connection is ever in flight).
fn dispatch_slice(
    stream: &mut IngestStream,
    svc: &Services,
    chunk: Vec<u8>,
    offset: usize,
    t: u64,
) {
    if svc.pool.queued() >= svc.cfg.queue {
        stream.unslice(chunk, offset);
        return;
    }
    svc.ctx.metrics.ingest_slice();
    let session = Arc::clone(&stream.session);
    let tx = svc.tx.clone();
    let waker = Arc::clone(&svc.waker);
    let submitted = svc.pool.try_execute(Box::new(move || {
        let result = Box::new(session.ingest_slice(&chunk, offset));
        let _ = tx.send(Completion::Slice { token: t, result });
        waker.wake();
    }));
    if submitted.is_err() {
        // Unreachable (single enqueuer): the slice is lost, so the
        // stream cannot be completed truthfully — fail it.
        stream.fail(server_busy_response());
    }
}

fn server_busy_response() -> Response {
    Response::error(
        503,
        "server_busy",
        "worker pool saturated; retry with backoff",
    )
    .with_header("Retry-After", "1")
}

fn error_response(conn: &mut Conn, svc: &Services, e: &HttpError) -> Flow {
    match e.to_response() {
        Some(resp) => {
            svc.ctx
                .metrics
                .record("<parse-error>", resp.status, Duration::ZERO);
            conn.queue_response(&resp, false);
            Flow::Continue
        }
        None => Flow::Close,
    }
}

fn desired_interest(conn: &Conn, slice_bytes: usize) -> u32 {
    let mut bits = sys::EPOLLRDHUP;
    if conn.wants_read(slice_bytes) {
        bits |= sys::EPOLLIN;
    }
    if !conn.out_done() {
        bits |= sys::EPOLLOUT;
    }
    bits
}

/// A streaming connection with dispatchable lines and no slice in
/// flight — the pool was full when it last tried.
fn stream_hungry(conn: &Conn, slice_bytes: usize) -> bool {
    match &conn.state {
        ConnState::Streaming(s) => {
            !s.inflight
                && s.failed.is_none()
                && (s.pending.len() >= slice_bytes.max(1) || s.remaining == 0)
        }
        _ => false,
    }
}

/// Mid-request stalls answer to the short read timeout (slowloris
/// cutoff); idle keep-alive connections and server-side work answer to
/// the long idle timeout.
fn deadline_of(conn: &Conn, cfg: &Tunables) -> Instant {
    let mid_request = match &conn.state {
        ConnState::Head(p) => p.started(),
        ConnState::BufferedBody { .. } | ConnState::Draining { .. } | ConnState::Closing => true,
        // Waiting on client body bytes is a client stall; waiting on a
        // slice completion (or working through the tail) is ours.
        ConnState::Streaming(s) => !s.inflight && s.remaining > 0,
        ConnState::InFlight => false,
    };
    conn.last_progress
        + if mid_request {
            cfg.read_timeout
        } else {
            cfg.idle_timeout
        }
}
