//! Request and session metrics, rendered in the Prometheus text
//! exposition format.
//!
//! Route labels are the route *patterns* (`/sessions/{id}/ingest`), not
//! concrete paths, so label cardinality stays bounded no matter how many
//! sessions exist. Latencies go into a fixed-bucket histogram in
//! microseconds. Per-session gauges are injected at render time from the
//! registry rather than tracked here, so the metrics module needs no
//! knowledge of session lifecycle.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Upper bounds (µs) of the latency histogram buckets; +Inf is implicit.
const BUCKETS_US: [u64; 10] = [
    100, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000, 5_000_000,
];

#[derive(Default)]
struct RouteStat {
    /// Requests per status code.
    by_status: BTreeMap<u16, u64>,
    /// Cumulative counts per histogram bucket (same order as
    /// [`BUCKETS_US`]), plus one trailing +Inf bucket.
    buckets: [u64; BUCKETS_US.len() + 1],
    sum_us: u64,
    count: u64,
}

/// Per-session numbers the registry supplies at render time.
#[derive(Debug, Clone)]
pub struct SessionStats {
    /// Session name.
    pub name: String,
    /// Batches applied so far.
    pub batches: u64,
    /// Nodes seen so far.
    pub nodes: u64,
    /// Edges seen so far.
    pub edges: u64,
    /// Lines quarantined over the session's lifetime.
    pub quarantined: u64,
    /// Current schema version.
    pub version: u64,
    /// Whether the session is marked broken.
    pub broken: bool,
    /// Estimated bytes retained by the session's per-type accumulator
    /// statistics (bounded in stream mode; grows with distinct
    /// members/endpoints in exact mode).
    pub accum_bytes: u64,
    /// Entries across the session's pattern-memoization stores (the
    /// bounded fingerprint stores in stream mode, the exact caches
    /// otherwise).
    pub fingerprint_entries: u64,
}

/// The server-wide metrics sink.
pub struct Metrics {
    started: Instant,
    connections: AtomicU64,
    closed_connections: AtomicU64,
    busy_rejections: AtomicU64,
    session_busy_rejections: AtomicU64,
    idle_timeouts: AtomicU64,
    connection_limit_rejections: AtomicU64,
    ingest_slices: AtomicU64,
    routes: Mutex<BTreeMap<&'static str, RouteStat>>,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::new()
    }
}

impl Metrics {
    /// A fresh sink; uptime counts from here.
    pub fn new() -> Metrics {
        Metrics {
            started: Instant::now(),
            connections: AtomicU64::new(0),
            closed_connections: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            session_busy_rejections: AtomicU64::new(0),
            idle_timeouts: AtomicU64::new(0),
            connection_limit_rejections: AtomicU64::new(0),
            ingest_slices: AtomicU64::new(0),
            routes: Mutex::new(BTreeMap::new()),
        }
    }

    /// Count an accepted connection.
    pub fn connection_opened(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a closed connection (the open-connections gauge is
    /// `opened - closed`).
    pub fn connection_closed(&self) {
        self.closed_connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections currently open.
    pub fn open_connections(&self) -> u64 {
        self.connections
            .load(Ordering::Relaxed)
            .saturating_sub(self.closed_connections.load(Ordering::Relaxed))
    }

    /// Count a connection refused with 503 because the pool was full.
    pub fn busy_rejection(&self) {
        self.busy_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Count an ingest refused with 503 because the session's bounded
    /// ingest queue was full.
    pub fn session_busy_rejection(&self) {
        self.session_busy_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a connection killed by the idle/slowloris timeout.
    pub fn idle_timeout(&self) {
        self.idle_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a connection refused at accept because the reactor's
    /// connection limit was reached.
    pub fn connection_limit_rejection(&self) {
        self.connection_limit_rejections
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Count one streamed ingest slice applied to a session.
    pub fn ingest_slice(&self) {
        self.ingest_slices.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one handled request under its route pattern.
    pub fn record(&self, route: &'static str, status: u16, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let mut routes = self.routes.lock().unwrap_or_else(|p| p.into_inner());
        let stat = routes.entry(route).or_default();
        *stat.by_status.entry(status).or_insert(0) += 1;
        let idx = BUCKETS_US
            .iter()
            .position(|b| us <= *b)
            .unwrap_or(BUCKETS_US.len());
        stat.buckets[idx] += 1;
        stat.sum_us = stat.sum_us.saturating_add(us);
        stat.count += 1;
    }

    /// Render everything in the Prometheus text format.
    pub fn render(&self, sessions: &[SessionStats]) -> String {
        let mut out = String::with_capacity(4096);
        let push = |out: &mut String, s: &str| out.push_str(s);

        push(
            &mut out,
            "# HELP pg_serve_uptime_seconds Seconds since the server started.\n\
             # TYPE pg_serve_uptime_seconds gauge\n",
        );
        push(
            &mut out,
            &format!(
                "pg_serve_uptime_seconds {}\n",
                self.started.elapsed().as_secs()
            ),
        );
        push(
            &mut out,
            "# HELP pg_serve_connections_total Connections accepted.\n\
             # TYPE pg_serve_connections_total counter\n",
        );
        push(
            &mut out,
            &format!(
                "pg_serve_connections_total {}\n",
                self.connections.load(Ordering::Relaxed)
            ),
        );
        push(
            &mut out,
            "# HELP pg_serve_open_connections Connections currently open.\n\
             # TYPE pg_serve_open_connections gauge\n",
        );
        push(
            &mut out,
            &format!("pg_serve_open_connections {}\n", self.open_connections()),
        );
        push(
            &mut out,
            "# HELP pg_serve_busy_rejections_total Connections answered 503 because the worker pool was full.\n\
             # TYPE pg_serve_busy_rejections_total counter\n",
        );
        push(
            &mut out,
            &format!(
                "pg_serve_busy_rejections_total {}\n",
                self.busy_rejections.load(Ordering::Relaxed)
            ),
        );
        push(
            &mut out,
            "# HELP pg_serve_session_busy_rejections_total Ingests answered 503 because a session's ingest queue was full.\n\
             # TYPE pg_serve_session_busy_rejections_total counter\n",
        );
        push(
            &mut out,
            &format!(
                "pg_serve_session_busy_rejections_total {}\n",
                self.session_busy_rejections.load(Ordering::Relaxed)
            ),
        );
        push(
            &mut out,
            "# HELP pg_serve_idle_timeouts_total Connections killed by the idle/slowloris timeout.\n\
             # TYPE pg_serve_idle_timeouts_total counter\n",
        );
        push(
            &mut out,
            &format!(
                "pg_serve_idle_timeouts_total {}\n",
                self.idle_timeouts.load(Ordering::Relaxed)
            ),
        );
        push(
            &mut out,
            "# HELP pg_serve_connection_limit_rejections_total Connections refused at accept because the connection limit was reached.\n\
             # TYPE pg_serve_connection_limit_rejections_total counter\n",
        );
        push(
            &mut out,
            &format!(
                "pg_serve_connection_limit_rejections_total {}\n",
                self.connection_limit_rejections.load(Ordering::Relaxed)
            ),
        );
        push(
            &mut out,
            "# HELP pg_serve_ingest_slices_total Streamed ingest slices applied.\n\
             # TYPE pg_serve_ingest_slices_total counter\n",
        );
        push(
            &mut out,
            &format!(
                "pg_serve_ingest_slices_total {}\n",
                self.ingest_slices.load(Ordering::Relaxed)
            ),
        );

        let routes = self.routes.lock().unwrap_or_else(|p| p.into_inner());
        push(
            &mut out,
            "# HELP pg_serve_requests_total Requests handled, by route pattern and status.\n\
             # TYPE pg_serve_requests_total counter\n",
        );
        for (route, stat) in routes.iter() {
            for (status, n) in &stat.by_status {
                push(
                    &mut out,
                    &format!(
                        "pg_serve_requests_total{{route=\"{route}\",status=\"{status}\"}} {n}\n"
                    ),
                );
            }
        }
        push(
            &mut out,
            "# HELP pg_serve_request_duration_us Request handling latency in microseconds.\n\
             # TYPE pg_serve_request_duration_us histogram\n",
        );
        for (route, stat) in routes.iter() {
            let mut cumulative = 0u64;
            for (i, bound) in BUCKETS_US.iter().enumerate() {
                cumulative += stat.buckets[i];
                push(
                    &mut out,
                    &format!(
                        "pg_serve_request_duration_us_bucket{{route=\"{route}\",le=\"{bound}\"}} {cumulative}\n"
                    ),
                );
            }
            cumulative += stat.buckets[BUCKETS_US.len()];
            push(
                &mut out,
                &format!(
                    "pg_serve_request_duration_us_bucket{{route=\"{route}\",le=\"+Inf\"}} {cumulative}\n"
                ),
            );
            push(
                &mut out,
                &format!(
                    "pg_serve_request_duration_us_sum{{route=\"{route}\"}} {}\n",
                    stat.sum_us
                ),
            );
            push(
                &mut out,
                &format!(
                    "pg_serve_request_duration_us_count{{route=\"{route}\"}} {}\n",
                    stat.count
                ),
            );
        }
        drop(routes);

        push(
            &mut out,
            "# HELP pg_serve_session_batches_total Batches applied per session.\n\
             # TYPE pg_serve_session_batches_total counter\n",
        );
        for s in sessions {
            push(
                &mut out,
                &format!(
                    "pg_serve_session_batches_total{{session=\"{}\"}} {}\n",
                    s.name, s.batches
                ),
            );
        }
        push(
            &mut out,
            "# HELP pg_serve_session_elements_total Nodes and edges seen per session.\n\
             # TYPE pg_serve_session_elements_total counter\n",
        );
        for s in sessions {
            push(
                &mut out,
                &format!(
                    "pg_serve_session_elements_total{{session=\"{}\",kind=\"node\"}} {}\n\
                     pg_serve_session_elements_total{{session=\"{}\",kind=\"edge\"}} {}\n",
                    s.name, s.nodes, s.name, s.edges
                ),
            );
        }
        push(
            &mut out,
            "# HELP pg_serve_session_quarantined_total Input lines diverted to the quarantine per session.\n\
             # TYPE pg_serve_session_quarantined_total counter\n",
        );
        for s in sessions {
            push(
                &mut out,
                &format!(
                    "pg_serve_session_quarantined_total{{session=\"{}\"}} {}\n",
                    s.name, s.quarantined
                ),
            );
        }
        push(
            &mut out,
            "# HELP pg_serve_session_schema_version Current schema version per session.\n\
             # TYPE pg_serve_session_schema_version gauge\n",
        );
        for s in sessions {
            push(
                &mut out,
                &format!(
                    "pg_serve_session_schema_version{{session=\"{}\"}} {}\n",
                    s.name, s.version
                ),
            );
        }
        push(
            &mut out,
            "# HELP pg_serve_session_broken Whether the session's engine failed (1) or is healthy (0).\n\
             # TYPE pg_serve_session_broken gauge\n",
        );
        for s in sessions {
            push(
                &mut out,
                &format!(
                    "pg_serve_session_broken{{session=\"{}\"}} {}\n",
                    s.name,
                    u8::from(s.broken)
                ),
            );
        }
        push(
            &mut out,
            "# HELP pg_serve_session_accum_bytes Estimated bytes retained by per-type accumulator statistics.\n\
             # TYPE pg_serve_session_accum_bytes gauge\n",
        );
        for s in sessions {
            push(
                &mut out,
                &format!(
                    "pg_serve_session_accum_bytes{{session=\"{}\"}} {}\n",
                    s.name, s.accum_bytes
                ),
            );
        }
        push(
            &mut out,
            "# HELP pg_serve_session_fingerprint_entries Entries in the session's pattern-memoization stores.\n\
             # TYPE pg_serve_session_fingerprint_entries gauge\n",
        );
        for s in sessions {
            push(
                &mut out,
                &format!(
                    "pg_serve_session_fingerprint_entries{{session=\"{}\"}} {}\n",
                    s.name, s.fingerprint_entries
                ),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_route_and_session_series() {
        let m = Metrics::new();
        m.connection_opened();
        m.busy_rejection();
        m.record("/healthz", 200, Duration::from_micros(50));
        m.record("/sessions/{id}/ingest", 200, Duration::from_micros(2_000));
        m.record("/sessions/{id}/ingest", 422, Duration::from_micros(800));
        let text = m.render(&[SessionStats {
            name: "s1".into(),
            batches: 3,
            nodes: 10,
            edges: 4,
            quarantined: 1,
            version: 4,
            broken: false,
            accum_bytes: 12_345,
            fingerprint_entries: 17,
        }]);
        assert!(text.contains("pg_serve_connections_total 1"));
        assert!(text.contains("pg_serve_busy_rejections_total 1"));
        assert!(text.contains("pg_serve_open_connections 1"));
        assert!(text.contains("pg_serve_session_busy_rejections_total 0"));
        assert!(text.contains("pg_serve_idle_timeouts_total 0"));
        assert!(text.contains("pg_serve_connection_limit_rejections_total 0"));
        assert!(text.contains("pg_serve_ingest_slices_total 0"));
        assert!(text
            .contains("pg_serve_requests_total{route=\"/sessions/{id}/ingest\",status=\"422\"} 1"));
        assert!(text.contains("pg_serve_requests_total{route=\"/healthz\",status=\"200\"} 1"));
        assert!(
            text.contains("pg_serve_request_duration_us_count{route=\"/sessions/{id}/ingest\"} 2")
        );
        assert!(text.contains("pg_serve_session_batches_total{session=\"s1\"} 3"));
        assert!(text.contains("pg_serve_session_broken{session=\"s1\"} 0"));
        assert!(text.contains("pg_serve_session_accum_bytes{session=\"s1\"} 12345"));
        assert!(text.contains("pg_serve_session_fingerprint_entries{session=\"s1\"} 17"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = Metrics::new();
        m.record("/r", 200, Duration::from_micros(50)); // le=100
        m.record("/r", 200, Duration::from_micros(400)); // le=500
        m.record("/r", 200, Duration::from_secs(60)); // +Inf only
        let text = m.render(&[]);
        assert!(text.contains("pg_serve_request_duration_us_bucket{route=\"/r\",le=\"100\"} 1"));
        assert!(text.contains("pg_serve_request_duration_us_bucket{route=\"/r\",le=\"500\"} 2"));
        assert!(text.contains("pg_serve_request_duration_us_bucket{route=\"/r\",le=\"5000000\"} 2"));
        assert!(text.contains("pg_serve_request_duration_us_bucket{route=\"/r\",le=\"+Inf\"} 3"));
        assert!(text.contains("pg_serve_request_duration_us_count{route=\"/r\"} 3"));
    }
}
