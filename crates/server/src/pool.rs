//! A bounded worker thread pool.
//!
//! Fixed worker count, bounded job queue, explicit backpressure: when
//! the queue is full, [`Pool::try_execute`] refuses the job so the
//! accept loop can answer 503 instead of queueing unbounded work.
//! Shutdown drains — queued and in-flight jobs finish, then workers
//! exit and are joined.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Returned by [`Pool::try_execute`] when the queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Busy;

struct State {
    jobs: VecDeque<Job>,
    shutting_down: bool,
}

struct Shared {
    state: Mutex<State>,
    work_ready: Condvar,
    queue_cap: usize,
}

/// The pool. Dropping it without calling [`Pool::shutdown`] detaches
/// the workers (used nowhere in the server, which always drains).
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Spawn `workers` threads with a queue bounded at `queue_cap`
    /// pending jobs (both clamped to at least 1).
    pub fn new(workers: usize, queue_cap: usize) -> Pool {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                jobs: VecDeque::new(),
                shutting_down: false,
            }),
            work_ready: Condvar::new(),
            queue_cap: queue_cap.max(1),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pg-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a worker thread")
            })
            .collect();
        Pool { shared, workers }
    }

    /// Enqueue a job, or refuse with [`Busy`] when the queue is full
    /// (or the pool is shutting down).
    pub fn try_execute(&self, job: Job) -> Result<(), Busy> {
        let mut state = self.shared.state.lock().unwrap_or_else(|p| p.into_inner());
        if state.shutting_down || state.jobs.len() >= self.shared.queue_cap {
            return Err(Busy);
        }
        state.jobs.push_back(job);
        drop(state);
        self.shared.work_ready.notify_one();
        Ok(())
    }

    /// Jobs currently queued (not yet picked up by a worker).
    pub fn queued(&self) -> usize {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .jobs
            .len()
    }

    /// Drain and stop: already-queued jobs still run, new ones are
    /// refused, and all workers are joined before returning.
    pub fn shutdown(self) {
        {
            let mut state = self.shared.state.lock().unwrap_or_else(|p| p.into_inner());
            state.shutting_down = true;
        }
        self.shared.work_ready.notify_all();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break Some(job);
                }
                if state.shutting_down {
                    break None;
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .unwrap_or_else(|p| p.into_inner());
            }
        };
        match job {
            // A panicking job must not take its worker down with it;
            // connection handlers have their own panic boundary, this
            // is the backstop.
            Some(job) => {
                let _ = catch_unwind(AssertUnwindSafe(job));
            }
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn runs_jobs_and_drains_on_shutdown() {
        let pool = Pool::new(3, 64);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let done = Arc::clone(&done);
            pool.try_execute(Box::new(move || {
                done.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 50, "shutdown lost queued jobs");
    }

    #[test]
    fn backpressure_refuses_when_full() {
        let pool = Pool::new(1, 2);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        // Block the single worker.
        let g = Arc::clone(&gate);
        pool.try_execute(Box::new(move || {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        }))
        .unwrap();
        // Give the worker a moment to pick the blocker up, then fill
        // the queue.
        std::thread::sleep(Duration::from_millis(50));
        let mut accepted = 0;
        let mut refused = 0;
        for _ in 0..10 {
            match pool.try_execute(Box::new(|| {})) {
                Ok(()) => accepted += 1,
                Err(Busy) => refused += 1,
            }
        }
        assert!(
            accepted <= 2,
            "queue cap not enforced ({accepted} accepted)"
        );
        assert!(refused >= 8);
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        pool.shutdown();
    }

    #[test]
    fn panicking_jobs_do_not_kill_workers() {
        let pool = Pool::new(1, 8);
        pool.try_execute(Box::new(|| panic!("boom"))).unwrap();
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.try_execute(Box::new(move || {
            d.fetch_add(1, Ordering::SeqCst);
        }))
        .unwrap();
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }
}
