//! The coordinator's HTTP client for one shard: connect/read timeouts,
//! bounded retries with seeded jittered backoff, and `Retry-After`
//! honoring.
//!
//! Transport failures (dial refused, timeout, connection torn) and 503
//! busy responses are retried up to the configured bound, sleeping the
//! [`Backoff`] schedule between attempts — or the server's own
//! `Retry-After` when the 503 carries one, so a saturated shard is
//! never hammered. Anything else, success or structured HTTP error, is
//! returned to the caller: the circuit breaker above this layer decides
//! what repeated failures mean for membership.

use crate::backoff::Backoff;
use crate::client::{Client, ClientResponse};
use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::time::Duration;

/// Why a shard request gave up.
#[derive(Debug)]
pub enum ShardError {
    /// Transport-level failure (or persistent 503) after all retries.
    Unavailable(String),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Unavailable(m) => write!(f, "shard unavailable: {m}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// Tuning for a [`ShardClient`].
#[derive(Debug, Clone)]
pub struct ShardClientConfig {
    /// TCP connect bound.
    pub connect_timeout: Duration,
    /// Per-operation read/write bound.
    pub io_timeout: Duration,
    /// Retries after the first attempt.
    pub max_retries: u32,
    /// Backoff base delay (ms) between retries.
    pub backoff_base_ms: u64,
    /// Backoff cap (ms).
    pub backoff_cap_ms: u64,
}

impl Default for ShardClientConfig {
    fn default() -> ShardClientConfig {
        ShardClientConfig {
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_secs(10),
            max_retries: 2,
            backoff_base_ms: 50,
            backoff_cap_ms: 2_000,
        }
    }
}

/// Resolve a shard spec (`host:port`, optionally `http://`-prefixed)
/// to a socket address.
pub fn resolve_shard_addr(spec: &str) -> io::Result<SocketAddr> {
    let trimmed = spec
        .trim()
        .strip_prefix("http://")
        .unwrap_or(spec.trim())
        .trim_end_matches('/');
    trimmed.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::AddrNotAvailable,
            format!("shard address {spec:?} resolved to nothing"),
        )
    })
}

/// The `Retry-After` delay of a response, if present and parseable
/// (delta-seconds form only — the HTTP-date form is not worth speaking
/// between our own binaries).
pub fn retry_after(resp: &ClientResponse) -> Option<Duration> {
    resp.header("retry-after")
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(Duration::from_secs)
}

/// A retrying client bound to one shard.
pub struct ShardClient {
    addr: SocketAddr,
    client: Client,
    config: ShardClientConfig,
    backoff: Backoff,
    retries: u64,
}

impl ShardClient {
    /// A client for `addr`; `seed` makes the retry jitter reproducible.
    pub fn new(addr: SocketAddr, seed: u64, config: ShardClientConfig) -> ShardClient {
        let client = Client::new(addr)
            .with_timeout(config.io_timeout)
            .with_connect_timeout(config.connect_timeout)
            // RST on close so a killed-and-restarted shard can rebind
            // its port without waiting out TIME_WAIT.
            .with_abortive_close();
        let backoff = Backoff::new(seed, config.backoff_base_ms, config.backoff_cap_ms);
        ShardClient {
            addr,
            client,
            config,
            backoff,
            retries: 0,
        }
    }

    /// The shard's resolved address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Retries performed since the last [`ShardClient::take_retries`].
    pub fn take_retries(&mut self) -> u64 {
        std::mem::take(&mut self.retries)
    }

    /// Send one request, retrying transport failures and 503s with
    /// jittered backoff (honoring `Retry-After` on 503s, capped at the
    /// backoff cap). Returns the final response — any status — or
    /// [`ShardError::Unavailable`] once retries are exhausted.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Result<ClientResponse, ShardError> {
        self.request_with_headers(method, path, &[], body)
    }

    /// [`ShardClient::request`] with extra request headers. The
    /// coordinator uses this to mark WAL deliveries `X-Atomic-Batch`:
    /// a shard must apply each delivery as exactly one batch (never
    /// sliced by its streaming ingest path), because WAL sequence
    /// numbers and shard batch indexes must stay 1:1 for replay
    /// watermarks to mean anything.
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> Result<ClientResponse, ShardError> {
        let attempts = self.config.max_retries + 1;
        let mut last_failure = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                self.retries += 1;
            }
            match self.client.request(method, path, headers, body) {
                Ok(resp) if resp.status == 503 => {
                    last_failure = "shard answered 503 busy".to_owned();
                    let delay = retry_after(&resp)
                        .unwrap_or_else(|| self.backoff.delay(attempt))
                        .min(Duration::from_millis(self.config.backoff_cap_ms));
                    if attempt + 1 < attempts {
                        std::thread::sleep(delay);
                    }
                }
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    last_failure = e.to_string();
                    if attempt + 1 < attempts {
                        std::thread::sleep(self.backoff.delay(attempt));
                    }
                }
            }
        }
        Err(ShardError::Unavailable(format!(
            "{} after {attempts} attempts: {last_failure}",
            self.addr
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_specs_resolve_with_and_without_scheme() {
        let a = resolve_shard_addr("127.0.0.1:7001").unwrap();
        let b = resolve_shard_addr("http://127.0.0.1:7001/").unwrap();
        assert_eq!(a, b);
        assert!(resolve_shard_addr("not an address").is_err());
    }

    #[test]
    fn retry_after_parses_delta_seconds_only() {
        let resp = |headers: Vec<(String, String)>| ClientResponse {
            status: 503,
            headers,
            body: Vec::new(),
        };
        let r = resp(vec![("retry-after".into(), "2".into())]);
        assert_eq!(retry_after(&r), Some(Duration::from_secs(2)));
        let r = resp(vec![("retry-after".into(), "soon".into())]);
        assert_eq!(retry_after(&r), None);
        let r = resp(vec![]);
        assert_eq!(retry_after(&r), None);
    }

    #[test]
    fn dead_shard_exhausts_retries_quickly() {
        // Bind-then-drop yields a port with nothing listening.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let mut c = ShardClient::new(
            addr,
            1,
            ShardClientConfig {
                connect_timeout: Duration::from_millis(100),
                io_timeout: Duration::from_millis(100),
                max_retries: 2,
                backoff_base_ms: 1,
                backoff_cap_ms: 4,
            },
        );
        let err = c.request("GET", "/healthz", &[]).unwrap_err();
        assert!(err.to_string().contains("3 attempts"), "{err}");
        assert_eq!(c.take_retries(), 2);
        assert_eq!(c.take_retries(), 0, "counter drains");
    }
}
