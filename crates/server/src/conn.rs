//! Per-connection state machines for the epoll reactor.
//!
//! Each accepted socket owns a [`Conn`]: unconsumed read bytes, a FIFO
//! write buffer, and a [`ConnState`] that resumes exactly where the
//! last readable event left off. Nothing here blocks — the reactor
//! feeds bytes in, the state machine emits queued response bytes and
//! CPU-pool jobs out. Large JSONL ingest bodies never materialize in
//! memory: [`IngestStream`] slices them at line boundaries and
//! aggregates the per-slice [`IngestReport`]s into the same response a
//! buffered one-shot ingest would have produced.

use crate::http::{HeadParser, RequestHead, Response};
use crate::registry::{IngestPermit, IngestReport, LiveSession};
use crate::router;
use std::collections::VecDeque;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

/// Where a connection is in its request/response lifecycle.
pub(crate) enum ConnState {
    /// Parsing the request head incrementally.
    Head(HeadParser),
    /// Accumulating a Content-Length body for a one-shot dispatch.
    BufferedBody {
        head: Box<RequestHead>,
        body: Vec<u8>,
    },
    /// Streaming a large ingest body to the session in bounded slices.
    Streaming(Box<IngestStream>),
    /// Discarding `remaining` declared body bytes after an early
    /// response (413 with a drainable body) so keep-alive can resume at
    /// a clean request boundary.
    Draining { remaining: usize },
    /// A fully-buffered request is on the CPU pool; its serialized
    /// response arrives as a completion.
    InFlight,
    /// Response queued with `Connection: close` — flush, then close.
    Closing,
}

/// One nonblocking connection owned by the reactor slab.
pub(crate) struct Conn {
    pub stream: TcpStream,
    pub state: ConnState,
    /// Raw bytes read off the socket, not yet consumed by the parser.
    pub buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted opportunistically).
    pub pos: usize,
    /// Serialized responses awaiting write, FIFO so pipelined responses
    /// leave in request order.
    pub out: VecDeque<u8>,
    /// Peer half-closed its write side (EOF seen).
    pub read_closed: bool,
    /// Last moment bytes moved in either direction (timeout anchor).
    pub last_progress: Instant,
    /// epoll interest currently registered for this fd.
    pub interest: u32,
    /// Whether a timer-wheel entry for this connection is queued (the
    /// wheel keeps at most one per connection; lazy revalidation does
    /// the rest).
    pub timer_queued: bool,
}

impl Conn {
    pub fn new(stream: TcpStream, now: Instant) -> Conn {
        Conn {
            stream,
            state: ConnState::Head(HeadParser::new()),
            buf: Vec::new(),
            pos: 0,
            out: VecDeque::new(),
            read_closed: false,
            last_progress: now,
            interest: 0,
            timer_queued: false,
        }
    }

    /// Unconsumed input bytes.
    pub fn pending_input(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the state machine wants more bytes from the peer right
    /// now. `InFlight`/`Closing` pause reads, which (with
    /// level-triggered epoll) bounds per-connection buffering and gives
    /// pipelining for free: pipelined bytes sit in the kernel buffer
    /// until the response is queued. A streaming ingest stops reading
    /// once enough undispatched lines are buffered (backpressure).
    pub fn wants_read(&self, slice_bytes: usize) -> bool {
        if self.read_closed {
            return false;
        }
        match &self.state {
            ConnState::Head(_) | ConnState::BufferedBody { .. } | ConnState::Draining { .. } => {
                true
            }
            ConnState::Streaming(s) => {
                s.failed.is_none() && s.pending.len() < slice_bytes.saturating_mul(2).max(1)
            }
            ConnState::InFlight | ConnState::Closing => false,
        }
    }

    /// Whether all queued response bytes have been written out.
    pub fn out_done(&self) -> bool {
        self.out.is_empty()
    }

    /// Queue a serialized response; `keep_alive` decides the follow-on
    /// state (back to parsing, or flush-and-close).
    pub fn queue_response(&mut self, resp: &Response, keep_alive: bool) {
        self.out.extend(resp.to_bytes(keep_alive));
        self.state = if keep_alive {
            ConnState::Head(HeadParser::new())
        } else {
            ConnState::Closing
        };
    }

    /// Drop consumed input; called after each drive so a long-lived
    /// keep-alive connection doesn't accrete its whole history.
    pub fn compact(&mut self) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= 32 * 1024 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

/// Streaming ingest in progress: splits the body into complete-line
/// slices, keeps at most one slice on the CPU pool (slices of one
/// request must apply in order), and folds the per-slice reports into
/// one aggregate that mirrors a single buffered batch.
pub(crate) struct IngestStream {
    /// The target session (cloned `Arc` rides into each slice job).
    pub session: Arc<LiveSession>,
    /// Ingest-queue slot held for the whole body; never read, only
    /// dropped — releasing it when the stream finishes or the
    /// connection dies is the entire point.
    #[allow(dead_code)]
    pub permit: Option<IngestPermit>,
    /// Declared body bytes not yet received.
    pub remaining: usize,
    /// Complete lines awaiting dispatch.
    pub pending: Vec<u8>,
    /// Newline count inside `pending`.
    pub pending_lines: usize,
    /// Trailing bytes of an incomplete line (prefix of the next slice).
    pub partial: Vec<u8>,
    /// Complete lines already handed to slice jobs (line offset of the
    /// next slice, so quarantine line numbers stay stream-global).
    pub lines_sent: usize,
    /// A slice job is on the pool; no new slice may dispatch.
    pub inflight: bool,
    /// Slices dispatched so far (reported in the response).
    pub slices: u64,
    /// Folded outcome of completed slices.
    pub agg: Option<IngestReport>,
    /// First slice failure; ends the request with this response.
    pub failed: Option<Response>,
    /// Whether the request asked to keep the connection alive.
    pub keep_alive: bool,
    /// Request start, for the route-latency metric.
    pub started: Instant,
}

impl IngestStream {
    pub fn new(
        session: Arc<LiveSession>,
        permit: IngestPermit,
        head: &RequestHead,
        now: Instant,
    ) -> IngestStream {
        IngestStream {
            session,
            permit: Some(permit),
            remaining: head.content_length,
            pending: Vec::new(),
            pending_lines: 0,
            partial: Vec::new(),
            lines_sent: 0,
            inflight: false,
            slices: 0,
            agg: None,
            failed: None,
            keep_alive: head.keep_alive,
            started: now,
        }
    }

    /// Consume body bytes from `input`; returns how many were taken
    /// (never more than `remaining`, so pipelined follow-up requests
    /// stay in the connection buffer).
    pub fn consume(&mut self, input: &[u8]) -> usize {
        let take = input.len().min(self.remaining);
        let bytes = &input[..take];
        self.remaining -= take;
        if let Some(last) = bytes.iter().rposition(|b| *b == b'\n') {
            // `partial` + everything through the last newline is a run
            // of complete lines; the tail starts the next partial.
            self.pending.append(&mut self.partial);
            self.pending.extend_from_slice(&bytes[..=last]);
            self.pending_lines += bytes[..=last].iter().filter(|b| **b == b'\n').count();
            self.partial.extend_from_slice(&bytes[last + 1..]);
        } else {
            self.partial.extend_from_slice(bytes);
        }
        take
    }

    /// Cut the next slice if one is due: either `pending` reached the
    /// slice size, or the body is complete (which also promotes the
    /// unterminated trailing line). At most one slice is in flight at a
    /// time. An empty body still yields one empty slice so the response
    /// matches a buffered empty batch.
    ///
    /// Slices stay *bounded*: when `pending` has outrun the target
    /// (bytes arriving faster than slices dispatch), the cut lands on
    /// the last line boundary inside the target window rather than
    /// shipping the whole backlog — a single line longer than the
    /// window ships whole, since slices never split a line.
    pub fn take_slice(&mut self, slice_bytes: usize) -> Option<(Vec<u8>, usize)> {
        if self.inflight || self.failed.is_some() {
            return None;
        }
        let body_done = self.remaining == 0;
        if body_done && !self.partial.is_empty() {
            self.pending.append(&mut self.partial);
            self.pending_lines += 1;
        }
        let target = slice_bytes.max(1);
        let due = self.pending.len() >= target
            || (body_done
                && (!self.pending.is_empty() || (self.slices == 0 && self.agg.is_none())));
        if !due {
            return None;
        }
        let cut = if self.pending.len() <= target {
            self.pending.len()
        } else {
            match self.pending[..target].iter().rposition(|b| *b == b'\n') {
                Some(i) => i + 1,
                None => self.pending[target..]
                    .iter()
                    .position(|b| *b == b'\n')
                    .map(|i| target + i + 1)
                    .unwrap_or(self.pending.len()),
            }
        };
        let rest = self.pending.split_off(cut);
        let chunk = std::mem::replace(&mut self.pending, rest);
        let newlines = chunk.iter().filter(|b| **b == b'\n').count();
        let trailing = usize::from(chunk.last().is_some_and(|b| *b != b'\n'));
        let lines = newlines + trailing;
        let offset = self.lines_sent;
        self.lines_sent += lines;
        self.pending_lines -= lines;
        self.inflight = true;
        self.slices += 1;
        Some((chunk, offset))
    }

    /// Undo a [`take_slice`](IngestStream::take_slice) whose dispatch
    /// found the pool saturated: the lines go back to the front of
    /// `pending` and the counters rewind, so a later retry cuts the
    /// identical slice. Sound because only one slice is ever taken at a
    /// time.
    pub fn unslice(&mut self, chunk: Vec<u8>, offset: usize) {
        let newlines = chunk.iter().filter(|b| **b == b'\n').count();
        let trailing = usize::from(chunk.last().is_some_and(|b| *b != b'\n'));
        self.lines_sent = offset;
        self.pending_lines += newlines + trailing;
        self.inflight = false;
        self.slices -= 1;
        let mut restored = chunk;
        restored.append(&mut self.pending);
        self.pending = restored;
    }

    /// Fold a completed slice's report into the aggregate. Counts sum;
    /// version/hash/batch_index track the latest slice (the session's
    /// state after the whole body), `changed` ORs.
    pub fn absorb(&mut self, report: IngestReport) {
        self.inflight = false;
        match &mut self.agg {
            None => self.agg = Some(report),
            Some(agg) => {
                agg.outcome.nodes += report.outcome.nodes;
                agg.outcome.edges += report.outcome.edges;
                agg.outcome.quarantined += report.outcome.quarantined;
                agg.outcome.changed |= report.outcome.changed;
                agg.outcome.batch_index = report.outcome.batch_index;
                agg.outcome.version = report.outcome.version;
                agg.outcome.hash = report.outcome.hash;
                agg.outcome.timing.batch_index = report.outcome.timing.batch_index;
                agg.outcome.timing.nodes += report.outcome.timing.nodes;
                agg.outcome.timing.edges += report.outcome.timing.edges;
                agg.outcome.timing.total += report.outcome.timing.total;
                agg.quarantine.absorb(report.quarantine);
                agg.checkpointed |= report.checkpointed;
                if report.checkpoint_error.is_some() {
                    agg.checkpoint_error = report.checkpoint_error;
                }
            }
        }
    }

    /// Record a slice failure; the connection answers with this and
    /// closes (mid-body there is no clean request boundary to resume
    /// keep-alive from).
    pub fn fail(&mut self, resp: Response) {
        self.inflight = false;
        if self.failed.is_none() {
            self.failed = Some(resp);
        }
        self.pending.clear();
        self.pending_lines = 0;
        self.partial.clear();
    }

    /// All body bytes received, sliced, and applied.
    pub fn is_complete(&self) -> bool {
        self.remaining == 0
            && !self.inflight
            && self.pending.is_empty()
            && self.partial.is_empty()
            && self.failed.is_none()
            && self.agg.is_some()
    }

    /// The success response for the finished stream.
    pub fn success_response(&self) -> Response {
        let report = self.agg.as_ref().expect("is_complete checked by caller");
        router::ingest_success_response(self.session.name(), report, Some(self.slices))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream_for_test(remaining: usize) -> IngestStream {
        IngestStream {
            session: test_session(),
            permit: None,
            remaining,
            pending: Vec::new(),
            pending_lines: 0,
            partial: Vec::new(),
            lines_sent: 0,
            inflight: false,
            slices: 0,
            agg: None,
            failed: None,
            keep_alive: true,
            started: Instant::now(),
        }
    }

    fn test_session() -> Arc<LiveSession> {
        use crate::registry::{Registry, RegistryConfig};
        let (registry, _) = Registry::open(RegistryConfig::default());
        registry
            .create("conn-test", registry.spec_defaults().clone())
            .expect("session")
    }

    #[test]
    fn consume_splits_at_line_boundaries_across_chunks() {
        let mut s = stream_for_test(22);
        assert_eq!(s.consume(b"alpha\nbr"), 8);
        assert_eq!(s.pending, b"alpha\n");
        assert_eq!(s.pending_lines, 1);
        assert_eq!(s.partial, b"br");
        assert_eq!(s.consume(b"avo\ncharlie003"), 14);
        assert_eq!(s.pending, b"alpha\nbravo\n");
        assert_eq!(s.pending_lines, 2);
        assert_eq!(s.partial, b"charlie003");
        assert_eq!(s.remaining, 0);
    }

    #[test]
    fn consume_never_takes_past_the_declared_body() {
        let mut s = stream_for_test(4);
        // 4 body bytes then the start of a pipelined request.
        assert_eq!(s.consume(b"ab\ncGET /"), 4);
        assert_eq!(s.remaining, 0);
        assert_eq!(s.pending, b"ab\n");
        assert_eq!(s.partial, b"c");
    }

    #[test]
    fn final_slice_promotes_the_unterminated_trailing_line() {
        let mut s = stream_for_test(7);
        s.consume(b"a\nb\nend");
        let (chunk, offset) = s.take_slice(1024 * 1024).expect("body done => slice due");
        assert_eq!(chunk, b"a\nb\nend");
        assert_eq!(offset, 0);
        assert_eq!(s.lines_sent, 3, "the unterminated line counts");
        assert!(s.inflight);
        assert!(
            s.take_slice(1).is_none(),
            "one slice in flight at a time keeps batches ordered"
        );
    }

    #[test]
    fn slice_offsets_advance_in_stream_coordinates() {
        let mut s = stream_for_test(12);
        s.consume(b"a\nb\n");
        let (chunk, offset) = s.take_slice(1).expect("over threshold");
        assert_eq!(
            chunk, b"a\n",
            "cut lands on the first line boundary past the target"
        );
        assert_eq!(offset, 0);
        // Mimic the completion then feed the rest.
        s.inflight = false;
        s.consume(b"c\nd\ne\nf\n");
        let (chunk, offset) = s.take_slice(4).expect("due");
        assert_eq!(offset, 1, "one line already sent");
        assert_eq!(chunk, b"b\nc\n", "bounded cut, backlog stays pending");
        s.inflight = false;
        let (chunk, offset) = s.take_slice(1024).expect("body done drains the rest");
        assert_eq!(offset, 3);
        assert_eq!(chunk, b"d\ne\nf\n");
    }

    #[test]
    fn slices_stay_bounded_and_never_split_a_line() {
        let mut s = stream_for_test(1 << 20);
        s.consume(b"aaaaaaaaaa\nbb\n");
        let (chunk, offset) = s.take_slice(4).expect("backlog over target");
        assert_eq!(chunk, b"aaaaaaaaaa\n", "an over-long line ships whole");
        assert_eq!(offset, 0);
        s.inflight = false;
        assert!(
            s.take_slice(4).is_none(),
            "below target with body bytes still coming: not due"
        );
    }

    #[test]
    fn empty_body_yields_exactly_one_empty_slice() {
        let mut s = stream_for_test(0);
        let (chunk, offset) = s
            .take_slice(1024)
            .expect("empty body still applies a batch");
        assert_eq!(chunk, b"");
        assert_eq!(offset, 0);
        s.inflight = false;
        assert!(s.take_slice(1024).is_none(), "only one");
    }

    #[test]
    fn conn_pauses_reads_while_dispatched_and_when_stream_backlogged() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let stream = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let mut conn = Conn::new(stream, Instant::now());
        assert!(conn.wants_read(1024), "fresh connection reads");
        conn.state = ConnState::InFlight;
        assert!(!conn.wants_read(1024), "dispatched request pauses reads");
        let mut s = stream_for_test(1 << 20);
        s.pending = vec![b'x'; 4096];
        conn.state = ConnState::Streaming(Box::new(s));
        assert!(
            !conn.wants_read(1024),
            "backlogged stream applies backpressure"
        );
        assert!(conn.wants_read(8192), "room left => keep reading");
    }
}
